#include "baselines/dlinear.h"

#include <memory>

namespace msd {

Variable MovingAverage(const Variable& x, int64_t kernel_size) {
  MSD_CHECK_GE(x.rank(), 2);
  MSD_CHECK_GT(kernel_size, 0);
  const int64_t length = x.dim(-1);
  const int64_t last = x.rank() - 1;
  if (kernel_size == 1) return x;
  MSD_CHECK_LE(kernel_size, length)
      << "moving-average kernel larger than series";
  const int64_t front = (kernel_size - 1) / 2;
  const int64_t back = kernel_size - 1 - front;
  // Replicate padding: repeat the first/last element.
  Variable first = Slice(x, last, 0, 1);
  Variable final = Slice(x, last, length - 1, 1);
  std::vector<Variable> parts;
  if (front > 0) {
    parts.push_back(Mul(first, Variable(Tensor::Ones({front}))));
  }
  parts.push_back(x);
  if (back > 0) {
    parts.push_back(Mul(final, Variable(Tensor::Ones({back}))));
  }
  Variable padded = parts.size() > 1 ? Concat(parts, last) : x;
  // Moving sum as the mean of kernel_size shifted slices.
  Variable acc;
  for (int64_t k = 0; k < kernel_size; ++k) {
    Variable shifted = Slice(padded, last, k, length);
    acc = acc.defined() ? Add(acc, shifted) : shifted;
  }
  return MulScalar(acc, 1.0f / static_cast<float>(kernel_size));
}

DLinear::DLinear(int64_t input_length, int64_t horizon, Rng& rng,
                 int64_t kernel_size)
    : input_length_(input_length), kernel_size_(kernel_size) {
  seasonal_ = RegisterModule("seasonal",
                             std::make_unique<Linear>(input_length, horizon, rng));
  trend_ = RegisterModule("trend",
                          std::make_unique<Linear>(input_length, horizon, rng));
}

Variable DLinear::DoForward(const Variable& input) {
  MSD_CHECK_EQ(input.rank(), 3) << "DLinear expects [B, C, L]";
  MSD_CHECK_EQ(input.dim(2), input_length_);
  const int64_t kernel = std::min<int64_t>(kernel_size_, input_length_);
  Variable trend = MovingAverage(input, kernel);
  Variable seasonal = Sub(input, trend);
  return Add(seasonal_->Forward(seasonal), trend_->Forward(trend));
}

LinearForecaster::LinearForecaster(int64_t input_length, int64_t horizon,
                                   Rng& rng)
    : input_length_(input_length) {
  proj_ = RegisterModule("proj",
                         std::make_unique<Linear>(input_length, horizon, rng));
}

Variable LinearForecaster::DoForward(const Variable& input) {
  MSD_CHECK_EQ(input.rank(), 3);
  MSD_CHECK_EQ(input.dim(2), input_length_);
  return proj_->Forward(input);
}

}  // namespace msd
