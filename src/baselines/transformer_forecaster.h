// Vanilla Transformer forecaster with series stationarization (RevIN), a
// stand-in for the paper's Non-stationary Transformer baseline: point-wise
// token embedding of all channels per time step, learned positional
// encoding, encoder stack, and linear time/channel projection heads.
#ifndef MSDMIXER_BASELINES_TRANSFORMER_FORECASTER_H_
#define MSDMIXER_BASELINES_TRANSFORMER_FORECASTER_H_

#include <vector>

#include "nn/attention.h"
#include "nn/revin.h"

namespace msd {

struct TransformerForecasterConfig {
  int64_t input_length = 96;
  int64_t horizon = 96;
  int64_t model_dim = 32;
  int64_t num_heads = 4;
  int64_t ffn_dim = 64;
  int64_t num_blocks = 2;
  float dropout = 0.0f;
  bool use_revin = true;  // the "non-stationary" normalization
};

class TransformerForecaster : public Module {
 public:
  TransformerForecaster(const TransformerForecasterConfig& config,
                        int64_t channels, Rng& rng);

  // [B, C, L] -> [B, C, H].
  Variable DoForward(const Variable& input) override;

 private:
  TransformerForecasterConfig config_;
  int64_t channels_;
  Linear* embed_;        // C -> d per time step
  Variable positional_;  // [L, d]
  std::vector<TransformerEncoderBlock*> blocks_;
  Linear* time_head_;    // L -> H
  Linear* unembed_;      // d -> C
};

}  // namespace msd

#endif  // MSDMIXER_BASELINES_TRANSFORMER_FORECASTER_H_
