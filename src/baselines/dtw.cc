#include "baselines/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace msd {

double DtwDistance(const Tensor& a, const Tensor& b, int64_t band) {
  MSD_CHECK_EQ(a.rank(), 2);
  MSD_CHECK_EQ(b.rank(), 2);
  MSD_CHECK_EQ(a.dim(0), b.dim(0)) << "channel mismatch";
  const int64_t channels = a.dim(0);
  const int64_t n = a.dim(1);
  const int64_t m = b.dim(1);
  const double inf = std::numeric_limits<double>::infinity();

  // Per-timestep dependent cost: squared Euclidean across channels.
  auto cost = [&](int64_t i, int64_t j) {
    double acc = 0.0;
    for (int64_t c = 0; c < channels; ++c) {
      const double d = static_cast<double>(a.data()[c * n + i]) -
                       b.data()[c * m + j];
      acc += d * d;
    }
    return acc;
  };

  // Rolling two-row DP.
  std::vector<double> prev(static_cast<size_t>(m) + 1, inf);
  std::vector<double> curr(static_cast<size_t>(m) + 1, inf);
  prev[0] = 0.0;
  const int64_t effective_band =
      band > 0 ? std::max(band, std::abs(n - m)) : 0;
  for (int64_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), inf);
    int64_t j_lo = 1;
    int64_t j_hi = m;
    if (effective_band > 0) {
      j_lo = std::max<int64_t>(1, i - effective_band);
      j_hi = std::min<int64_t>(m, i + effective_band);
    }
    for (int64_t j = j_lo; j <= j_hi; ++j) {
      const double c = cost(i - 1, j - 1);
      const double best =
          std::min({prev[static_cast<size_t>(j)],       // insertion
                    curr[static_cast<size_t>(j - 1)],   // deletion
                    prev[static_cast<size_t>(j - 1)]}); // match
      curr[static_cast<size_t>(j)] = c + best;
    }
    std::swap(prev, curr);
  }
  return prev[static_cast<size_t>(m)];
}

void DtwKnnClassifier::Fit(std::vector<Tensor> train_x,
                           std::vector<int64_t> train_y) {
  MSD_CHECK_EQ(train_x.size(), train_y.size());
  MSD_CHECK(!train_x.empty());
  train_x_ = std::move(train_x);
  train_y_ = std::move(train_y);
}

int64_t DtwKnnClassifier::Predict(const Tensor& x) const {
  MSD_CHECK(!train_x_.empty()) << "classifier not fitted";
  const int64_t band = band_fraction_ > 0.0
                           ? std::max<int64_t>(1, static_cast<int64_t>(
                                 band_fraction_ * x.dim(1)))
                           : 0;
  double best = std::numeric_limits<double>::infinity();
  int64_t best_label = train_y_[0];
  for (size_t i = 0; i < train_x_.size(); ++i) {
    const double d = DtwDistance(x, train_x_[i], band);
    if (d < best) {
      best = d;
      best_label = train_y_[i];
    }
  }
  return best_label;
}

std::vector<int64_t> DtwKnnClassifier::PredictBatch(
    const std::vector<Tensor>& xs) const {
  std::vector<int64_t> out;
  out.reserve(xs.size());
  for (const Tensor& x : xs) out.push_back(Predict(x));
  return out;
}

}  // namespace msd
