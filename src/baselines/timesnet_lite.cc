#include "baselines/timesnet_lite.h"

#include <memory>
#include <string>

#include "core/patching.h"
#include "tensor/fft.h"

namespace msd {

TimesNetLite::TimesNetLite(int64_t input_length, int64_t horizon,
                           int64_t channels, const Tensor& reference, Rng& rng,
                           int64_t top_k, int64_t model_dim, int64_t hidden,
                           bool use_conv)
    : input_length_(input_length),
      horizon_(horizon),
      channels_(channels),
      model_dim_(model_dim),
      use_conv_(use_conv) {
  MSD_CHECK_EQ(reference.rank(), 2);
  MSD_CHECK_EQ(reference.dim(0), channels);
  periods_ = TopPeriodsFft(reference, top_k);
  for (int64_t& p : periods_) p = std::min(p, input_length);

  embed_ = RegisterModule("embed",
                          std::make_unique<Linear>(channels, model_dim, rng));
  for (size_t i = 0; i < periods_.size(); ++i) {
    const std::string prefix = "branch" + std::to_string(i) + ".";
    PeriodBranch branch;
    branch.period = periods_[i];
    branch.cycles = NumPatches(input_length, branch.period);
    // Folded layout is [B, d, cycles, period].
    if (use_conv_) {
      branch.conv1 = RegisterModule(
          prefix + "conv1",
          std::make_unique<Conv2dLayer>(model_dim, model_dim, 3, rng,
                                        /*stride=*/1, /*padding=*/1));
      branch.conv2 = RegisterModule(
          prefix + "conv2",
          std::make_unique<Conv2dLayer>(model_dim, model_dim, 3, rng,
                                        /*stride=*/1, /*padding=*/1));
    } else {
      branch.inter_cycle = RegisterModule(
          prefix + "inter_cycle",
          std::make_unique<AxisMlpBlock>(2, branch.cycles, hidden, 0.0f, rng));
      branch.intra_period = RegisterModule(
          prefix + "intra_period",
          std::make_unique<AxisMlpBlock>(3, branch.period, hidden, 0.0f, rng));
    }
    branches_.push_back(branch);
  }
  time_head_ = RegisterModule(
      "time_head", std::make_unique<Linear>(input_length, horizon, rng));
  unembed_ = RegisterModule("unembed",
                            std::make_unique<Linear>(model_dim, channels, rng));
}

Variable TimesNetLite::DoForward(const Variable& input) {
  MSD_CHECK_EQ(input.rank(), 3) << "TimesNetLite expects [B, C, L]";
  MSD_CHECK_EQ(input.dim(1), channels_);
  MSD_CHECK_EQ(input.dim(2), input_length_);

  RevInStats stats = ComputeRevInStats(input);
  Variable x = RevInNormalize(input, stats);

  // Embed channels per time step: [B, C, L] -> [B, d, L].
  Variable tokens = Transpose(x, 1, 2);             // [B, L, C]
  tokens = embed_->Forward(tokens);                 // [B, L, d]
  Variable h = Transpose(tokens, 1, 2);             // [B, d, L]

  // 2D variation modeling per detected period, aggregated by averaging
  // (TimesNet weights by spectral amplitude; uniform is the lite version).
  Variable aggregated;
  for (const PeriodBranch& branch : branches_) {
    Variable folded = Patch(h, branch.period);      // [B, d, cycles, p]
    if (use_conv_) {
      folded = branch.conv2->Forward(Gelu(branch.conv1->Forward(folded)));
    } else {
      folded = branch.inter_cycle->Forward(folded);
      folded = branch.intra_period->Forward(folded);
    }
    Variable unfolded = Unpatch(folded, input_length_);
    aggregated = aggregated.defined() ? Add(aggregated, unfolded) : unfolded;
  }
  aggregated = MulScalar(aggregated,
                         1.0f / static_cast<float>(branches_.size()));
  h = Add(h, aggregated);  // residual connection around the TimesBlock

  // Forecast head: time projection then channel unembedding.
  Variable future = time_head_->Forward(h);          // [B, d, H]
  future = Transpose(future, 1, 2);                  // [B, H, d]
  future = unembed_->Forward(future);                // [B, H, C]
  Variable forecast = Transpose(future, 1, 2);       // [B, C, H]
  return RevInDenormalize(forecast, stats);
}

}  // namespace msd
