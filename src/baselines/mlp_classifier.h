// Flatten-and-MLP classifier: the simplest learned baseline for the
// classification task, standing in for the generic deep baselines of the
// paper's Table XI.
#ifndef MSDMIXER_BASELINES_MLP_CLASSIFIER_H_
#define MSDMIXER_BASELINES_MLP_CLASSIFIER_H_

#include "nn/layers.h"

namespace msd {

class MlpClassifier : public Module {
 public:
  MlpClassifier(int64_t channels, int64_t length, int64_t classes, Rng& rng,
                int64_t hidden = 128);

  // [B, C, L] -> [B, M] logits.
  Variable DoForward(const Variable& input) override;

 private:
  int64_t channels_;
  int64_t length_;
  Linear* fc1_;
  Linear* fc2_;
  Dropout* dropout_;
};

}  // namespace msd

#endif  // MSDMIXER_BASELINES_MLP_CLASSIFIER_H_
