#include "baselines/nbeats.h"

#include <memory>
#include <string>

namespace msd {

NBeats::NBeats(int64_t input_length, int64_t horizon, Rng& rng,
               int64_t num_blocks, int64_t hidden)
    : input_length_(input_length) {
  MSD_CHECK_GT(num_blocks, 0);
  for (int64_t b = 0; b < num_blocks; ++b) {
    const std::string prefix = "block" + std::to_string(b) + ".";
    Block block;
    block.fc1 = RegisterModule(prefix + "fc1",
                               std::make_unique<Linear>(input_length, hidden, rng));
    block.fc2 =
        RegisterModule(prefix + "fc2", std::make_unique<Linear>(hidden, hidden, rng));
    // The final block's backcast would be discarded; omit it so every
    // registered parameter participates in the forward pass.
    block.backcast =
        b + 1 < num_blocks
            ? RegisterModule(prefix + "backcast",
                             std::make_unique<Linear>(hidden, input_length, rng))
            : nullptr;
    block.forecast = RegisterModule(
        prefix + "forecast", std::make_unique<Linear>(hidden, horizon, rng));
    blocks_.push_back(block);
  }
}

Variable NBeats::DoForward(const Variable& input) {
  MSD_CHECK_EQ(input.rank(), 3) << "NBeats expects [B, C, L]";
  MSD_CHECK_EQ(input.dim(2), input_length_);
  Variable residual = input;
  Variable forecast;
  for (const Block& block : blocks_) {
    Variable h = block.fc1->ForwardActivated(residual, ActivationKind::kRelu);
    h = block.fc2->ForwardActivated(h, ActivationKind::kRelu);
    if (block.backcast != nullptr) {
      residual = Sub(residual, block.backcast->Forward(h));
    }
    Variable f = block.forecast->Forward(h);
    forecast = forecast.defined() ? Add(forecast, f) : f;
  }
  return forecast;
}

}  // namespace msd
