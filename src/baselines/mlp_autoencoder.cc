#include "baselines/mlp_autoencoder.h"

#include <memory>

namespace msd {

MlpAutoencoder::MlpAutoencoder(int64_t channels, int64_t window, Rng& rng,
                               int64_t bottleneck)
    : channels_(channels), window_(window) {
  encode_time_ = RegisterModule(
      "encode_time", std::make_unique<Linear>(window, bottleneck, rng));
  mix_channels_ = RegisterModule(
      "mix_channels", std::make_unique<Linear>(channels, channels, rng));
  unmix_channels_ = RegisterModule(
      "unmix_channels", std::make_unique<Linear>(channels, channels, rng));
  decode_time_ = RegisterModule(
      "decode_time", std::make_unique<Linear>(bottleneck, window, rng));
}

Variable MlpAutoencoder::DoForward(const Variable& input) {
  MSD_CHECK_EQ(input.rank(), 3) << "expects [B, C, W]";
  MSD_CHECK_EQ(input.dim(1), channels_);
  MSD_CHECK_EQ(input.dim(2), window_);
  Variable h =
      encode_time_->ForwardActivated(input, ActivationKind::kGelu);  // [B,C,k]
  Variable hc = Transpose(h, 1, 2);                                  // [B,k,C]
  hc = mix_channels_->ForwardActivated(hc, ActivationKind::kGelu);
  hc = unmix_channels_->Forward(hc);
  h = Transpose(hc, 1, 2);                             // [B, C, k]
  return decode_time_->Forward(h);
}

}  // namespace msd
