// LightTS-style sampling MLP (Zhang et al., 2022): forecasts from two
// complementary downsampled views of the input — continuous chunks (local
// shape) and interval-strided subsequences (periodic shape) — each processed
// by an MLP, then fused by a linear head. A representative reimplementation
// of the paper's LightTS baseline.
#ifndef MSDMIXER_BASELINES_LIGHTTS_H_
#define MSDMIXER_BASELINES_LIGHTTS_H_

#include "nn/layers.h"

namespace msd {

class LightTs : public Module {
 public:
  // chunk_size must divide input_length (the input is front-padded
  // internally otherwise).
  LightTs(int64_t input_length, int64_t horizon, Rng& rng,
          int64_t chunk_size = 0 /* 0 = sqrt(L) */, int64_t hidden = 64);

  // [B, C, L] -> [B, C, H].
  Variable DoForward(const Variable& input) override;

 private:
  int64_t input_length_;
  int64_t chunk_size_;
  int64_t num_chunks_;
  Linear* continuous_fc1_;
  Linear* continuous_fc2_;
  Linear* interval_fc1_;
  Linear* interval_fc2_;
  Linear* head_;
};

}  // namespace msd

#endif  // MSDMIXER_BASELINES_LIGHTTS_H_
