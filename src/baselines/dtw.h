// Dependent multivariate Dynamic Time Warping (DTW-D, Shokoohi-Yekta et
// al.) and a 1-nearest-neighbor classifier on top of it — the classical
// statistical baseline of the paper's Table XI.
#ifndef MSDMIXER_BASELINES_DTW_H_
#define MSDMIXER_BASELINES_DTW_H_

#include <vector>

#include "tensor/tensor.h"

namespace msd {

// Squared-Euclidean dependent DTW between two [C, L] series (equal C, any
// lengths). `band` is the Sakoe-Chiba window half-width; band <= 0 means
// unconstrained. Returns the accumulated alignment cost.
double DtwDistance(const Tensor& a, const Tensor& b, int64_t band = 0);

// 1-NN classifier under DtwDistance.
class DtwKnnClassifier {
 public:
  // `band_fraction` scales the Sakoe-Chiba band relative to series length
  // (0.1 is a common choice and much faster than unconstrained DTW).
  explicit DtwKnnClassifier(double band_fraction = 0.1)
      : band_fraction_(band_fraction) {}

  void Fit(std::vector<Tensor> train_x, std::vector<int64_t> train_y);

  int64_t Predict(const Tensor& x) const;
  std::vector<int64_t> PredictBatch(const std::vector<Tensor>& xs) const;

 private:
  double band_fraction_;
  std::vector<Tensor> train_x_;
  std::vector<int64_t> train_y_;
};

}  // namespace msd

#endif  // MSDMIXER_BASELINES_DTW_H_
