// Training-free forecasters: last-value naive and seasonal naive. These
// anchor the benchmark tables (and on random-walk data they are near
// optimal, reproducing the paper's Exchange observations).
#ifndef MSDMIXER_BASELINES_NAIVE_H_
#define MSDMIXER_BASELINES_NAIVE_H_

#include "tensor/tensor.h"

namespace msd {

// Repeats the last observed value: [B, C, L] -> [B, C, H].
Tensor NaiveForecast(const Tensor& input, int64_t horizon);

// Repeats the last full period of length m: [B, C, L] -> [B, C, H].
// Falls back to NaiveForecast when m <= 0 or m > L.
Tensor SeasonalNaiveForecast(const Tensor& input, int64_t horizon, int64_t m);

}  // namespace msd

#endif  // MSDMIXER_BASELINES_NAIVE_H_
