#include "baselines/mlp_classifier.h"

#include <memory>

namespace msd {

MlpClassifier::MlpClassifier(int64_t channels, int64_t length, int64_t classes,
                             Rng& rng, int64_t hidden)
    : channels_(channels), length_(length) {
  fc1_ = RegisterModule(
      "fc1", std::make_unique<Linear>(channels * length, hidden, rng));
  fc2_ = RegisterModule("fc2", std::make_unique<Linear>(hidden, classes, rng));
  dropout_ = RegisterModule("dropout", std::make_unique<Dropout>(0.2f, rng));
}

Variable MlpClassifier::DoForward(const Variable& input) {
  MSD_CHECK_EQ(input.rank(), 3);
  MSD_CHECK_EQ(input.dim(1), channels_);
  MSD_CHECK_EQ(input.dim(2), length_);
  Variable flat = Reshape(input, {input.dim(0), channels_ * length_});
  Variable h =
      dropout_->Forward(fc1_->ForwardActivated(flat, ActivationKind::kGelu));
  return fc2_->Forward(h);
}

}  // namespace msd
