// DLinear (Zeng et al., 2023), a strong linear baseline used throughout the
// paper's comparisons: the input is decomposed into trend (moving average
// with replicate padding) and seasonal (remainder) parts, each forecast by a
// single channel-shared linear map, and the two are summed.
#ifndef MSDMIXER_BASELINES_DLINEAR_H_
#define MSDMIXER_BASELINES_DLINEAR_H_

#include "nn/layers.h"

namespace msd {

// Centered moving average along the last axis with replicate edge padding;
// the decomposition used by DLinear/Autoformer/FEDformer.
Variable MovingAverage(const Variable& x, int64_t kernel_size);

class DLinear : public Module {
 public:
  DLinear(int64_t input_length, int64_t horizon, Rng& rng,
          int64_t kernel_size = 25);

  // [B, C, L] -> [B, C, H].
  Variable DoForward(const Variable& input) override;

 private:
  int64_t input_length_;
  int64_t kernel_size_;
  Linear* seasonal_;
  Linear* trend_;
};

// Single linear map [B, C, L] -> [B, C, H] (channel-shared); the simplest
// learned forecaster, a useful floor in benchmarks.
class LinearForecaster : public Module {
 public:
  LinearForecaster(int64_t input_length, int64_t horizon, Rng& rng);
  Variable DoForward(const Variable& input) override;

 private:
  int64_t input_length_;
  Linear* proj_;
};

}  // namespace msd

#endif  // MSDMIXER_BASELINES_DLINEAR_H_
