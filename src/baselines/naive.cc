#include "baselines/naive.h"

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace msd {

Tensor NaiveForecast(const Tensor& input, int64_t horizon) {
  MSD_CHECK_EQ(input.rank(), 3) << "expects [B, C, L]";
  MSD_CHECK_GT(horizon, 0);
  Tensor last = Slice(input, 2, input.dim(2) - 1, 1);  // [B, C, 1]
  return Mul(last, Tensor::Ones({horizon}));
}

Tensor SeasonalNaiveForecast(const Tensor& input, int64_t horizon, int64_t m) {
  MSD_CHECK_EQ(input.rank(), 3) << "expects [B, C, L]";
  const int64_t length = input.dim(2);
  if (m <= 0 || m > length) return NaiveForecast(input, horizon);
  Tensor period = Slice(input, 2, length - m, m);  // [B, C, m]
  Tensor out({input.dim(0), input.dim(1), horizon});
  const float* src = period.data();
  float* dst = out.data();
  const int64_t rows = input.dim(0) * input.dim(1);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t h = 0; h < horizon; ++h) {
      dst[r * horizon + h] = src[r * m + (h % m)];
    }
  }
  return out;
}

}  // namespace msd
