// N-HiTS-style forecaster (Challu et al., 2023): a doubly-residual stack
// like N-BEATS, but each block sees a pooled (multi-rate) view of the input
// and emits a low-resolution forecast that is interpolated up to the full
// horizon — hierarchical interpolation. The paper's strongest short-term
// task-specific baseline.
#ifndef MSDMIXER_BASELINES_NHITS_H_
#define MSDMIXER_BASELINES_NHITS_H_

#include <vector>

#include "nn/layers.h"

namespace msd {

class NHits : public Module {
 public:
  // One block per entry of `pool_kernels` (descending, e.g. {8, 4, 1}):
  // block i average-pools the input by pool_kernels[i] and forecasts at
  // 1/pool_kernels[i] resolution.
  NHits(int64_t input_length, int64_t horizon, Rng& rng,
        std::vector<int64_t> pool_kernels = {8, 4, 1}, int64_t hidden = 64);

  // [B, C, L] -> [B, C, H].
  Variable DoForward(const Variable& input) override;

 private:
  struct Block {
    int64_t pool;
    int64_t pooled_length;
    int64_t coarse_horizon;
    Linear* fc1;
    Linear* fc2;
    Linear* backcast;  // null in the final block
    Linear* forecast;
  };

  int64_t input_length_;
  int64_t horizon_;
  std::vector<Block> blocks_;
};

}  // namespace msd

#endif  // MSDMIXER_BASELINES_NHITS_H_
