#include "baselines/transformer_forecaster.h"

#include <memory>
#include <string>

namespace msd {

TransformerForecaster::TransformerForecaster(
    const TransformerForecasterConfig& config, int64_t channels, Rng& rng)
    : config_(config), channels_(channels) {
  MSD_CHECK_GT(channels, 0);
  embed_ = RegisterModule(
      "embed", std::make_unique<Linear>(channels, config.model_dim, rng));
  positional_ = RegisterParameter(
      "positional",
      Tensor::RandNormal({config.input_length, config.model_dim}, 0.0f, 0.02f,
                         rng));
  for (int64_t b = 0; b < config.num_blocks; ++b) {
    blocks_.push_back(RegisterModule(
        "block" + std::to_string(b),
        std::make_unique<TransformerEncoderBlock>(
            config.model_dim, config.num_heads, config.ffn_dim, rng,
            config.dropout)));
  }
  time_head_ = RegisterModule(
      "time_head",
      std::make_unique<Linear>(config.input_length, config.horizon, rng));
  unembed_ = RegisterModule(
      "unembed", std::make_unique<Linear>(config.model_dim, channels, rng));
}

Variable TransformerForecaster::DoForward(const Variable& input) {
  MSD_CHECK_EQ(input.rank(), 3) << "expects [B, C, L]";
  MSD_CHECK_EQ(input.dim(1), channels_);
  MSD_CHECK_EQ(input.dim(2), config_.input_length);

  RevInStats stats;
  Variable x = input;
  if (config_.use_revin) {
    stats = ComputeRevInStats(x);
    x = RevInNormalize(x, stats);
  }

  Variable tokens = Transpose(x, 1, 2);                // [B, L, C]
  Variable h = Add(embed_->Forward(tokens), positional_);
  for (TransformerEncoderBlock* block : blocks_) {
    h = block->Forward(h);
  }
  Variable future = time_head_->Forward(Transpose(h, 1, 2));  // [B, d, H]
  future = unembed_->Forward(Transpose(future, 1, 2));        // [B, H, C]
  Variable forecast = Transpose(future, 1, 2);                // [B, C, H]
  if (config_.use_revin) forecast = RevInDenormalize(forecast, stats);
  return forecast;
}

}  // namespace msd
