#include "baselines/patchtst.h"

#include <memory>
#include <string>

namespace msd {

PatchTst::PatchTst(const PatchTstConfig& config, Rng& rng) : config_(config) {
  MSD_CHECK_GT(config.patch_length, 0);
  MSD_CHECK_GT(config.stride, 0);
  MSD_CHECK_LE(config.patch_length, config.input_length);
  num_patches_ =
      (config.input_length - config.patch_length) / config.stride + 1;
  embed_ = RegisterModule(
      "embed",
      std::make_unique<Linear>(config.patch_length, config.model_dim, rng));
  positional_ = RegisterParameter(
      "positional", Tensor::RandNormal({num_patches_, config.model_dim}, 0.0f,
                                       0.02f, rng));
  for (int64_t b = 0; b < config.num_blocks; ++b) {
    blocks_.push_back(RegisterModule(
        "block" + std::to_string(b),
        std::make_unique<TransformerEncoderBlock>(
            config.model_dim, config.num_heads, config.ffn_dim, rng,
            config.dropout)));
  }
  head_ = RegisterModule(
      "head", std::make_unique<Linear>(num_patches_ * config.model_dim,
                                       config.horizon, rng));
}

Variable PatchTst::DoForward(const Variable& input) {
  MSD_CHECK_EQ(input.rank(), 3) << "PatchTst expects [B, C, L]";
  MSD_CHECK_EQ(input.dim(2), config_.input_length);
  const int64_t batch = input.dim(0);
  const int64_t channels = input.dim(1);

  RevInStats stats;
  Variable x = input;
  if (config_.use_revin) {
    stats = ComputeRevInStats(x);
    x = RevInNormalize(x, stats);
  }

  // Channel independence: fold channels into the batch.
  Variable folded = Reshape(x, {batch * channels, config_.input_length});

  // Overlapping patches: [B*C, n_p, patch_len].
  std::vector<Variable> patches;
  patches.reserve(static_cast<size_t>(num_patches_));
  for (int64_t p = 0; p < num_patches_; ++p) {
    Variable patch =
        Slice(folded, 1, p * config_.stride, config_.patch_length);
    patches.push_back(
        Reshape(patch, {batch * channels, 1, config_.patch_length}));
  }
  Variable tokens = Concat(patches, 1);

  // Embed + learned positional encoding, then the encoder stack.
  Variable h = Add(embed_->Forward(tokens), positional_);
  for (TransformerEncoderBlock* block : blocks_) {
    h = block->Forward(h);
  }

  // Flatten tokens and project to the horizon, unfolding channels.
  Variable flat =
      Reshape(h, {batch * channels, num_patches_ * config_.model_dim});
  Variable forecast =
      Reshape(head_->Forward(flat), {batch, channels, config_.horizon});
  if (config_.use_revin) {
    forecast = RevInDenormalize(forecast, stats);
  }
  return forecast;
}

}  // namespace msd
