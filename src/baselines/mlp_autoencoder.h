// MLP autoencoder for reconstruction-based anomaly detection: the generic
// "learn to reconstruct normal data" baseline the paper's Table IX methods
// share, without MSD-Mixer's decomposition. Temporal bottleneck per channel
// plus one channel-mixing layer.
#ifndef MSDMIXER_BASELINES_MLP_AUTOENCODER_H_
#define MSDMIXER_BASELINES_MLP_AUTOENCODER_H_

#include "nn/layers.h"

namespace msd {

class MlpAutoencoder : public Module {
 public:
  MlpAutoencoder(int64_t channels, int64_t window, Rng& rng,
                 int64_t bottleneck = 16);

  // [B, C, W] -> [B, C, W] reconstruction.
  Variable DoForward(const Variable& input) override;

 private:
  int64_t channels_;
  int64_t window_;
  Linear* encode_time_;
  Linear* mix_channels_;
  Linear* unmix_channels_;
  Linear* decode_time_;
};

}  // namespace msd

#endif  // MSDMIXER_BASELINES_MLP_AUTOENCODER_H_
