#include "baselines/lightts.h"

#include <cmath>
#include <memory>

#include "core/patching.h"

namespace msd {

LightTs::LightTs(int64_t input_length, int64_t horizon, Rng& rng,
                 int64_t chunk_size, int64_t hidden)
    : input_length_(input_length) {
  chunk_size_ = chunk_size > 0
                    ? chunk_size
                    : std::max<int64_t>(1, static_cast<int64_t>(std::round(
                          std::sqrt(static_cast<double>(input_length)))));
  num_chunks_ = NumPatches(input_length, chunk_size_);
  // Continuous view: MLP over each chunk's interior (size chunk_size_).
  continuous_fc1_ = RegisterModule(
      "continuous_fc1", std::make_unique<Linear>(chunk_size_, hidden, rng));
  continuous_fc2_ = RegisterModule(
      "continuous_fc2", std::make_unique<Linear>(hidden, 1, rng));
  // Interval view: MLP over each stride-phase subsequence (size num_chunks_).
  interval_fc1_ = RegisterModule(
      "interval_fc1", std::make_unique<Linear>(num_chunks_, hidden, rng));
  interval_fc2_ = RegisterModule("interval_fc2",
                                 std::make_unique<Linear>(hidden, 1, rng));
  // Fusion head over the concatenated summaries.
  head_ = RegisterModule(
      "head",
      std::make_unique<Linear>(num_chunks_ + chunk_size_, horizon, rng));
}

Variable LightTs::DoForward(const Variable& input) {
  MSD_CHECK_EQ(input.rank(), 3) << "LightTs expects [B, C, L]";
  MSD_CHECK_EQ(input.dim(2), input_length_);
  const int64_t batch = input.dim(0);
  const int64_t channels = input.dim(1);

  Variable patched = Patch(input, chunk_size_);  // [B, C, L', s]
  // Continuous sampling: summarize each chunk -> [B, C, L'].
  Variable cont =
      continuous_fc1_->ForwardActivated(patched, ActivationKind::kGelu);
  cont = Reshape(continuous_fc2_->Forward(cont),
                 {batch, channels, num_chunks_});
  // Interval sampling: summarize each phase across chunks -> [B, C, s].
  Variable strided = Transpose(patched, 2, 3);  // [B, C, s, L']
  Variable intv =
      interval_fc1_->ForwardActivated(strided, ActivationKind::kGelu);
  intv = Reshape(interval_fc2_->Forward(intv), {batch, channels, chunk_size_});

  Variable fused = Concat({cont, intv}, 2);  // [B, C, L' + s]
  return head_->Forward(fused);
}

}  // namespace msd
