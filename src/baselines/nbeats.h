// N-BEATS-style generic decomposition stack (Oreshkin et al., 2020), the
// paper's strongest short-term baseline family: a stack of MLP blocks, each
// producing a backcast (subtracted from the running input, doubly-residual)
// and a forecast (summed into the output). Channel-independent: the same
// per-channel univariate model is applied to every channel via the shared
// last-axis Linear layers.
#ifndef MSDMIXER_BASELINES_NBEATS_H_
#define MSDMIXER_BASELINES_NBEATS_H_

#include <vector>

#include "nn/layers.h"

namespace msd {

class NBeats : public Module {
 public:
  NBeats(int64_t input_length, int64_t horizon, Rng& rng,
         int64_t num_blocks = 3, int64_t hidden = 64);

  // [B, C, L] -> [B, C, H].
  Variable DoForward(const Variable& input) override;

 private:
  struct Block {
    Linear* fc1;
    Linear* fc2;
    Linear* backcast;
    Linear* forecast;
  };

  int64_t input_length_;
  std::vector<Block> blocks_;
};

}  // namespace msd

#endif  // MSDMIXER_BASELINES_NBEATS_H_
