#include "baselines/nhits.h"

#include <memory>
#include <string>

#include "core/patching.h"

namespace msd {

NHits::NHits(int64_t input_length, int64_t horizon, Rng& rng,
             std::vector<int64_t> pool_kernels, int64_t hidden)
    : input_length_(input_length), horizon_(horizon) {
  MSD_CHECK(!pool_kernels.empty());
  for (size_t i = 0; i < pool_kernels.size(); ++i) {
    const int64_t pool = pool_kernels[i];
    MSD_CHECK_GT(pool, 0);
    MSD_CHECK_LE(pool, input_length);
    const std::string prefix = "block" + std::to_string(i) + ".";
    Block block;
    block.pool = pool;
    block.pooled_length = NumPatches(input_length, pool);
    block.coarse_horizon = std::max<int64_t>(1, horizon / pool);
    block.fc1 = RegisterModule(
        prefix + "fc1",
        std::make_unique<Linear>(block.pooled_length, hidden, rng));
    block.fc2 = RegisterModule(prefix + "fc2",
                               std::make_unique<Linear>(hidden, hidden, rng));
    block.backcast =
        i + 1 < pool_kernels.size()
            ? RegisterModule(prefix + "backcast",
                             std::make_unique<Linear>(hidden, input_length, rng))
            : nullptr;
    block.forecast = RegisterModule(
        prefix + "forecast",
        std::make_unique<Linear>(hidden, block.coarse_horizon, rng));
    blocks_.push_back(block);
  }
}

Variable NHits::DoForward(const Variable& input) {
  MSD_CHECK_EQ(input.rank(), 3) << "NHits expects [B, C, L]";
  MSD_CHECK_EQ(input.dim(2), input_length_);
  const int64_t batch = input.dim(0);
  const int64_t channels = input.dim(1);

  Variable residual = input;
  Variable forecast;
  for (const Block& block : blocks_) {
    // Multi-rate view: average-pool by the block's kernel.
    Variable pooled =
        Mean(Patch(residual, block.pool), {3}, /*keepdim=*/false);
    Variable h = block.fc1->ForwardActivated(pooled, ActivationKind::kRelu);
    h = block.fc2->ForwardActivated(h, ActivationKind::kRelu);
    if (block.backcast != nullptr) {
      residual = Sub(residual, block.backcast->Forward(h));
    }
    // Hierarchical interpolation: forecast at coarse resolution, upsample by
    // nearest-neighbor repetition, crop to the horizon.
    Variable coarse = block.forecast->Forward(h);  // [B, C, Hc]
    Variable f;
    if (block.coarse_horizon * block.pool >= horizon_ && block.pool > 1) {
      Variable expanded =
          Reshape(coarse, {batch, channels, block.coarse_horizon, 1});
      expanded = Mul(expanded, Variable(Tensor::Ones({block.pool})));
      Variable upsampled = Reshape(
          expanded, {batch, channels, block.coarse_horizon * block.pool});
      f = Slice(upsampled, 2, 0, horizon_);
    } else if (block.pool == 1) {
      f = Slice(coarse, 2, 0, std::min(block.coarse_horizon, horizon_));
      if (f.dim(2) < horizon_) {
        f = Pad(f, 2, 0, horizon_ - f.dim(2), 0.0f);
      }
    } else {
      // Coarse horizon too short after flooring; repeat then pad.
      Variable expanded =
          Reshape(coarse, {batch, channels, block.coarse_horizon, 1});
      expanded = Mul(expanded, Variable(Tensor::Ones({block.pool})));
      Variable upsampled = Reshape(
          expanded, {batch, channels, block.coarse_horizon * block.pool});
      const int64_t have = upsampled.dim(2);
      f = have >= horizon_ ? Slice(upsampled, 2, 0, horizon_)
                           : Pad(upsampled, 2, 0, horizon_ - have, 0.0f);
    }
    forecast = forecast.defined() ? Add(forecast, f) : f;
  }
  return forecast;
}

}  // namespace msd
