// PatchTST-style Transformer forecaster (Nie et al., 2023) — the paper's
// strongest task-general baseline. Channel-independent: each channel is
// segmented into overlapping patches, embedded, run through a Transformer
// encoder, and projected to the horizon. Reversible instance normalization
// handles window-level distribution shift.
#ifndef MSDMIXER_BASELINES_PATCHTST_H_
#define MSDMIXER_BASELINES_PATCHTST_H_

#include "nn/attention.h"
#include "nn/revin.h"

namespace msd {

struct PatchTstConfig {
  int64_t input_length = 96;
  int64_t horizon = 96;
  int64_t patch_length = 16;
  int64_t stride = 8;          // overlapping patches (stride < patch_length)
  int64_t model_dim = 32;
  int64_t num_heads = 4;
  int64_t ffn_dim = 64;
  int64_t num_blocks = 2;
  float dropout = 0.0f;
  bool use_revin = true;
};

class PatchTst : public Module {
 public:
  PatchTst(const PatchTstConfig& config, Rng& rng);

  // [B, C, L] -> [B, C, H].
  Variable DoForward(const Variable& input) override;

  int64_t num_patches() const { return num_patches_; }

 private:
  PatchTstConfig config_;
  int64_t num_patches_;
  Linear* embed_;
  Variable positional_;  // [num_patches, model_dim]
  std::vector<TransformerEncoderBlock*> blocks_;
  Linear* head_;
};

}  // namespace msd

#endif  // MSDMIXER_BASELINES_PATCHTST_H_
