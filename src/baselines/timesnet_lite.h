// TimesNet-style forecaster (Wu et al., 2023) — the paper's strongest
// task-general baseline. Core idea preserved: FFT-based dominant-period
// detection, folding the sequence into a 2D [cycles x period] layout per
// period, and modeling intra-/inter-period variation in 2D, with residual
// aggregation over periods.
//
// "Lite" simplifications for this substrate: periods are detected once from
// a reference series at construction (fixed 2D shapes; TimesNet re-detects
// per batch), and the 2D inception block is either axis-MLP mixing (default,
// faster) or a two-layer 3x3 convolution stack (use_conv=true, closer to
// the original).
#ifndef MSDMIXER_BASELINES_TIMESNET_LITE_H_
#define MSDMIXER_BASELINES_TIMESNET_LITE_H_

#include <vector>

#include "core/mlp_block.h"
#include "nn/conv_layer.h"
#include "nn/revin.h"

namespace msd {

class TimesNetLite : public Module {
 public:
  // `reference` is a [C, T] sample of the training distribution used to fix
  // the dominant periods.
  TimesNetLite(int64_t input_length, int64_t horizon, int64_t channels,
               const Tensor& reference, Rng& rng, int64_t top_k = 3,
               int64_t model_dim = 16, int64_t hidden = 32,
               bool use_conv = false);

  // [B, C, L] -> [B, C, H].
  Variable DoForward(const Variable& input) override;

  const std::vector<int64_t>& periods() const { return periods_; }

 private:
  struct PeriodBranch {
    int64_t period;
    int64_t cycles;  // ceil(L / period)
    // MLP variant (null when use_conv):
    AxisMlpBlock* inter_cycle = nullptr;
    AxisMlpBlock* intra_period = nullptr;
    // Conv variant (null otherwise):
    Conv2dLayer* conv1 = nullptr;
    Conv2dLayer* conv2 = nullptr;
  };

  int64_t input_length_;
  int64_t horizon_;
  int64_t channels_;
  int64_t model_dim_;
  bool use_conv_;
  std::vector<int64_t> periods_;
  Linear* embed_;             // C -> d per time step
  std::vector<PeriodBranch> branches_;
  Linear* time_head_;         // L -> H on the embedded sequence
  Linear* unembed_;           // d -> C per forecast step
};

}  // namespace msd

#endif  // MSDMIXER_BASELINES_TIMESNET_LITE_H_
