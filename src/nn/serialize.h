// Model checkpointing: saves/loads a Module's named parameters to a simple
// versioned binary format ("MSDCKPT"). Loading is by parameter name, so a
// checkpoint survives reordering but not renaming; shape mismatches are
// recoverable errors (Status), not crashes.
#ifndef MSDMIXER_NN_SERIALIZE_H_
#define MSDMIXER_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace msd {

// Binary layout:
//   magic "MSDCKPT\0" | uint32 version | uint64 param_count |
//   per param: uint64 name_len | name bytes | uint64 rank |
//              int64 dims[rank] | float data[numel]
Status SaveCheckpoint(const Module& module, const std::string& path);

// Loads values into the module's parameters by name. Every parameter of the
// module must be present in the file with a matching shape; extra entries in
// the file are an error too (they indicate a model/checkpoint mismatch).
// Every length field (count, name_len, rank, dims) is bounds-checked against
// the file size, so truncated or bit-flipped checkpoints return a Status
// instead of over-reading or attempting absurd allocations.
Status LoadCheckpoint(Module& module, const std::string& path);

}  // namespace msd

#endif  // MSDMIXER_NN_SERIALIZE_H_
