#include "nn/conv_layer.h"

#include <cmath>

namespace msd {

Conv2dLayer::Conv2dLayer(int64_t in_channels, int64_t out_channels,
                         int64_t kernel_size, Rng& rng, int64_t stride,
                         int64_t padding, bool bias)
    : stride_(stride), padding_(padding) {
  MSD_CHECK_GT(in_channels, 0);
  MSD_CHECK_GT(out_channels, 0);
  MSD_CHECK_GT(kernel_size, 0);
  const float bound =
      1.0f / std::sqrt(static_cast<float>(in_channels * kernel_size *
                                          kernel_size));
  kernel_ = RegisterParameter(
      "kernel",
      Tensor::RandUniform({out_channels, in_channels, kernel_size, kernel_size},
                          -bound, bound, rng));
  if (bias) {
    bias_ = RegisterParameter(
        "bias", Tensor::RandUniform({out_channels, 1, 1}, -bound, bound, rng));
  }
}

Variable Conv2dLayer::DoForward(const Variable& input) {
  Variable out = Conv2d(input, kernel_, stride_, padding_);
  if (bias_.defined()) out = Add(out, bias_);
  return out;
}

}  // namespace msd
