#include "nn/attention.h"

#include <cmath>
#include <memory>

namespace msd {

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t model_dim,
                                               int64_t num_heads, Rng& rng,
                                               float dropout)
    : model_dim_(model_dim),
      num_heads_(num_heads),
      head_dim_(model_dim / num_heads) {
  MSD_CHECK_GT(num_heads, 0);
  MSD_CHECK_EQ(model_dim % num_heads, 0)
      << "model_dim must be divisible by num_heads";
  query_ = RegisterModule("query",
                          std::make_unique<Linear>(model_dim, model_dim, rng));
  key_ = RegisterModule("key",
                        std::make_unique<Linear>(model_dim, model_dim, rng));
  value_ = RegisterModule("value",
                          std::make_unique<Linear>(model_dim, model_dim, rng));
  output_ = RegisterModule("output",
                           std::make_unique<Linear>(model_dim, model_dim, rng));
  dropout_ = RegisterModule("dropout", std::make_unique<Dropout>(dropout, rng));
}

Variable MultiHeadSelfAttention::DoForward(const Variable& input) {
  MSD_CHECK_EQ(input.rank(), 3) << "attention expects [B, L, D]";
  MSD_CHECK_EQ(input.dim(2), model_dim_);
  const int64_t batch = input.dim(0);
  const int64_t length = input.dim(1);

  // Project and split heads: [B, L, D] -> [B, H, L, d].
  auto split_heads = [&](const Variable& x) {
    Variable reshaped =
        Reshape(x, {batch, length, num_heads_, head_dim_});
    return Transpose(reshaped, 1, 2);
  };
  Variable q = split_heads(query_->Forward(input));
  Variable k = split_heads(key_->Forward(input));
  Variable v = split_heads(value_->Forward(input));

  // Attention scores: [B, H, L, L].
  Variable scores = MatMul(q, Transpose(k, -1, -2));
  scores = MulScalar(scores,
                     1.0f / std::sqrt(static_cast<float>(head_dim_)));
  Variable weights = Softmax(scores, -1);
  weights = dropout_->Forward(weights);

  // Weighted values back to [B, L, D].
  Variable context = MatMul(weights, v);              // [B, H, L, d]
  context = Transpose(context, 1, 2);                 // [B, L, H, d]
  context = Reshape(context, {batch, length, model_dim_});
  return output_->Forward(context);
}

TransformerEncoderBlock::TransformerEncoderBlock(int64_t model_dim,
                                                 int64_t num_heads,
                                                 int64_t ffn_dim, Rng& rng,
                                                 float dropout) {
  norm1_ = RegisterModule("norm1", std::make_unique<LayerNorm>(model_dim));
  attention_ = RegisterModule(
      "attention", std::make_unique<MultiHeadSelfAttention>(
                       model_dim, num_heads, rng, dropout));
  norm2_ = RegisterModule("norm2", std::make_unique<LayerNorm>(model_dim));
  ffn1_ = RegisterModule("ffn1",
                         std::make_unique<Linear>(model_dim, ffn_dim, rng));
  ffn2_ = RegisterModule("ffn2",
                         std::make_unique<Linear>(ffn_dim, model_dim, rng));
  dropout_ = RegisterModule("dropout", std::make_unique<Dropout>(dropout, rng));
}

Variable TransformerEncoderBlock::DoForward(const Variable& input) {
  Variable attended = attention_->Forward(norm1_->Forward(input));
  Variable x = Add(input, dropout_->Forward(attended));
  Variable ffn = ffn2_->Forward(
      ffn1_->ForwardActivated(norm2_->Forward(x), ActivationKind::kGelu));
  return Add(x, dropout_->Forward(ffn));
}

}  // namespace msd
