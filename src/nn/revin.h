// Reversible instance normalization (RevIN, Kim et al. 2022): normalize each
// (sample, channel) series by its own mean/std before the model and restore
// the statistics on the output. Standard equipment of modern forecasters
// (PatchTST and friends) for distribution shift between windows.
#ifndef MSDMIXER_NN_REVIN_H_
#define MSDMIXER_NN_REVIN_H_

#include "autograd/ops.h"
#include "autograd/variable.h"

namespace msd {

struct RevInStats {
  Variable mean;  // [B, C, 1]
  Variable std;   // [B, C, 1]
};

// Statistics over the time (last) axis of [B, C, L].
RevInStats ComputeRevInStats(const Variable& x, float eps = 1e-5f);

// (x - mean) / std.
Variable RevInNormalize(const Variable& x, const RevInStats& stats);

// y * std + mean; `y` may have a different length than the input (e.g. the
// forecast horizon) — stats broadcast over time.
Variable RevInDenormalize(const Variable& y, const RevInStats& stats);

}  // namespace msd

#endif  // MSDMIXER_NN_REVIN_H_
