#include "nn/module.h"

#include "tensor/optrace.h"

namespace msd {

Variable Module::Forward(const Variable& input) {
  // Free outside tracing: RegionScope is a no-op unless a capture is active.
  optrace::RegionScope region(name_);
  return DoForward(input);
}

Variable Module::DoForward(const Variable&) {
  MSD_FATAL("this module does not implement unary Forward()");
}

std::vector<Variable> Module::Parameters() const {
  std::vector<Variable> out;
  for (const auto& [name, param] : NamedParameters()) out.push_back(param);
  return out;
}

std::vector<std::pair<std::string, Variable>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Variable>> out;
  CollectNamed("", &out);
  return out;
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, Variable>>* out) const {
  for (const auto& [name, param] : params_) {
    out->emplace_back(prefix + name, param);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix + name + ".", out);
  }
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const auto& param : Parameters()) n += param.numel();
  return n;
}

int64_t Module::ParameterBytes() const {
  return NumParameters() * static_cast<int64_t>(sizeof(float));
}

int64_t Module::ApproxForwardFlopsPerItem() const {
  int64_t flops = 0;
  for (const auto& param : Parameters()) {
    flops += param.rank() >= 2 ? 2 * param.numel() : param.numel();
  }
  return flops;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

Variable Module::RegisterParameter(std::string name, Tensor init) {
  Variable param(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), param);
  return param;
}

}  // namespace msd
