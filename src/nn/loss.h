// Loss functions. All return scalar Variables suitable for Backward().
#ifndef MSDMIXER_NN_LOSS_H_
#define MSDMIXER_NN_LOSS_H_

#include "autograd/ops.h"
#include "autograd/variable.h"

namespace msd {

// Mean squared error over all elements.
Variable MseLoss(const Variable& prediction, const Variable& target);

// Mean absolute error over all elements.
Variable MaeLoss(const Variable& prediction, const Variable& target);

// MSE restricted to positions where mask == 1 (mask is a constant 0/1 tensor
// of the same shape); normalizes by the mask count. Used for imputation.
Variable MaskedMseLoss(const Variable& prediction, const Variable& target,
                       const Tensor& mask);

// Huber (smooth-L1) loss: quadratic within |error| <= delta, linear beyond;
// robust to the occasional outlier window. Mean over all elements.
Variable HuberLoss(const Variable& prediction, const Variable& target,
                   float delta = 1.0f);

// Softmax cross entropy from logits [B, M] against integer class labels [B]
// (stored as floats). Mean over the batch.
Variable CrossEntropyLoss(const Variable& logits, const Tensor& labels);

}  // namespace msd

#endif  // MSDMIXER_NN_LOSS_H_
