#include "nn/loss.h"

#include "tensor/tensor_ops.h"

namespace msd {

Variable MseLoss(const Variable& prediction, const Variable& target) {
  return MeanAll(Square(Sub(prediction, target)));
}

Variable MaeLoss(const Variable& prediction, const Variable& target) {
  return MeanAll(Abs(Sub(prediction, target)));
}

Variable MaskedMseLoss(const Variable& prediction, const Variable& target,
                       const Tensor& mask) {
  MSD_CHECK(mask.shape() == prediction.shape());
  const float count = SumAll(mask).item();
  MSD_CHECK_GT(count, 0.0f) << "mask selects no elements";
  Variable err = Mul(Square(Sub(prediction, target)), Variable(mask));
  return MulScalar(SumAll(err), 1.0f / count);
}

Variable HuberLoss(const Variable& prediction, const Variable& target,
                   float delta) {
  MSD_CHECK_GT(delta, 0.0f);
  // Branch-free formulation: let a = |error|, q = min(a, delta).
  // loss = 0.5 q^2 + delta * (a - q); both pieces differentiable via
  // existing ops (min via 0.5*(a + delta - |a - delta|)).
  Variable a = Abs(Sub(prediction, target));
  Variable q = MulScalar(
      Sub(AddScalar(a, delta), Abs(AddScalar(a, -delta))), 0.5f);
  Variable quadratic = MulScalar(Square(q), 0.5f);
  Variable linear = MulScalar(Sub(a, q), delta);
  return MeanAll(Add(quadratic, linear));
}

Variable CrossEntropyLoss(const Variable& logits, const Tensor& labels) {
  MSD_CHECK_EQ(logits.rank(), 2);
  MSD_CHECK_EQ(labels.rank(), 1);
  const int64_t batch = logits.dim(0);
  const int64_t classes = logits.dim(1);
  MSD_CHECK_EQ(labels.dim(0), batch);
  Tensor onehot = Tensor::Zeros({batch, classes});
  for (int64_t b = 0; b < batch; ++b) {
    const int64_t label = static_cast<int64_t>(labels.data()[b]);
    MSD_CHECK_GE(label, 0);
    MSD_CHECK_LT(label, classes);
    onehot.set({b, label}, 1.0f);
  }
  Variable picked = Mul(LogSoftmax(logits, 1), Variable(std::move(onehot)));
  return MulScalar(SumAll(picked), -1.0f / static_cast<float>(batch));
}

}  // namespace msd
