// Conv2d as a Module: learnable kernel + per-output-channel bias.
#ifndef MSDMIXER_NN_CONV_LAYER_H_
#define MSDMIXER_NN_CONV_LAYER_H_

#include "nn/layers.h"

namespace msd {

class Conv2dLayer : public Module {
 public:
  Conv2dLayer(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
              Rng& rng, int64_t stride = 1, int64_t padding = 0,
              bool bias = true);

  // [B, C, H, W] -> [B, O, H', W'].
  Variable DoForward(const Variable& input) override;

 private:
  int64_t stride_;
  int64_t padding_;
  Variable kernel_;  // [O, C, k, k]
  Variable bias_;    // [O, 1, 1] (undefined if bias=false)
};

}  // namespace msd

#endif  // MSDMIXER_NN_CONV_LAYER_H_
