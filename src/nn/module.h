// Base class for neural-network modules: owns parameters and child modules,
// exposes a flat parameter list for optimizers, and tracks train/eval mode
// (consumed by stochastic modules like Dropout/DropPath).
#ifndef MSDMIXER_NN_MODULE_H_
#define MSDMIXER_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace msd {

class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // Unary forward; modules with richer signatures (multiple inputs, tuples)
  // define their own methods and leave DoForward unimplemented. Non-virtual
  // shell: tags an active op capture with this module's registered name (a
  // no-op outside tracing — see tensor/optrace.h), then dispatches to the
  // subclass's DoForward.
  Variable Forward(const Variable& input);

  // All trainable parameters of this module and its children, depth-first.
  // The returned Variables share nodes with the stored parameters, so
  // optimizers can mutate values/grads through them.
  std::vector<Variable> Parameters() const;

  // Named (path-qualified) parameters, for checkpoint-style introspection.
  std::vector<std::pair<std::string, Variable>> NamedParameters() const;

  // Total number of scalar parameters.
  int64_t NumParameters() const;

  // Bytes held by parameter values (float32; excludes gradients and
  // optimizer state, which at most triple this during training).
  int64_t ParameterBytes() const;

  // Rough forward-pass FLOPs per sample, estimated from parameter shapes:
  // 2 * numel for every rank>=2 parameter (each weight of a dense map costs
  // a multiply-add per item) and numel for rank<2 parameters (bias adds,
  // norm scales). Activation functions and data movement are not counted;
  // use the "tensor/matmul_flops" counter for exact measured matmul work.
  int64_t ApproxForwardFlopsPerItem() const;

  // Switches this module and all children between training and evaluation
  // behaviour.
  void SetTraining(bool training);
  bool training() const { return training_; }

 protected:
  Module() = default;

  // Subclass implementation of the unary forward. The default fatals.
  virtual Variable DoForward(const Variable& input);

  // Registers a trainable parameter; returns a handle the subclass stores.
  Variable RegisterParameter(std::string name, Tensor init);

  // Registers a child and returns a raw pointer for the subclass to keep.
  // The child remembers its registration name so traced forwards can label
  // ops with the module path that produced them.
  template <typename M>
  M* RegisterModule(std::string name, std::unique_ptr<M> child) {
    M* raw = child.get();
    raw->name_ = name;
    children_.emplace_back(std::move(name), std::move(child));
    return raw;
  }

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, Variable>>* out) const;

  std::vector<std::pair<std::string, Variable>> params_;
  std::vector<std::pair<std::string, std::unique_ptr<Module>>> children_;
  std::string name_;  // registration name; empty for root modules
  bool training_ = true;
};

}  // namespace msd

#endif  // MSDMIXER_NN_MODULE_H_
