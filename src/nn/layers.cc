#include "nn/layers.h"

#include <cmath>

namespace msd {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  MSD_CHECK_GT(in_features, 0);
  MSD_CHECK_GT(out_features, 0);
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_features));
  weight_ = RegisterParameter(
      "weight",
      Tensor::RandUniform({in_features, out_features}, -bound, bound, rng));
  if (bias) {
    bias_ = RegisterParameter(
        "bias", Tensor::RandUniform({out_features}, -bound, bound, rng));
  }
}

namespace {

gemm::Activation ToGemmActivation(ActivationKind kind) {
  switch (kind) {
    case ActivationKind::kRelu:
      return gemm::Activation::kRelu;
    case ActivationKind::kGelu:
      return gemm::Activation::kGelu;
    case ActivationKind::kTanh:
      return gemm::Activation::kTanh;
    case ActivationKind::kSigmoid:
      return gemm::Activation::kSigmoid;
    case ActivationKind::kIdentity:
      return gemm::Activation::kIdentity;
  }
  MSD_FATAL("unknown activation kind");
}

}  // namespace

Variable Linear::DoForward(const Variable& input) {
  return ForwardActivated(input, ActivationKind::kIdentity);
}

Variable Linear::ForwardActivated(const Variable& input, ActivationKind act) {
  MSD_CHECK_GE(input.rank(), 2);
  MSD_CHECK_EQ(input.dim(-1), in_features_)
      << "Linear expected last dim " << in_features_;
  return MatMulEx(input, weight_, bias_, ToGemmActivation(act));
}

Variable Activation::DoForward(const Variable& input) {
  switch (kind_) {
    case ActivationKind::kRelu:
      return Relu(input);
    case ActivationKind::kGelu:
      return Gelu(input);
    case ActivationKind::kTanh:
      return Tanh(input);
    case ActivationKind::kSigmoid:
      return Sigmoid(input);
    case ActivationKind::kIdentity:
      return input;
  }
  MSD_FATAL("unknown activation kind");
}

LayerNorm::LayerNorm(int64_t features, float eps)
    : features_(features), eps_(eps) {
  MSD_CHECK_GT(features, 0);
  gamma_ = RegisterParameter("gamma", Tensor::Ones({features}));
  beta_ = RegisterParameter("beta", Tensor::Zeros({features}));
}

Variable LayerNorm::DoForward(const Variable& input) {
  MSD_CHECK_EQ(input.dim(-1), features_);
  Variable mean = Mean(input, {-1}, /*keepdim=*/true);
  Variable centered = Sub(input, mean);
  Variable var = Mean(Square(centered), {-1}, /*keepdim=*/true);
  Variable normalized = Div(centered, Sqrt(AddScalar(var, eps_)));
  return Add(Mul(normalized, gamma_), beta_);
}

Dropout::Dropout(float p, Rng& rng) : p_(p), rng_(&rng) {
  MSD_CHECK_GE(p, 0.0f);
  MSD_CHECK_LT(p, 1.0f);
}

Variable Dropout::DoForward(const Variable& input) {
  if (!training() || p_ == 0.0f) return input;
  Tensor mask(input.shape());
  const float keep = 1.0f - p_;
  float* m = mask.data();
  for (int64_t i = 0; i < mask.numel(); ++i) {
    m[i] = rng_->Bernoulli(keep) ? 1.0f / keep : 0.0f;
  }
  return Mul(input, Variable(std::move(mask)));
}

DropPath::DropPath(float p, Rng& rng) : p_(p), rng_(&rng) {
  MSD_CHECK_GE(p, 0.0f);
  MSD_CHECK_LT(p, 1.0f);
}

Variable DropPath::DoForward(const Variable& input) {
  if (!training() || p_ == 0.0f) return input;
  // One keep/drop decision per sample (dim 0), broadcast over the rest.
  Shape mask_shape(static_cast<size_t>(input.rank()), 1);
  mask_shape[0] = input.dim(0);
  Tensor mask(mask_shape);
  const float keep = 1.0f - p_;
  float* m = mask.data();
  for (int64_t i = 0; i < mask.numel(); ++i) {
    m[i] = rng_->Bernoulli(keep) ? 1.0f / keep : 0.0f;
  }
  return Mul(input, Variable(std::move(mask)));
}

Sequential& Sequential::Add(std::unique_ptr<Module> module) {
  MSD_CHECK(module != nullptr);
  stages_.push_back(RegisterModule("stage" + std::to_string(next_index_++),
                                   std::move(module)));
  return *this;
}

Variable Sequential::DoForward(const Variable& input) {
  Variable x = input;
  for (Module* stage : stages_) x = stage->Forward(x);
  return x;
}

}  // namespace msd
