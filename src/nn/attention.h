// Multi-head self-attention and a pre-norm Transformer encoder block, the
// substrate for the PatchTST-style baseline (the paper's strongest
// comparison model family).
#ifndef MSDMIXER_NN_ATTENTION_H_
#define MSDMIXER_NN_ATTENTION_H_

#include "nn/layers.h"

namespace msd {

// Scaled dot-product multi-head self-attention over [B, L, D] sequences.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t model_dim, int64_t num_heads, Rng& rng,
                         float dropout = 0.0f);

  // [B, L, D] -> [B, L, D].
  Variable DoForward(const Variable& input) override;

  int64_t num_heads() const { return num_heads_; }

 private:
  int64_t model_dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  Linear* query_;
  Linear* key_;
  Linear* value_;
  Linear* output_;
  Dropout* dropout_;
};

// Pre-norm Transformer encoder block:
//   x = x + MHSA(LN(x));  x = x + FFN(LN(x)).
class TransformerEncoderBlock : public Module {
 public:
  TransformerEncoderBlock(int64_t model_dim, int64_t num_heads,
                          int64_t ffn_dim, Rng& rng, float dropout = 0.0f);

  Variable DoForward(const Variable& input) override;

 private:
  LayerNorm* norm1_;
  MultiHeadSelfAttention* attention_;
  LayerNorm* norm2_;
  Linear* ffn1_;
  Linear* ffn2_;
  Dropout* dropout_;
};

}  // namespace msd

#endif  // MSDMIXER_NN_ATTENTION_H_
