// Core layers: Linear, activations, LayerNorm, Dropout/DropPath, Sequential.
#ifndef MSDMIXER_NN_LAYERS_H_
#define MSDMIXER_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "common/rng.h"
#include "nn/module.h"

namespace msd {

enum class ActivationKind { kRelu, kGelu, kTanh, kSigmoid, kIdentity };

// Affine map on the last dimension: y = x W + b, with x of any rank >= 2.
// Initialization follows the PyTorch default, U(-1/sqrt(in), 1/sqrt(in)).
// Forward runs as one fused GEMM (autograd MatMulEx): the bias add — and,
// for ForwardActivated, the activation — happen in the GEMM epilogue with no
// intermediate tensors.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  Variable DoForward(const Variable& input) override;
  // y = act(x W + b) in a single fused op; preferred over composing Forward
  // with a separate activation on hot paths.
  Variable ForwardActivated(const Variable& input, ActivationKind act);

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Variable weight_;  // [in, out]
  Variable bias_;    // [out] (undefined if bias=false)
};

// Stateless elementwise activation as a module (for Sequential pipelines).
class Activation : public Module {
 public:
  explicit Activation(ActivationKind kind) : kind_(kind) {}
  Variable DoForward(const Variable& input) override;

 private:
  ActivationKind kind_;
};

// Layer normalization over the last dimension with learnable scale/shift.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t features, float eps = 1e-5f);
  Variable DoForward(const Variable& input) override;

 private:
  int64_t features_;
  float eps_;
  Variable gamma_;
  Variable beta_;
};

// Standard inverted dropout: elementwise zeroing with rescale in training,
// identity in eval.
class Dropout : public Module {
 public:
  Dropout(float p, Rng& rng);
  Variable DoForward(const Variable& input) override;

 private:
  float p_;
  Rng* rng_;
};

// Stochastic depth (Larsson et al., FractalNet): drops the *whole residual
// branch* per sample. The MLP block of MSD-Mixer (Fig. 3a) uses this.
class DropPath : public Module {
 public:
  DropPath(float p, Rng& rng);
  Variable DoForward(const Variable& input) override;

 private:
  float p_;
  Rng* rng_;
};

// Runs children in order.
class Sequential : public Module {
 public:
  Sequential() = default;

  // Appends a module; returns *this for chaining.
  Sequential& Add(std::unique_ptr<Module> module);

  Variable DoForward(const Variable& input) override;

  int64_t size() const { return static_cast<int64_t>(stages_.size()); }

 private:
  std::vector<Module*> stages_;
  int64_t next_index_ = 0;
};

}  // namespace msd

#endif  // MSDMIXER_NN_LAYERS_H_
