#include "nn/revin.h"

namespace msd {

RevInStats ComputeRevInStats(const Variable& x, float eps) {
  MSD_CHECK_EQ(x.rank(), 3) << "RevIN expects [B, C, L]";
  RevInStats stats;
  stats.mean = Mean(x, {2}, /*keepdim=*/true);
  Variable centered = Sub(x, stats.mean);
  Variable var = Mean(Square(centered), {2}, /*keepdim=*/true);
  stats.std = Sqrt(AddScalar(var, eps));
  return stats;
}

Variable RevInNormalize(const Variable& x, const RevInStats& stats) {
  return Div(Sub(x, stats.mean), stats.std);
}

Variable RevInDenormalize(const Variable& y, const RevInStats& stats) {
  return Add(Mul(y, stats.std), stats.mean);
}

}  // namespace msd
