#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace msd {

namespace {

constexpr char kMagic[8] = {'M', 'S', 'D', 'C', 'K', 'P', 'T', '\0'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t size) {
  return std::fwrite(data, 1, size, f) == size;
}

bool ReadBytes(std::FILE* f, void* data, size_t size) {
  return std::fread(data, 1, size, f) == size;
}

}  // namespace

Status SaveCheckpoint(const Module& module, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  std::FILE* f = file.get();
  const auto named = module.NamedParameters();
  const uint64_t count = named.size();
  if (!WriteBytes(f, kMagic, sizeof(kMagic)) ||
      !WriteBytes(f, &kVersion, sizeof(kVersion)) ||
      !WriteBytes(f, &count, sizeof(count))) {
    return Status::Internal("write failed: " + path);
  }
  for (const auto& [name, param] : named) {
    const uint64_t name_len = name.size();
    const uint64_t rank = static_cast<uint64_t>(param.rank());
    if (!WriteBytes(f, &name_len, sizeof(name_len)) ||
        !WriteBytes(f, name.data(), name.size()) ||
        !WriteBytes(f, &rank, sizeof(rank))) {
      return Status::Internal("write failed: " + path);
    }
    for (int64_t d : param.shape()) {
      if (!WriteBytes(f, &d, sizeof(d))) {
        return Status::Internal("write failed: " + path);
      }
    }
    if (!WriteBytes(f, param.value().data(),
                    static_cast<size_t>(param.numel()) * sizeof(float))) {
      return Status::Internal("write failed: " + path);
    }
  }
  return Status::OK();
}

Status LoadCheckpoint(Module& module, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open: " + path);
  }
  std::FILE* f = file.get();
  char magic[8];
  uint32_t version = 0;
  uint64_t count = 0;
  if (!ReadBytes(f, magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an MSD checkpoint: " + path);
  }
  if (!ReadBytes(f, &version, sizeof(version)) || version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  if (!ReadBytes(f, &count, sizeof(count))) {
    return Status::InvalidArgument("truncated checkpoint: " + path);
  }

  std::map<std::string, std::pair<Shape, std::vector<float>>> entries;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    if (!ReadBytes(f, &name_len, sizeof(name_len)) || name_len > (1u << 20)) {
      return Status::InvalidArgument("truncated checkpoint: " + path);
    }
    std::string name(name_len, '\0');
    uint64_t rank = 0;
    if (!ReadBytes(f, name.data(), name_len) ||
        !ReadBytes(f, &rank, sizeof(rank)) || rank > 16) {
      return Status::InvalidArgument("truncated checkpoint: " + path);
    }
    Shape shape(rank);
    for (uint64_t d = 0; d < rank; ++d) {
      if (!ReadBytes(f, &shape[d], sizeof(int64_t)) || shape[d] < 0) {
        return Status::InvalidArgument("truncated checkpoint: " + path);
      }
    }
    const int64_t numel = NumElementsOf(shape);
    std::vector<float> data(static_cast<size_t>(numel));
    if (!ReadBytes(f, data.data(), data.size() * sizeof(float))) {
      return Status::InvalidArgument("truncated checkpoint: " + path);
    }
    entries.emplace(std::move(name),
                    std::make_pair(std::move(shape), std::move(data)));
  }

  auto named = module.NamedParameters();
  if (named.size() != entries.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: model has " +
        std::to_string(named.size()) + ", checkpoint has " +
        std::to_string(entries.size()));
  }
  for (auto& [name, param] : named) {
    auto it = entries.find(name);
    if (it == entries.end()) {
      return Status::NotFound("parameter missing from checkpoint: " + name);
    }
    if (it->second.first != param.shape()) {
      return Status::InvalidArgument(
          "shape mismatch for " + name + ": model " +
          ShapeToString(param.shape()) + " vs checkpoint " +
          ShapeToString(it->second.first));
    }
    std::copy(it->second.second.begin(), it->second.second.end(),
              param.mutable_value().data());
  }
  return Status::OK();
}

}  // namespace msd
