#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace msd {

namespace {

constexpr char kMagic[8] = {'M', 'S', 'D', 'C', 'K', 'P', 'T', '\0'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t size) {
  return std::fwrite(data, 1, size, f) == size;
}

bool ReadBytes(std::FILE* f, void* data, size_t size) {
  return std::fread(data, 1, size, f) == size;
}

// Size of `f` in bytes via seek-to-end, restoring the read position; -1 on
// seek failure. Used to bounds-check every length field in the checkpoint
// against what the file can actually hold, so a corrupt name_len/rank/dim
// becomes a recoverable Status instead of a gigabyte allocation or over-read.
int64_t FileSizeBytes(std::FILE* f) {
  const long pos = std::ftell(f);
  if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0) return -1;
  const long size = std::ftell(f);
  if (size < 0 || std::fseek(f, pos, SEEK_SET) != 0) return -1;
  return static_cast<int64_t>(size);
}

// Bytes between the current read position and end of file (0 on error).
int64_t RemainingBytes(std::FILE* f, int64_t file_size) {
  const long pos = std::ftell(f);
  if (pos < 0 || file_size < static_cast<int64_t>(pos)) return 0;
  return file_size - static_cast<int64_t>(pos);
}

}  // namespace

Status SaveCheckpoint(const Module& module, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  std::FILE* f = file.get();
  const auto named = module.NamedParameters();
  const uint64_t count = named.size();
  if (!WriteBytes(f, kMagic, sizeof(kMagic)) ||
      !WriteBytes(f, &kVersion, sizeof(kVersion)) ||
      !WriteBytes(f, &count, sizeof(count))) {
    return Status::Internal("write failed: " + path);
  }
  for (const auto& [name, param] : named) {
    const uint64_t name_len = name.size();
    const uint64_t rank = static_cast<uint64_t>(param.rank());
    if (!WriteBytes(f, &name_len, sizeof(name_len)) ||
        !WriteBytes(f, name.data(), name.size()) ||
        !WriteBytes(f, &rank, sizeof(rank))) {
      return Status::Internal("write failed: " + path);
    }
    for (int64_t d : param.shape()) {
      if (!WriteBytes(f, &d, sizeof(d))) {
        return Status::Internal("write failed: " + path);
      }
    }
    if (!WriteBytes(f, param.value().data(),
                    static_cast<size_t>(param.numel()) * sizeof(float))) {
      return Status::Internal("write failed: " + path);
    }
  }
  return Status::OK();
}

Status LoadCheckpoint(Module& module, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open: " + path);
  }
  std::FILE* f = file.get();
  const int64_t file_size = FileSizeBytes(f);
  if (file_size < 0) {
    return Status::Internal("cannot determine size of " + path);
  }
  char magic[8];
  uint32_t version = 0;
  uint64_t count = 0;
  if (!ReadBytes(f, magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an MSD checkpoint: " + path);
  }
  if (!ReadBytes(f, &version, sizeof(version)) || version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  if (!ReadBytes(f, &count, sizeof(count))) {
    return Status::InvalidArgument("truncated checkpoint: " + path);
  }
  // Every entry costs at least a name_len and a rank field; a count claiming
  // more than the file could hold is corruption, not a 2^60-iteration loop.
  constexpr uint64_t kMinEntryBytes = 2 * sizeof(uint64_t);
  if (count > static_cast<uint64_t>(file_size) / kMinEntryBytes) {
    return Status::InvalidArgument(
        "corrupt checkpoint (parameter count " + std::to_string(count) +
        " exceeds what " + std::to_string(file_size) +
        " bytes can hold): " + path);
  }

  std::map<std::string, std::pair<Shape, std::vector<float>>> entries;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    if (!ReadBytes(f, &name_len, sizeof(name_len))) {
      return Status::InvalidArgument("truncated checkpoint: " + path);
    }
    if (name_len > static_cast<uint64_t>(RemainingBytes(f, file_size))) {
      return Status::InvalidArgument(
          "corrupt checkpoint (name length " + std::to_string(name_len) +
          " exceeds remaining file): " + path);
    }
    std::string name(name_len, '\0');
    uint64_t rank = 0;
    if (!ReadBytes(f, name.data(), name_len) ||
        !ReadBytes(f, &rank, sizeof(rank))) {
      return Status::InvalidArgument("truncated checkpoint: " + path);
    }
    if (rank > 16) {
      return Status::InvalidArgument(
          "corrupt checkpoint (rank " + std::to_string(rank) + "): " + path);
    }
    Shape shape(rank);
    // numel is recomputed incrementally with an overflow guard: the per-dim
    // cap keeps the running product inside int64 range even before the
    // remaining-bytes check rejects it.
    int64_t numel = 1;
    constexpr int64_t kMaxNumel = int64_t{1} << 40;
    for (uint64_t d = 0; d < rank; ++d) {
      if (!ReadBytes(f, &shape[d], sizeof(int64_t))) {
        return Status::InvalidArgument("truncated checkpoint: " + path);
      }
      if (shape[d] < 0 || shape[d] > kMaxNumel ||
          (shape[d] > 0 && numel > kMaxNumel / shape[d])) {
        return Status::InvalidArgument(
            "corrupt checkpoint (dimension " + std::to_string(shape[d]) +
            " of " + name + "): " + path);
      }
      numel *= shape[d];
    }
    const int64_t data_bytes = numel * static_cast<int64_t>(sizeof(float));
    if (data_bytes > RemainingBytes(f, file_size)) {
      return Status::InvalidArgument(
          "corrupt checkpoint (" + name + " claims " +
          std::to_string(data_bytes) + " data bytes past end of file): " +
          path);
    }
    std::vector<float> data(static_cast<size_t>(numel));
    if (!ReadBytes(f, data.data(), data.size() * sizeof(float))) {
      return Status::InvalidArgument("truncated checkpoint: " + path);
    }
    entries.emplace(std::move(name),
                    std::make_pair(std::move(shape), std::move(data)));
  }

  auto named = module.NamedParameters();
  if (named.size() != entries.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: model has " +
        std::to_string(named.size()) + ", checkpoint has " +
        std::to_string(entries.size()));
  }
  for (auto& [name, param] : named) {
    auto it = entries.find(name);
    if (it == entries.end()) {
      return Status::NotFound("parameter missing from checkpoint: " + name);
    }
    if (it->second.first != param.shape()) {
      return Status::InvalidArgument(
          "shape mismatch for " + name + ": model " +
          ShapeToString(param.shape()) + " vs checkpoint " +
          ShapeToString(it->second.first));
    }
    std::copy(it->second.second.begin(), it->second.second.end(),
              param.mutable_value().data());
  }
  return Status::OK();
}

}  // namespace msd
