// High-level experiment drivers mirroring the paper's five protocols. Bench
// binaries and examples assemble models + data and call these.
#ifndef MSDMIXER_TASKS_EXPERIMENTS_H_
#define MSDMIXER_TASKS_EXPERIMENTS_H_

#include <vector>

#include "data/scaler.h"
#include "datagen/classification_gen.h"
#include "datagen/m4like.h"
#include "tasks/evaluate.h"

namespace msd {

// ---- Long-term forecasting (Table IV protocol) ------------------------------
struct ForecastExperimentConfig {
  int64_t lookback = 96;
  int64_t horizon = 96;
  SplitSpec split{0.7, 0.1};
  // Window strides let CPU benches subsample the dense sliding window.
  int64_t train_stride = 1;
  int64_t eval_stride = 1;
  TrainerConfig trainer;
};

// Splits chronologically, standardizes with train statistics, trains on the
// train span, and reports scaled-space MSE/MAE on the test span (the
// Time-Series-Library convention the paper follows).
// Every driver optionally returns the trainer's TrainStats (timings,
// telemetry) through `train_stats` so benches can report wall-clock cost
// without hand-rolled timers.
RegressionScores RunForecastExperiment(TaskModel& model,
                                       const Tensor& raw_series,
                                       const ForecastExperimentConfig& config,
                                       TrainStats* train_stats = nullptr);

// ---- Imputation (Table VII protocol) ------------------------------------------
struct ImputationExperimentConfig {
  int64_t window = 96;
  double missing_ratio = 0.25;
  // Train on masked-position MSE (the TSLib convention) vs full
  // reconstruction MSE; exposed for the adaptation ablation bench.
  bool masked_loss = true;
  SplitSpec split{0.7, 0.1};
  int64_t train_stride = 1;
  int64_t eval_stride = 1;
  uint64_t mask_seed = 42;
  TrainerConfig trainer;
};

// Trains on randomly-masked windows of the train span (input = masked,
// target = clean); reports MSE/MAE at masked positions of the test span.
RegressionScores RunImputationExperiment(
    TaskModel& model, const Tensor& raw_series,
    const ImputationExperimentConfig& config,
    TrainStats* train_stats = nullptr);

// ---- Short-term forecasting (Table VI protocol) ----------------------------------
struct ShortTermExperimentConfig {
  // Input window; the M4 pipelines of the baselines use 2 * horizon.
  int64_t lookback_multiple = 2;
  TrainerConfig trainer;
};

// Trains a univariate forecaster over all series of an M4-like subset and
// scores SMAPE/MASE/OWA against the subset's futures. The model consumes
// [B, 1, lookback] and emits [B, 1, horizon].
M4Scores RunShortTermExperiment(TaskModel& model,
                                const std::vector<UnivariateSeries>& series,
                                const M4SubsetSpec& spec,
                                const ShortTermExperimentConfig& config,
                                TrainStats* train_stats = nullptr);

// Lookback used by RunShortTermExperiment for a given subset.
int64_t ShortTermLookback(const M4SubsetSpec& spec,
                          const ShortTermExperimentConfig& config);

// ---- Anomaly detection (Table IX protocol) -----------------------------------------
struct AnomalyExperimentConfig {
  int64_t window = 100;
  // Stride of training windows (0 = window/4; overlapping windows multiply
  // the training set; scoring always uses non-overlapping windows).
  int64_t train_stride = 0;
  // Quantile used for the detection threshold. <= 0 derives it from the
  // labeled anomaly rate of the test split.
  double anomaly_ratio = 0.0;
  TrainerConfig trainer;
};

AnomalyEvalResult RunAnomalyExperiment(TaskModel& model, const Tensor& train,
                                       const Tensor& test,
                                       const std::vector<int>& labels,
                                       const AnomalyExperimentConfig& config,
                                       TrainStats* train_stats = nullptr);

// ---- Classification (Table XI protocol) ----------------------------------------------
struct ClassificationExperimentConfig {
  TrainerConfig trainer;
};

double RunClassificationExperiment(
    TaskModel& model, const ClassificationData& data,
    const ClassificationExperimentConfig& config,
    TrainStats* train_stats = nullptr);

// Builds the (input [C, L], label [1]) sample set for a classification split.
std::vector<Sample> MakeClassificationSamples(
    const std::vector<Tensor>& xs, const std::vector<int64_t>& ys);

}  // namespace msd

#endif  // MSDMIXER_TASKS_EXPERIMENTS_H_
