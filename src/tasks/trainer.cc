#include "tasks/trainer.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>

#include "nn/loss.h"
#include "optim/optimizer.h"

namespace msd {

float TrainStats::best_val_loss() const {
  float best = std::numeric_limits<float>::infinity();
  for (float v : val_losses) best = std::min(best, v);
  return best;
}

namespace {

// Gradient-free mean task loss over a dataset.
float EvaluateLoss(TaskModel& model, const Dataset& data,
                   const TrainerConfig& config,
                   const std::function<Variable(const Variable&, const Batch&)>&
                       task_loss) {
  NoGradGuard guard;
  model.module().SetTraining(false);
  Rng rng(1);
  DataLoader loader(&data, config.batch_size, /*shuffle=*/false, rng);
  double total = 0.0;
  for (int64_t b = 0; b < loader.NumBatches(); ++b) {
    Batch batch = loader.GetBatch(b);
    TaskModel::Output out = model.Forward(Variable(batch.input));
    total += task_loss(out.prediction, batch).item();
  }
  model.module().SetTraining(true);
  return static_cast<float>(total / std::max<int64_t>(1, loader.NumBatches()));
}

}  // namespace

TrainStats Train(TaskModel& model, const Dataset& train_data,
                 const TrainerConfig& config,
                 const std::function<Variable(const Variable&, const Batch&)>&
                     task_loss,
                 const Dataset* validation) {
  MSD_CHECK_GT(config.epochs, 0);
  if (config.early_stop_patience > 0) {
    MSD_CHECK(validation != nullptr)
        << "early stopping requires a validation dataset";
  }
  Rng rng(config.seed);
  DataLoader loader(&train_data, config.batch_size, /*shuffle=*/true, rng);
  Adam opt(model.module().Parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
           config.weight_decay, /*decoupled=*/true);
  CosineLr schedule(&opt, config.epochs);

  model.module().SetTraining(true);
  TrainStats stats;
  float best_val = std::numeric_limits<float>::infinity();
  int64_t epochs_without_improvement = 0;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.cosine_lr) schedule.SetEpoch(epoch);
    int64_t batches = loader.NumBatches();
    if (config.max_batches_per_epoch > 0) {
      batches = std::min(batches, config.max_batches_per_epoch);
    }
    double epoch_loss = 0.0;
    for (int64_t b = 0; b < batches; ++b) {
      Batch batch = loader.GetBatch(b);
      opt.ZeroGrad();
      TaskModel::Output out = model.Forward(Variable(batch.input));
      Variable loss = task_loss(out.prediction, batch);
      if (out.aux_loss.defined()) loss = Add(loss, out.aux_loss);
      loss.Backward();
      if (config.grad_clip > 0.0f) {
        ClipGradNorm(opt.params(), config.grad_clip);
      }
      opt.Step();
      epoch_loss += loss.item();
    }
    loader.Reshuffle();
    stats.epoch_losses.push_back(
        static_cast<float>(epoch_loss / static_cast<double>(batches)));
    if (validation != nullptr) {
      const float val = EvaluateLoss(model, *validation, config, task_loss);
      stats.val_losses.push_back(val);
      if (val < best_val - 1e-7f) {
        best_val = val;
        epochs_without_improvement = 0;
      } else {
        ++epochs_without_improvement;
      }
    }
    if (config.verbose) {
      std::fprintf(stderr, "  epoch %2lld/%lld  loss %.5f%s\n",
                   static_cast<long long>(epoch + 1),
                   static_cast<long long>(config.epochs),
                   stats.epoch_losses.back(),
                   stats.val_losses.empty()
                       ? ""
                       : ("  val " + std::to_string(stats.val_losses.back()))
                             .c_str());
    }
    if (config.early_stop_patience > 0 &&
        epochs_without_improvement >= config.early_stop_patience) {
      stats.early_stopped = true;
      break;
    }
  }
  model.module().SetTraining(false);
  return stats;
}

Variable ForecastMseTaskLoss(const Variable& prediction, const Batch& batch) {
  return MseLoss(prediction, Variable(batch.target));
}

Variable ReconstructionMseTaskLoss(const Variable& prediction,
                                   const Batch& batch) {
  return MseLoss(prediction, Variable(batch.target));
}

Variable ImputationTaskLoss(const Variable& prediction, const Batch& batch) {
  Tensor missing = Tensor::Uninitialized(batch.input.shape());
  const float* in = batch.input.data();
  float* m = missing.data();
  bool any = false;
  for (int64_t i = 0; i < missing.numel(); ++i) {
    m[i] = in[i] == 0.0f ? 1.0f : 0.0f;
    any = any || m[i] == 1.0f;
  }
  if (!any) return ReconstructionMseTaskLoss(prediction, batch);
  return MaskedMseLoss(prediction, Variable(batch.target), missing);
}

Variable ClassificationTaskLoss(const Variable& prediction,
                                const Batch& batch) {
  Tensor labels = batch.target;
  if (labels.rank() == 2) {
    labels = labels.Reshape({labels.dim(0)});
  }
  return CrossEntropyLoss(prediction, labels);
}

}  // namespace msd
