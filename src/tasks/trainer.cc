#include "tasks/trainer.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>

#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "optim/optimizer.h"
#include "runtime/parallel.h"
#include "tensor/pool.h"

namespace msd {

float TrainStats::best_val_loss() const {
  float best = std::numeric_limits<float>::infinity();
  for (float v : val_losses) best = std::min(best, v);
  return best;
}

float TrainStats::mean_grad_norm() const {
  if (grad_norms.empty()) return 0.0f;
  double total = 0.0;
  for (float g : grad_norms) total += g;
  return static_cast<float>(total / static_cast<double>(grad_norms.size()));
}

namespace {

// Registry-published instruments (kRegistry sink). Looked up once.
struct TrainInstruments {
  obs::Counter& epochs;
  obs::Counter& batches;
  obs::Counter& early_stops;
  obs::Gauge& last_loss;
  obs::Gauge& grad_norm;
  obs::Gauge& lr;

  static TrainInstruments& Get() {
    auto& registry = obs::MetricsRegistry::Global();
    static TrainInstruments instruments{
        registry.GetCounter("train/epochs"),
        registry.GetCounter("train/batches"),
        registry.GetCounter("train/early_stops"),
        registry.GetGauge("train/last_loss"),
        registry.GetGauge("train/grad_norm"),
        registry.GetGauge("train/lr")};
    return instruments;
  }
};

// The per-epoch progress line TrainerConfig::verbose prints; fed from the
// telemetry recorded this epoch so stderr and TrainStats always agree.
void EmitEpochLine(const TrainStats& stats, int64_t epoch,
                   int64_t total_epochs, float lr, float grad_norm) {
  std::string line;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  epoch %2lld/%lld  loss %.5f",
                static_cast<long long>(epoch + 1),
                static_cast<long long>(total_epochs),
                stats.epoch_losses.back());
  line += buf;
  if (!stats.val_losses.empty() &&
      stats.val_losses.size() == stats.epoch_losses.size()) {
    std::snprintf(buf, sizeof(buf), "  val %.5f", stats.val_losses.back());
    line += buf;
  }
  if (grad_norm > 0.0f) {
    std::snprintf(buf, sizeof(buf), "  |g| %.3f", grad_norm);
    line += buf;
  }
  std::snprintf(buf, sizeof(buf), "  lr %.2e  %.2fs", lr,
                stats.epoch_seconds.back());
  line += buf;
  std::fprintf(stderr, "%s\n", line.c_str());
}

// Gradient-free mean task loss over a dataset.
float EvaluateLoss(TaskModel& model, const Dataset& data,
                   const TrainerConfig& config,
                   const std::function<Variable(const Variable&, const Batch&)>&
                       task_loss) {
  NoGradGuard guard;
  model.module().SetTraining(false);
  Rng rng(1);
  DataLoader loader(&data, config.batch_size, /*shuffle=*/false, rng);
  double total = 0.0;
  for (int64_t b = 0; b < loader.NumBatches(); ++b) {
    Batch batch = loader.GetBatch(b);
    TaskModel::Output out = model.Forward(Variable(batch.input));
    total += task_loss(out.prediction, batch).item();
  }
  model.module().SetTraining(true);
  return static_cast<float>(total / std::max<int64_t>(1, loader.NumBatches()));
}

}  // namespace

TrainStats Train(TaskModel& model, const Dataset& train_data,
                 const TrainerConfig& config,
                 const std::function<Variable(const Variable&, const Batch&)>&
                     task_loss,
                 const Dataset* validation) {
  MSD_CHECK_GT(config.epochs, 0);
  runtime::ScopedThreads scoped_threads(config.threads);
  // Keep the tensor pool's cache alive across every step of every epoch:
  // after the first epoch warms the size classes, steady-state steps recycle
  // buffers instead of hitting the system allocator. Trimmed when the
  // outermost scope (this one, unless the caller opened a wider one) exits.
  pool::MemoryScope memory_scope;
  if (config.early_stop_patience > 0) {
    MSD_CHECK(validation != nullptr)
        << "early stopping requires a validation dataset";
  }
  Rng rng(config.seed);
  DataLoader loader(&train_data, config.batch_size, /*shuffle=*/true, rng);
  Adam opt(model.module().Parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
           config.weight_decay, /*decoupled=*/true);
  CosineLr schedule(&opt, config.epochs);

  const bool record_stats = config.telemetry != TelemetrySink::kNone;
  const bool publish = config.telemetry == TelemetrySink::kRegistry;

  model.module().SetTraining(true);
  TrainStats stats;
  float best_val = std::numeric_limits<float>::infinity();
  int64_t epochs_without_improvement = 0;
  const int64_t train_start_ns = obs::MonotonicNowNs();
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    MSD_SPAN("train/epoch");
    const int64_t epoch_start_ns = obs::MonotonicNowNs();
    if (config.cosine_lr) schedule.SetEpoch(epoch);
    if (record_stats) stats.epoch_lrs.push_back(opt.lr());
    int64_t batches = loader.NumBatches();
    if (config.max_batches_per_epoch > 0) {
      batches = std::min(batches, config.max_batches_per_epoch);
    }
    double epoch_loss = 0.0;
    float last_grad_norm = 0.0f;
    for (int64_t b = 0; b < batches; ++b) {
      Batch batch = loader.GetBatch(b);
      opt.ZeroGrad();
      TaskModel::Output out;
      Variable loss;
      {
        MSD_SPAN("train/forward");
        out = model.Forward(Variable(batch.input));
        loss = task_loss(out.prediction, batch);
        if (out.aux_loss.defined()) loss = Add(loss, out.aux_loss);
      }
      {
        MSD_SPAN("train/backward");
        loss.Backward();
      }
      float grad_norm = 0.0f;
      if (config.grad_clip > 0.0f) {
        grad_norm = ClipGradNorm(opt.params(), config.grad_clip);
      } else if (record_stats) {
        grad_norm = GlobalGradNorm(opt.params());
      }
      {
        MSD_SPAN("train/optimizer_step");
        opt.Step();
      }
      const float batch_loss = loss.item();
      epoch_loss += batch_loss;
      last_grad_norm = grad_norm;
      if (record_stats) {
        stats.batch_losses.push_back(batch_loss);
        stats.grad_norms.push_back(grad_norm);
      }
      if (publish) {
        TrainInstruments& t = TrainInstruments::Get();
        t.batches.Add(1);
        t.last_loss.Set(batch_loss);
        t.grad_norm.Set(grad_norm);
      }
    }
    loader.Reshuffle();
    stats.epoch_losses.push_back(
        static_cast<float>(epoch_loss / static_cast<double>(batches)));
    if (validation != nullptr) {
      MSD_SPAN("train/validate");
      const float val = EvaluateLoss(model, *validation, config, task_loss);
      stats.val_losses.push_back(val);
      if (val < best_val - 1e-7f) {
        best_val = val;
        epochs_without_improvement = 0;
      } else {
        ++epochs_without_improvement;
      }
    }
    stats.epoch_seconds.push_back(
        static_cast<double>(obs::MonotonicNowNs() - epoch_start_ns) / 1e9);
    if (publish) {
      TrainInstruments& t = TrainInstruments::Get();
      t.epochs.Add(1);
      t.lr.Set(opt.lr());
    }
    if (config.verbose) {
      EmitEpochLine(stats, epoch, config.epochs, opt.lr(), last_grad_norm);
    }
    if (config.early_stop_patience > 0 &&
        epochs_without_improvement >= config.early_stop_patience) {
      stats.early_stopped = true;
      stats.early_stop_epoch = epoch;
      if (publish) TrainInstruments::Get().early_stops.Add(1);
      if (config.verbose) {
        std::fprintf(stderr,
                     "  early stop after epoch %lld (no val improvement in "
                     "%lld epochs; best val %.5f)\n",
                     static_cast<long long>(epoch + 1),
                     static_cast<long long>(config.early_stop_patience),
                     best_val);
      }
      break;
    }
  }
  stats.total_wall_seconds =
      static_cast<double>(obs::MonotonicNowNs() - train_start_ns) / 1e9;
  model.module().SetTraining(false);
  return stats;
}

Variable ForecastMseTaskLoss(const Variable& prediction, const Batch& batch) {
  return MseLoss(prediction, Variable(batch.target));
}

Variable ReconstructionMseTaskLoss(const Variable& prediction,
                                   const Batch& batch) {
  return MseLoss(prediction, Variable(batch.target));
}

Variable ImputationTaskLoss(const Variable& prediction, const Batch& batch) {
  Tensor missing = Tensor::Uninitialized(batch.input.shape());
  const float* in = batch.input.data();
  float* m = missing.data();
  bool any = false;
  for (int64_t i = 0; i < missing.numel(); ++i) {
    m[i] = in[i] == 0.0f ? 1.0f : 0.0f;
    any = any || m[i] == 1.0f;
  }
  if (!any) return ReconstructionMseTaskLoss(prediction, batch);
  return MaskedMseLoss(prediction, Variable(batch.target), missing);
}

Variable ClassificationTaskLoss(const Variable& prediction,
                                const Batch& batch) {
  Tensor labels = batch.target;
  if (labels.rank() == 2) {
    labels = labels.Reshape({labels.dim(0)});
  }
  return CrossEntropyLoss(prediction, labels);
}

}  // namespace msd
