// Evaluation loops (gradient-free) for the five tasks.
#ifndef MSDMIXER_TASKS_EVALUATE_H_
#define MSDMIXER_TASKS_EVALUATE_H_

#include <vector>

#include "data/window_dataset.h"
#include "metrics/metrics.h"
#include "tasks/task_model.h"
#include "tasks/trainer.h"

namespace msd {

struct RegressionScores {
  double mse = 0.0;
  double mae = 0.0;
};

// Mean MSE/MAE of model predictions over every sample in `test`.
RegressionScores EvaluateForecast(TaskModel& model, const Dataset& test,
                                  int64_t batch_size = 32);

// Masked-position MSE/MAE for imputation: predictions are scored only where
// the dataset's observation mask is 0 (the missing points).
RegressionScores EvaluateImputation(TaskModel& model,
                                    const ImputationWindowDataset& test,
                                    int64_t batch_size = 32);

// Top-1 accuracy for classification; model outputs [B, M] logits.
double EvaluateClassificationAccuracy(TaskModel& model, const Dataset& test,
                                      int64_t batch_size = 32);

struct AnomalyEvalResult {
  DetectionScores scores;
  float threshold = 0.0f;
};

// Reconstruction-based detection protocol (paper §IV-E): per-time-step score
// = mean squared reconstruction error across channels, threshold at the
// (1 - anomaly_ratio) quantile of train+test scores, point-adjusted F1.
// `model` must already be trained on the (normal) training windows.
AnomalyEvalResult EvaluateAnomalyDetection(TaskModel& model,
                                           const Tensor& train_series,
                                           const Tensor& test_series,
                                           const std::vector<int>& labels,
                                           int64_t window,
                                           double anomaly_ratio);

// Per-time-step reconstruction error scores over consecutive windows of a
// [C, T] series (last partial window dropped).
std::vector<float> ReconstructionScores(TaskModel& model, const Tensor& series,
                                        int64_t window);

}  // namespace msd

#endif  // MSDMIXER_TASKS_EVALUATE_H_
