#include "tasks/evaluate.h"

#include "tensor/tensor_ops.h"

namespace msd {

RegressionScores EvaluateForecast(TaskModel& model, const Dataset& test,
                                  int64_t batch_size) {
  NoGradGuard guard;
  model.module().SetTraining(false);
  Rng rng(1);
  DataLoader loader(&test, batch_size, /*shuffle=*/false, rng);
  double sse = 0.0;
  double sae = 0.0;
  int64_t count = 0;
  for (int64_t b = 0; b < loader.NumBatches(); ++b) {
    Batch batch = loader.GetBatch(b);
    Tensor pred = model.Forward(Variable(batch.input)).prediction.value();
    MSD_CHECK(pred.shape() == batch.target.shape());
    const int64_t n = pred.numel();
    sse += MseMetric(pred, batch.target) * static_cast<double>(n);
    sae += MaeMetric(pred, batch.target) * static_cast<double>(n);
    count += n;
  }
  MSD_CHECK_GT(count, 0);
  return {sse / static_cast<double>(count), sae / static_cast<double>(count)};
}

RegressionScores EvaluateImputation(TaskModel& model,
                                    const ImputationWindowDataset& test,
                                    int64_t batch_size) {
  NoGradGuard guard;
  model.module().SetTraining(false);
  double sse = 0.0;
  double sae = 0.0;
  int64_t count = 0;
  // Ordered traversal so sample indices map directly to masks.
  for (int64_t start = 0; start < test.Size(); start += batch_size) {
    const int64_t end = std::min<int64_t>(start + batch_size, test.Size());
    std::vector<Tensor> inputs;
    std::vector<Tensor> targets;
    std::vector<Tensor> missing_masks;
    for (int64_t i = start; i < end; ++i) {
      Sample s = test.Get(i);
      inputs.push_back(std::move(s.input));
      targets.push_back(std::move(s.target));
      // MaskFor returns the observation mask (1 = observed); invert it.
      Tensor observed = test.MaskFor(i);
      missing_masks.push_back(
          Sub(Tensor::Ones(observed.shape()), observed));
    }
    Tensor pred =
        model.Forward(Variable(Stack(inputs))).prediction.value();
    Tensor target = Stack(targets);
    Tensor missing = Stack(missing_masks);
    const float* p = pred.data();
    const float* t = target.data();
    const float* m = missing.data();
    for (int64_t i = 0; i < pred.numel(); ++i) {
      if (m[i] == 0.0f) continue;
      const double d = static_cast<double>(p[i]) - t[i];
      sse += d * d;
      sae += std::fabs(d);
      ++count;
    }
  }
  MSD_CHECK_GT(count, 0) << "no masked positions to score";
  return {sse / static_cast<double>(count), sae / static_cast<double>(count)};
}

double EvaluateClassificationAccuracy(TaskModel& model, const Dataset& test,
                                      int64_t batch_size) {
  NoGradGuard guard;
  model.module().SetTraining(false);
  Rng rng(1);
  DataLoader loader(&test, batch_size, /*shuffle=*/false, rng);
  std::vector<int64_t> predictions;
  std::vector<int64_t> labels;
  for (int64_t b = 0; b < loader.NumBatches(); ++b) {
    Batch batch = loader.GetBatch(b);
    Tensor logits = model.Forward(Variable(batch.input)).prediction.value();
    Tensor arg = ArgMax(logits, 1);
    Tensor target = batch.target.rank() == 2
                        ? batch.target.Reshape({batch.target.dim(0)})
                        : batch.target;
    for (int64_t i = 0; i < arg.numel(); ++i) {
      predictions.push_back(static_cast<int64_t>(arg.data()[i]));
      labels.push_back(static_cast<int64_t>(target.data()[i]));
    }
  }
  return Accuracy(predictions, labels);
}

std::vector<float> ReconstructionScores(TaskModel& model, const Tensor& series,
                                        int64_t window) {
  NoGradGuard guard;
  model.module().SetTraining(false);
  MSD_CHECK_EQ(series.rank(), 2);
  const int64_t channels = series.dim(0);
  const int64_t num_windows = series.dim(1) / window;
  MSD_CHECK_GT(num_windows, 0);
  std::vector<float> scores;
  scores.reserve(static_cast<size_t>(num_windows * window));
  constexpr int64_t kBatch = 16;
  for (int64_t w0 = 0; w0 < num_windows; w0 += kBatch) {
    const int64_t w1 = std::min(w0 + kBatch, num_windows);
    std::vector<Tensor> windows;
    for (int64_t w = w0; w < w1; ++w) {
      windows.push_back(Slice(series, 1, w * window, window));
    }
    Tensor x = Stack(windows);  // [b, C, W]
    Tensor recon = model.Forward(Variable(x)).prediction.value();
    Tensor err = Mean(Square(Sub(recon, x)), {1}, /*keepdim=*/false);  // [b, W]
    const float* e = err.data();
    for (int64_t i = 0; i < err.numel(); ++i) scores.push_back(e[i]);
    (void)channels;
  }
  return scores;
}

AnomalyEvalResult EvaluateAnomalyDetection(TaskModel& model,
                                           const Tensor& train_series,
                                           const Tensor& test_series,
                                           const std::vector<int>& labels,
                                           int64_t window,
                                           double anomaly_ratio) {
  std::vector<float> train_scores =
      ReconstructionScores(model, train_series, window);
  std::vector<float> test_scores =
      ReconstructionScores(model, test_series, window);

  std::vector<float> combined = train_scores;
  combined.insert(combined.end(), test_scores.begin(), test_scores.end());
  const float threshold = ThresholdForRatio(combined, anomaly_ratio);

  // Scores cover only full windows; truncate labels to match.
  MSD_CHECK_LE(test_scores.size(), labels.size());
  std::vector<int> truth(labels.begin(),
                         labels.begin() + static_cast<int64_t>(test_scores.size()));
  std::vector<int> predicted(test_scores.size(), 0);
  for (size_t i = 0; i < test_scores.size(); ++i) {
    predicted[i] = test_scores[i] > threshold ? 1 : 0;
  }
  std::vector<int> adjusted = PointAdjust(predicted, truth);
  return {PrecisionRecallF1(adjusted, truth), threshold};
}

}  // namespace msd
