// Uniform adapter over trainable models so one trainer serves both the
// MSD-Mixer (whose forward also yields the decomposition residual for the
// Residual Loss, Eq. 7) and plain baselines.
#ifndef MSDMIXER_TASKS_TASK_MODEL_H_
#define MSDMIXER_TASKS_TASK_MODEL_H_

#include "core/msd_mixer.h"
#include "core/residual_loss.h"
#include "nn/module.h"

namespace msd {

class TaskModel {
 public:
  virtual ~TaskModel() = default;

  struct Output {
    Variable prediction;
    // Weighted auxiliary loss term (undefined Variable when absent).
    Variable aux_loss;
  };

  virtual Output Forward(const Variable& input) = 0;
  virtual Module& module() = 0;
};

// Wraps any unary Module (DLinear, LightTS, NBeats, MlpAutoencoder, ...).
class ModuleTaskModel : public TaskModel {
 public:
  explicit ModuleTaskModel(Module* module) : module_(module) {
    MSD_CHECK(module != nullptr);
  }

  Output Forward(const Variable& input) override {
    return {module_->Forward(input), Variable()};
  }
  Module& module() override { return *module_; }

 private:
  Module* module_;
};

// Wraps MsdMixer, attaching lambda * ResidualLoss(Z_k) as the aux loss
// (paper Eq. 7). lambda = 0 reproduces the MSD-Mixer-L ablation.
class MsdMixerTaskModel : public TaskModel {
 public:
  MsdMixerTaskModel(MsdMixer* mixer, float lambda,
                    ResidualLossOptions residual_options = {})
      : mixer_(mixer), lambda_(lambda), residual_options_(residual_options) {
    MSD_CHECK(mixer != nullptr);
  }

  Output Forward(const Variable& input) override {
    MsdMixerOutput out = mixer_->Run(input);
    Variable aux;
    if (lambda_ > 0.0f) {
      aux = MulScalar(ResidualLoss(out.residual, residual_options_), lambda_);
    }
    return {out.prediction, aux};
  }
  Module& module() override { return *mixer_; }

 private:
  MsdMixer* mixer_;
  float lambda_;
  ResidualLossOptions residual_options_;
};

}  // namespace msd

#endif  // MSDMIXER_TASKS_TASK_MODEL_H_
