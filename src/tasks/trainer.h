// Generic training loop shared by all five tasks: AdamW + gradient clipping
// + cosine LR decay over mini-batches from a DataLoader, with an optional
// per-model auxiliary loss (the Residual Loss for MSD-Mixer).
#ifndef MSDMIXER_TASKS_TRAINER_H_
#define MSDMIXER_TASKS_TRAINER_H_

#include <functional>
#include <vector>

#include "data/dataset.h"
#include "tasks/task_model.h"

namespace msd {

struct TrainerConfig {
  int64_t epochs = 5;
  int64_t batch_size = 16;
  float lr = 1e-3f;
  float weight_decay = 0.0f;
  float grad_clip = 5.0f;  // <= 0 disables
  bool cosine_lr = true;
  // Cap on batches per epoch (0 = all); lets benches bound CPU time while
  // still seeing fresh windows every epoch via reshuffling.
  int64_t max_batches_per_epoch = 0;
  // Early stopping: stop after this many epochs without validation-loss
  // improvement (0 disables; requires validation data to be passed).
  int64_t early_stop_patience = 0;
  uint64_t seed = 7;
  bool verbose = false;
};

struct TrainStats {
  std::vector<float> epoch_losses;
  std::vector<float> val_losses;  // one per epoch when validation provided
  bool early_stopped = false;
  float final_loss() const {
    return epoch_losses.empty() ? 0.0f : epoch_losses.back();
  }
  float best_val_loss() const;
};

// task_loss maps (prediction, batch) -> scalar Variable. The trainer adds the
// model's aux loss (if any), backpropagates, clips, and steps. When
// `validation` is non-null, the task loss is also evaluated (gradient-free)
// on it after every epoch, enabling early stopping via
// TrainerConfig::early_stop_patience.
TrainStats Train(TaskModel& model, const Dataset& train_data,
                 const TrainerConfig& config,
                 const std::function<Variable(const Variable&, const Batch&)>&
                     task_loss,
                 const Dataset* validation = nullptr);

// Convenience task losses.
Variable ForecastMseTaskLoss(const Variable& prediction, const Batch& batch);
Variable ReconstructionMseTaskLoss(const Variable& prediction,
                                   const Batch& batch);
// Imputation: MSE at the masked positions only (the Time-Series-Library
// convention). Missing points are identified as exact zeros of the masked
// input — valid because the imputation datasets zero missing entries and
// real standardized values are almost surely nonzero. Falls back to the
// full reconstruction loss if a batch happens to have no masked point.
Variable ImputationTaskLoss(const Variable& prediction, const Batch& batch);
// batch.target holds float class indices of shape [B] or [B, 1].
Variable ClassificationTaskLoss(const Variable& prediction, const Batch& batch);

}  // namespace msd

#endif  // MSDMIXER_TASKS_TRAINER_H_
