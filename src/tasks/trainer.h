// Generic training loop shared by all five tasks: AdamW + gradient clipping
// + cosine LR decay over mini-batches from a DataLoader, with an optional
// per-model auxiliary loss (the Residual Loss for MSD-Mixer).
#ifndef MSDMIXER_TASKS_TRAINER_H_
#define MSDMIXER_TASKS_TRAINER_H_

#include <functional>
#include <vector>

#include "data/dataset.h"
#include "tasks/task_model.h"

namespace msd {

// How much telemetry the trainer records. All levels are purely
// observational: they never touch the RNG streams or the update math, so
// training results are bit-identical across sinks (guarded by a test).
enum class TelemetrySink {
  // Per-epoch losses and wall-clock timings only (always cheap).
  kNone,
  // + per-batch losses, pre-clip gradient norms, and per-epoch effective LR
  //   recorded into TrainStats.
  kStats,
  // kStats + published to the process-wide obs::MetricsRegistry
  //   (train/epochs, train/batches, train/last_loss, train/grad_norm,
  //   train/lr, train/early_stops) for --metrics-out style exports.
  kRegistry,
};

struct TrainerConfig {
  int64_t epochs = 5;
  int64_t batch_size = 16;
  float lr = 1e-3f;
  float weight_decay = 0.0f;
  float grad_clip = 5.0f;  // <= 0 disables
  bool cosine_lr = true;
  // Cap on batches per epoch (0 = all); lets benches bound CPU time while
  // still seeing fresh windows every epoch via reshuffling.
  int64_t max_batches_per_epoch = 0;
  // Early stopping: stop after this many epochs without validation-loss
  // improvement (0 disables; requires validation data to be passed).
  int64_t early_stop_patience = 0;
  uint64_t seed = 7;
  // Pool size for the whole run (0 = inherit MSD_THREADS / the ambient
  // runtime setting). Purely a wall-clock knob: training results are
  // bit-identical for every value (docs/RUNTIME.md).
  int64_t threads = 0;
  // Prints a per-epoch progress line (loss, val loss, grad norm, LR, epoch
  // seconds) to stderr, fed from the same telemetry the sink records.
  bool verbose = false;
  TelemetrySink telemetry = TelemetrySink::kNone;
};

struct TrainStats {
  std::vector<float> epoch_losses;
  std::vector<float> val_losses;  // one per epoch when validation provided

  // Wall-clock timings (always recorded; one clock read per epoch).
  std::vector<double> epoch_seconds;
  double total_wall_seconds = 0.0;

  // Recorded when TrainerConfig::telemetry >= kStats.
  std::vector<float> batch_losses;  // every optimizer step, in order
  std::vector<float> grad_norms;    // pre-clip global L2 norm per step
  std::vector<float> epoch_lrs;     // effective LR at the start of each epoch

  bool early_stopped = false;
  // Epoch index (0-based) after which early stopping fired; -1 otherwise.
  int64_t early_stop_epoch = -1;

  float final_loss() const {
    return epoch_losses.empty() ? 0.0f : epoch_losses.back();
  }
  float best_val_loss() const;
  float mean_grad_norm() const;  // 0 when grad norms were not recorded
};

// task_loss maps (prediction, batch) -> scalar Variable. The trainer adds the
// model's aux loss (if any), backpropagates, clips, and steps. When
// `validation` is non-null, the task loss is also evaluated (gradient-free)
// on it after every epoch, enabling early stopping via
// TrainerConfig::early_stop_patience.
TrainStats Train(TaskModel& model, const Dataset& train_data,
                 const TrainerConfig& config,
                 const std::function<Variable(const Variable&, const Batch&)>&
                     task_loss,
                 const Dataset* validation = nullptr);

// Convenience task losses.
Variable ForecastMseTaskLoss(const Variable& prediction, const Batch& batch);
Variable ReconstructionMseTaskLoss(const Variable& prediction,
                                   const Batch& batch);
// Imputation: MSE at the masked positions only (the Time-Series-Library
// convention). Missing points are identified as exact zeros of the masked
// input — valid because the imputation datasets zero missing entries and
// real standardized values are almost surely nonzero. Falls back to the
// full reconstruction loss if a batch happens to have no masked point.
Variable ImputationTaskLoss(const Variable& prediction, const Batch& batch);
// batch.target holds float class indices of shape [B] or [B, 1].
Variable ClassificationTaskLoss(const Variable& prediction, const Batch& batch);

}  // namespace msd

#endif  // MSDMIXER_TASKS_TRAINER_H_
