#include "tasks/pipeline.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "data/window_dataset.h"
#include "metrics/metrics.h"
#include "nn/serialize.h"
#include "tensor/tensor_ops.h"

namespace msd {

namespace {

std::vector<int64_t> DeriveLadder(const Tensor& series, int64_t lookback) {
  Tensor probe = series.dim(1) > 4 * lookback
                     ? Slice(series, 1, series.dim(1) - 4 * lookback,
                             4 * lookback)
                     : series;
  const int64_t period = std::min<int64_t>(DominantPeriod(probe, 0), lookback);
  std::vector<int64_t> ladder;
  for (int64_t p : {period, period / 2, period / 4, int64_t{2}, int64_t{1}}) {
    p = std::min(p, lookback);
    if (p >= 1 && (ladder.empty() || p < ladder.back())) ladder.push_back(p);
  }
  return ladder;
}

}  // namespace

Status SaveForecastMeta(const std::string& checkpoint_path,
                        const std::vector<int64_t>& patch_sizes,
                        const StandardScaler& scaler) {
  if (patch_sizes.empty()) {
    return Status::InvalidArgument("empty patch ladder");
  }
  if (!scaler.fitted()) {
    return Status::InvalidArgument("scaler not fitted");
  }
  std::ofstream meta(checkpoint_path + ".meta");
  if (!meta.is_open()) {
    return Status::InvalidArgument("cannot write: " + checkpoint_path +
                                   ".meta");
  }
  // max_digits10 for float: scaler statistics survive the text round-trip
  // exactly.
  meta << std::setprecision(9);
  for (size_t i = 0; i < patch_sizes.size(); ++i) {
    meta << (i > 0 ? " " : "") << patch_sizes[i];
  }
  meta << "\n";
  const int64_t channels = scaler.mean().dim(0);
  for (int64_t c = 0; c < channels; ++c) {
    meta << (c > 0 ? " " : "") << scaler.mean().at({c, 0});
  }
  meta << "\n";
  for (int64_t c = 0; c < channels; ++c) {
    meta << (c > 0 ? " " : "") << scaler.std().at({c, 0});
  }
  meta << "\n";
  return meta.good() ? Status::OK() : Status::Internal("meta write failed");
}

StatusOr<ForecastMeta> LoadForecastMeta(const std::string& checkpoint_path) {
  const std::string meta_path = checkpoint_path + ".meta";
  std::ifstream meta(meta_path);
  if (!meta.is_open()) return Status::NotFound("missing: " + meta_path);
  std::string ladder_line;
  std::string mean_line;
  std::string std_line;
  if (!std::getline(meta, ladder_line) || !std::getline(meta, mean_line) ||
      !std::getline(meta, std_line)) {
    return Status::InvalidArgument("truncated meta: " + meta_path);
  }
  auto parse = [](const std::string& line) {
    std::vector<double> values;
    std::istringstream ss(line);
    double v;
    while (ss >> v) values.push_back(v);
    return values;
  };
  const auto ladder = parse(ladder_line);
  const auto means = parse(mean_line);
  const auto stds = parse(std_line);
  if (ladder.empty() || means.empty() || means.size() != stds.size()) {
    return Status::InvalidArgument("malformed meta: " + meta_path);
  }
  ForecastMeta result;
  for (double p : ladder) {
    const int64_t size = static_cast<int64_t>(p);
    if (size < 1) {
      return Status::InvalidArgument("malformed patch ladder: " + meta_path);
    }
    result.patch_sizes.push_back(size);
  }
  // StandardScaler only exposes Fit(); reconstruct exact statistics by
  // fitting on two points per channel at mean +- std.
  const int64_t channels = static_cast<int64_t>(means.size());
  Tensor synthetic({channels, 2});
  for (int64_t c = 0; c < channels; ++c) {
    const float m = static_cast<float>(means[static_cast<size_t>(c)]);
    const float s = static_cast<float>(stds[static_cast<size_t>(c)]);
    synthetic.set({c, 0}, m - s);
    synthetic.set({c, 1}, m + s);
  }
  result.scaler.Fit(synthetic);
  return result;
}

ForecastPipeline::ForecastPipeline(const ForecastPipelineConfig& config,
                                   uint64_t seed)
    : config_(config), seed_(seed) {
  MSD_CHECK_GT(config.lookback, 0);
  MSD_CHECK_GT(config.horizon, 0);
}

TrainStats ForecastPipeline::Fit(const Tensor& series) {
  MSD_CHECK_EQ(series.rank(), 2) << "Fit expects [C, T]";
  const int64_t channels = series.dim(0);
  const int64_t total = series.dim(1);
  MSD_CHECK_GE(total, 2 * (config_.lookback + config_.horizon))
      << "series too short for the configured lookback/horizon";

  if (config_.patch_sizes.empty()) {
    config_.patch_sizes = DeriveLadder(series, config_.lookback);
  }

  scaler_.Fit(series);
  Tensor scaled = scaler_.Transform(series);

  MsdMixerConfig mc;
  mc.input_length = config_.lookback;
  mc.channels = channels;
  mc.patch_sizes = config_.patch_sizes;
  mc.model_dim = config_.model_dim;
  mc.hidden_dim = config_.hidden_dim;
  mc.task = TaskType::kForecast;
  mc.horizon = config_.horizon;
  mc.use_instance_norm = config_.use_instance_norm;
  Rng rng(seed_);
  mixer_ = std::make_unique<MsdMixer>(mc, rng);

  ResidualLossOptions ro;
  ro.max_lag = std::min<int64_t>(24, config_.lookback - 1);
  MsdMixerTaskModel task_model(mixer_.get(), config_.residual_loss_weight, ro);

  const bool use_validation = config_.trainer.early_stop_patience > 0;
  TrainStats stats;
  if (use_validation) {
    const int64_t val_len = std::max<int64_t>(
        config_.lookback + config_.horizon + 1,
        static_cast<int64_t>(total * config_.validation_fraction));
    const int64_t train_len = total - val_len;
    MSD_CHECK_GT(train_len, config_.lookback + config_.horizon)
        << "not enough data left for training after the validation split";
    ForecastWindowDataset train(Slice(scaled, 1, 0, train_len),
                                config_.lookback, config_.horizon);
    ForecastWindowDataset val(Slice(scaled, 1, train_len, val_len),
                              config_.lookback, config_.horizon);
    stats = Train(task_model, train, config_.trainer, ForecastMseTaskLoss,
                  &val);
  } else {
    ForecastWindowDataset train(scaled, config_.lookback, config_.horizon);
    stats = Train(task_model, train, config_.trainer, ForecastMseTaskLoss);
  }
  fitted_ = true;
  return stats;
}

Tensor ForecastPipeline::Predict(const Tensor& history) const {
  MSD_CHECK(fitted_) << "call Fit() or Load() first";
  MSD_CHECK_EQ(history.rank(), 2);
  MSD_CHECK_GE(history.dim(1), config_.lookback);
  const int64_t channels = history.dim(0);
  Tensor scaled = scaler_.Transform(history);
  Tensor window = Slice(scaled, 1, scaled.dim(1) - config_.lookback,
                        config_.lookback);
  NoGradGuard guard;
  mixer_->SetTraining(false);
  Tensor forecast =
      mixer_->Run(Variable(window.Reshape({1, channels, config_.lookback})))
          .prediction.value()
          .Reshape({channels, config_.horizon});
  return scaler_.InverseTransform(forecast);
}

Tensor ForecastPipeline::PredictRolling(const Tensor& history,
                                        int64_t total_steps) const {
  MSD_CHECK_GT(total_steps, 0);
  Tensor extended = history;
  Tensor produced;
  while (!produced.defined() || produced.dim(1) < total_steps) {
    Tensor next = Predict(extended);
    extended = Concat({extended, next}, 1);
    produced = produced.defined() ? Concat({produced, next}, 1) : next;
  }
  return Slice(produced, 1, 0, total_steps);
}

Status ForecastPipeline::Save(const std::string& path) const {
  if (!fitted_) return Status::InvalidArgument("pipeline not fitted");
  Status model_status = SaveCheckpoint(*mixer_, path);
  if (!model_status.ok()) return model_status;
  return SaveForecastMeta(path, config_.patch_sizes, scaler_);
}

Status ForecastPipeline::Load(const std::string& path) {
  StatusOr<ForecastMeta> meta = LoadForecastMeta(path);
  if (!meta.ok()) return meta.status();
  config_.patch_sizes = meta.value().patch_sizes;
  scaler_ = meta.value().scaler;
  const int64_t channels = scaler_.mean().dim(0);

  MsdMixerConfig mc;
  mc.input_length = config_.lookback;
  mc.channels = channels;
  mc.patch_sizes = config_.patch_sizes;
  mc.model_dim = config_.model_dim;
  mc.hidden_dim = config_.hidden_dim;
  mc.task = TaskType::kForecast;
  mc.horizon = config_.horizon;
  mc.use_instance_norm = config_.use_instance_norm;
  Rng rng(seed_);
  mixer_ = std::make_unique<MsdMixer>(mc, rng);
  Status model_status = LoadCheckpoint(*mixer_, path);
  if (!model_status.ok()) return model_status;
  fitted_ = true;
  return Status::OK();
}

}  // namespace msd
