// High-level fit/predict pipeline: the one-stop API a downstream user
// reaches for. Bundles scaling, window construction, MSD-Mixer
// configuration, training (with optional validation-based early stopping),
// rolling prediction, and checkpoint persistence over raw [C, T] series.
#ifndef MSDMIXER_TASKS_PIPELINE_H_
#define MSDMIXER_TASKS_PIPELINE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/msd_mixer.h"
#include "data/scaler.h"
#include "tasks/trainer.h"

namespace msd {

// Sidecar metadata stored next to a forecast checkpoint (`<path>.meta`):
// the derived patch ladder plus the fitted scaler statistics. Shared by
// ForecastPipeline::Save/Load and the serving layer (serve/session.h), so a
// checkpoint trained here can be frozen into an InferenceSession without
// re-deriving either.
struct ForecastMeta {
  std::vector<int64_t> patch_sizes;
  StandardScaler scaler;
};

// Writes `<checkpoint_path>.meta`. The scaler must be fitted.
Status SaveForecastMeta(const std::string& checkpoint_path,
                        const std::vector<int64_t>& patch_sizes,
                        const StandardScaler& scaler);

// Reads `<checkpoint_path>.meta`. The returned scaler reproduces the saved
// statistics exactly (bit-identical Transform/InverseTransform).
StatusOr<ForecastMeta> LoadForecastMeta(const std::string& checkpoint_path);

struct ForecastPipelineConfig {
  int64_t lookback = 96;
  int64_t horizon = 24;
  // Patch sizes; empty = derive a ladder from the series' dominant period.
  std::vector<int64_t> patch_sizes;
  int64_t model_dim = 16;
  int64_t hidden_dim = 32;
  float residual_loss_weight = 0.5f;
  bool use_instance_norm = true;
  // Fraction of the series (from the end) held out for validation when
  // early stopping is enabled.
  double validation_fraction = 0.1;
  TrainerConfig trainer;
};

class ForecastPipeline {
 public:
  explicit ForecastPipeline(const ForecastPipelineConfig& config,
                            uint64_t seed = 1);

  // Fits scaler + model on `series` [C, T]. Uses the last
  // validation_fraction of the span for early stopping when
  // trainer.early_stop_patience > 0. Returns training statistics.
  TrainStats Fit(const Tensor& series);

  // Forecasts `horizon` steps following the *end* of `history` [C, T]
  // (T >= lookback), in the original (unscaled) units.
  Tensor Predict(const Tensor& history) const;

  // Rolls Predict() forward `steps` times, feeding forecasts back in, to
  // produce an arbitrarily long continuation.
  Tensor PredictRolling(const Tensor& history, int64_t total_steps) const;

  // Persists / restores model weights (the config must match at load time;
  // the scaler statistics are stored alongside as parameters).
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

  bool fitted() const { return fitted_; }
  const MsdMixer& model() const { return *mixer_; }

 private:
  ForecastPipelineConfig config_;
  uint64_t seed_;
  std::unique_ptr<MsdMixer> mixer_;
  StandardScaler scaler_;
  bool fitted_ = false;
};

}  // namespace msd

#endif  // MSDMIXER_TASKS_PIPELINE_H_
