#include "tasks/experiments.h"

#include <algorithm>
#include <utility>

#include "runtime/parallel.h"
#include "tensor/tensor_ops.h"

namespace msd {

RegressionScores RunForecastExperiment(TaskModel& model,
                                       const Tensor& raw_series,
                                       const ForecastExperimentConfig& config,
                                       TrainStats* train_stats) {
  // Every driver honours TrainerConfig::threads for its whole scope so the
  // evaluation phase runs on the same pool size as training.
  runtime::ScopedThreads scoped_threads(config.trainer.threads);
  SeriesSplits splits = SplitSeries(raw_series, config.split);
  StandardScaler scaler;
  scaler.Fit(splits.train);
  Tensor train = scaler.Transform(splits.train);
  Tensor test = scaler.Transform(splits.test);

  ForecastWindowDataset train_data(train, config.lookback, config.horizon,
                                   config.train_stride);
  ForecastWindowDataset test_data(test, config.lookback, config.horizon,
                                  config.eval_stride);
  TrainStats stats = Train(model, train_data, config.trainer,
                           ForecastMseTaskLoss);
  if (train_stats != nullptr) *train_stats = std::move(stats);
  return EvaluateForecast(model, test_data);
}

RegressionScores RunImputationExperiment(
    TaskModel& model, const Tensor& raw_series,
    const ImputationExperimentConfig& config, TrainStats* train_stats) {
  runtime::ScopedThreads scoped_threads(config.trainer.threads);
  SeriesSplits splits = SplitSeries(raw_series, config.split);
  StandardScaler scaler;
  scaler.Fit(splits.train);
  Tensor train = scaler.Transform(splits.train);
  Tensor test = scaler.Transform(splits.test);

  ImputationWindowDataset train_data(train, config.window,
                                     config.missing_ratio, config.mask_seed,
                                     config.train_stride);
  ImputationWindowDataset test_data(test, config.window, config.missing_ratio,
                                    config.mask_seed ^ 0x1234567ULL,
                                    config.eval_stride);
  TrainStats stats =
      Train(model, train_data, config.trainer,
            config.masked_loss ? ImputationTaskLoss
                               : ReconstructionMseTaskLoss);
  if (train_stats != nullptr) *train_stats = std::move(stats);
  return EvaluateImputation(model, test_data);
}

int64_t ShortTermLookback(const M4SubsetSpec& spec,
                          const ShortTermExperimentConfig& config) {
  const int64_t wanted = spec.horizon * config.lookback_multiple;
  return std::min<int64_t>(wanted, spec.history_length - spec.horizon);
}

M4Scores RunShortTermExperiment(TaskModel& model,
                                const std::vector<UnivariateSeries>& series,
                                const M4SubsetSpec& spec,
                                const ShortTermExperimentConfig& config,
                                TrainStats* train_stats) {
  MSD_CHECK(!series.empty());
  runtime::ScopedThreads scoped_threads(config.trainer.threads);
  const int64_t lookback = ShortTermLookback(spec, config);
  MSD_CHECK_GT(lookback, 0);

  // Training windows: slide (lookback + horizon) over each history. Inputs
  // are mean-scaled per window (M4 series live on very different levels).
  auto window_scale = [](const float* data, int64_t n) {
    double mean = 0.0;
    for (int64_t i = 0; i < n; ++i) mean += data[i];
    mean /= static_cast<double>(n);
    return static_cast<float>(std::max(std::fabs(mean), 1e-3));
  };

  std::vector<Sample> train_samples;
  for (const UnivariateSeries& s : series) {
    const int64_t history = static_cast<int64_t>(s.history.size());
    const int64_t usable = history - lookback - spec.horizon;
    const int64_t stride = std::max<int64_t>(1, usable / 4);
    for (int64_t start = 0; start <= usable; start += stride) {
      const float scale = window_scale(s.history.data() + start, lookback);
      Tensor x({1, lookback});
      Tensor y({1, spec.horizon});
      for (int64_t t = 0; t < lookback; ++t) {
        x.set({0, t}, s.history[static_cast<size_t>(start + t)] / scale);
      }
      for (int64_t t = 0; t < spec.horizon; ++t) {
        y.set({0, t},
              s.history[static_cast<size_t>(start + lookback + t)] / scale);
      }
      train_samples.push_back({std::move(x), std::move(y)});
    }
  }
  VectorDataset train_data(std::move(train_samples));
  TrainStats stats = Train(model, train_data, config.trainer,
                           ForecastMseTaskLoss);
  if (train_stats != nullptr) *train_stats = std::move(stats);

  // Forecast each series from the end of its history.
  NoGradGuard guard;
  model.module().SetTraining(false);
  std::vector<std::vector<float>> forecasts;
  std::vector<std::vector<float>> actuals;
  std::vector<std::vector<float>> histories;
  for (const UnivariateSeries& s : series) {
    const int64_t history = static_cast<int64_t>(s.history.size());
    const float scale = window_scale(s.history.data() + history - lookback,
                                     lookback);
    Tensor x({1, 1, lookback});
    for (int64_t t = 0; t < lookback; ++t) {
      x.set({0, 0, t},
            s.history[static_cast<size_t>(history - lookback + t)] / scale);
    }
    Tensor pred = model.Forward(Variable(x)).prediction.value();
    std::vector<float> forecast(static_cast<size_t>(spec.horizon));
    for (int64_t t = 0; t < spec.horizon; ++t) {
      forecast[static_cast<size_t>(t)] = pred.at({0, 0, t}) * scale;
    }
    forecasts.push_back(std::move(forecast));
    actuals.push_back(s.future);
    histories.push_back(s.history);
  }
  return EvaluateM4(forecasts, actuals, histories, spec.period);
}

AnomalyEvalResult RunAnomalyExperiment(TaskModel& model, const Tensor& train,
                                       const Tensor& test,
                                       const std::vector<int>& labels,
                                       const AnomalyExperimentConfig& config,
                                       TrainStats* train_stats) {
  runtime::ScopedThreads scoped_threads(config.trainer.threads);
  StandardScaler scaler;
  scaler.Fit(train);
  Tensor train_scaled = scaler.Transform(train);
  Tensor test_scaled = scaler.Transform(test);

  const int64_t train_stride = config.train_stride > 0
                                   ? config.train_stride
                                   : std::max<int64_t>(1, config.window / 4);
  ReconstructionWindowDataset train_data(train_scaled, config.window,
                                         train_stride);
  TrainStats stats = Train(model, train_data, config.trainer,
                           ReconstructionMseTaskLoss);
  if (train_stats != nullptr) *train_stats = std::move(stats);

  double ratio = config.anomaly_ratio;
  if (ratio <= 0.0) {
    int64_t anomalous = 0;
    for (int v : labels) anomalous += v;
    ratio = std::max(
        0.005, 0.5 * static_cast<double>(anomalous) /
                   static_cast<double>(std::max<size_t>(1, labels.size())));
  }
  return EvaluateAnomalyDetection(model, train_scaled, test_scaled, labels,
                                  config.window, ratio);
}

std::vector<Sample> MakeClassificationSamples(
    const std::vector<Tensor>& xs, const std::vector<int64_t>& ys) {
  MSD_CHECK_EQ(xs.size(), ys.size());
  std::vector<Sample> samples;
  samples.reserve(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    samples.push_back(
        {xs[i], Tensor::Full({1}, static_cast<float>(ys[i]))});
  }
  return samples;
}

double RunClassificationExperiment(
    TaskModel& model, const ClassificationData& data,
    const ClassificationExperimentConfig& config, TrainStats* train_stats) {
  runtime::ScopedThreads scoped_threads(config.trainer.threads);
  VectorDataset train_data(MakeClassificationSamples(data.train_x,
                                                     data.train_y));
  VectorDataset test_data(MakeClassificationSamples(data.test_x, data.test_y));
  TrainStats stats = Train(model, train_data, config.trainer,
                           ClassificationTaskLoss);
  if (train_stats != nullptr) *train_stats = std::move(stats);
  return EvaluateClassificationAccuracy(model, test_data);
}

}  // namespace msd
