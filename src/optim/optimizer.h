// First-order optimizers over lists of parameter Variables, plus gradient
// clipping and learning-rate schedules.
#ifndef MSDMIXER_OPTIM_OPTIMIZER_H_
#define MSDMIXER_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace msd {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params, float lr);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update using the gradients currently stored on parameters.
  // Parameters without a gradient are skipped.
  virtual void Step() = 0;

  // Clears parameter gradients; call between steps.
  void ZeroGrad();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

  const std::vector<Variable>& params() const { return params_; }

 protected:
  std::vector<Variable> params_;
  float lr_;
};

// Plain SGD with optional classical momentum and L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);
  void Step() override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

// Adam (Kingma & Ba). With decoupled_weight_decay=true this is AdamW.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f,
       bool decoupled_weight_decay = true);
  void Step() override;

 private:
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  bool decoupled_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

// Global L2 norm over all parameter gradients (parameters without a gradient
// are skipped). Used for telemetry and by ClipGradNorm.
float GlobalGradNorm(const std::vector<Variable>& params);

// Scales gradients in place so their global L2 norm is at most `max_norm`.
// Returns the pre-clip norm.
float ClipGradNorm(const std::vector<Variable>& params, float max_norm);

// Multiplicative decay: lr <- lr0 * gamma^epoch.
class ExponentialLr {
 public:
  ExponentialLr(Optimizer* opt, float gamma)
      : opt_(opt), gamma_(gamma), base_lr_(opt->lr()) {}

  void SetEpoch(int64_t epoch);

 private:
  Optimizer* opt_;
  float gamma_;
  float base_lr_;
};

// Cosine annealing from the base LR to `min_lr` over `total_epochs`.
class CosineLr {
 public:
  CosineLr(Optimizer* opt, int64_t total_epochs, float min_lr = 0.0f)
      : opt_(opt),
        total_epochs_(total_epochs),
        min_lr_(min_lr),
        base_lr_(opt->lr()) {}

  void SetEpoch(int64_t epoch);

 private:
  Optimizer* opt_;
  int64_t total_epochs_;
  float min_lr_;
  float base_lr_;
};

}  // namespace msd

#endif  // MSDMIXER_OPTIM_OPTIMIZER_H_
