#include "optim/optimizer.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace msd {

Optimizer::Optimizer(std::vector<Variable> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  MSD_CHECK_GT(lr, 0.0f);
  for (const Variable& p : params_) {
    MSD_CHECK(p.defined());
    MSD_CHECK(p.requires_grad()) << "optimizer given a non-trainable Variable";
  }
}

void Optimizer::ZeroGrad() {
  for (Variable& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Variable> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params), lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.resize(params_.size());
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) continue;
    const float* g = p.grad().data();
    float* w = p.mutable_value().data();
    const int64_t n = p.numel();
    if (momentum_ > 0.0f) {
      if (!velocity_[i].defined()) velocity_[i] = Tensor(p.shape());
      float* v = velocity_[i].data();
      for (int64_t j = 0; j < n; ++j) {
        const float grad = g[j] + weight_decay_ * w[j];
        v[j] = momentum_ * v[j] + grad;
        w[j] -= lr_ * v[j];
      }
    } else {
      for (int64_t j = 0; j < n; ++j) {
        const float grad = g[j] + weight_decay_ * w[j];
        w[j] -= lr_ * grad;
      }
    }
  }
}

Adam::Adam(std::vector<Variable> params, float lr, float beta1, float beta2,
           float eps, float weight_decay, bool decoupled_weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay),
      decoupled_(decoupled_weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::Step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) continue;
    if (!m_[i].defined()) {
      m_[i] = Tensor(p.shape());
      v_[i] = Tensor(p.shape());
    }
    const float* g = p.grad().data();
    float* w = p.mutable_value().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      float grad = g[j];
      if (weight_decay_ > 0.0f && !decoupled_) grad += weight_decay_ * w[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad * grad;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      float update = m_hat / (std::sqrt(v_hat) + eps_);
      if (weight_decay_ > 0.0f && decoupled_) update += weight_decay_ * w[j];
      w[j] -= lr_ * update;
    }
  }
}

float GlobalGradNorm(const std::vector<Variable>& params) {
  double total_sq = 0.0;
  for (const Variable& p : params) {
    if (!p.has_grad()) continue;
    const float* g = p.grad().data();
    for (int64_t j = 0; j < p.numel(); ++j) {
      total_sq += static_cast<double>(g[j]) * g[j];
    }
  }
  return static_cast<float>(std::sqrt(total_sq));
}

float ClipGradNorm(const std::vector<Variable>& params, float max_norm) {
  MSD_CHECK_GT(max_norm, 0.0f);
  const float norm = GlobalGradNorm(params);
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (const Variable& p : params) {
      if (!p.has_grad()) continue;
      Variable mutable_param = p;  // Variables alias their node
      float* g = mutable_param.mutable_grad().data();
      for (int64_t j = 0; j < p.numel(); ++j) g[j] *= scale;
    }
  }
  return norm;
}

void ExponentialLr::SetEpoch(int64_t epoch) {
  opt_->set_lr(base_lr_ * std::pow(gamma_, static_cast<float>(epoch)));
}

void CosineLr::SetEpoch(int64_t epoch) {
  MSD_CHECK_GT(total_epochs_, 0);
  const float progress =
      std::min(1.0f, static_cast<float>(epoch) /
                         static_cast<float>(total_epochs_));
  const float cosine = 0.5f * (1.0f + std::cos(M_PI * progress));
  opt_->set_lr(min_lr_ + (base_lr_ - min_lr_) * cosine);
}

}  // namespace msd
