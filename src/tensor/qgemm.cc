#include "tensor/qgemm.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "runtime/parallel.h"
#include "tensor/kernels.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace msd {
namespace qgemm {

namespace {

// Geometry. Row tiles of kMc rows are the parallel unit (same as the fp32
// kernel); within a tile the register micro-kernel covers kQr rows x kNr
// columns. k is padded to quads (kKq) so one 64-bit broadcast feeds four
// ascending-k steps through two vpmaddwd. There is no kKc spill loop: the
// int32 accumulators are exact, so a tile accumulates its entire k extent in
// registers and never round-trips partial sums through C.
constexpr int64_t kQr = 4;
constexpr int64_t kNr = 8;
constexpr int64_t kMc = 64;
constexpr int64_t kKq = 4;

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

int64_t KQuads(int64_t k) { return std::max<int64_t>(CeilDiv(k, kKq), 1); }

// Round-to-nearest-even int8 quantization of one value against `inv_scale`
// (127 / absmax). nearbyintf under the ambient FE_TONEAREST mode rounds
// exactly like the AVX2 path's cvtps2dq, and clamping at the float stage
// commutes with rounding because the bounds are integers.
int32_t QuantValue(float v, float inv_scale) {
  const float r = std::nearbyintf(v * inv_scale);
  const float clamped = std::min(127.0f, std::max(-127.0f, r));
  return static_cast<int32_t>(clamped);
}

}  // namespace

int64_t PackedQuantBInt8s(int64_t k, int64_t n) {
  return CeilDiv(n, kNr) * kNr * KQuads(k) * kKq;
}

int64_t QuantBScaleFloats(int64_t n) { return CeilDiv(n, kNr) * kNr; }

int64_t QuantARowInt16s(int64_t k) { return KQuads(k) * kKq; }

void QuantizeWeightsPerChannel(const float* b, int64_t k, int64_t n,
                               int8_t* packed, float* scales) {
  MSD_CHECK_GE(k, 0);
  MSD_CHECK_GE(n, 1);
  MSD_CHECK_LE(k, kMaxK);
  const int64_t n_panels = CeilDiv(n, kNr);
  const int64_t k_quads = KQuads(k);
  // Per-column absmax -> scale. Padding columns get scale 0 (their packed
  // values are 0, and the dequant epilogue never stores past n anyway).
  for (int64_t j = 0; j < n_panels * kNr; ++j) scales[j] = 0.0f;
  for (int64_t j = 0; j < n; ++j) {
    float absmax = 0.0f;
    for (int64_t kk = 0; kk < k; ++kk) {
      absmax = std::max(absmax, std::fabs(b[kk * n + j]));
    }
    scales[j] = absmax / 127.0f;
  }
  // Panel jp holds columns [jp*kNr, jp*kNr + kNr) with k grouped in quads:
  // quad q stores, per column, the four values k = 4q..4q+3 contiguously
  // (bytes [0, 16) cover columns j0..j0+3, bytes [16, 32) columns
  // j0+4..j0+7) — after sign extension each 16-byte half is exactly one
  // vpmaddwd operand against a broadcast activation quad. Zero-padded past
  // n and past k.
  for (int64_t jp = 0; jp < n_panels; ++jp) {
    int8_t* dst = packed + jp * k_quads * kKq * kNr;
    const int64_t j0 = jp * kNr;
    for (int64_t q = 0; q < k_quads; ++q) {
      for (int64_t jj = 0; jj < kNr; ++jj) {
        for (int64_t t = 0; t < kKq; ++t) {
          const int64_t kk = kKq * q + t;
          const int64_t j = j0 + jj;
          int32_t qv = 0;
          if (kk < k && j < n && scales[j] > 0.0f) {
            qv = QuantValue(b[kk * n + j], 1.0f / scales[j]);
          }
          dst[q * kKq * kNr + jj * kKq + t] = static_cast<int8_t>(qv);
        }
      }
    }
  }
}

// msd-hot-path: per-request activation quantization on the planned path.
void QuantizeActivationsPerRow(const float* a, int64_t m, int64_t k,
                               int16_t* a_q, float* a_scales) {
  const int64_t stride = QuantARowInt16s(k);
  runtime::ParallelFor(0, m, kernel::GrainForWork(k), [&](int64_t rb,
                                                          int64_t re) {
    for (int64_t i = rb; i < re; ++i) {
      const float* src = a + i * k;
      int16_t* dst = a_q + i * stride;
      float absmax = 0.0f;
      int64_t kk = 0;
#if defined(__AVX2__)
      if (k >= 8) {
        const __m256 sign_mask = _mm256_set1_ps(-0.0f);
        __m256 vmax = _mm256_setzero_ps();
        for (; kk + 8 <= k; kk += 8) {
          vmax = _mm256_max_ps(
              vmax, _mm256_andnot_ps(sign_mask, _mm256_loadu_ps(src + kk)));
        }
        // In-register horizontal max (max is associative/commutative over
        // absolute values, so this equals the scalar fold).
        __m128 mx = _mm_max_ps(_mm256_castps256_ps128(vmax),
                               _mm256_extractf128_ps(vmax, 1));
        mx = _mm_max_ps(mx, _mm_movehl_ps(mx, mx));
        mx = _mm_max_ss(mx, _mm_shuffle_ps(mx, mx, 1));
        absmax = _mm_cvtss_f32(mx);
      }
#endif
      for (; kk < k; ++kk) absmax = std::max(absmax, std::fabs(src[kk]));
      a_scales[i] = absmax / 127.0f;
      if (absmax > 0.0f) {
        const float inv = 127.0f / absmax;
        kk = 0;
#if defined(__AVX2__)
        {
          const __m256 vinv = _mm256_set1_ps(inv);
          const __m256 vhi = _mm256_set1_ps(127.0f);
          const __m256 vlo = _mm256_set1_ps(-127.0f);
          for (; kk + 16 <= k; kk += 16) {
            __m256 x0 = _mm256_mul_ps(_mm256_loadu_ps(src + kk), vinv);
            __m256 x1 = _mm256_mul_ps(_mm256_loadu_ps(src + kk + 8), vinv);
            x0 = _mm256_max_ps(vlo, _mm256_min_ps(vhi, x0));
            x1 = _mm256_max_ps(vlo, _mm256_min_ps(vhi, x1));
            // cvtps2dq rounds per the ambient MXCSR mode (nearest-even),
            // matching QuantValue's nearbyintf; clamping before the convert
            // commutes with rounding on the integer bounds.
            const __m256i q0 = _mm256_cvtps_epi32(x0);
            const __m256i q1 = _mm256_cvtps_epi32(x1);
            // packs interleaves the two 128-bit lanes; permute restores
            // element order before the contiguous int16 store.
            const __m256i packed = _mm256_permute4x64_epi64(
                _mm256_packs_epi32(q0, q1), _MM_SHUFFLE(3, 1, 2, 0));
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + kk), packed);
          }
          for (; kk + 8 <= k; kk += 8) {
            __m256 x = _mm256_mul_ps(_mm256_loadu_ps(src + kk), vinv);
            x = _mm256_max_ps(vlo, _mm256_min_ps(vhi, x));
            const __m256i q = _mm256_cvtps_epi32(x);
            const __m128i w = _mm_packs_epi32(_mm256_castsi256_si128(q),
                                              _mm256_extracti128_si256(q, 1));
            _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + kk), w);
          }
        }
#endif
        for (; kk < k; ++kk) {
          dst[kk] = static_cast<int16_t>(QuantValue(src[kk], inv));
        }
      } else {
        for (kk = 0; kk < k; ++kk) dst[kk] = 0;
      }
      for (kk = k; kk < stride; ++kk) dst[kk] = 0;
    }
  });
}

namespace {

#if defined(__AVX2__)

// e^z for eight lanes, z <= 0 (clamped to -87 where e^z underflows to 0
// anyway): exp2 range reduction with a degree-6 polynomial on the
// fractional part, relative error ~1e-7.
inline __m256 Exp8NonPos(__m256 z) {
  z = _mm256_max_ps(z, _mm256_set1_ps(-87.0f));
  const __m256 t = _mm256_mul_ps(z, _mm256_set1_ps(1.44269504088896341f));
  const __m256 r =
      _mm256_round_ps(t, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256 f = _mm256_sub_ps(t, r);
  __m256 p = _mm256_set1_ps(1.54035303933816e-4f);
  p = _mm256_add_ps(_mm256_mul_ps(p, f), _mm256_set1_ps(1.33335581464284e-3f));
  p = _mm256_add_ps(_mm256_mul_ps(p, f), _mm256_set1_ps(9.61812910762848e-3f));
  p = _mm256_add_ps(_mm256_mul_ps(p, f), _mm256_set1_ps(5.55041086648216e-2f));
  p = _mm256_add_ps(_mm256_mul_ps(p, f), _mm256_set1_ps(2.40226506959101e-1f));
  p = _mm256_add_ps(_mm256_mul_ps(p, f), _mm256_set1_ps(6.93147180559945e-1f));
  p = _mm256_add_ps(_mm256_mul_ps(p, f), _mm256_set1_ps(1.0f));
  // Scale by 2^r via exponent-field arithmetic; r >= -126 after the clamp.
  const __m256i e = _mm256_slli_epi32(
      _mm256_add_epi32(_mm256_cvtps_epi32(r), _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(p, _mm256_castsi256_ps(e));
}

// Vectorized gelu for the quantized epilogue: the tanh form
// 0.5*x*(1 + tanh(sqrt(2/pi)*(x + 0.044715*x^3))) with tanh evaluated via
// Exp8NonPos on -2|y|. Absolute error vs the exact erf gelu is ~3e-4 — an
// order of magnitude below the int8 quantization noise — where the scalar
// std::erf epilogue costs ~65 cycles per element and would otherwise
// dominate every gelu layer, erasing the int8 win (docs/PERFORMANCE.md).
// Only the quantized path uses it; the fp32 kernels keep the exact formula
// and their fp32 bit-identity contract.
inline __m256 Gelu8(__m256 x) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 x2 = _mm256_mul_ps(x, x);
  // sqrt(2/pi) * (x + 0.044715 x^3) = x * (c0 + c1 * x^2).
  const __m256 inner = _mm256_mul_ps(
      x, _mm256_add_ps(_mm256_set1_ps(0.797884560802865f),
                       _mm256_mul_ps(_mm256_set1_ps(0.0356774081363f), x2)));
  const __m256 ay = _mm256_andnot_ps(sign_mask, inner);
  const __m256 sign = _mm256_and_ps(sign_mask, inner);
  const __m256 t = Exp8NonPos(_mm256_mul_ps(ay, _mm256_set1_ps(-2.0f)));
  // tanh(|y|) = (1 - e^-2|y|) / (1 + e^-2|y|), then restore the sign.
  const __m256 th = _mm256_or_ps(
      _mm256_div_ps(_mm256_sub_ps(one, t), _mm256_add_ps(one, t)), sign);
  return _mm256_mul_ps(_mm256_mul_ps(_mm256_set1_ps(0.5f), x),
                       _mm256_add_ps(one, th));
}

#endif  // __AVX2__

// Bias + activation for the quantized path. Gelu takes the vectorized
// approximation above (deterministic: one fixed expression per element,
// tail columns go through the same vector code via a padded buffer); every
// other activation shares gemm::EpilogueBiasAct verbatim.
void QuantEpilogue(float* c, int64_t rows, int64_t n, const float* bias,
                   gemm::Activation act) {
#if defined(__AVX2__)
  if (act == gemm::Activation::kGelu) {
    for (int64_t r = 0; r < rows; ++r) {
      float* row = c + r * n;
      int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        __m256 v = _mm256_loadu_ps(row + j);
        if (bias != nullptr) v = _mm256_add_ps(v, _mm256_loadu_ps(bias + j));
        _mm256_storeu_ps(row + j, Gelu8(v));
      }
      if (j < n) {
        float buf[8] = {0.0f};
        float bbuf[8] = {0.0f};
        const int64_t rem = n - j;
        std::memcpy(buf, row + j, rem * sizeof(float));
        if (bias != nullptr) std::memcpy(bbuf, bias + j, rem * sizeof(float));
        __m256 v = _mm256_add_ps(_mm256_loadu_ps(buf), _mm256_loadu_ps(bbuf));
        _mm256_storeu_ps(buf, Gelu8(v));
        std::memcpy(row + j, buf, rem * sizeof(float));
      }
    }
    return;
  }
#endif
  gemm::EpilogueBiasAct(c, nullptr, rows, n, bias, act);
}

// kQr x kNr register micro-kernel over the full k extent: for each quad the
// packed B half-panels sign-extend to two vpmaddwd operands and each row
// contributes one 64-bit broadcast (four int16 activations), so every
// madd covers four ascending-k products of four columns' partial pairs.
// acc_lo holds columns 0..3 as (even, odd) int32 partial pairs, acc_hi
// columns 4..7; hadd + one permute collapse them to column order before the
// dequant multiply. `rows`/`cols` trim the edge stores; edge row pointers
// must alias a valid row (their lanes are computed and discarded).
void QMicroKernel(const int16_t* const* rows_p, const float* row_scales,
                  const int8_t* bp, const float* bs, int64_t k_quads,
                  float* c, int64_t ldc, int64_t rows, int64_t cols) {
#if defined(__AVX2__)
  __m256i acc_lo[kQr];
  __m256i acc_hi[kQr];
  for (int64_t i = 0; i < kQr; ++i) {
    acc_lo[i] = _mm256_setzero_si256();
    acc_hi[i] = _mm256_setzero_si256();
  }
  for (int64_t q = 0; q < k_quads; ++q) {
    const __m256i blo = _mm256_cvtepi8_epi16(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(bp + q * kKq * kNr)));
    const __m256i bhi = _mm256_cvtepi8_epi16(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(bp + q * kKq * kNr + 16)));
    for (int64_t i = 0; i < kQr; ++i) {
      int64_t quad;
      std::memcpy(&quad, rows_p[i] + q * kKq, sizeof(quad));
      const __m256i av = _mm256_set1_epi64x(quad);
#if defined(__AVXVNNI__)
      // VEX-encoded vpdpwssd fuses the madd and the accumulate (exact: the
      // int32 sums are identical to madd + add).
      acc_lo[i] = _mm256_dpwssd_avx_epi32(acc_lo[i], av, blo);
      acc_hi[i] = _mm256_dpwssd_avx_epi32(acc_hi[i], av, bhi);
#else
      acc_lo[i] = _mm256_add_epi32(acc_lo[i], _mm256_madd_epi16(av, blo));
      acc_hi[i] = _mm256_add_epi32(acc_hi[i], _mm256_madd_epi16(av, bhi));
#endif
    }
  }
  const __m256i order = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
  const __m256 bscale = _mm256_loadu_ps(bs);
  for (int64_t i = 0; i < rows; ++i) {
    // hadd lanes: [c0,c1,c4,c5 | c2,c3,c6,c7] -> permute to column order.
    const __m256i sums = _mm256_permutevar8x32_epi32(
        _mm256_hadd_epi32(acc_lo[i], acc_hi[i]), order);
    const __m256 f = _mm256_mul_ps(
        _mm256_mul_ps(_mm256_cvtepi32_ps(sums), _mm256_set1_ps(row_scales[i])),
        bscale);
    if (cols == kNr) {
      _mm256_storeu_ps(c + i * ldc, f);
    } else {
      float buf[kNr];
      _mm256_storeu_ps(buf, f);
      for (int64_t j = 0; j < cols; ++j) c[i * ldc + j] = buf[j];
    }
  }
#else
  // Scalar fallback: identical integer sums (exact, order-free) and the
  // identical dequant expression float(acc) * a_scale * b_scale.
  int32_t acc[kQr][kNr];
  for (int64_t i = 0; i < kQr; ++i) {
    for (int64_t j = 0; j < kNr; ++j) acc[i][j] = 0;
  }
  for (int64_t q = 0; q < k_quads; ++q) {
    const int8_t* bq = bp + q * kKq * kNr;
    for (int64_t i = 0; i < rows; ++i) {
      const int16_t* aq = rows_p[i] + q * kKq;
      for (int64_t j = 0; j < kNr; ++j) {
        const int8_t* col = bq + j * kKq;
        acc[i][j] += static_cast<int32_t>(aq[0]) * col[0] +
                     static_cast<int32_t>(aq[1]) * col[1] +
                     static_cast<int32_t>(aq[2]) * col[2] +
                     static_cast<int32_t>(aq[3]) * col[3];
      }
    }
  }
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      const float f = static_cast<float>(acc[i][j]) * row_scales[i];
      c[i * ldc + j] = f * bs[j];
    }
  }
#endif
}

}  // namespace

// msd-hot-path: innermost quantized serving compute kernel.
void QGemmPrepacked(const int16_t* a_q, const float* a_scales,
                    const int8_t* packed_b, const float* b_scales, float* c,
                    int64_t m, int64_t k, int64_t n, const float* bias,
                    gemm::Activation act) {
  if (m == 0 || n == 0) return;
  MSD_CHECK_LE(k, kMaxK);
  const int64_t stride = QuantARowInt16s(k);
  const int64_t k_quads = KQuads(k);
  const int64_t row_tiles = CeilDiv(m, kMc);
  const int64_t n_panels = CeilDiv(n, kNr);
  // One whole row tile per loop iteration, same contract as the fp32
  // kernel: the chunk partition decides only which thread runs a tile —
  // and integer accumulation is exact anyway.
  runtime::ParallelFor(0, row_tiles, 1, [&](int64_t tb, int64_t te) {
    for (int64_t t = tb; t < te; ++t) {
      const int64_t i0 = t * kMc;
      const int64_t mc = std::min(kMc, m - i0);
      for (int64_t ig = 0; ig < mc; ig += kQr) {
        const int64_t rows = std::min(kQr, mc - ig);
        const int16_t* rows_p[kQr];
        float row_scales[kQr];
        for (int64_t r = 0; r < kQr; ++r) {
          // Edge rows alias row 0 of the group; their lanes are computed
          // into accumulators that are never stored.
          const int64_t idx = i0 + ig + (r < rows ? r : 0);
          rows_p[r] = a_q + idx * stride;
          row_scales[r] = a_scales[idx];
        }
        for (int64_t jp = 0; jp < n_panels; ++jp) {
          const int64_t j0 = jp * kNr;
          QMicroKernel(rows_p, row_scales, packed_b + jp * k_quads * kKq * kNr,
                       b_scales + j0, k_quads, c + (i0 + ig) * n + j0, n, rows,
                       std::min(kNr, n - j0));
        }
      }
      if (bias != nullptr || act != gemm::Activation::kIdentity) {
        QuantEpilogue(c + i0 * n, mc, n, bias, act);
      }
    }
  });
}

}  // namespace qgemm
}  // namespace msd
