#include "tensor/fft.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "runtime/parallel.h"

namespace msd {

// msd-hot-path: period-detection kernel on the forward path.
void Fft(std::vector<std::complex<double>>& data, bool inverse) {
  MSD_SPAN("tensor/fft");
  static obs::Counter& fft_calls =
      obs::MetricsRegistry::Global().GetCounter("tensor/fft_calls");
  fft_calls.Add(1);
  const size_t n = data.size();
  MSD_CHECK_GT(n, 0u);
  MSD_CHECK_EQ(n & (n - 1), 0u) << "FFT size must be a power of two";
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * M_PI / static_cast<double>(len) *
                         (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// msd-hot-path: period-detection kernel on the forward path.
void Rfft(const double* in, size_t n, std::vector<std::complex<double>>& out) {
  MSD_SPAN("tensor/rfft");
  static obs::Counter& rfft_calls =
      obs::MetricsRegistry::Global().GetCounter("tensor/rfft_calls");
  rfft_calls.Add(1);
  MSD_CHECK_GT(n, 0u);
  MSD_CHECK_EQ(n & (n - 1), 0u) << "rfft size must be a power of two";
  if (n == 1) {
    out.assign(1, {in[0], 0.0});
    return;
  }
  // Pack even samples into the real lane and odd samples into the imaginary
  // lane, one half-size complex FFT, then untangle: with Z the packed
  // transform, Fe_k = (Z_k + conj(Z_{m-k})) / 2 is the even-sample spectrum
  // and Fo_k = -i (Z_k - conj(Z_{m-k})) / 2 the odd one, and
  // X_k = Fe_k + e^{-2*pi*i*k/n} Fo_k.
  const size_t m = n / 2;
  std::vector<std::complex<double>> z(m);
  for (size_t j = 0; j < m; ++j) z[j] = {in[2 * j], in[2 * j + 1]};
  Fft(z);
  out.resize(m + 1);
  out[0] = {z[0].real() + z[0].imag(), 0.0};
  out[m] = {z[0].real() - z[0].imag(), 0.0};
  // Incremental twiddle rotation (one sincos total, like the butterfly
  // loop in Fft) instead of a std::polar call per bin, which would cost
  // more than the half-size FFT saves.
  const double angle = -2.0 * M_PI / static_cast<double>(n);
  const std::complex<double> wstep(std::cos(angle), std::sin(angle));
  std::complex<double> w = wstep;
  for (size_t k = 1; k < m; ++k) {
    const std::complex<double> zk = z[k];
    const std::complex<double> zc = std::conj(z[m - k]);
    const std::complex<double> fe = 0.5 * (zk + zc);
    const std::complex<double> fo =
        std::complex<double>(0.0, -0.5) * (zk - zc);
    out[k] = fe + w * fo;
    w *= wstep;
  }
}

namespace {

// Zero-pads `len` real samples to the next power of two and returns the
// rfft amplitude spectrum |X_k|, k = 0..padded/2.
std::vector<double> PaddedAmplitude(const double* x, size_t len) {
  size_t n = 1;
  while (n < len) n <<= 1;
  std::vector<double> padded(n, 0.0);
  std::copy(x, x + len, padded.begin());
  std::vector<std::complex<double>> spectrum;
  Rfft(padded.data(), n, spectrum);
  std::vector<double> amplitude(spectrum.size());
  for (size_t k = 0; k < spectrum.size(); ++k) {
    amplitude[k] = std::abs(spectrum[k]);
  }
  return amplitude;
}

}  // namespace

std::vector<double> AmplitudeSpectrum(const std::vector<float>& values) {
  MSD_CHECK(!values.empty());
  std::vector<double> x(values.begin(), values.end());
  return PaddedAmplitude(x.data(), x.size());
}

std::vector<int64_t> TopPeriodsFft(const Tensor& series, int64_t top_k) {
  MSD_CHECK_EQ(series.rank(), 2) << "expects [C, L]";
  MSD_CHECK_GT(top_k, 0);
  const int64_t channels = series.dim(0);
  const int64_t length = series.dim(1);
  // Average amplitude spectrum over channels (on the padded grid).
  // Per-channel spectra are independent, so the FFT batch loop parallelizes
  // over channels; the sum below merges them serially in channel order so
  // the result is bit-identical for any MSD_THREADS.
  std::vector<std::vector<double>> spectra(static_cast<size_t>(channels));
  runtime::ParallelFor(0, channels, 1, [&](int64_t cb, int64_t ce) {
    for (int64_t c = cb; c < ce; ++c) {
      const float* row = series.data() + c * length;
      // Remove the mean so the DC bin does not dominate bin leakage.
      double mean = 0.0;
      for (int64_t i = 0; i < length; ++i) mean += row[i];
      mean /= static_cast<double>(length);
      std::vector<double> centered(static_cast<size_t>(length));
      for (int64_t i = 0; i < length; ++i) centered[static_cast<size_t>(i)] = row[i] - mean;
      spectra[static_cast<size_t>(c)] =
          PaddedAmplitude(centered.data(), centered.size());
    }
  });
  std::vector<double> mean_amplitude = std::move(spectra[0]);
  for (int64_t c = 1; c < channels; ++c) {
    const auto& amplitude = spectra[static_cast<size_t>(c)];
    for (size_t i = 0; i < amplitude.size(); ++i) {
      mean_amplitude[i] += amplitude[i];
    }
  }
  const size_t padded = (mean_amplitude.size() - 1) * 2;

  // Rank frequency bins (excluding DC) by amplitude.
  std::vector<size_t> bins;
  for (size_t k = 1; k < mean_amplitude.size(); ++k) bins.push_back(k);
  std::sort(bins.begin(), bins.end(), [&](size_t a, size_t b) {
    return mean_amplitude[a] > mean_amplitude[b];
  });

  std::vector<int64_t> periods;
  for (size_t k : bins) {
    if (static_cast<int64_t>(periods.size()) >= top_k) break;
    int64_t period = static_cast<int64_t>(
        std::llround(static_cast<double>(padded) / static_cast<double>(k)));
    period = std::min<int64_t>(std::max<int64_t>(period, 2), length / 2);
    if (std::find(periods.begin(), periods.end(), period) == periods.end()) {
      periods.push_back(period);
    }
  }
  if (periods.empty()) periods.push_back(std::max<int64_t>(2, length / 4));
  return periods;
}

}  // namespace msd
