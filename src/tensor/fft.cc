#include "tensor/fft.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "runtime/parallel.h"

namespace msd {

void Fft(std::vector<std::complex<double>>& data, bool inverse) {
  MSD_SPAN("tensor/fft");
  static obs::Counter& fft_calls =
      obs::MetricsRegistry::Global().GetCounter("tensor/fft_calls");
  fft_calls.Add(1);
  const size_t n = data.size();
  MSD_CHECK_GT(n, 0u);
  MSD_CHECK_EQ(n & (n - 1), 0u) << "FFT size must be a power of two";
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * M_PI / static_cast<double>(len) *
                         (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<double> AmplitudeSpectrum(const std::vector<float>& values) {
  MSD_CHECK(!values.empty());
  size_t n = 1;
  while (n < values.size()) n <<= 1;
  std::vector<std::complex<double>> data(n, {0.0, 0.0});
  for (size_t i = 0; i < values.size(); ++i) data[i] = values[i];
  Fft(data);
  std::vector<double> amplitude(n / 2 + 1);
  for (size_t k = 0; k <= n / 2; ++k) amplitude[k] = std::abs(data[k]);
  return amplitude;
}

std::vector<int64_t> TopPeriodsFft(const Tensor& series, int64_t top_k) {
  MSD_CHECK_EQ(series.rank(), 2) << "expects [C, L]";
  MSD_CHECK_GT(top_k, 0);
  const int64_t channels = series.dim(0);
  const int64_t length = series.dim(1);
  // Average amplitude spectrum over channels (on the padded grid).
  // Per-channel spectra are independent, so the FFT batch loop parallelizes
  // over channels; the sum below merges them serially in channel order so
  // the result is bit-identical for any MSD_THREADS.
  std::vector<std::vector<double>> spectra(static_cast<size_t>(channels));
  runtime::ParallelFor(0, channels, 1, [&](int64_t cb, int64_t ce) {
    for (int64_t c = cb; c < ce; ++c) {
      std::vector<float> row(series.data() + c * length,
                             series.data() + (c + 1) * length);
      // Remove the mean so the DC bin does not dominate bin leakage.
      float mean = 0.0f;
      for (float v : row) mean += v;
      mean /= static_cast<float>(length);
      for (float& v : row) v -= mean;
      spectra[static_cast<size_t>(c)] = AmplitudeSpectrum(row);
    }
  });
  std::vector<double> mean_amplitude = std::move(spectra[0]);
  for (int64_t c = 1; c < channels; ++c) {
    const auto& amplitude = spectra[static_cast<size_t>(c)];
    for (size_t i = 0; i < amplitude.size(); ++i) {
      mean_amplitude[i] += amplitude[i];
    }
  }
  const size_t padded = (mean_amplitude.size() - 1) * 2;

  // Rank frequency bins (excluding DC) by amplitude.
  std::vector<size_t> bins;
  for (size_t k = 1; k < mean_amplitude.size(); ++k) bins.push_back(k);
  std::sort(bins.begin(), bins.end(), [&](size_t a, size_t b) {
    return mean_amplitude[a] > mean_amplitude[b];
  });

  std::vector<int64_t> periods;
  for (size_t k : bins) {
    if (static_cast<int64_t>(periods.size()) >= top_k) break;
    int64_t period = static_cast<int64_t>(
        std::llround(static_cast<double>(padded) / static_cast<double>(k)));
    period = std::min<int64_t>(std::max<int64_t>(period, 2), length / 2);
    if (std::find(periods.begin(), periods.end(), period) == periods.end()) {
      periods.push_back(period);
    }
  }
  if (periods.empty()) periods.push_back(std::max<int64_t>(2, length / 4));
  return periods;
}

}  // namespace msd
