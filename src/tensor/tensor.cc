#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "common/debug.h"
#include "obs/metrics.h"
#include "tensor/optrace.h"
#include "tensor/pool.h"

namespace msd {

namespace {

// Byte/allocation accounting for every buffer-creating path. Two relaxed
// atomic adds; the registry lookups happen once per process.
void NoteAllocation(int64_t numel) {
  static obs::Counter& allocs =
      obs::MetricsRegistry::Global().GetCounter("tensor/allocs");
  static obs::Counter& bytes =
      obs::MetricsRegistry::Global().GetCounter("tensor/alloc_bytes");
  allocs.Add(1);
  bytes.Add(numel * static_cast<int64_t>(sizeof(float)));
}

}  // namespace

int64_t NumElementsOf(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    MSD_CHECK_GE(d, 0) << "negative dimension in shape " << ShapeToString(shape);
    n *= d;
  }
  return n;
}

std::vector<int64_t> RowMajorStrides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size());
  int64_t acc = 1;
  for (int64_t i = static_cast<int64_t>(shape.size()) - 1; i >= 0; --i) {
    strides[i] = acc;
    acc *= shape[i];
  }
  return strides;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), numel_(NumElementsOf(shape_)) {
  // Pool blocks are recycled dirty, so the zero-init contract is an explicit
  // fill (the system allocator gave zeroed pages for free; the pool cannot).
  storage_ = pool::AllocateShared(numel_);
  std::fill(storage_.get(), storage_.get() + numel_, 0.0f);
  NoteAllocation(numel_);
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), numel_(NumElementsOf(shape_)) {
  MSD_CHECK_EQ(numel_, static_cast<int64_t>(values.size()))
      << "value count does not match shape " << ShapeToString(shape_);
  storage_ = pool::AllocateShared(numel_);
  std::copy(values.begin(), values.end(), storage_.get());
  NoteAllocation(numel_);
}

Tensor Tensor::Uninitialized(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = NumElementsOf(t.shape_);
  t.storage_ = pool::AllocateShared(t.numel_);
  NoteAllocation(t.numel_);
  return t;
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) { return Tensor({}, {value}); }

Tensor Tensor::Arange(int64_t n) {
  MSD_CHECK_GE(n, 0);
  std::vector<float> values(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) values[static_cast<size_t>(i)] = static_cast<float>(i);
  return Tensor({n}, std::move(values));
}

Tensor Tensor::RandUniform(Shape shape, float lo, float hi, Rng& rng) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] = rng.Uniform(lo, hi);
  return t;
}

Tensor Tensor::FromExternal(Shape shape, float* data,
                            std::shared_ptr<void> owner) {
  MSD_CHECK(data != nullptr);
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = NumElementsOf(t.shape_);
  // Aliasing constructor: the control block is the owner's, the pointee is
  // the external buffer. No allocation, no pool traffic.
  t.storage_ = std::shared_ptr<float[]>(std::move(owner), data);
  return t;
}

Tensor Tensor::RandNormal(Shape shape, float mean, float stddev, Rng& rng) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] = rng.Gaussian(mean, stddev);
  return t;
}

int64_t Tensor::dim(int64_t axis) const {
  if (axis < 0) axis += rank();
  MSD_CHECK_GE(axis, 0);
  MSD_CHECK_LT(axis, rank());
  return shape_[static_cast<size_t>(axis)];
}

float* Tensor::data() {
  MSD_CHECK(defined());
  return storage_.get();
}

const float* Tensor::data() const {
  MSD_CHECK(defined());
  return storage_.get();
}

float Tensor::at(std::initializer_list<int64_t> index) const {
  MSD_CHECK_EQ(static_cast<int64_t>(index.size()), rank());
  const auto strides = RowMajorStrides(shape_);
  int64_t offset = 0;
  size_t axis = 0;
  for (int64_t i : index) {
    MSD_CHECK_GE(i, 0);
    MSD_CHECK_LT(i, shape_[axis]);
    offset += i * strides[axis];
    ++axis;
  }
  return data()[offset];
}

void Tensor::set(std::initializer_list<int64_t> index, float value) {
  MSD_CHECK_EQ(static_cast<int64_t>(index.size()), rank());
  const auto strides = RowMajorStrides(shape_);
  int64_t offset = 0;
  size_t axis = 0;
  for (int64_t i : index) {
    MSD_CHECK_GE(i, 0);
    MSD_CHECK_LT(i, shape_[axis]);
    offset += i * strides[axis];
    ++axis;
  }
  data()[offset] = value;
}

float Tensor::item() const {
  MSD_CHECK_EQ(numel_, 1) << "item() requires a 1-element tensor, got shape "
                          << ShapeToString(shape_);
  return data()[0];
}

Tensor Tensor::Clone() const {
  MSD_CHECK(defined());
  Tensor out = Uninitialized(shape_);
  std::copy(data(), data() + numel_, out.data());
  if (optrace::Active()) {
    optrace::RecordedOp op;
    op.kind = optrace::OpKind::kCopy;
    op.inputs = {*this};
    op.output = out;
    optrace::Record(std::move(op));
  }
  return out;
}

Tensor Tensor::Reshape(Shape new_shape) const {
  MSD_CHECK(defined());
  int64_t inferred_axis = -1;
  int64_t known = 1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      MSD_CHECK_EQ(inferred_axis, -1) << "at most one -1 dimension allowed";
      inferred_axis = static_cast<int64_t>(i);
    } else {
      MSD_CHECK_GE(new_shape[i], 0);
      known *= new_shape[i];
    }
  }
  if (inferred_axis >= 0) {
    MSD_CHECK_GT(known, 0);
    MSD_CHECK_EQ(numel_ % known, 0)
        << "cannot infer -1 in reshape of " << ShapeToString(shape_) << " to "
        << ShapeToString(new_shape);
    new_shape[static_cast<size_t>(inferred_axis)] = numel_ / known;
  }
  MSD_CHECK_EQ(NumElementsOf(new_shape), numel_)
      << "reshape of " << ShapeToString(shape_) << " to "
      << ShapeToString(new_shape) << " changes element count";
  Tensor out;
  out.storage_ = storage_;
  out.shape_ = std::move(new_shape);
  out.numel_ = numel_;
  return out;
}

void Tensor::CopyFrom(const Tensor& src) {
  MSD_CHECK(defined());
  MSD_CHECK(src.defined());
  MSD_CHECK_EQ(numel_, src.numel());
  // In-place mutation of an existing buffer is invisible to the op trace:
  // a replay would still see the old value. Poison any active capture.
  if (optrace::Active()) optrace::RecordUnsupported("Tensor::CopyFrom");
  // std::copy forbids the destination starting inside the source range;
  // aliasing here means the caller copied a tensor onto (a reshape of)
  // itself, which is a bug even when the copy would be a no-op.
  MSD_DCHECK(!debug::RangesOverlap(
      data(), numel_ * static_cast<int64_t>(sizeof(float)), src.data(),
      numel_ * static_cast<int64_t>(sizeof(float))))
      << "debug check: CopyFrom source aliases destination (shape "
      << ShapeToString(shape_) << ")";
  std::copy(src.data(), src.data() + numel_, data());
}

void Tensor::Fill(float value) {
  MSD_CHECK(defined());
  std::fill(data(), data() + numel_, value);
}

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream out;
  out << "Tensor" << ShapeToString(shape_) << " {";
  const int64_t show = std::min<int64_t>(numel_, 16);
  for (int64_t i = 0; i < show; ++i) {
    if (i > 0) out << ", ";
    out << data()[i];
  }
  if (numel_ > show) out << ", ...";
  out << "}";
  return out.str();
}

}  // namespace msd
