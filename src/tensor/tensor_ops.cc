#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>

#include "common/debug.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "runtime/parallel.h"
#include "tensor/kernels.h"
#include "tensor/optrace.h"

namespace msd {

using kernel::BroadcastStrides;
using kernel::GrainForWork;
using kernel::MapKernel;
using kernel::MapKernelInto;
using kernel::ReduceKernel;
using kernel::ZipKernel;
using kernel::ZipKernelInto;
using kernel::Zip3KernelInto;

namespace {

// Appends one op to an active capture (callers guard with optrace::Active()
// so operand vectors are only materialized while tracing).
void RecordOp(optrace::OpKind kind, std::vector<Tensor> inputs,
              const Tensor& out) {
  optrace::RecordedOp op;
  op.kind = kind;
  op.inputs = std::move(inputs);
  op.output = out;
  optrace::Record(std::move(op));
}

// Resolves and validates reduction dims; returns a sorted, deduped list of
// non-negative axes.
std::vector<int64_t> NormalizeDims(std::vector<int64_t> dims, int64_t rank) {
  for (auto& d : dims) d = NormalizeDim(d, rank);
  std::sort(dims.begin(), dims.end());
  dims.erase(std::unique(dims.begin(), dims.end()), dims.end());
  return dims;
}

// Shape of `a` with the (sorted) reduced axes removed.
Shape SqueezeDims(const Tensor& a, const std::vector<int64_t>& dims) {
  Shape squeezed;
  for (int64_t i = 0; i < a.rank(); ++i) {
    if (!std::binary_search(dims.begin(), dims.end(), i)) {
      squeezed.push_back(a.dim(i));
    }
  }
  return squeezed;
}

// Serial odometer over every element of `a`, calling
// visit(i, out_off, dim_pos): `i` the linear input index, `out_off` the
// offset under `out_strides` (0-stride on reduced axes folds many inputs
// onto one output slot), `dim_pos` the current index along `track_dim`
// (-1 to skip tracking). Shared by the generic Sum / MaxReduce / ArgMax
// paths; stays serial because output slots are written by many iterations.
template <typename V>
void ReduceVisit(const Tensor& a, const std::vector<int64_t>& out_strides,
                 int64_t track_dim, V visit) {
  const int64_t rank = a.rank();
  const Shape& in_shape = a.shape();
  std::vector<int64_t> index(static_cast<size_t>(rank), 0);
  int64_t off = 0;
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    visit(i, off,
          track_dim >= 0 ? index[static_cast<size_t>(track_dim)] : int64_t{0});
    for (int64_t axis = rank - 1; axis >= 0; --axis) {
      const size_t u = static_cast<size_t>(axis);
      ++index[u];
      off += out_strides[u];
      if (index[u] < in_shape[u]) break;
      off -= out_strides[u] * in_shape[u];
      index[u] = 0;
    }
  }
}

}  // namespace

int64_t NormalizeDim(int64_t dim, int64_t rank) {
  if (dim < 0) dim += rank;
  MSD_CHECK_GE(dim, 0) << "axis out of range for rank " << rank;
  MSD_CHECK_LT(dim, rank) << "axis out of range for rank " << rank;
  return dim;
}

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const int64_t rank = std::max<int64_t>(static_cast<int64_t>(a.size()),
                                         static_cast<int64_t>(b.size()));
  Shape out(static_cast<size_t>(rank), 1);
  for (int64_t i = 0; i < rank; ++i) {
    const int64_t ai = static_cast<int64_t>(a.size()) - rank + i;
    const int64_t bi = static_cast<int64_t>(b.size()) - rank + i;
    const int64_t da = ai >= 0 ? a[static_cast<size_t>(ai)] : 1;
    const int64_t db = bi >= 0 ? b[static_cast<size_t>(bi)] : 1;
    if (da == db || db == 1) {
      out[static_cast<size_t>(i)] = da;
    } else if (da == 1) {
      out[static_cast<size_t>(i)] = db;
    } else {
      MSD_FATAL("shapes " << ShapeToString(a) << " and " << ShapeToString(b)
                          << " are not broadcastable");
    }
  }
  return out;
}

Tensor ExpandTo(const Tensor& t, const Shape& target) {
  // Implemented as a broadcast-add with zeros of the target shape.
  if (t.shape() == target) return t;
  return Add(t, Tensor::Zeros(target));
}

Tensor ReduceTo(const Tensor& t, const Shape& target) {
  if (t.shape() == target) return t;
  const int64_t t_rank = t.rank();
  const int64_t target_rank = static_cast<int64_t>(target.size());
  MSD_CHECK_GE(t_rank, target_rank)
      << "cannot reduce " << ShapeToString(t.shape()) << " to "
      << ShapeToString(target);
  std::vector<int64_t> reduce_dims;
  for (int64_t i = 0; i < t_rank; ++i) {
    const int64_t ti = i - (t_rank - target_rank);
    const int64_t target_dim = ti >= 0 ? target[static_cast<size_t>(ti)] : -1;
    if (target_dim != t.dim(i)) {
      MSD_CHECK(target_dim == 1 || target_dim == -1)
          << "cannot reduce " << ShapeToString(t.shape()) << " to "
          << ShapeToString(target);
      reduce_dims.push_back(i);
    }
  }
  Tensor reduced = Sum(t, reduce_dims, /*keepdim=*/true);
  return reduced.Reshape(target);
}

// The per-element lambdas live in one place so the allocating op, its *Into
// twin, and the planner's fused kernels all apply identical arithmetic.
namespace lam {
inline constexpr auto add = [](float x, float y) { return x + y; };
inline constexpr auto sub = [](float x, float y) { return x - y; };
inline constexpr auto mul = [](float x, float y) { return x * y; };
inline constexpr auto div = [](float x, float y) { return x / y; };
}  // namespace lam

// msd-hot-path-safe: plan-executor kernel entry — writes a caller-owned
// arena slot through the same fixed-chunk loop the interpreted path runs;
// no pool traffic, no locks (contract tested by tests/plan_test.cc).
void AddInto(const Tensor& a, const Tensor& b, Tensor& out) {
  ZipKernelInto(a, b, out, lam::add);
}
// msd-hot-path-safe: same contract as AddInto.
void SubInto(const Tensor& a, const Tensor& b, Tensor& out) {
  ZipKernelInto(a, b, out, lam::sub);
}
// msd-hot-path-safe: same contract as AddInto.
void MulInto(const Tensor& a, const Tensor& b, Tensor& out) {
  ZipKernelInto(a, b, out, lam::mul);
}
// msd-hot-path-safe: same contract as AddInto.
void DivInto(const Tensor& a, const Tensor& b, Tensor& out) {
  ZipKernelInto(a, b, out, lam::div);
}
// msd-hot-path-safe: same contract as AddInto.
void AddScalarInto(const Tensor& a, float s, Tensor& out) {
  MapKernelInto(a, out, [s](float x) { return x + s; });
}
// msd-hot-path-safe: same contract as AddInto.
void MulScalarInto(const Tensor& a, float s, Tensor& out) {
  MapKernelInto(a, out, [s](float x) { return x * s; });
}
// msd-hot-path-safe: same contract as AddInto.
void NegInto(const Tensor& a, Tensor& out) {
  MapKernelInto(a, out, [](float x) { return -x; });
}
// msd-hot-path-safe: same contract as AddInto.
void ExpInto(const Tensor& a, Tensor& out) {
  MapKernelInto(a, out, [](float x) { return std::exp(x); });
}
// msd-hot-path-safe: same contract as AddInto.
void LogInto(const Tensor& a, Tensor& out) {
  MapKernelInto(a, out, [](float x) { return std::log(x); });
}
// msd-hot-path-safe: same contract as AddInto.
void SqrtInto(const Tensor& a, Tensor& out) {
  MapKernelInto(a, out, [](float x) { return std::sqrt(x); });
}
// msd-hot-path-safe: same contract as AddInto.
void AbsInto(const Tensor& a, Tensor& out) {
  MapKernelInto(a, out, [](float x) { return std::fabs(x); });
}
// msd-hot-path-safe: same contract as AddInto.
void SquareInto(const Tensor& a, Tensor& out) {
  MapKernelInto(a, out, [](float x) { return x * x; });
}
// msd-hot-path-safe: same contract as AddInto.
void ReluInto(const Tensor& a, Tensor& out) {
  MapKernelInto(a, out, [](float x) { return x > 0.0f ? x : 0.0f; });
}
// msd-hot-path-safe: same contract as AddInto.
void GeluInto(const Tensor& a, Tensor& out) {
  MapKernelInto(a, out, [](float x) {
    return 0.5f * x * (1.0f + std::erf(x * 0.70710678118654752f));
  });
}
// msd-hot-path-safe: same contract as AddInto.
void SigmoidInto(const Tensor& a, Tensor& out) {
  MapKernelInto(a, out, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
// msd-hot-path-safe: same contract as AddInto.
void TanhInto(const Tensor& a, Tensor& out) {
  MapKernelInto(a, out, [](float x) { return std::tanh(x); });
}

// msd-hot-path-safe: fused (a - b) / c; two chunk-local passes round the
// subtraction through memory, so bits match the unfused Sub+Div pair.
void SubDivInto(const Tensor& a, const Tensor& b, const Tensor& c,
                Tensor& out) {
  Zip3KernelInto(a, b, c, out, lam::sub, lam::div);
}
// msd-hot-path-safe: fused a * b + c; same rounding contract as SubDivInto
// (the memory round-trip defeats FMA contraction).
void MulAddInto(const Tensor& a, const Tensor& b, const Tensor& c,
                Tensor& out) {
  Zip3KernelInto(a, b, c, out, lam::mul, lam::add);
}

namespace {

Tensor AllocZip(const Tensor& a, const Tensor& b) {
  MSD_CHECK(a.defined());
  MSD_CHECK(b.defined());
  return Tensor::Uninitialized(BroadcastShapes(a.shape(), b.shape()));
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = AllocZip(a, b);
  AddInto(a, b, out);
  if (optrace::Active()) RecordOp(optrace::OpKind::kAdd, {a, b}, out);
  return out;
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out = AllocZip(a, b);
  SubInto(a, b, out);
  if (optrace::Active()) RecordOp(optrace::OpKind::kSub, {a, b}, out);
  return out;
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  Tensor out = AllocZip(a, b);
  MulInto(a, b, out);
  if (optrace::Active()) RecordOp(optrace::OpKind::kMul, {a, b}, out);
  return out;
}
Tensor Div(const Tensor& a, const Tensor& b) {
  Tensor out = AllocZip(a, b);
  DivInto(a, b, out);
  if (optrace::Active()) RecordOp(optrace::OpKind::kDiv, {a, b}, out);
  return out;
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  if (optrace::Active()) optrace::RecordUnsupported("Maximum");
  return ZipKernel(a, b, [](float x, float y) { return std::max(x, y); });
}
Tensor Minimum(const Tensor& a, const Tensor& b) {
  if (optrace::Active()) optrace::RecordUnsupported("Minimum");
  return ZipKernel(a, b, [](float x, float y) { return std::min(x, y); });
}
Tensor Greater(const Tensor& a, const Tensor& b) {
  if (optrace::Active()) optrace::RecordUnsupported("Greater");
  return ZipKernel(a, b, [](float x, float y) { return x > y ? 1.0f : 0.0f; });
}
Tensor GreaterEqual(const Tensor& a, const Tensor& b) {
  if (optrace::Active()) optrace::RecordUnsupported("GreaterEqual");
  return ZipKernel(a, b, [](float x, float y) { return x >= y ? 1.0f : 0.0f; });
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out = Tensor::Uninitialized(a.shape());
  AddScalarInto(a, s, out);
  if (optrace::Active()) {
    optrace::RecordedOp op;
    op.kind = optrace::OpKind::kAddScalar;
    op.inputs = {a};
    op.output = out;
    op.scalar = s;
    optrace::Record(std::move(op));
  }
  return out;
}
Tensor MulScalar(const Tensor& a, float s) {
  Tensor out = Tensor::Uninitialized(a.shape());
  MulScalarInto(a, s, out);
  if (optrace::Active()) {
    optrace::RecordedOp op;
    op.kind = optrace::OpKind::kMulScalar;
    op.inputs = {a};
    op.output = out;
    op.scalar = s;
    optrace::Record(std::move(op));
  }
  return out;
}

namespace {

// Shared body for the recorded unary ops.
template <typename IntoFn>
Tensor UnaryOp(const Tensor& a, optrace::OpKind kind, IntoFn into) {
  Tensor out = Tensor::Uninitialized(a.shape());
  into(a, out);
  if (optrace::Active()) RecordOp(kind, {a}, out);
  return out;
}

}  // namespace

Tensor Neg(const Tensor& a) {
  return UnaryOp(a, optrace::OpKind::kNeg, NegInto);
}
Tensor Exp(const Tensor& a) {
  return UnaryOp(a, optrace::OpKind::kExp, ExpInto);
}
Tensor Log(const Tensor& a) {
  return UnaryOp(a, optrace::OpKind::kLog, LogInto);
}
Tensor Sqrt(const Tensor& a) {
  return UnaryOp(a, optrace::OpKind::kSqrt, SqrtInto);
}
Tensor Abs(const Tensor& a) {
  return UnaryOp(a, optrace::OpKind::kAbs, AbsInto);
}
Tensor Square(const Tensor& a) {
  return UnaryOp(a, optrace::OpKind::kSquare, SquareInto);
}
Tensor Relu(const Tensor& a) {
  return UnaryOp(a, optrace::OpKind::kRelu, ReluInto);
}
Tensor Gelu(const Tensor& a) {
  return UnaryOp(a, optrace::OpKind::kGelu, GeluInto);
}
Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(a, optrace::OpKind::kSigmoid, SigmoidInto);
}
Tensor Tanh(const Tensor& a) {
  return UnaryOp(a, optrace::OpKind::kTanh, TanhInto);
}
Tensor Clamp(const Tensor& a, float lo, float hi) {
  if (optrace::Active()) optrace::RecordUnsupported("Clamp");
  return MapKernel(a, [lo, hi](float x) { return std::min(hi, std::max(lo, x)); });
}
Tensor Sign(const Tensor& a) {
  if (optrace::Active()) optrace::RecordUnsupported("Sign");
  return MapKernel(a, [](float x) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); });
}
Tensor GeluGrad(const Tensor& a) {
  if (optrace::Active()) optrace::RecordUnsupported("GeluGrad");
  return MapKernel(a, [](float x) {
    const float phi_big = 0.5f * (1.0f + std::erf(x * 0.70710678118654752f));
    const float phi_small =
        std::exp(-0.5f * x * x) * 0.39894228040143267f;  // 1/sqrt(2*pi)
    return phi_big + x * phi_small;
  });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  return MatMulEx(a, b, Tensor(), gemm::Activation::kIdentity, nullptr);
}

namespace {

// Expected result shape of a (possibly batched, broadcast) matmul; also
// validates operand/bias shapes.
Shape MatMulOutShape(const Tensor& a, const Tensor& b, const Tensor& bias) {
  MSD_DEBUG_VALIDATE_TENSOR(a, "MatMul");
  MSD_DEBUG_VALIDATE_TENSOR(b, "MatMul");
  MSD_CHECK_GE(a.rank(), 2);
  MSD_CHECK_GE(b.rank(), 2);
  const int64_t m = a.dim(-2);
  const int64_t k = a.dim(-1);
  const int64_t n = b.dim(-1);
  MSD_CHECK_EQ(k, b.dim(-2)) << "matmul inner dims mismatch: "
                             << ShapeToString(a.shape()) << " x "
                             << ShapeToString(b.shape());
  if (bias.defined()) {
    MSD_DEBUG_VALIDATE_TENSOR(bias, "MatMulEx bias");
    MSD_CHECK_EQ(bias.rank(), 1) << "MatMulEx bias must be rank-1 [n]";
    MSD_CHECK_EQ(bias.dim(0), n) << "MatMulEx bias length mismatch";
  }
  Shape a_batch(a.shape().begin(), a.shape().end() - 2);
  Shape b_batch(b.shape().begin(), b.shape().end() - 2);
  Shape out_shape = BroadcastShapes(a_batch, b_batch);
  out_shape.push_back(m);
  out_shape.push_back(n);
  return out_shape;
}

// Shared GEMM body: the allocating MatMulEx and the plan executor's
// MatMulExInto both land here, so the two paths run identical arithmetic.
// `pre_ptr` receives a @ b + bias when non-null (training only).
// msd-hot-path-safe: the audited GEMM chokepoint — writes `out` (pool- or
// arena-backed) via gemm::Gemm; counter adds are relaxed atomics.
void MatMulExImpl(const Tensor& a, const Tensor& b, const Tensor& bias,
                  gemm::Activation act, Tensor& out, float* pre_ptr) {
  MSD_SPAN("tensor/matmul");
  const int64_t m = a.dim(-2);
  const int64_t k = a.dim(-1);
  const int64_t n = b.dim(-1);
  Shape a_batch(a.shape().begin(), a.shape().end() - 2);
  Shape b_batch(b.shape().begin(), b.shape().end() - 2);
  const Shape batch = BroadcastShapes(a_batch, b_batch);
  const int64_t batch_numel = NumElementsOf(batch);

  static obs::Counter& matmul_calls =
      obs::MetricsRegistry::Global().GetCounter("tensor/matmul_calls");
  static obs::Counter& matmul_flops =
      obs::MetricsRegistry::Global().GetCounter("tensor/matmul_flops");
  matmul_calls.Add(1);
  matmul_flops.Add(2 * batch_numel * m * k * n);

  const float* bias_ptr = bias.defined() ? bias.data() : nullptr;
  if (out.numel() == 0) return;

  // Shared-B fast path: when b carries no real batch dims, the batched
  // product is one [batch*m, k] x [k, n] GEMM over a's contiguous buffer —
  // B is packed once and there are no per-batch offset tables at all. This
  // covers every Linear layer (rank-N input x rank-2 weight).
  if (NumElementsOf(b_batch) == 1) {
    gemm::Gemm(a.data(), b.data(), out.data(), batch_numel * m, k, n,
               bias_ptr, act, pre_ptr);
    return;
  }

  // True-batched path (e.g. attention scores): one GEMM per batch matrix,
  // parallel over batches; nested GEMM loops run inline per the runtime
  // contract. Batch offsets come from a stack odometer — no per-call heap
  // offset tables.
  constexpr int64_t kMaxBatchRank = 16;
  const int64_t batch_rank = static_cast<int64_t>(batch.size());
  MSD_CHECK_LE(batch_rank, kMaxBatchRank)
      << "MatMul supports at most " << kMaxBatchRank << " batch dims";
  const auto sa = BroadcastStrides(a_batch, batch);
  const auto sb = BroadcastStrides(b_batch, batch);
  const int64_t a_mat = m * k;
  const int64_t b_mat = k * n;
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  runtime::ParallelFor(0, batch_numel, GrainForWork(m * k * n),
                       [&](int64_t bb, int64_t be) {
    // Unflatten the chunk's first batch index, then advance by odometer.
    int64_t index[kMaxBatchRank] = {0};
    int64_t oa = 0;
    int64_t ob = 0;
    int64_t rest = bb;
    for (int64_t axis = batch_rank - 1; axis >= 0; --axis) {
      const size_t u = static_cast<size_t>(axis);
      index[u] = rest % batch[u];
      rest /= batch[u];
      oa += index[u] * sa[u];
      ob += index[u] * sb[u];
    }
    for (int64_t batch_i = bb; batch_i < be; ++batch_i) {
      gemm::Gemm(pa + oa * a_mat, pb + ob * b_mat, po + batch_i * m * n, m, k,
                 n, bias_ptr, act,
                 pre_ptr == nullptr ? nullptr : pre_ptr + batch_i * m * n);
      for (int64_t axis = batch_rank - 1; axis >= 0; --axis) {
        const size_t u = static_cast<size_t>(axis);
        ++index[u];
        oa += sa[u];
        ob += sb[u];
        if (index[u] < batch[u]) break;
        oa -= sa[u] * batch[u];
        ob -= sb[u] * batch[u];
        index[u] = 0;
      }
    }
  });
}

}  // namespace

Tensor MatMulEx(const Tensor& a, const Tensor& b, const Tensor& bias,
                gemm::Activation act, Tensor* pre_out) {
  Shape out_shape = MatMulOutShape(a, b, bias);
  // The GEMM writes every output element; no zero-fill pre-pass.
  Tensor out = Tensor::Uninitialized(std::move(out_shape));
  float* pre_ptr = nullptr;
  if (pre_out != nullptr) {
    if (act == gemm::Activation::kIdentity) {
      *pre_out = out;  // pre-activation == output; share storage
    } else {
      *pre_out = Tensor::Uninitialized(out.shape());
      pre_ptr = pre_out->data();
    }
  }
  MatMulExImpl(a, b, bias, act, out, pre_ptr);
  if (optrace::Active()) {
    if (pre_ptr != nullptr) {
      // A distinct pre-activation buffer only exists under autograd; replay
      // has nowhere to put it, so a capture that sees one is poisoned.
      optrace::RecordUnsupported("MatMulEx pre_out");
    } else {
      optrace::RecordedOp op;
      op.kind = optrace::OpKind::kMatMulEx;
      op.inputs = {a, b};
      if (bias.defined()) op.inputs.push_back(bias);
      op.output = out;
      op.act = act;
      optrace::Record(std::move(op));
    }
  }
  return out;
}

// msd-hot-path-safe: same contract as AddInto (GEMM chokepoint audited in
// MatMulExImpl above).
void MatMulExInto(const Tensor& a, const Tensor& b, const Tensor& bias,
                  gemm::Activation act, Tensor& out) {
  MSD_CHECK(out.defined());
  MSD_CHECK(out.shape() == MatMulOutShape(a, b, bias))
      << "MatMulExInto output shape mismatch: " << ShapeToString(out.shape());
  MatMulExImpl(a, b, bias, act, out, nullptr);
}

Tensor PackGemmB(const Tensor& b) {
  MSD_CHECK(b.defined());
  MSD_CHECK_EQ(b.rank(), 2) << "PackGemmB packs shared [k, n] operands";
  const int64_t k = b.dim(0);
  const int64_t n = b.dim(1);
  Tensor packed = Tensor::Uninitialized({gemm::PackedBPanelFloats(k, n)});
  gemm::PackB(b.data(), k, n, packed.data());
  return packed;
}

// msd-hot-path-safe: same contract as MatMulExInto's shared-B fast path —
// one flat GEMM over preplanned buffers, with the per-call B pack already
// hoisted to freeze time.
void MatMulExPrepackedInto(const Tensor& a, const Tensor& b_packed, int64_t k,
                           int64_t n, const Tensor& bias, gemm::Activation act,
                           Tensor& out) {
  MSD_SPAN("tensor/matmul");
  MSD_CHECK(a.defined() && b_packed.defined() && out.defined());
  MSD_CHECK_GE(a.rank(), 2);
  MSD_CHECK_EQ(a.dim(-1), k);
  MSD_CHECK_EQ(b_packed.numel(), gemm::PackedBPanelFloats(k, n));
  const int64_t m = k == 0 ? out.numel() / std::max<int64_t>(n, 1)
                           : a.numel() / k;
  MSD_CHECK_EQ(out.numel(), m * n);
  static obs::Counter& matmul_calls =
      obs::MetricsRegistry::Global().GetCounter("tensor/matmul_calls");
  static obs::Counter& matmul_flops =
      obs::MetricsRegistry::Global().GetCounter("tensor/matmul_flops");
  matmul_calls.Add(1);
  matmul_flops.Add(2 * m * k * n);
  if (out.numel() == 0) return;
  const float* bias_ptr = bias.defined() ? bias.data() : nullptr;
  gemm::GemmPrepacked(a.data(), b_packed.data(), out.data(), m, k, n, bias_ptr,
                      act, nullptr);
}

Tensor SumAll(const Tensor& a) {
  if (optrace::Active()) optrace::RecordUnsupported("SumAll");
  const float* p = a.data();
  const double acc = ReduceKernel(
      a, 0.0,
      [p](int64_t cb, int64_t ce) {
        double partial = 0.0;
        for (int64_t i = cb; i < ce; ++i) partial += p[i];
        return partial;
      },
      [](double x, double y) { return x + y; });
  return Tensor::Scalar(static_cast<float>(acc));
}

Tensor MeanAll(const Tensor& a) {
  MSD_CHECK_GT(a.numel(), 0);
  return Tensor::Scalar(SumAll(a).item() / static_cast<float>(a.numel()));
}

float MaxAbs(const Tensor& a) {
  // Scalar escape hatch: the value leaves the tensor graph, so a replay
  // could not recompute anything derived from it.
  if (optrace::Active()) optrace::RecordUnsupported("MaxAbs");
  const float* p = a.data();
  return ReduceKernel(
      a, 0.0f,
      [p](int64_t cb, int64_t ce) {
        float best = 0.0f;
        for (int64_t i = cb; i < ce; ++i) best = std::max(best, std::fabs(p[i]));
        return best;
      },
      [](float x, float y) { return std::max(x, y); });
}

// msd-hot-path-safe: same contract as AddInto. `dims` arrives pre-normalized
// (sorted, deduped, non-negative, non-empty); `out` holds the kept elements
// (keepdim or squeezed form — the kernels index linearly either way).
void SumInto(const Tensor& a, const std::vector<int64_t>& dims, Tensor& out) {
  MSD_CHECK(a.defined());
  MSD_CHECK(out.defined());
  MSD_CHECK(!dims.empty());
  const int64_t rank = a.rank();
  Shape keep_shape = a.shape();
  int64_t reduced = 1;
  for (int64_t d : dims) {
    MSD_CHECK_GE(d, 0);
    MSD_CHECK_LT(d, rank);
    reduced *= a.dim(d);
    keep_shape[static_cast<size_t>(d)] = 1;
  }
  MSD_CHECK_EQ(out.numel(), NumElementsOf(keep_shape))
      << "SumInto output must hold the kept elements";
  // The reduction seeds out with zero then accumulates, so unlike the
  // elementwise kernels the output may never alias the input.
  MSD_DEBUG_CHECK_NO_ALIAS(out, a, "SumInto");

  // Fast path: reducing a contiguous prefix of axes (e.g. bias gradients)
  // or a contiguous suffix (e.g. per-row sums). Both parallelize over the
  // *kept* elements, so each output slot keeps the serial kernel's
  // accumulation order.
  const bool is_prefix =
      dims.back() == static_cast<int64_t>(dims.size()) - 1;
  const bool is_suffix = dims.front() == rank - static_cast<int64_t>(dims.size());
  const float* pa = a.data();
  float* po = out.data();
  if (is_prefix || is_suffix) {
    const int64_t kept = a.numel() / std::max<int64_t>(1, reduced);
    if (is_prefix) {
      // Sum `reduced` stacked blocks of length `kept`; r ascends innermost
      // per output element, matching the serial block order.
      std::fill(po, po + kept, 0.0f);
      runtime::ParallelFor(0, kept, GrainForWork(reduced),
                           [&](int64_t cb, int64_t ce) {
        for (int64_t r = 0; r < reduced; ++r) {
          const float* block = pa + r * kept;
          for (int64_t i = cb; i < ce; ++i) po[i] += block[i];
        }
      });
    } else {
      // Row sums: `kept` rows of length `reduced`.
      runtime::ParallelFor(0, kept, GrainForWork(reduced),
                           [&](int64_t cb, int64_t ce) {
        for (int64_t i = cb; i < ce; ++i) {
          const float* row = pa + i * reduced;
          float acc = 0.0f;
          for (int64_t j = 0; j < reduced; ++j) acc += row[j];
          po[i] = acc;
        }
      });
    }
    return;
  }

  // out_strides has 0 on reduced axes, so many input positions map to the
  // same output slot, accumulating the reduction.
  std::fill(po, po + out.numel(), 0.0f);
  ReduceVisit(a, BroadcastStrides(keep_shape, a.shape()), -1,
              [&](int64_t i, int64_t off, int64_t) { po[off] += pa[i]; });
}

Tensor Sum(const Tensor& a, std::vector<int64_t> dims, bool keepdim) {
  MSD_CHECK(a.defined());
  MSD_DEBUG_VALIDATE_TENSOR(a, "Sum");
  const int64_t rank = a.rank();
  dims = NormalizeDims(std::move(dims), rank);
  if (dims.empty()) return a.Clone();  // Clone records kCopy when tracing

  Shape keep_shape = a.shape();
  for (int64_t d : dims) keep_shape[static_cast<size_t>(d)] = 1;
  Tensor out =
      Tensor::Uninitialized(keepdim ? keep_shape : SqueezeDims(a, dims));
  SumInto(a, dims, out);
  if (optrace::Active()) {
    optrace::RecordedOp op;
    op.kind = optrace::OpKind::kSum;
    op.inputs = {a};
    op.output = out;
    op.dims = dims;
    optrace::Record(std::move(op));
  }
  return out;
}

Tensor Mean(const Tensor& a, std::vector<int64_t> dims, bool keepdim) {
  const int64_t rank = a.rank();
  auto norm = NormalizeDims(dims, rank);
  int64_t count = 1;
  for (int64_t d : norm) count *= a.dim(d);
  MSD_CHECK_GT(count, 0);
  return MulScalar(Sum(a, std::move(dims), keepdim), 1.0f / static_cast<float>(count));
}

Tensor MaxReduce(const Tensor& a, int64_t dim, bool keepdim) {
  if (optrace::Active()) optrace::RecordUnsupported("MaxReduce");
  const int64_t rank = a.rank();
  dim = NormalizeDim(dim, rank);
  Shape keep_shape = a.shape();
  keep_shape[static_cast<size_t>(dim)] = 1;
  Tensor out = Tensor::Full(keep_shape, -std::numeric_limits<float>::infinity());
  const float* pa = a.data();
  float* po = out.data();
  ReduceVisit(a, BroadcastStrides(keep_shape, a.shape()), -1,
              [&](int64_t i, int64_t off, int64_t) {
                po[off] = std::max(po[off], pa[i]);
              });
  if (keepdim) return out;
  return out.Reshape(SqueezeDims(a, {dim}));
}

Tensor ArgMax(const Tensor& a, int64_t dim) {
  if (optrace::Active()) optrace::RecordUnsupported("ArgMax");
  const int64_t rank = a.rank();
  dim = NormalizeDim(dim, rank);
  Shape keep_shape = a.shape();
  keep_shape[static_cast<size_t>(dim)] = 1;
  Tensor best = Tensor::Full(keep_shape, -std::numeric_limits<float>::infinity());
  Tensor arg(keep_shape);
  const float* pa = a.data();
  float* pbest = best.data();
  float* parg = arg.data();
  ReduceVisit(a, BroadcastStrides(keep_shape, a.shape()), dim,
              [&](int64_t i, int64_t off, int64_t pos) {
                if (pa[i] > pbest[off]) {
                  pbest[off] = pa[i];
                  parg[off] = static_cast<float>(pos);
                }
              });
  const Shape squeezed = SqueezeDims(a, {dim});
  if (squeezed.empty()) return arg.Reshape({});
  return arg.Reshape(squeezed);
}

namespace {

// Validates `perm` against `a` and returns (normalized perm, result shape).
std::pair<std::vector<int64_t>, Shape> PermuteOutShape(
    const Tensor& a, const std::vector<int64_t>& perm) {
  MSD_DEBUG_VALIDATE_TENSOR(a, "Permute");
  const int64_t rank = a.rank();
  MSD_CHECK_EQ(static_cast<int64_t>(perm.size()), rank);
  std::vector<bool> seen(static_cast<size_t>(rank), false);
  std::vector<int64_t> norm(static_cast<size_t>(rank));
  Shape out_shape(static_cast<size_t>(rank));
  for (int64_t i = 0; i < rank; ++i) {
    const int64_t p = NormalizeDim(perm[static_cast<size_t>(i)], rank);
    MSD_CHECK(!seen[static_cast<size_t>(p)]) << "duplicate axis in permutation";
    seen[static_cast<size_t>(p)] = true;
    norm[static_cast<size_t>(i)] = p;
    out_shape[static_cast<size_t>(i)] = a.dim(p);
  }
  return {std::move(norm), std::move(out_shape)};
}

}  // namespace

// msd-hot-path-safe: same contract as AddInto (the gather path's odometer
// index vector is chunk-local and audited with it).
void PermuteInto(const Tensor& a, const std::vector<int64_t>& perm,
                 Tensor& out) {
  auto [norm, out_shape] = PermuteOutShape(a, perm);
  const int64_t rank = a.rank();
  MSD_CHECK(out.shape() == out_shape)
      << "PermuteInto output shape mismatch: " << ShapeToString(out.shape());
  // A gather can never run in place: output slot i reads input slot
  // sigma(i) while slot i may still be pending.
  MSD_DEBUG_CHECK_NO_ALIAS(out, a, "PermuteInto");
  // Fast path: swapping the last two axes (batched 2D transpose), the
  // dominant movement pattern in the mixer's axis-MLP blocks. Parallel over
  // batch matrices — each writes a disjoint output block.
  if (rank >= 2) {
    bool last_two_swap = true;
    for (int64_t i = 0; i < rank - 2; ++i) {
      if (norm[static_cast<size_t>(i)] != i) {
        last_two_swap = false;
        break;
      }
    }
    last_two_swap = last_two_swap &&
                    norm[static_cast<size_t>(rank - 2)] == rank - 1 &&
                    norm[static_cast<size_t>(rank - 1)] == rank - 2;
    if (last_two_swap) {
      const int64_t rows = a.dim(-2);
      const int64_t cols = a.dim(-1);
      const int64_t batch = a.numel() / std::max<int64_t>(1, rows * cols);
      const float* pa = a.data();
      float* po = out.data();
      runtime::ParallelFor(0, batch, GrainForWork(rows * cols),
                           [&](int64_t bb, int64_t be) {
        for (int64_t b = bb; b < be; ++b) {
          const float* src = pa + b * rows * cols;
          float* dst = po + b * rows * cols;
          for (int64_t r = 0; r < rows; ++r) {
            const float* s = src + r * cols;
            for (int64_t c = 0; c < cols; ++c) dst[c * rows + r] = s[c];
          }
        }
      });
      return;
    }
  }

  const auto in_strides = RowMajorStrides(a.shape());
  // Stride to advance in the *input* when the i-th *output* axis increments.
  std::vector<int64_t> gather_strides(static_cast<size_t>(rank));
  for (int64_t i = 0; i < rank; ++i) {
    gather_strides[static_cast<size_t>(i)] =
        in_strides[static_cast<size_t>(norm[static_cast<size_t>(i)])];
  }
  const float* pa = a.data();
  float* po = out.data();
  runtime::ParallelFor(0, a.numel(), kernel::kElementwiseGrain,
                       [&](int64_t cb, int64_t ce) {
    std::vector<int64_t> index(static_cast<size_t>(rank), 0);
    int64_t off = kernel::UnflattenOffset(cb, out_shape, gather_strides, index);
    for (int64_t i = cb; i < ce; ++i) {
      po[i] = pa[off];
      for (int64_t axis = rank - 1; axis >= 0; --axis) {
        const size_t u = static_cast<size_t>(axis);
        ++index[u];
        off += gather_strides[u];
        if (index[u] < out_shape[u]) break;
        off -= gather_strides[u] * out_shape[u];
        index[u] = 0;
      }
    }
  });
}

Tensor Permute(const Tensor& a, const std::vector<int64_t>& perm) {
  auto [norm, out_shape] = PermuteOutShape(a, perm);
  Tensor out = Tensor::Uninitialized(std::move(out_shape));
  PermuteInto(a, norm, out);
  if (optrace::Active()) {
    optrace::RecordedOp op;
    op.kind = optrace::OpKind::kPermute;
    op.inputs = {a};
    op.output = out;
    op.dims = std::move(norm);
    optrace::Record(std::move(op));
  }
  return out;
}

Tensor Transpose(const Tensor& a, int64_t dim0, int64_t dim1) {
  const int64_t rank = a.rank();
  dim0 = NormalizeDim(dim0, rank);
  dim1 = NormalizeDim(dim1, rank);
  std::vector<int64_t> perm(static_cast<size_t>(rank));
  for (int64_t i = 0; i < rank; ++i) perm[static_cast<size_t>(i)] = i;
  std::swap(perm[static_cast<size_t>(dim0)], perm[static_cast<size_t>(dim1)]);
  return Permute(a, perm);
}

namespace {

// Validates slice bounds; `dim` must already be normalized.
void CheckSliceArgs(const Tensor& a, int64_t dim, int64_t start,
                    int64_t length) {
  MSD_DEBUG_VALIDATE_TENSOR(a, "Slice");
  MSD_CHECK_GE(start, 0);
  MSD_CHECK_GE(length, 0);
  MSD_CHECK_LE(start + length, a.dim(dim))
      << "slice [" << start << ", " << start + length << ") out of range on axis "
      << dim << " of " << ShapeToString(a.shape());
}

}  // namespace

// msd-hot-path-safe: same contract as AddInto (row-block memcpy loop).
void SliceInto(const Tensor& a, int64_t dim, int64_t start, int64_t length,
               Tensor& out) {
  const int64_t rank = a.rank();
  dim = NormalizeDim(dim, rank);
  CheckSliceArgs(a, dim, start, length);
  Shape out_shape = a.shape();
  out_shape[static_cast<size_t>(dim)] = length;
  MSD_CHECK(out.shape() == out_shape)
      << "SliceInto output shape mismatch: " << ShapeToString(out.shape());
  // memcpy forbids overlap, and a slice is a shift — never an exact alias.
  MSD_DEBUG_CHECK_NO_ALIAS(out, a, "SliceInto");
  // View the tensor as [outer, a.dim(dim), inner] and copy row blocks.
  int64_t outer = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= a.dim(i);
  int64_t inner = 1;
  for (int64_t i = dim + 1; i < rank; ++i) inner *= a.dim(i);
  const int64_t in_dim = a.dim(dim);
  if (out.numel() == 0) return;
  const float* pa = a.data();
  float* po = out.data();
  runtime::ParallelFor(0, outer, GrainForWork(length * inner),
                       [&](int64_t cb, int64_t ce) {
    for (int64_t o = cb; o < ce; ++o) {
      const float* src = pa + (o * in_dim + start) * inner;
      float* dst = po + o * length * inner;
      std::memcpy(dst, src, static_cast<size_t>(length * inner) * sizeof(float));
    }
  });
}

// msd-hot-path-safe: batch assembly over pool-backed tensors; the small
// shape vectors are audited with it.
Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t length) {
  const int64_t rank = a.rank();
  dim = NormalizeDim(dim, rank);
  CheckSliceArgs(a, dim, start, length);
  Shape out_shape = a.shape();
  out_shape[static_cast<size_t>(dim)] = length;
  Tensor out = Tensor::Uninitialized(std::move(out_shape));
  SliceInto(a, dim, start, length, out);
  if (optrace::Active()) {
    optrace::RecordedOp op;
    op.kind = optrace::OpKind::kSlice;
    op.inputs = {a};
    op.output = out;
    op.dim = dim;
    op.start = start;
    op.length = length;
    optrace::Record(std::move(op));
  }
  return out;
}

// msd-hot-path-safe: same contract as AddInto. Fused
// out = a - Slice(src, dim, start, length): the residual-subtract chain
// without materializing the sliced component. The subtraction reads src
// directly at the sliced offsets, so per element it is bitwise the
// unfused Slice-then-SubInto pair (same two operands, one fsub).
void SliceSubInto(const Tensor& a, const Tensor& src, int64_t dim,
                  int64_t start, int64_t length, Tensor& out) {
  const int64_t rank = src.rank();
  dim = NormalizeDim(dim, rank);
  CheckSliceArgs(src, dim, start, length);
  Shape slice_shape = src.shape();
  slice_shape[static_cast<size_t>(dim)] = length;
  MSD_CHECK(a.shape() == slice_shape)
      << "SliceSubInto: minuend shape " << ShapeToString(a.shape())
      << " != slice shape " << ShapeToString(slice_shape);
  MSD_CHECK(out.shape() == slice_shape)
      << "SliceSubInto output shape mismatch: " << ShapeToString(out.shape());
  MSD_DEBUG_CHECK_INTO_ALIAS(out, a, "SliceSubInto");
  MSD_DEBUG_CHECK_NO_ALIAS(out, src, "SliceSubInto");
  int64_t outer = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= src.dim(i);
  int64_t inner = 1;
  for (int64_t i = dim + 1; i < rank; ++i) inner *= src.dim(i);
  const int64_t in_dim = src.dim(dim);
  if (out.numel() == 0) return;
  const float* pa = a.data();
  const float* ps = src.data();
  float* po = out.data();
  runtime::ParallelFor(0, outer, GrainForWork(length * inner),
                       [&](int64_t cb, int64_t ce) {
    for (int64_t o = cb; o < ce; ++o) {
      const float* row_a = pa + o * length * inner;
      const float* row_s = ps + (o * in_dim + start) * inner;
      float* dst = po + o * length * inner;
      for (int64_t i = 0; i < length * inner; ++i) dst[i] = row_a[i] - row_s[i];
    }
  });
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t dim) {
  if (optrace::Active()) optrace::RecordUnsupported("Concat");
  MSD_CHECK(!parts.empty());
  for (const Tensor& p : parts) MSD_DEBUG_VALIDATE_TENSOR(p, "Concat");
  const int64_t rank = parts[0].rank();
  dim = NormalizeDim(dim, rank);
  int64_t total = 0;
  for (const Tensor& p : parts) {
    MSD_CHECK_EQ(p.rank(), rank);
    for (int64_t i = 0; i < rank; ++i) {
      if (i != dim) {
        MSD_CHECK_EQ(p.dim(i), parts[0].dim(i))
            << "concat shape mismatch on axis " << i;
      }
    }
    total += p.dim(dim);
  }
  Shape out_shape = parts[0].shape();
  out_shape[static_cast<size_t>(dim)] = total;
  Tensor out = Tensor::Uninitialized(out_shape);
  int64_t outer = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= out.dim(i);
  int64_t inner = 1;
  for (int64_t i = dim + 1; i < rank; ++i) inner *= out.dim(i);
  float* po = out.data();
  int64_t dst_offset_rows = 0;
  for (const Tensor& p : parts) {
    const int64_t p_dim = p.dim(dim);
    const float* pp = p.data();
    runtime::ParallelFor(0, outer, GrainForWork(p_dim * inner),
                         [&](int64_t cb, int64_t ce) {
      for (int64_t o = cb; o < ce; ++o) {
        float* dst = po + (o * total + dst_offset_rows) * inner;
        const float* src = pp + o * p_dim * inner;
        std::memcpy(dst, src, static_cast<size_t>(p_dim * inner) * sizeof(float));
      }
    });
    dst_offset_rows += p_dim;
  }
  return out;
}

// msd-hot-path-safe: same contract as AddInto (fill plus row memcpy).
void PadInto(const Tensor& a, int64_t dim, int64_t before, int64_t after,
             float value, Tensor& out) {
  MSD_DEBUG_VALIDATE_TENSOR(a, "Pad");
  const int64_t rank = a.rank();
  dim = NormalizeDim(dim, rank);
  MSD_CHECK_GE(before, 0);
  MSD_CHECK_GE(after, 0);
  Shape out_shape = a.shape();
  out_shape[static_cast<size_t>(dim)] += before + after;
  MSD_CHECK(out.shape() == out_shape)
      << "PadInto output shape mismatch: " << ShapeToString(out.shape());
  // The fill pre-pass would clobber an aliased input.
  MSD_DEBUG_CHECK_NO_ALIAS(out, a, "PadInto");
  if (out.numel() == 0) return;
  out.Fill(value);
  int64_t outer = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= a.dim(i);
  int64_t inner = 1;
  for (int64_t i = dim + 1; i < rank; ++i) inner *= a.dim(i);
  const int64_t in_dim = a.dim(dim);
  const int64_t out_dim = out.dim(dim);
  if (a.numel() == 0) return;
  const float* pa = a.data();
  float* po = out.data();
  runtime::ParallelFor(0, outer, GrainForWork(in_dim * inner),
                       [&](int64_t cb, int64_t ce) {
    for (int64_t o = cb; o < ce; ++o) {
      float* dst = po + (o * out_dim + before) * inner;
      const float* src = pa + o * in_dim * inner;
      std::memcpy(dst, src, static_cast<size_t>(in_dim * inner) * sizeof(float));
    }
  });
}

Tensor Pad(const Tensor& a, int64_t dim, int64_t before, int64_t after,
           float value) {
  const int64_t rank = a.rank();
  const int64_t norm_dim = NormalizeDim(dim, rank);
  Shape out_shape = a.shape();
  out_shape[static_cast<size_t>(norm_dim)] += before + after;
  Tensor out = Tensor::Uninitialized(std::move(out_shape));
  PadInto(a, norm_dim, before, after, value, out);
  if (optrace::Active()) {
    optrace::RecordedOp op;
    op.kind = optrace::OpKind::kPad;
    op.inputs = {a};
    op.output = out;
    op.dim = norm_dim;
    op.before = before;
    op.after = after;
    op.pad_value = value;
    optrace::Record(std::move(op));
  }
  return out;
}

// msd-hot-path-safe: same contract as AddInto (straight element copy;
// shapes may differ by reshape, numel must match).
void CopyInto(const Tensor& a, Tensor& out) {
  MSD_CHECK(a.defined());
  MSD_CHECK(out.defined());
  MSD_CHECK_EQ(a.numel(), out.numel());
  if (out.numel() == 0) return;
  if (out.data() == a.data()) return;  // exact alias: copy is a no-op
  MSD_DEBUG_CHECK_NO_ALIAS(out, a, "CopyInto");
  std::memcpy(out.data(), a.data(),
              static_cast<size_t>(a.numel()) * sizeof(float));
}

// msd-hot-path-safe: same contract as Slice.
Tensor Stack(const std::vector<Tensor>& parts) {
  if (optrace::Active()) optrace::RecordUnsupported("Stack");
  MSD_CHECK(!parts.empty());
  const Shape& base = parts[0].shape();
  Shape out_shape;
  out_shape.push_back(static_cast<int64_t>(parts.size()));
  out_shape.insert(out_shape.end(), base.begin(), base.end());
  Tensor out = Tensor::Uninitialized(out_shape);
  const int64_t chunk = parts[0].numel();
  float* po = out.data();
  runtime::ParallelFor(
      0, static_cast<int64_t>(parts.size()), 1, [&](int64_t cb, int64_t ce) {
        for (int64_t i = cb; i < ce; ++i) {
          MSD_CHECK(parts[static_cast<size_t>(i)].shape() == base)
              << "stack shape mismatch";
          std::memcpy(po + i * chunk, parts[static_cast<size_t>(i)].data(),
                      static_cast<size_t>(chunk) * sizeof(float));
        }
      });
  return out;
}

Tensor Softmax(const Tensor& a, int64_t dim) {
  // Composed from parallel kernels: MaxReduce / ZipKernel / MapKernel / Sum
  // all dispatch through the runtime.
  const Tensor max = MaxReduce(a, dim, /*keepdim=*/true);
  const Tensor e = Exp(Sub(a, max));
  const Tensor z = Sum(e, {dim}, /*keepdim=*/true);
  return Div(e, z);
}

bool AllClose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  // int partials, not bool: std::vector<bool> packs bits, and concurrent
  // chunk writes to adjacent bits would race.
  return ReduceKernel(
             a, 1,
             [&](int64_t cb, int64_t ce) {
               for (int64_t i = cb; i < ce; ++i) {
                 const float diff = std::fabs(pa[i] - pb[i]);
                 if (diff > atol + rtol * std::fabs(pb[i])) return 0;
               }
               return 1;
             },
             [](int x, int y) { return x & y; }) != 0;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  MSD_CHECK(a.shape() == b.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  return ReduceKernel(
      a, 0.0f,
      [&](int64_t cb, int64_t ce) {
        float best = 0.0f;
        for (int64_t i = cb; i < ce; ++i) {
          best = std::max(best, std::fabs(pa[i] - pb[i]));
        }
        return best;
      },
      [](float x, float y) { return std::max(x, y); });
}

bool HasNonFinite(const Tensor& a) {
  const float* p = a.data();
  return ReduceKernel(
             a, 0,
             [p](int64_t cb, int64_t ce) {
               for (int64_t i = cb; i < ce; ++i) {
                 if (!std::isfinite(p[i])) return 1;
               }
               return 0;
             },
             [](int x, int y) { return x | y; }) != 0;
}

}  // namespace msd
