#include "tensor/arena.h"

#include <memory>

#include "common/check.h"

namespace msd {
namespace arena {

int64_t AlignUp(int64_t bytes) {
  MSD_CHECK_GE(bytes, 0);
  return (bytes + kAlignment - 1) / kAlignment * kAlignment;
}

namespace {

// Mirrors the pool's allocation idiom (std::allocator, not raw new) so the
// arena obeys the same ownership rules the analyzer enforces on src/tensor.
struct BlockDeleter {
  size_t capacity = 0;
  void operator()(float* block) const {
    std::allocator<float>().deallocate(block, capacity);
  }
};

}  // namespace

Arena::Arena(int64_t bytes) {
  MSD_CHECK_GE(bytes, 0);
  bytes_ = AlignUp(bytes);
  // Over-allocate by one alignment unit so the base can be rounded up:
  // std::allocator only guarantees alignof(float).
  const size_t capacity =
      static_cast<size_t>((bytes_ + kAlignment) / sizeof(float) + 1);
  float* raw = std::allocator<float>().allocate(capacity);
  block_ = std::shared_ptr<float[]>(raw, BlockDeleter{capacity});
  const uintptr_t addr = reinterpret_cast<uintptr_t>(raw);
  const uintptr_t aligned =
      (addr + kAlignment - 1) / kAlignment * kAlignment;
  base_ = reinterpret_cast<float*>(aligned);
}

float* Arena::at(int64_t offset) {
  MSD_CHECK_GE(offset, 0);
  MSD_CHECK_LE(offset, bytes_);
  MSD_CHECK_EQ(offset % static_cast<int64_t>(sizeof(float)), 0);
  return base_ + offset / static_cast<int64_t>(sizeof(float));
}

}  // namespace arena
}  // namespace msd
