#include "tensor/conv.h"

#include "runtime/parallel.h"
#include "tensor/kernels.h"

namespace msd {

using kernel::GrainForWork;

int64_t ConvOutSize(int64_t input, int64_t kernel, const Conv2dSpec& spec) {
  MSD_CHECK_GT(spec.stride, 0);
  MSD_CHECK_GE(spec.padding, 0);
  const int64_t padded = input + 2 * spec.padding;
  MSD_CHECK_GE(padded, kernel) << "kernel larger than padded input";
  return (padded - kernel) / spec.stride + 1;
}

Tensor Conv2d(const Tensor& input, const Tensor& kernel,
              const Conv2dSpec& spec) {
  MSD_CHECK_EQ(input.rank(), 4) << "input must be [B, C, H, W]";
  MSD_CHECK_EQ(kernel.rank(), 4) << "kernel must be [O, C, kh, kw]";
  MSD_CHECK_EQ(input.dim(1), kernel.dim(1)) << "channel mismatch";
  const int64_t batch = input.dim(0);
  const int64_t channels = input.dim(1);
  const int64_t height = input.dim(2);
  const int64_t width = input.dim(3);
  const int64_t out_channels = kernel.dim(0);
  const int64_t kh = kernel.dim(2);
  const int64_t kw = kernel.dim(3);
  const int64_t oh = ConvOutSize(height, kh, spec);
  const int64_t ow = ConvOutSize(width, kw, spec);

  Tensor out = Tensor::Zeros({batch, out_channels, oh, ow});
  const float* pin = input.data();
  const float* pk = kernel.data();
  float* po = out.data();
  // Parallel over (b, o) output planes: each plane is written by exactly one
  // chunk, and its per-element accumulation order (c ascending) matches the
  // serial kernel.
  runtime::ParallelFor(
      0, batch * out_channels,
      GrainForWork(channels * oh * ow * kh * kw),
      [&](int64_t pb, int64_t pe) {
    for (int64_t plane = pb; plane < pe; ++plane) {
      const int64_t b = plane / out_channels;
      const int64_t o = plane % out_channels;
      float* out_plane = po + plane * oh * ow;
      for (int64_t c = 0; c < channels; ++c) {
        const float* in_plane = pin + (b * channels + c) * height * width;
        const float* k_plane = pk + (o * channels + c) * kh * kw;
        for (int64_t y = 0; y < oh; ++y) {
          for (int64_t x = 0; x < ow; ++x) {
            float acc = 0.0f;
            for (int64_t ky = 0; ky < kh; ++ky) {
              const int64_t iy = y * spec.stride + ky - spec.padding;
              if (iy < 0 || iy >= height) continue;
              for (int64_t kx = 0; kx < kw; ++kx) {
                const int64_t ix = x * spec.stride + kx - spec.padding;
                if (ix < 0 || ix >= width) continue;
                acc += in_plane[iy * width + ix] * k_plane[ky * kw + kx];
              }
            }
            out_plane[y * ow + x] += acc;
          }
        }
      }
    }
  });
  return out;
}

Tensor Conv2dInputGrad(const Tensor& grad_output, const Tensor& kernel,
                       int64_t input_height, int64_t input_width,
                       const Conv2dSpec& spec) {
  MSD_CHECK_EQ(grad_output.rank(), 4);
  MSD_CHECK_EQ(kernel.rank(), 4);
  MSD_CHECK_EQ(grad_output.dim(1), kernel.dim(0)) << "out-channel mismatch";
  const int64_t batch = grad_output.dim(0);
  const int64_t out_channels = kernel.dim(0);
  const int64_t channels = kernel.dim(1);
  const int64_t kh = kernel.dim(2);
  const int64_t kw = kernel.dim(3);
  const int64_t oh = grad_output.dim(2);
  const int64_t ow = grad_output.dim(3);

  Tensor grad_input =
      Tensor::Zeros({batch, channels, input_height, input_width});
  const float* pg = grad_output.data();
  const float* pk = kernel.data();
  float* pi = grad_input.data();
  // Parallel over (b, c) gradient planes — the accumulation targets — with
  // o ascending innermost so each element keeps the serial order.
  runtime::ParallelFor(
      0, batch * channels,
      GrainForWork(out_channels * oh * ow * kh * kw),
      [&](int64_t pb, int64_t pe) {
    for (int64_t plane = pb; plane < pe; ++plane) {
      const int64_t b = plane / channels;
      const int64_t c = plane % channels;
      float* in_plane = pi + plane * input_height * input_width;
      for (int64_t o = 0; o < out_channels; ++o) {
        const float* g_plane = pg + (b * out_channels + o) * oh * ow;
        const float* k_plane = pk + (o * channels + c) * kh * kw;
        for (int64_t y = 0; y < oh; ++y) {
          for (int64_t x = 0; x < ow; ++x) {
            const float g = g_plane[y * ow + x];
            if (g == 0.0f) continue;
            for (int64_t ky = 0; ky < kh; ++ky) {
              const int64_t iy = y * spec.stride + ky - spec.padding;
              if (iy < 0 || iy >= input_height) continue;
              for (int64_t kx = 0; kx < kw; ++kx) {
                const int64_t ix = x * spec.stride + kx - spec.padding;
                if (ix < 0 || ix >= input_width) continue;
                in_plane[iy * input_width + ix] += g * k_plane[ky * kw + kx];
              }
            }
          }
        }
      }
    }
  });
  return grad_input;
}

Tensor Conv2dKernelGrad(const Tensor& input, const Tensor& grad_output,
                        int64_t kernel_height, int64_t kernel_width,
                        const Conv2dSpec& spec) {
  MSD_CHECK_EQ(input.rank(), 4);
  MSD_CHECK_EQ(grad_output.rank(), 4);
  MSD_CHECK_EQ(input.dim(0), grad_output.dim(0)) << "batch mismatch";
  const int64_t batch = input.dim(0);
  const int64_t channels = input.dim(1);
  const int64_t height = input.dim(2);
  const int64_t width = input.dim(3);
  const int64_t out_channels = grad_output.dim(1);
  const int64_t oh = grad_output.dim(2);
  const int64_t ow = grad_output.dim(3);

  Tensor grad_kernel =
      Tensor::Zeros({out_channels, channels, kernel_height, kernel_width});
  const float* pin = input.data();
  const float* pg = grad_output.data();
  float* pk = grad_kernel.data();
  // Parallel over (o, c) kernel planes — the accumulation targets — with
  // b ascending innermost so each element keeps the serial order.
  runtime::ParallelFor(
      0, out_channels * channels,
      GrainForWork(batch * oh * ow * kernel_height * kernel_width),
      [&](int64_t pb, int64_t pe) {
    for (int64_t plane = pb; plane < pe; ++plane) {
      const int64_t o = plane / channels;
      const int64_t c = plane % channels;
      float* k_plane = pk + plane * kernel_height * kernel_width;
      for (int64_t b = 0; b < batch; ++b) {
        const float* g_plane = pg + (b * out_channels + o) * oh * ow;
        const float* in_plane = pin + (b * channels + c) * height * width;
        for (int64_t y = 0; y < oh; ++y) {
          for (int64_t x = 0; x < ow; ++x) {
            const float g = g_plane[y * ow + x];
            if (g == 0.0f) continue;
            for (int64_t ky = 0; ky < kernel_height; ++ky) {
              const int64_t iy = y * spec.stride + ky - spec.padding;
              if (iy < 0 || iy >= height) continue;
              for (int64_t kx = 0; kx < kernel_width; ++kx) {
                const int64_t ix = x * spec.stride + kx - spec.padding;
                if (ix < 0 || ix >= width) continue;
                k_plane[ky * kernel_width + kx] +=
                    g * in_plane[iy * width + ix];
              }
            }
          }
        }
      }
    }
  });
  return grad_kernel;
}

}  // namespace msd
