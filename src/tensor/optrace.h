// Thread-local forward-pass op capture (docs/COMPILER.md).
//
// The freeze-time planner records one interpreted forward by switching this
// capture on, running the model, and switching it off: every public op in
// tensor_ops.cc appends a RecordedOp describing the call it just executed
// (operands, output, attributes), and ops the plan executor cannot replay
// mark the trace unsupported instead. Capture is per-thread and costs one
// thread_local bool check per op when inactive.
//
// Recording contract:
//  * RecordedOp holds its operand and output Tensors BY VALUE. This pins
//    every buffer for the lifetime of the capture, so the pool cannot
//    recycle one mid-trace and two distinct logical buffers can never share
//    a data() pointer — buffer identity in the planner is pointer identity.
//  * Reshape is not an op: it shares storage, so a reshaped view records
//    under the same buffer with its per-use shape.
//  * Kernels' internal parallel chunks never record; only the public entry
//    points on the capturing thread do.
#ifndef MSDMIXER_TENSOR_OPTRACE_H_
#define MSDMIXER_TENSOR_OPTRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace msd {
namespace optrace {

// Leaf kernels the plan executor can replay. The k*Fused kinds are never
// recorded by tensor_ops; the planner's peephole pass rewrites pairs of
// recorded ops into them (see serve/plan.cc and docs/COMPILER.md).
enum class OpKind {
  // Elementwise binary (broadcasting).
  kAdd,
  kSub,
  kMul,
  kDiv,
  // Elementwise with a scalar attribute.
  kAddScalar,
  kMulScalar,
  // Elementwise unary.
  kNeg,
  kExp,
  kLog,
  kSqrt,
  kAbs,
  kSquare,
  kRelu,
  kGelu,
  kSigmoid,
  kTanh,
  // Fused GEMM: act(a @ b + bias).
  kMatMulEx,
  // Reduction over `dims` (normalized, sorted).
  kSum,
  // Movement.
  kPermute,
  kSlice,
  kPad,
  // Straight buffer copy (Tensor::Clone during capture).
  kCopy,
  // Planner-synthesized fusions (never recorded directly).
  kSubDivFused,   // (a - b) / c
  kMulAddFused,   // a * b + c
  kSliceSubFused  // a - Slice(src, dim, start, length)
};

const char* OpKindName(OpKind kind);

struct RecordedOp {
  OpKind kind = OpKind::kAdd;
  // Operands in call order; an entry may be undefined (MatMulEx without a
  // bias). Held by value — see the pinning contract above.
  std::vector<Tensor> inputs;
  Tensor output;

  // Attributes; which fields are meaningful depends on `kind`.
  float scalar = 0.0f;             // kAddScalar / kMulScalar
  std::vector<int64_t> dims;       // kSum (normalized) / kPermute (perm)
  int64_t dim = 0;                 // kSlice / kPad axis
  int64_t start = 0;               // kSlice
  int64_t length = 0;              // kSlice
  int64_t before = 0;              // kPad
  int64_t after = 0;               // kPad
  float pad_value = 0.0f;          // kPad
  gemm::Activation act = gemm::Activation::kIdentity;  // kMatMulEx

  // Module path ("layer3/decoder/...") active when the op recorded; purely
  // diagnostic (plan DebugString, fusion reports).
  std::string region;
};

struct Trace {
  std::vector<RecordedOp> ops;
  // Names of capture-breaking calls hit during the run; non-empty means the
  // planner must refuse this trace and the session falls back to the
  // interpreted path.
  std::vector<std::string> unsupported;
};

// True while this thread is capturing.
bool Active();

// Starts capture on this thread. Fatal if already active (no nesting).
void Begin();

// Stops capture and returns everything recorded since Begin().
Trace End();

// Appends one op to the active capture. Callers guard with Active() so the
// RecordedOp is only materialized when tracing.
void Record(RecordedOp op);

// Marks the active capture unsupported (deduplicated by name).
void RecordUnsupported(const char* what);

// Pushes a module name onto this thread's region path for the scope. Active
// only during capture; otherwise construction is a single bool check.
class RegionScope {
 public:
  explicit RegionScope(const std::string& name);
  ~RegionScope();
  RegionScope(const RegionScope&) = delete;
  RegionScope& operator=(const RegionScope&) = delete;

 private:
  bool pushed_ = false;
};

}  // namespace optrace
}  // namespace msd

#endif  // MSDMIXER_TENSOR_OPTRACE_H_
