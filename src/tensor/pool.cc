#include "tensor/pool.h"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"

namespace msd {
namespace pool {

namespace {

// Smallest block is 32 floats (128 B); classes double from there. 27 classes
// tops out at 32 << 26 = 2^31 floats (8 GiB) — anything larger bypasses the
// cache entirely and is freed straight back to the OS.
constexpr int64_t kMinBlockFloats = 32;
constexpr int kNumClasses = 27;
constexpr int kOversize = -1;

int ClassFor(int64_t numel) {
  int64_t capacity = kMinBlockFloats;
  for (int c = 0; c < kNumClasses; ++c) {
    if (numel <= capacity) return c;
    capacity <<= 1;
  }
  return kOversize;
}

int64_t ClassCapacity(int cls) { return kMinBlockFloats << cls; }

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<int64_t>(std::strtoll(value, nullptr, 10));
}

bool PoolEnabledFromEnv() {
  const char* value = std::getenv("MSD_DISABLE_POOL");
  const bool disabled =
      value != nullptr && *value != '\0' && std::string(value) != "0";
  return !disabled;
}

class Pool {
 public:
  static Pool& Instance();

  std::shared_ptr<float[]> Allocate(int64_t numel);
  void Release(float* block, int64_t capacity, int cls);

  bool enabled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return enabled_;
  }
  void set_enabled(bool enabled) {
    std::lock_guard<std::mutex> lock(mu_);
    enabled_ = enabled;
  }

  void Trim();
  PoolStats GetStats() const;

  void EnterScope();
  void ExitScope();

  Pool()  // public for construct_at in Instance(); use Instance(), not this
      : enabled_(PoolEnabledFromEnv()),
        cap_bytes_(EnvInt64("MSD_POOL_CAP_MB", 512) * (1 << 20)) {}

 private:
  float* RawAllocate(int64_t capacity) {
    return std::allocator<float>().allocate(static_cast<size_t>(capacity));
  }
  void RawFree(float* block, int64_t capacity) {
    std::allocator<float>().deallocate(block, static_cast<size_t>(capacity));
  }

  void UpdateCachedGauge(int64_t bytes_cached) {
    static obs::Gauge& gauge =
        obs::MetricsRegistry::Global().GetGauge("tensor/pool_bytes_cached");
    gauge.Set(static_cast<double>(bytes_cached));
  }

  mutable std::mutex mu_;
  bool enabled_;
  int64_t cap_bytes_;
  int64_t bytes_cached_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t scope_depth_ = 0;
  std::vector<float*> free_lists_[kNumClasses];
};

// The block deleter embedded in every Tensor storage shared_ptr. Recycles
// cache-eligible blocks; oversize blocks free directly.
struct BlockDeleter {
  int64_t capacity = 0;
  int cls = kOversize;
  void operator()(float* block) const {
    Pool::Instance().Release(block, capacity, cls);
  }
};

Pool& Pool::Instance() {
  // Intentionally leaked (allocator + construct_at rather than a
  // function-local static object): block deleters can run during static
  // destruction — e.g. a static Tensor destroyed after main — and must find
  // the pool alive. Mirrors the leaked obs::MetricsRegistry::Global().
  // Cached blocks stay reachable through this pointer, so LeakSanitizer
  // does not report them.
  static Pool* instance = [] {
    Pool* p = std::allocator<Pool>().allocate(1);
    return std::construct_at(p);
  }();
  return *instance;
}

std::shared_ptr<float[]> Pool::Allocate(int64_t numel) {
  MSD_CHECK_GE(numel, 0);
  static obs::Counter& pool_hits =
      obs::MetricsRegistry::Global().GetCounter("tensor/pool_hits");
  static obs::Counter& pool_misses =
      obs::MetricsRegistry::Global().GetCounter("tensor/pool_misses");

  const int cls = ClassFor(numel);
  const int64_t capacity = cls == kOversize ? numel : ClassCapacity(cls);
  float* block = nullptr;
  if (cls != kOversize) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<float*>& list = free_lists_[cls];
    if (!list.empty()) {
      block = list.back();
      list.pop_back();
      bytes_cached_ -= capacity * static_cast<int64_t>(sizeof(float));
      ++hits_;
      UpdateCachedGauge(bytes_cached_);
    } else {
      ++misses_;
    }
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
  }
  if (block != nullptr) {
    pool_hits.Add(1);
  } else {
    pool_misses.Add(1);
    block = RawAllocate(capacity);
  }
  return std::shared_ptr<float[]>(block, BlockDeleter{capacity, cls});
}

void Pool::Release(float* block, int64_t capacity, int cls) {
  if (cls != kOversize) {
    const int64_t bytes = capacity * static_cast<int64_t>(sizeof(float));
    std::lock_guard<std::mutex> lock(mu_);
    if (enabled_ && bytes_cached_ + bytes <= cap_bytes_) {
      free_lists_[cls].push_back(block);
      bytes_cached_ += bytes;
      UpdateCachedGauge(bytes_cached_);
      return;
    }
  }
  RawFree(block, capacity);
}

void Pool::Trim() {
  std::lock_guard<std::mutex> lock(mu_);
  for (int cls = 0; cls < kNumClasses; ++cls) {
    for (float* block : free_lists_[cls]) RawFree(block, ClassCapacity(cls));
    free_lists_[cls].clear();
  }
  bytes_cached_ = 0;
  UpdateCachedGauge(0);
}

PoolStats Pool::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PoolStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.bytes_cached = bytes_cached_;
  for (int cls = 0; cls < kNumClasses; ++cls) {
    stats.blocks_cached += static_cast<int64_t>(free_lists_[cls].size());
  }
  return stats;
}

void Pool::EnterScope() {
  std::lock_guard<std::mutex> lock(mu_);
  ++scope_depth_;
}

void Pool::ExitScope() {
  bool outermost = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    MSD_CHECK_GT(scope_depth_, 0);
    outermost = --scope_depth_ == 0;
  }
  if (outermost) Trim();
}

}  // namespace

// msd-hot-path-safe: THE sanctioned hot-path allocator — steady state is a
// size-class freelist pop under a short lock, not a system allocation.
std::shared_ptr<float[]> AllocateShared(int64_t numel) {
  return Pool::Instance().Allocate(numel);
}

bool Enabled() { return Pool::Instance().enabled(); }

void SetEnabled(bool enabled) { Pool::Instance().set_enabled(enabled); }

void Trim() { Pool::Instance().Trim(); }

PoolStats GetStats() { return Pool::Instance().GetStats(); }

MemoryScope::MemoryScope() { Pool::Instance().EnterScope(); }

MemoryScope::~MemoryScope() { Pool::Instance().ExitScope(); }

}  // namespace pool
}  // namespace msd
