// Pure (non-differentiable) tensor kernels. The autograd layer composes
// these into differentiable ops; models should normally use the autograd
// wrappers instead of calling these directly.
//
// Binary elementwise ops follow NumPy broadcasting: shapes are right-aligned
// and a dimension of size 1 stretches to match its counterpart.
#ifndef MSDMIXER_TENSOR_TENSOR_OPS_H_
#define MSDMIXER_TENSOR_TENSOR_OPS_H_

#include <vector>

#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace msd {

// ---- Broadcasting --------------------------------------------------------

// The shape both inputs broadcast to; fatal if incompatible.
Shape BroadcastShapes(const Shape& a, const Shape& b);

// Materializes `t` broadcast to `target` (fatal if not broadcastable).
Tensor ExpandTo(const Tensor& t, const Shape& target);

// Sums `t` down to `target` shape, reversing a broadcast. Used by autograd
// to reduce an output gradient back to an input's shape.
Tensor ReduceTo(const Tensor& t, const Shape& target);

// ---- Elementwise binary (broadcasting) -----------------------------------
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);
Tensor Minimum(const Tensor& a, const Tensor& b);
// 1.0 where the predicate holds, else 0.0.
Tensor Greater(const Tensor& a, const Tensor& b);
Tensor GreaterEqual(const Tensor& a, const Tensor& b);

// Scalar conveniences.
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

// ---- Elementwise unary ----------------------------------------------------
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Relu(const Tensor& a);
// Exact GELU: 0.5 * x * (1 + erf(x / sqrt(2))).
Tensor Gelu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Clamp(const Tensor& a, float lo, float hi);
// -1, 0, or +1 per element.
Tensor Sign(const Tensor& a);
// Derivative of exact GELU: Phi(x) + x * phi(x).
Tensor GeluGrad(const Tensor& a);

// ---- Matrix multiplication -------------------------------------------------
// a: [..., m, k], b: [..., k, n] -> [..., m, n]; batch dims broadcast.
// Rank-2 x rank-2 is the plain matrix product. Backed by the blocked GEMM in
// tensor/gemm.h; results are bit-identical for any MSD_THREADS value.
Tensor MatMul(const Tensor& a, const Tensor& b);

// Fused variant: act(a @ b + bias), with `bias` an optional rank-1 [n]
// vector added per output row and the activation applied in the GEMM
// epilogue — no intermediate bias-add or pre-activation tensor is
// materialized. When `pre_out` is non-null and act != kIdentity it receives
// a @ b + bias (the value an activation backward differentiates at); for
// kIdentity it aliases the returned output.
Tensor MatMulEx(const Tensor& a, const Tensor& b, const Tensor& bias,
                gemm::Activation act, Tensor* pre_out = nullptr);

// ---- Reductions ------------------------------------------------------------
// Scalar (rank-0) total.
Tensor SumAll(const Tensor& a);
Tensor MeanAll(const Tensor& a);
float MaxAbs(const Tensor& a);

// Reduce over `dims` (each in [-rank, rank)). With keepdim the reduced axes
// stay as size-1 dims; otherwise they are removed.
Tensor Sum(const Tensor& a, std::vector<int64_t> dims, bool keepdim);
Tensor Mean(const Tensor& a, std::vector<int64_t> dims, bool keepdim);
Tensor MaxReduce(const Tensor& a, int64_t dim, bool keepdim);

// Index of the maximum along `dim` (ties -> lowest index), as floats.
Tensor ArgMax(const Tensor& a, int64_t dim);

// ---- Movement ---------------------------------------------------------------
// Reorders axes: out.dim(i) == in.dim(perm[i]). Materializes a new buffer.
Tensor Permute(const Tensor& a, const std::vector<int64_t>& perm);
// Swaps two axes.
Tensor Transpose(const Tensor& a, int64_t dim0, int64_t dim1);
// Elements [start, start+length) along `dim`.
Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t length);
// Concatenation along `dim`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& parts, int64_t dim);
// Pads `dim` with `value`: `before` elements in front, `after` at the back.
Tensor Pad(const Tensor& a, int64_t dim, int64_t before, int64_t after,
           float value);
// Stacks equal-shaped tensors along a new leading dimension.
Tensor Stack(const std::vector<Tensor>& parts);

// ---- Normalization helpers ---------------------------------------------------
Tensor Softmax(const Tensor& a, int64_t dim);

// ---- Caller-owned-output entry points (docs/COMPILER.md) -------------------
// The plan executor (serve/plan.h) replays a traced forward into
// preplanned arena buffers through these. Each allocating op above is a thin
// wrapper over its *Into twin, so the interpreted and planned paths run the
// same kernel loop — bit-identity between them holds by construction.
// `out` must be defined with the op's exact result shape (Sum: the kept
// element count; its shape may be the keepdim or squeezed form). An input
// may alias `out` exactly (same buffer, same numel — the planner's in-place
// reuse) but never partially.
void AddInto(const Tensor& a, const Tensor& b, Tensor& out);
void SubInto(const Tensor& a, const Tensor& b, Tensor& out);
void MulInto(const Tensor& a, const Tensor& b, Tensor& out);
void DivInto(const Tensor& a, const Tensor& b, Tensor& out);
void AddScalarInto(const Tensor& a, float s, Tensor& out);
void MulScalarInto(const Tensor& a, float s, Tensor& out);
void NegInto(const Tensor& a, Tensor& out);
void ExpInto(const Tensor& a, Tensor& out);
void LogInto(const Tensor& a, Tensor& out);
void SqrtInto(const Tensor& a, Tensor& out);
void AbsInto(const Tensor& a, Tensor& out);
void SquareInto(const Tensor& a, Tensor& out);
void ReluInto(const Tensor& a, Tensor& out);
void GeluInto(const Tensor& a, Tensor& out);
void SigmoidInto(const Tensor& a, Tensor& out);
void TanhInto(const Tensor& a, Tensor& out);
// act(a @ b + bias) into `out` (no pre-activation output: the frozen
// inference path never differentiates).
void MatMulExInto(const Tensor& a, const Tensor& b, const Tensor& bias,
                  gemm::Activation act, Tensor& out);
// Freeze-time helper for the serving planner: packs a rank-2 GEMM operand
// b [k, n] into the panel layout gemm::GemmPrepacked consumes, as a rank-1
// tensor of gemm::PackedBPanelFloats(k, n) floats.
Tensor PackGemmB(const Tensor& b);
// act(a @ b + bias) where `b_packed` came from PackGemmB of a [k, n] weight
// (shared-B products only: every batch row multiplies the same b). Bit-
// identical to MatMulExInto — GemmPrepacked is the exact tail of Gemm —
// minus the per-call B pack and its buffer.
void MatMulExPrepackedInto(const Tensor& a, const Tensor& b_packed, int64_t k,
                           int64_t n, const Tensor& bias, gemm::Activation act,
                           Tensor& out);
// Reduce over `dims` (already normalized: sorted, deduped, non-negative,
// non-empty). `out` holds the kept elements.
void SumInto(const Tensor& a, const std::vector<int64_t>& dims, Tensor& out);
void PermuteInto(const Tensor& a, const std::vector<int64_t>& perm,
                 Tensor& out);
void SliceInto(const Tensor& a, int64_t dim, int64_t start, int64_t length,
               Tensor& out);
void PadInto(const Tensor& a, int64_t dim, int64_t before, int64_t after,
             float value, Tensor& out);
// Straight element copy (same numel; shapes may differ by reshape).
void CopyInto(const Tensor& a, Tensor& out);

// Fused peephole kernels (plan-only; tensor_ops never records these — the
// planner rewrites recorded pairs into them). Each is bit-identical to the
// unfused pair: the first stage's result is rounded through the output
// buffer before the second stage reads it (see kernels.h Zip3KernelInto).
// (a - b) / c — the RevIN/scaler normalize chain.
void SubDivInto(const Tensor& a, const Tensor& b, const Tensor& c,
                Tensor& out);
// a * b + c — the denormalize / inverse-transform chain.
void MulAddInto(const Tensor& a, const Tensor& b, const Tensor& c,
                Tensor& out);
// a - Slice(src, dim, start, length) — the per-scale residual-subtract
// chain, without materializing the sliced component.
void SliceSubInto(const Tensor& a, const Tensor& src, int64_t dim,
                  int64_t start, int64_t length, Tensor& out);

// ---- Testing utilities --------------------------------------------------------
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-4f);
float MaxAbsDiff(const Tensor& a, const Tensor& b);
bool HasNonFinite(const Tensor& a);

// Normalizes an axis index (accepts negatives) against `rank`.
int64_t NormalizeDim(int64_t dim, int64_t rank);

}  // namespace msd

#endif  // MSDMIXER_TENSOR_TENSOR_OPS_H_
