// Int8 quantized GEMM kernel family for the planned serving path
// (docs/PERFORMANCE.md, docs/COMPILER.md).
//
// Scheme: weights are quantized once at session-freeze time — symmetric
// per-output-channel int8 (scale[j] = absmax of column j / 127, values
// round-to-nearest-even, saturated to [-127, 127]) — and packed into
// 8-wide column panels with consecutive k values interleaved in quads, so
// one 64-bit broadcast of four int16 activations feeds two vpmaddwd steps
// covering four ascending-k products for eight columns. Activations are
// quantized per request, per row (dynamic absmax -> scale), stored
// sign-extended as int16. The int8 x int8 products accumulate in int32
// registers; a fused dequant epilogue (acc * a_scale[m] * b_scale[n]) writes
// fp32 straight into C, and bias + activation run while the row tile is
// cache-hot — no int32 intermediate ever round-trips memory. The quantized
// epilogue shares gemm::EpilogueBiasAct except for gelu, where it uses a
// vectorized tanh-form approximation (~3e-4 absolute error, an order of
// magnitude below the int8 quantization noise) instead of the scalar
// std::erf that would otherwise dominate every gelu layer.
//
// Determinism contract (docs/RUNTIME.md): integer accumulation is exact, so
// blocking and thread count cannot change a single bit; the dequant and
// activation apply one fixed per-element float expression. Results are
// bit-identical for any MSD_THREADS value. The scalar fallback (sanitizer
// legs build with MSD_NATIVE_ARCH=OFF) computes the identical integer sums
// and the identical dequant expression, so a given build is deterministic
// end to end.
#ifndef MSDMIXER_TENSOR_QGEMM_H_
#define MSDMIXER_TENSOR_QGEMM_H_

#include <cstdint>

#include "tensor/gemm.h"

namespace msd {
namespace qgemm {

// Largest inner dimension the int32 accumulator provably cannot overflow
// (every int8 x int8 product is at most 127 * 127 = 16129, and k * 16129
// must stay below 2^31). QGemmPrepacked checks it; the planner gates
// quantization eligibility on it.
inline constexpr int64_t kMaxK = int64_t{1} << 17;

// int8 count of a packed weight panel for a [k, n] matrix: columns padded to
// the 8-wide panel, k padded to a multiple of four (pad values are zero and
// contribute nothing).
int64_t PackedQuantBInt8s(int64_t k, int64_t n);

// Float count of the per-channel scale vector: one scale per column, padded
// to the 8-wide panel so the dequant epilogue can load full vectors.
int64_t QuantBScaleFloats(int64_t n);

// int16 count of one quantized activation row: k padded to a multiple of
// four.
int64_t QuantARowInt16s(int64_t k);

// Freeze-time weight quantization: per-output-channel symmetric int8.
// `b` is [k, n] row-major; `packed` holds PackedQuantBInt8s(k, n) values in
// the quad-interleaved panel layout QGemmPrepacked consumes; `scales` holds
// QuantBScaleFloats(n) floats (scale[j] = absmax_j / 127; an all-zero column
// gets scale 0 and quantized values 0; padding scales are 0).
void QuantizeWeightsPerChannel(const float* b, int64_t k, int64_t n,
                               int8_t* packed, float* scales);

// Per-row dynamic activation quantization: scale[i] = absmax of row i / 127,
// values round-to-nearest-even (the ambient FE_TONEAREST mode), saturated to
// [-127, 127], stored as int16 with rows of QuantARowInt16s(k) (pad is
// zero). An all-zero row gets scale 0. Deterministic per row for any thread
// count.
void QuantizeActivationsPerRow(const float* a, int64_t m, int64_t k,
                               int16_t* a_q, float* a_scales);

// C[m,n] = act(float(sum_k a_q[i,kk] * b_q[kk,j]) * a_scale[i] * b_scale[j]
//              + bias[j]).
// `a_q`/`a_scales` come from QuantizeActivationsPerRow, `packed_b`/`b_scales`
// from QuantizeWeightsPerChannel. Same kMc row-tile parallel geometry as
// gemm::GemmPrepacked; `bias` is nullptr or n floats; every C element is
// written (c may be uninitialized). Requires k <= 2^17 so the int32
// accumulator cannot overflow (max |product| per step is 127*127 = 16129).
void QGemmPrepacked(const int16_t* a_q, const float* a_scales,
                    const int8_t* packed_b, const float* b_scales, float* c,
                    int64_t m, int64_t k, int64_t n, const float* bias,
                    gemm::Activation act);

}  // namespace qgemm
}  // namespace msd

#endif  // MSDMIXER_TENSOR_QGEMM_H_
