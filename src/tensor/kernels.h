// Unified kernel dispatch layer: generic elementwise / reduction templates
// that route every tensor kernel through the parallel runtime
// (runtime/parallel.h, docs/RUNTIME.md).
//
// MapKernel   — out[i] = f(a[i])
// ZipKernel   — broadcasted out[i] = f(a[...], b[...])
// ReduceKernel— whole-tensor reduction with fixed-order tree combine
//
// All three inherit the runtime's determinism contract: chunk boundaries
// derive from element counts and the grain constants below, never the
// thread count, so results are bit-identical for any MSD_THREADS value.
// Internal header: tensor kernels (tensor_ops.cc, conv.cc, fft.cc) only.
#ifndef MSDMIXER_TENSOR_KERNELS_H_
#define MSDMIXER_TENSOR_KERNELS_H_

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/check.h"
#include "common/debug.h"
#include "runtime/parallel.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace kernel {

#if MSD_DEBUG_CHECKS_ENABLED

// Shape/metadata consistency at kernel entry. Storage is always contiguous
// row-major in this library, so strides are derived from the shape; the
// invariant that can break (via memory corruption or a future view feature
// gone wrong) is the cached element count diverging from the shape product.
inline void DebugValidateTensor(const Tensor& t, const char* op) {
  MSD_CHECK(t.defined()) << "debug check: undefined tensor passed to " << op;
  MSD_CHECK_EQ(t.numel(), NumElementsOf(t.shape()))
      << "debug check: tensor metadata corrupted at entry of " << op
      << " (shape " << ShapeToString(t.shape()) << ")";
}

// Alias-overlap guard for elementwise kernels: every kernel writes a freshly
// allocated output, so any overlap with an input buffer means the allocator
// or a future in-place path handed out aliasing storage.
inline void DebugCheckNoAlias(const Tensor& out, const Tensor& in,
                              const char* op) {
  MSD_CHECK(!debug::RangesOverlap(
      out.data(), out.numel() * static_cast<int64_t>(sizeof(float)),
      in.data(), in.numel() * static_cast<int64_t>(sizeof(float))))
      << "debug check: output of " << op << " aliases an input buffer "
      << "(shapes " << ShapeToString(out.shape()) << " / "
      << ShapeToString(in.shape()) << ")";
}

// Alias policy for the *Into entry points, whose outputs are caller-owned
// (plan arena slots): an input either aliases the output EXACTLY (same base
// pointer and same element count — the planner's in-place reuse, safe for
// elementwise read-before-write at equal indices) or is fully disjoint.
// Partial overlap is always a bug.
inline void DebugCheckIntoAlias(const Tensor& out, const Tensor& in,
                                const char* op) {
  if (out.data() == in.data() && out.numel() == in.numel()) return;
  DebugCheckNoAlias(out, in, op);
}

#define MSD_DEBUG_VALIDATE_TENSOR(t, op) ::msd::kernel::DebugValidateTensor(t, op)
#define MSD_DEBUG_CHECK_NO_ALIAS(out, in, op) \
  ::msd::kernel::DebugCheckNoAlias(out, in, op)
#define MSD_DEBUG_CHECK_INTO_ALIAS(out, in, op) \
  ::msd::kernel::DebugCheckIntoAlias(out, in, op)

#else  // !MSD_DEBUG_CHECKS_ENABLED

// Arguments are referenced (but not evaluated) so loop variables that exist
// only to be validated do not trip -Wunused-variable.
#define MSD_DEBUG_VALIDATE_TENSOR(t, op) \
  ((void)sizeof(&(t)), (void)(op))
#define MSD_DEBUG_CHECK_NO_ALIAS(out, in, op) \
  ((void)sizeof(&(out)), (void)sizeof(&(in)), (void)(op))
#define MSD_DEBUG_CHECK_INTO_ALIAS(out, in, op) \
  ((void)sizeof(&(out)), (void)sizeof(&(in)), (void)(op))

#endif  // MSD_DEBUG_CHECKS_ENABLED

// Minimum elements per chunk for elementwise kernels: small enough to spread
// mixer-sized tensors across the pool, large enough that chunk dispatch is
// noise next to the loop body. Chunk *boundaries* derive from these grains
// and the element count only — never the thread count.
inline constexpr int64_t kElementwiseGrain = 4096;
// Reductions chunk coarser: each chunk's partial costs a combine step.
inline constexpr int64_t kReduceGrain = 8192;

// Grain for loops whose iteration does `work` elements' worth of compute
// (rows, matrices, memcpy blocks): aims chunks at ~kElementwiseGrain
// elements each.
inline int64_t GrainForWork(int64_t work) {
  return std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(1, work));
}

// Strides for `shape` right-aligned into the rank of `out`, with 0 stride
// for broadcast (size-1 against larger) dimensions.
inline std::vector<int64_t> BroadcastStrides(const Shape& shape,
                                             const Shape& out) {
  const int64_t out_rank = static_cast<int64_t>(out.size());
  const int64_t in_rank = static_cast<int64_t>(shape.size());
  const auto in_strides = RowMajorStrides(shape);
  std::vector<int64_t> strides(static_cast<size_t>(out_rank), 0);
  for (int64_t i = 0; i < in_rank; ++i) {
    const int64_t out_axis = out_rank - in_rank + i;
    if (shape[static_cast<size_t>(i)] == out[static_cast<size_t>(out_axis)]) {
      strides[static_cast<size_t>(out_axis)] =
          in_strides[static_cast<size_t>(i)];
    } else {
      MSD_CHECK_EQ(shape[static_cast<size_t>(i)], 1)
          << "shape " << ShapeToString(shape) << " does not broadcast to "
          << ShapeToString(out);
      strides[static_cast<size_t>(out_axis)] = 0;
    }
  }
  return strides;
}

// True when `suffix` equals the trailing dims of `shape` (so a contiguous
// buffer of the suffix shape tiles the larger one exactly).
inline bool IsSuffixShape(const Shape& suffix, const Shape& shape) {
  if (suffix.size() > shape.size()) return false;
  for (size_t i = 0; i < suffix.size(); ++i) {
    if (suffix[suffix.size() - 1 - i] != shape[shape.size() - 1 - i]) {
      return false;
    }
  }
  return true;
}

// Unflattens linear index `i` of `shape` into `index` and returns the dot
// product with `strides` — the chunk-entry offset for strided kernels.
inline int64_t UnflattenOffset(int64_t i, const Shape& shape,
                               const std::vector<int64_t>& strides,
                               std::vector<int64_t>& index) {
  int64_t off = 0;
  for (int64_t axis = static_cast<int64_t>(shape.size()) - 1; axis >= 0;
       --axis) {
    const size_t u = static_cast<size_t>(axis);
    index[u] = i % shape[u];
    i /= shape[u];
    off += index[u] * strides[u];
  }
  return off;
}

// MapKernelInto: elementwise unary op into a caller-owned output (same
// shape). The allocating MapKernel below delegates here, so the interpreted
// and planned paths execute the same loop — bit-identity by construction.
template <typename F>
void MapKernelInto(const Tensor& a, Tensor& out, F f) {
  MSD_CHECK(a.defined());
  MSD_CHECK(out.defined());
  MSD_DEBUG_VALIDATE_TENSOR(a, "MapKernel");
  MSD_CHECK(out.shape() == a.shape())
      << "MapKernelInto output shape " << ShapeToString(out.shape())
      << " != input " << ShapeToString(a.shape());
  MSD_DEBUG_CHECK_INTO_ALIAS(out, a, "MapKernel");
  const float* pa = a.data();
  float* po = out.data();
  runtime::ParallelFor(0, a.numel(), kElementwiseGrain,
                       [&](int64_t cb, int64_t ce) {
                         for (int64_t i = cb; i < ce; ++i) po[i] = f(pa[i]);
                       });
}

// MapKernel: elementwise unary op, parallel over fixed chunks.
template <typename F>
Tensor MapKernel(const Tensor& a, F f) {
  MSD_CHECK(a.defined());
  Tensor out = Tensor::Uninitialized(a.shape());
  MapKernelInto(a, out, f);
  return out;
}

// ZipKernelInto: broadcasted elementwise binary op into a caller-owned
// output of the broadcast shape. Each output element is written by exactly
// one chunk, so results are independent of chunk execution order. An input
// may alias the output exactly (planner in-place reuse): every path below
// reads input element i no later than it writes output element i.
template <typename F>
void ZipKernelInto(const Tensor& a, const Tensor& b, Tensor& out, F f) {
  MSD_CHECK(a.defined());
  MSD_CHECK(b.defined());
  MSD_CHECK(out.defined());
  MSD_DEBUG_VALIDATE_TENSOR(a, "ZipKernel");
  MSD_DEBUG_VALIDATE_TENSOR(b, "ZipKernel");
  MSD_DEBUG_CHECK_INTO_ALIAS(out, a, "ZipKernel");
  MSD_DEBUG_CHECK_INTO_ALIAS(out, b, "ZipKernel");
  // Fast path: identical shapes.
  if (a.shape() == b.shape()) {
    MSD_CHECK(out.shape() == a.shape())
        << "ZipKernelInto output shape " << ShapeToString(out.shape())
        << " != broadcast " << ShapeToString(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    runtime::ParallelFor(0, out.numel(), kElementwiseGrain,
                         [&](int64_t cb, int64_t ce) {
                           for (int64_t i = cb; i < ce; ++i) {
                             po[i] = f(pa[i], pb[i]);
                           }
                         });
    return;
  }
  // Fast path: one side tiles the other as a suffix (e.g. bias add) — the
  // common case in Linear layers and per-channel scaling. `b_tiles_a`
  // preserves the argument order of `f` when b is the large side.
  const bool b_tiles_a = b.numel() > 0 && IsSuffixShape(b.shape(), a.shape());
  const bool a_tiles_b = a.numel() > 0 && IsSuffixShape(a.shape(), b.shape());
  if (b_tiles_a || a_tiles_b) {
    const Tensor& big = b_tiles_a ? a : b;
    const Tensor& small = b_tiles_a ? b : a;
    MSD_CHECK(out.shape() == big.shape())
        << "ZipKernelInto output shape " << ShapeToString(out.shape())
        << " != broadcast " << ShapeToString(big.shape());
    const float* pbig = big.data();
    const float* psmall = small.data();
    float* po = out.data();
    const int64_t inner = small.numel();
    const int64_t outer = big.numel() / inner;
    runtime::ParallelFor(0, outer, GrainForWork(inner),
                         [&](int64_t cb, int64_t ce) {
      for (int64_t o = cb; o < ce; ++o) {
        const float* row = pbig + o * inner;
        float* dst = po + o * inner;
        if (b_tiles_a) {
          for (int64_t i = 0; i < inner; ++i) dst[i] = f(row[i], psmall[i]);
        } else {
          for (int64_t i = 0; i < inner; ++i) dst[i] = f(psmall[i], row[i]);
        }
      }
    });
    return;
  }
  // General case: odometer walk over the broadcast output shape. Each chunk
  // re-derives its input offsets from its first linear index, so chunks are
  // independent.
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  MSD_CHECK(out.shape() == out_shape)
      << "ZipKernelInto output shape " << ShapeToString(out.shape())
      << " != broadcast " << ShapeToString(out_shape);
  const auto sa = BroadcastStrides(a.shape(), out_shape);
  const auto sb = BroadcastStrides(b.shape(), out_shape);
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  runtime::ParallelFor(0, out.numel(), kElementwiseGrain,
                       [&](int64_t cb, int64_t ce) {
    std::vector<int64_t> index(static_cast<size_t>(rank), 0);
    int64_t oa = UnflattenOffset(cb, out_shape, sa, index);
    int64_t ob = UnflattenOffset(cb, out_shape, sb, index);
    for (int64_t i = cb; i < ce; ++i) {
      po[i] = f(pa[oa], pb[ob]);
      // Odometer increment.
      for (int64_t axis = rank - 1; axis >= 0; --axis) {
        const size_t u = static_cast<size_t>(axis);
        ++index[u];
        oa += sa[u];
        ob += sb[u];
        if (index[u] < out_shape[u]) break;
        oa -= sa[u] * out_shape[u];
        ob -= sb[u] * out_shape[u];
        index[u] = 0;
      }
    }
  });
}

// ZipKernel: broadcasted elementwise binary op, parallel over the output.
template <typename F>
Tensor ZipKernel(const Tensor& a, const Tensor& b, F f) {
  MSD_CHECK(a.defined());
  MSD_CHECK(b.defined());
  Tensor out = Tensor::Uninitialized(BroadcastShapes(a.shape(), b.shape()));
  ZipKernelInto(a, b, out, f);
  return out;
}

// Zip3KernelInto: fused ternary op out = g(f(a, b), c), the kernel behind
// the planner's SubDiv/MulAdd peepholes. Evaluated in TWO chunk-local
// passes: pass 1 writes f(a, b) into the output chunk, pass 2 folds c in
// reading the stored value back. The memory round-trip forces f's result to
// a rounded float32 exactly like the unfused op pair did, so the fusion is
// bit-identical by construction — a single-expression g(f(a,b),c) would let
// the compiler contract a*b+c into an FMA (-ffp-contract) and change bits.
// The chunk (<= kElementwiseGrain elements) stays cache-resident between
// passes, which is where the fusion's bandwidth win comes from.
template <typename F, typename G>
void Zip3KernelInto(const Tensor& a, const Tensor& b, const Tensor& c,
                    Tensor& out, F f, G g) {
  MSD_CHECK(a.defined());
  MSD_CHECK(b.defined());
  MSD_CHECK(c.defined());
  MSD_CHECK(out.defined());
  MSD_DEBUG_VALIDATE_TENSOR(a, "Zip3Kernel");
  MSD_DEBUG_VALIDATE_TENSOR(b, "Zip3Kernel");
  MSD_DEBUG_VALIDATE_TENSOR(c, "Zip3Kernel");
  // Pass 2 reads c after pass 1 overwrote the output chunk, so c may never
  // alias the output (the planner only reuses the first operand's slot).
  MSD_DEBUG_CHECK_INTO_ALIAS(out, a, "Zip3Kernel");
  MSD_DEBUG_CHECK_NO_ALIAS(out, b, "Zip3Kernel");
  MSD_DEBUG_CHECK_NO_ALIAS(out, c, "Zip3Kernel");
  const Shape out_shape =
      BroadcastShapes(BroadcastShapes(a.shape(), b.shape()), c.shape());
  MSD_CHECK(out.shape() == out_shape)
      << "Zip3KernelInto output shape " << ShapeToString(out.shape())
      << " != broadcast " << ShapeToString(out_shape);
  const auto sa = BroadcastStrides(a.shape(), out_shape);
  const auto sb = BroadcastStrides(b.shape(), out_shape);
  const auto sc = BroadcastStrides(c.shape(), out_shape);
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  const float* pa = a.data();
  const float* pb = b.data();
  const float* pc = c.data();
  float* po = out.data();
  // Contiguity (stride pattern == full row-major) lets a pass run as a
  // dense loop instead of the odometer.
  const auto dense = RowMajorStrides(out_shape);
  const bool a_dense = sa == dense;
  const bool b_dense = sb == dense;
  const bool c_dense = sc == dense;
  runtime::ParallelFor(0, out.numel(), kElementwiseGrain,
                       [&](int64_t cb, int64_t ce) {
    std::vector<int64_t> index(static_cast<size_t>(rank), 0);
    // Pass 1: out[i] = f(a, b) over the chunk.
    if (a_dense && b_dense) {
      for (int64_t i = cb; i < ce; ++i) po[i] = f(pa[i], pb[i]);
    } else {
      int64_t oa = UnflattenOffset(cb, out_shape, sa, index);
      int64_t ob = UnflattenOffset(cb, out_shape, sb, index);
      for (int64_t i = cb; i < ce; ++i) {
        po[i] = f(pa[oa], pb[ob]);
        for (int64_t axis = rank - 1; axis >= 0; --axis) {
          const size_t u = static_cast<size_t>(axis);
          ++index[u];
          oa += sa[u];
          ob += sb[u];
          if (index[u] < out_shape[u]) break;
          oa -= sa[u] * out_shape[u];
          ob -= sb[u] * out_shape[u];
          index[u] = 0;
        }
      }
    }
    // Pass 2: out[i] = g(out[i], c) over the same (cache-hot) chunk.
    if (c_dense) {
      for (int64_t i = cb; i < ce; ++i) po[i] = g(po[i], pc[i]);
    } else {
      std::fill(index.begin(), index.end(), 0);
      int64_t oc = UnflattenOffset(cb, out_shape, sc, index);
      for (int64_t i = cb; i < ce; ++i) {
        po[i] = g(po[i], pc[oc]);
        for (int64_t axis = rank - 1; axis >= 0; --axis) {
          const size_t u = static_cast<size_t>(axis);
          ++index[u];
          oc += sc[u];
          if (index[u] < out_shape[u]) break;
          oc -= sc[u] * out_shape[u];
          index[u] = 0;
        }
      }
    }
  });
}

// ReduceKernel: whole-tensor reduction. Per-chunk partials are combined with
// runtime::ParallelReduce's fixed-order tree, so the result is bit-identical
// for every MSD_THREADS value. T must not be bool (std::vector<bool> packs
// bits and concurrent chunk writes would race) — use int for predicates.
template <typename T, typename MapFn, typename CombineFn>
T ReduceKernel(const Tensor& a, T identity, const MapFn& map_chunk,
               const CombineFn& combine) {
  static_assert(!std::is_same_v<T, bool>,
                "use int partials: vector<bool> bits race across chunks");
  MSD_CHECK(a.defined());
  return runtime::ParallelReduce(0, a.numel(), kReduceGrain, identity,
                                 map_chunk, combine);
}

}  // namespace kernel
}  // namespace msd

#endif  // MSDMIXER_TENSOR_KERNELS_H_
