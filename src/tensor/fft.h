// Fast Fourier transform utilities (iterative radix-2 Cooley-Tukey) used for
// period detection (TimesNet-style) and spectral analysis. Real-input
// helpers return amplitude spectra; lengths that are not powers of two are
// handled by zero-padding for spectra and by the O(n^2) DFT for exact needs.
#ifndef MSDMIXER_TENSOR_FFT_H_
#define MSDMIXER_TENSOR_FFT_H_

#include <complex>
#include <vector>

#include "tensor/tensor.h"

namespace msd {

// In-place radix-2 FFT; size must be a power of two. inverse=true applies
// the unscaled inverse transform (caller divides by n if desired).
void Fft(std::vector<std::complex<double>>& data, bool inverse = false);

// Real-input FFT: fills `out` with X_k for k = 0..n/2 (the non-redundant
// half; the rest follows from conjugate symmetry) of the n real samples at
// `in`. Computed as an n/2-point complex FFT over even/odd sample pairs
// plus an untangling pass — roughly half the work of a full complex
// transform. n must be a power of two.
void Rfft(const double* in, size_t n, std::vector<std::complex<double>>& out);

// Amplitude spectrum |X_k| for k = 0..n/2 of a real signal, computed with a
// zero-padded power-of-two FFT. `values` may have any length.
std::vector<double> AmplitudeSpectrum(const std::vector<float>& values);

// The `top_k` dominant periods of a [C, L] series (amplitudes averaged over
// channels, frequency 0 excluded), mapped to integer periods L/k, deduped,
// clamped to [2, L/2]. Mirrors TimesNet's FFT-based period selection.
std::vector<int64_t> TopPeriodsFft(const Tensor& series, int64_t top_k);

}  // namespace msd

#endif  // MSDMIXER_TENSOR_FFT_H_
