// Cache-blocked, register-tiled single-precision GEMM with fused epilogues —
// the hot-path compute engine behind MatMul/MatMulEx (docs/PERFORMANCE.md).
//
// Scheme (BLIS-style): B is packed once into kNr-wide column panels, then
// the output is walked in kMc-row tiles; within a tile, kKc-deep slices of A
// are packed into kMr-row panels and an 8x8 register-tile micro-kernel
// accumulates C. The optional epilogue (bias add + activation) runs per row
// tile while C is still cache-hot, so fused Linear layers never materialize
// the intermediate pre-activation tensor.
//
// Determinism contract (docs/RUNTIME.md): tile geometry is a pure function
// of (m, k, n); runtime::ParallelFor distributes whole row tiles, each
// written by exactly one chunk; every C element accumulates in ascending-k
// order regardless of blocking boundaries or thread count. Results are
// bit-identical for any MSD_THREADS value.
#ifndef MSDMIXER_TENSOR_GEMM_H_
#define MSDMIXER_TENSOR_GEMM_H_

#include <cstdint>

namespace msd {
namespace gemm {

// Epilogue activation fused into the GEMM output pass. Formulas match the
// elementwise kernels in tensor_ops.cc exactly (same expressions, so a fused
// layer and a composed MatMul+Add+Act agree to the last code path).
enum class Activation { kIdentity, kRelu, kGelu, kTanh, kSigmoid };

// C[m,n] = act(A[m,k] @ B[k,n] + bias[n]).
//  * `c` may be uninitialized; every element is written (no zero-fill pass).
//  * `bias` is nullptr (none) or n floats.
//  * `pre`, when non-null, receives the pre-activation A@B + bias — the
//    value autograd needs for activation backward. Ignored for kIdentity.
// Parallel over row tiles via runtime::ParallelFor; safe to call from inside
// a parallel region (nested loops run inline per the runtime contract).
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, const float* bias = nullptr,
          Activation act = Activation::kIdentity, float* pre = nullptr);

// The shared bias+activation epilogue: bias add (when non-null) and `act`
// over `rows` contiguous C rows of width n, applied while the tile is
// cache-hot. `pre`, when non-null, receives the post-bias pre-activation.
// Exposed so the quantized kernel (tensor/qgemm.h) fuses its dequant output
// into the exact same formulas — one epilogue, every GEMM flavor.
void EpilogueBiasAct(float* c, float* pre, int64_t rows, int64_t n,
                     const float* bias, Activation act);

// Split form for batched products that reuse one B: pack once, multiply
// many. `packed` must hold PackedBPanelFloats(k, n) floats.
int64_t PackedBPanelFloats(int64_t k, int64_t n);
void PackB(const float* b, int64_t k, int64_t n, float* packed);
void GemmPrepacked(const float* a, const float* packed_b, float* c, int64_t m,
                   int64_t k, int64_t n, const float* bias, Activation act,
                   float* pre);

}  // namespace gemm
}  // namespace msd

#endif  // MSDMIXER_TENSOR_GEMM_H_
