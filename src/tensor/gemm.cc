#include "tensor/gemm.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.h"
#include "runtime/parallel.h"
#include "tensor/kernels.h"
#include "tensor/pool.h"

namespace msd {
namespace gemm {

namespace {

// Register tile: 8 rows x 8 columns of C accumulate in registers (one
// 8-float vector per row on AVX2+; GCC vectorizes the fixed-bound j loops).
constexpr int64_t kMr = 8;
constexpr int64_t kNr = 8;
// Cache blocking: kMc rows of C per parallel tile (the unit ParallelFor
// distributes), kKc-deep A/B slices so a packed B panel (kKc * kNr floats =
// 8 KiB) and the A panel stay resident in L1/L2 across the tile.
constexpr int64_t kMc = 64;
constexpr int64_t kKc = 256;

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Packs the [mc, kc] block of A starting at `a` (row stride `lda`) into
// kMr-row panels: panel ip holds columns kk = 0..kc-1 as 8 consecutive
// row values, zero-padded past mc so the micro-kernel never branches on row
// count (padded rows compute into accumulator lanes that are never stored).
void PackA(const float* a, int64_t lda, int64_t mc, int64_t kc, float* packed) {
  const int64_t panels = CeilDiv(mc, kMr);
  for (int64_t ip = 0; ip < panels; ++ip) {
    float* dst = packed + ip * kMr * kc;
    const int64_t rows = std::min(kMr, mc - ip * kMr);
    for (int64_t ii = 0; ii < rows; ++ii) {
      const float* src = a + (ip * kMr + ii) * lda;
      for (int64_t kk = 0; kk < kc; ++kk) dst[kk * kMr + ii] = src[kk];
    }
    for (int64_t ii = rows; ii < kMr; ++ii) {
      for (int64_t kk = 0; kk < kc; ++kk) dst[kk * kMr + ii] = 0.0f;
    }
  }
}

// One C row of the register tile (kNr floats). Explicit GCC vector type:
// the scalar x vector broadcast-FMA form below compiles to one fused
// multiply-add per row per k step, where plain nested loops tempt the
// auto-vectorizer into cross-row permute shuffles that run ~2x slower.
// aligned(4) permits unaligned loads; may_alias makes the float* punning
// well-defined.
typedef float V8
    __attribute__((vector_size(kNr * sizeof(float)), aligned(4), may_alias));

// Loads/stores go through pointer casts rather than helpers that take or
// return V8 by value: without AVX (sanitizer legs build with
// -DMSD_NATIVE_ARCH=OFF) a 32-byte vector in a function signature trips
// -Werror=psabi, while pointers to vector types have a stable ABI.
const V8* AsV8(const float* p) { return reinterpret_cast<const V8*>(p); }
V8* AsV8(float* p) { return reinterpret_cast<V8*>(p); }

// 8x8 micro-kernel: C_tile (+)= Ap @ Bp over a kc-deep slice. `first` means
// this is the k=0 slice, so the accumulator starts at zero and C (which may
// be uninitialized) is not read. Rows/cols beyond mr/nr are computed against
// packed zero padding and simply not stored.
void MicroKernel(const float* ap, const float* bp, int64_t kc, float* c,
                 int64_t ldc, bool first, int64_t mr, int64_t nr) {
  const bool full = mr == kMr && nr == kNr;
  V8 acc[kMr];
  if (first) {
    for (int64_t i = 0; i < kMr; ++i) acc[i] = V8{};
  } else if (full) {
    for (int64_t i = 0; i < kMr; ++i) acc[i] = *AsV8(c + i * ldc);
  } else {
    float edge[kMr][kNr] = {};
    for (int64_t i = 0; i < mr; ++i) {
      for (int64_t j = 0; j < nr; ++j) edge[i][j] = c[i * ldc + j];
    }
    for (int64_t i = 0; i < kMr; ++i) acc[i] = *AsV8(edge[i]);
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const V8 bv = *AsV8(bp + kk * kNr);
    const float* arow = ap + kk * kMr;
    for (int64_t i = 0; i < kMr; ++i) acc[i] += arow[i] * bv;
  }
  if (full) {
    for (int64_t i = 0; i < kMr; ++i) *AsV8(c + i * ldc) = acc[i];
  } else {
    float edge[kMr][kNr];
    for (int64_t i = 0; i < mr; ++i) *AsV8(edge[i]) = acc[i];
    for (int64_t i = 0; i < mr; ++i) {
      for (int64_t j = 0; j < nr; ++j) c[i * ldc + j] = edge[i][j];
    }
  }
}

// msd-hot-path-safe: thread-local grow-only pack scratch. Capacity is
// bounded by kMc * kKc floats (64 KiB), so each worker allocates at most
// once and every later GEMM reuses the buffer — no pool lookups and no
// shared_ptr churn from inside the parallel region, which is what lets the
// planned serving path (serve/plan.h) run with zero steady-state pool
// traffic. PackA fully writes every element the micro-kernel reads, so a
// dirty recycled buffer is fine (the pool made the same promise).
float* APackScratch(int64_t floats) {
  struct Scratch {
    float* data = nullptr;
    int64_t cap = 0;
    ~Scratch() {
      if (data != nullptr) {
        std::allocator<float>().deallocate(data, static_cast<size_t>(cap));
      }
    }
  };
  thread_local Scratch scratch;
  if (floats > scratch.cap) {
    if (scratch.data != nullptr) {
      std::allocator<float>().deallocate(scratch.data,
                                         static_cast<size_t>(scratch.cap));
    }
    scratch.data = std::allocator<float>().allocate(static_cast<size_t>(floats));
    scratch.cap = floats;
  }
  return scratch.data;
}

}  // namespace

// Bias add + activation over `rows` finished C rows, applied while the tile
// is cache-hot. Formulas are byte-for-byte those of tensor_ops.cc's Relu /
// Gelu / Sigmoid / Tanh kernels. `pre` (optional) receives the post-bias
// pre-activation values. Public (gemm.h) so the quantized kernel's dequant
// output runs through the very same expressions.
void EpilogueBiasAct(float* c, float* pre, int64_t rows, int64_t n,
                     const float* bias, Activation act) {
  for (int64_t r = 0; r < rows; ++r) {
    float* row = c + r * n;
    float* pre_row = pre == nullptr ? nullptr : pre + r * n;
    if (bias != nullptr) {
      for (int64_t j = 0; j < n; ++j) row[j] += bias[j];
    }
    if (pre_row != nullptr && act != Activation::kIdentity) {
      for (int64_t j = 0; j < n; ++j) pre_row[j] = row[j];
    }
    switch (act) {
      case Activation::kIdentity:
        break;
      case Activation::kRelu:
        for (int64_t j = 0; j < n; ++j) {
          row[j] = row[j] > 0.0f ? row[j] : 0.0f;
        }
        break;
      case Activation::kGelu:
        for (int64_t j = 0; j < n; ++j) {
          const float x = row[j];
          row[j] = 0.5f * x * (1.0f + std::erf(x * 0.70710678118654752f));
        }
        break;
      case Activation::kTanh:
        for (int64_t j = 0; j < n; ++j) row[j] = std::tanh(row[j]);
        break;
      case Activation::kSigmoid:
        for (int64_t j = 0; j < n; ++j) {
          row[j] = 1.0f / (1.0f + std::exp(-row[j]));
        }
        break;
    }
  }
}

int64_t PackedBPanelFloats(int64_t k, int64_t n) {
  return CeilDiv(n, kNr) * kNr * std::max<int64_t>(k, 1);
}

void PackB(const float* b, int64_t k, int64_t n, float* packed) {
  const int64_t n_panels = CeilDiv(n, kNr);
  // Panel jp holds columns [jp*kNr, jp*kNr + kNr) for every k, kk-major,
  // zero-padded past n. Each packed element is written by exactly one chunk.
  runtime::ParallelFor(0, n_panels, kernel::GrainForWork(k * kNr),
                       [&](int64_t pb, int64_t pe) {
    for (int64_t jp = pb; jp < pe; ++jp) {
      float* dst = packed + jp * k * kNr;
      const int64_t j0 = jp * kNr;
      const int64_t cols = std::min(kNr, n - j0);
      for (int64_t kk = 0; kk < k; ++kk) {
        const float* src = b + kk * n + j0;
        for (int64_t jj = 0; jj < cols; ++jj) dst[kk * kNr + jj] = src[jj];
        for (int64_t jj = cols; jj < kNr; ++jj) dst[kk * kNr + jj] = 0.0f;
      }
    }
  });
}

// msd-hot-path: innermost training/serving compute kernel.
void GemmPrepacked(const float* a, const float* packed_b, float* c, int64_t m,
                   int64_t k, int64_t n, const float* bias, Activation act,
                   float* pre) {
  if (m == 0 || n == 0) return;
  const int64_t row_tiles = CeilDiv(m, kMc);
  const int64_t n_panels = CeilDiv(n, kNr);
  // One whole row tile per loop iteration: the chunk partition (a pure
  // function of row_tiles and the grain) decides only which thread runs a
  // tile, never how the tile accumulates.
  runtime::ParallelFor(0, row_tiles, 1, [&](int64_t tb, int64_t te) {
    float* a_pack = APackScratch(kMc * std::min(k, kKc));
    for (int64_t t = tb; t < te; ++t) {
      const int64_t i0 = t * kMc;
      const int64_t mc = std::min(kMc, m - i0);
      const int64_t m_panels = CeilDiv(mc, kMr);
      if (k == 0) {
        // Empty inner dimension: the product is all zeros by convention.
        std::fill(c + i0 * n, c + (i0 + mc) * n, 0.0f);
      }
      for (int64_t kc0 = 0; kc0 < k; kc0 += kKc) {
        const int64_t kc = std::min(kKc, k - kc0);
        PackA(a + i0 * k + kc0, k, mc, kc, a_pack);
        const bool first = kc0 == 0;
        for (int64_t jp = 0; jp < n_panels; ++jp) {
          const float* bp = packed_b + jp * k * kNr + kc0 * kNr;
          const int64_t j0 = jp * kNr;
          const int64_t nr = std::min(kNr, n - j0);
          for (int64_t ip = 0; ip < m_panels; ++ip) {
            const int64_t mr = std::min(kMr, mc - ip * kMr);
            MicroKernel(a_pack + ip * kMr * kc, bp, kc,
                        c + (i0 + ip * kMr) * n + j0, n, first, mr, nr);
          }
        }
      }
      if (bias != nullptr || act != Activation::kIdentity) {
        EpilogueBiasAct(c + i0 * n, pre == nullptr ? nullptr : pre + i0 * n,
                        mc, n, bias, act);
      }
    }
  });
}

// msd-hot-path: innermost training/serving compute kernel.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, const float* bias, Activation act, float* pre) {
  if (m == 0 || n == 0) return;
  std::shared_ptr<float[]> packed = pool::AllocateShared(PackedBPanelFloats(k, n));
  PackB(b, k, n, packed.get());
  GemmPrepacked(a, packed.get(), c, m, k, n, bias, act, pre);
}

}  // namespace gemm
}  // namespace msd
