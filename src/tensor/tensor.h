// Dense N-dimensional float32 tensor.
//
// Design notes:
//  * Storage is always contiguous in row-major order. Operations that would
//    produce non-contiguous views (Permute, Slice, ...) materialize a new
//    buffer; this keeps every kernel a simple linear loop and makes the
//    memory model trivial to reason about.
//  * Copying a Tensor is cheap: copies share the underlying buffer
//    (shared_ptr), like torch::Tensor. Use Clone() for a deep copy. In-place
//    mutation through data() is visible to all aliases.
//  * Shape errors are programming errors and fail fast via MSD_CHECK.
#ifndef MSDMIXER_TENSOR_TENSOR_H_
#define MSDMIXER_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace msd {

using Shape = std::vector<int64_t>;

// Number of elements implied by a shape (product of dims; 1 for rank-0).
int64_t NumElementsOf(const Shape& shape);

// Row-major strides for a shape.
std::vector<int64_t> RowMajorStrides(const Shape& shape);

// Human-readable "[2, 3, 4]" rendering.
std::string ShapeToString(const Shape& shape);

class Tensor {
 public:
  // Default-constructed tensors are "undefined" and only support defined().
  Tensor() = default;

  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  // Tensor with explicit contents; values.size() must match the shape.
  Tensor(Shape shape, std::vector<float> values);

  // ---- Factories ----------------------------------------------------------
  // Allocates without initializing contents; for kernels that overwrite
  // every element. Never expose an Uninitialized tensor without filling it.
  static Tensor Uninitialized(Shape shape);
  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, float value);
  static Tensor Scalar(float value);
  // [0, 1, ..., n-1] as a rank-1 tensor.
  static Tensor Arange(int64_t n);
  // I.i.d. uniform in [lo, hi).
  static Tensor RandUniform(Shape shape, float lo, float hi, Rng& rng);
  // I.i.d. normal(mean, stddev).
  static Tensor RandNormal(Shape shape, float mean, float stddev, Rng& rng);
  // Wraps caller-owned storage (e.g. a plan arena slot) without touching the
  // pool: `data` must stay valid while `owner` is held. The view is a full
  // Tensor — kernels can read and write it — but Reshape/copies share the
  // external buffer exactly like pool-backed storage.
  static Tensor FromExternal(Shape shape, float* data,
                             std::shared_ptr<void> owner);

  // ---- Introspection ------------------------------------------------------
  bool defined() const { return storage_ != nullptr; }
  int64_t rank() const { return static_cast<int64_t>(shape_.size()); }
  const Shape& shape() const { return shape_; }
  int64_t dim(int64_t axis) const;
  int64_t numel() const { return numel_; }

  float* data();
  const float* data() const;

  // Element access by multi-index (bounds-checked); for tests and small code.
  float at(std::initializer_list<int64_t> index) const;
  void set(std::initializer_list<int64_t> index, float value);

  // Value of a 1-element tensor (any rank).
  float item() const;

  // ---- Basic transformations ---------------------------------------------
  // Deep copy with its own buffer.
  Tensor Clone() const;

  // Reinterprets the buffer with a new shape (shares storage). One dimension
  // may be -1 and is inferred. Element count must match.
  Tensor Reshape(Shape new_shape) const;

  // Copies contents of `src` (same numel) into this tensor's buffer.
  void CopyFrom(const Tensor& src);

  // Sets every element to `value`.
  void Fill(float value);

  // Renders small tensors for debugging; large ones are summarized.
  std::string ToString() const;

 private:
  std::shared_ptr<float[]> storage_;
  Shape shape_;
  int64_t numel_ = 0;
};

}  // namespace msd

#endif  // MSDMIXER_TENSOR_TENSOR_H_
