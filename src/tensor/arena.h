// Single-allocation activation arena (docs/COMPILER.md).
//
// The freeze-time planner (serve/plan.h) computes one static offset per
// intermediate buffer of a traced forward pass; an Arena is the backing
// storage those offsets index into. Unlike the size-class pool (pool.h),
// which serves dynamically-shaped allocations one block at a time, an Arena
// is allocated exactly once — at plan-compile time — and every request
// thereafter reuses the same bytes with zero allocator traffic: no pool
// lookups, no shared_ptr churn, no system calls.
//
// Semantics:
//  * Offsets handed to the planner are kAlignment-aligned so every buffer
//    view starts on a cache line / vector-register boundary.
//  * The arena never zeroes its contents; plan steps overwrite every byte
//    they read (the same contract as Tensor::Uninitialized).
//  * Not thread-safe by design: the owning plan executes under its
//    session's lock, which is the arena's exclusion domain.
//  * Views into the arena are created with Tensor::FromExternal; they share
//    the arena's lifetime through the owner handle and never touch the pool.
#ifndef MSDMIXER_TENSOR_ARENA_H_
#define MSDMIXER_TENSOR_ARENA_H_

#include <cstdint>
#include <memory>

namespace msd {
namespace arena {

// Alignment of the arena base and of every planner-assigned offset.
inline constexpr int64_t kAlignment = 64;

// Rounds `bytes` up to the next kAlignment boundary (0 stays 0).
int64_t AlignUp(int64_t bytes);

class Arena {
 public:
  // One backing allocation of at least `bytes` (>= 0), base kAlignment-
  // aligned. A zero-byte arena is valid and holds a non-null base.
  explicit Arena(int64_t bytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  float* base() { return base_; }
  const float* base() const { return base_; }
  // Byte offset -> element pointer. `offset` must be float-aligned and
  // inside the arena.
  float* at(int64_t offset);
  int64_t bytes() const { return bytes_; }

  // Shares the backing allocation, for Tensor::FromExternal owner handles.
  std::shared_ptr<void> owner() const { return block_; }

 private:
  std::shared_ptr<float[]> block_;
  float* base_ = nullptr;
  int64_t bytes_ = 0;
};

}  // namespace arena
}  // namespace msd

#endif  // MSDMIXER_TENSOR_ARENA_H_
