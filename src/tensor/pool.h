// Size-class tensor memory pool (docs/PERFORMANCE.md).
//
// Every Tensor buffer is drawn from a process-wide free-list allocator:
// requests round up to a power-of-two size class and reuse a previously
// freed block of that class when one is cached, so steady-state training
// epochs stop hitting the system allocator entirely. Blocks return to the
// cache through the shared_ptr deleter, which makes recycling transparent
// to everything above Tensor.
//
// Semantics:
//  * Recycled blocks are NOT zeroed. Tensor's zero-initializing constructor
//    fills explicitly; Tensor::Uninitialized keeps its overwrite contract.
//  * The cache is trimmed (released to the OS) when the outermost
//    MemoryScope exits, and capped at MSD_POOL_CAP_MB (default 512) —
//    returning a block that would exceed the cap frees it instead.
//  * MSD_DISABLE_POOL=1 (or SetEnabled(false)) bypasses caching: every
//    allocation is fresh and every free is immediate. Numerics are
//    identical either way — the pool only changes where bytes live.
//  * Thread-safe: one mutex guards the free lists. Allocation is not on
//    the per-element hot path (kernels allocate once per output tensor),
//    so a single lock is cheaper than per-thread caches and keeps the
//    accounting exact.
//
// Telemetry (src/obs): counters tensor/pool_hits and tensor/pool_misses,
// gauge tensor/pool_bytes_cached.
#ifndef MSDMIXER_TENSOR_POOL_H_
#define MSDMIXER_TENSOR_POOL_H_

#include <cstdint>
#include <memory>

namespace msd {
namespace pool {

// Uninitialized float buffer holding at least `numel` elements (numel >= 0;
// zero-element requests still return a unique live block so Tensor identity
// semantics hold). The deleter recycles the block into the pool.
std::shared_ptr<float[]> AllocateShared(int64_t numel);

// Whether freed blocks are cached for reuse. The initial value honors the
// MSD_DISABLE_POOL environment variable; tests flip it via SetEnabled.
// Disabling does not drop already-cached blocks — call Trim() for that.
bool Enabled();
void SetEnabled(bool enabled);

// Releases every cached block back to the OS.
void Trim();

// Point-in-time pool accounting (process-wide, monotonic counters).
struct PoolStats {
  int64_t hits = 0;          // allocations served from the cache
  int64_t misses = 0;        // allocations that went to the OS
  int64_t bytes_cached = 0;  // bytes currently held in free lists
  int64_t blocks_cached = 0;
};
PoolStats GetStats();

// Bounds the cache lifetime: while at least one MemoryScope is alive the
// cache persists across iterations (the steady-state reuse the trainer
// wants); when the outermost scope exits the cache is trimmed so batch
// programs do not hold peak-epoch memory after training. Scopes nest.
class MemoryScope {
 public:
  MemoryScope();
  ~MemoryScope();
  MemoryScope(const MemoryScope&) = delete;
  MemoryScope& operator=(const MemoryScope&) = delete;
};

}  // namespace pool
}  // namespace msd

#endif  // MSDMIXER_TENSOR_POOL_H_
