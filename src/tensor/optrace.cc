#include "tensor/optrace.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace msd {
namespace optrace {

namespace {

// All capture state is thread-local: concurrent request threads can never
// observe (or pollute) a freeze-time capture running on another thread.
thread_local bool t_active = false;
thread_local Trace t_trace;
thread_local std::vector<std::string> t_regions;

std::string JoinedRegion() {
  std::string path;
  for (const std::string& r : t_regions) {
    if (!path.empty()) path += '/';
    path += r;
  }
  return path;
}

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd: return "Add";
    case OpKind::kSub: return "Sub";
    case OpKind::kMul: return "Mul";
    case OpKind::kDiv: return "Div";
    case OpKind::kAddScalar: return "AddScalar";
    case OpKind::kMulScalar: return "MulScalar";
    case OpKind::kNeg: return "Neg";
    case OpKind::kExp: return "Exp";
    case OpKind::kLog: return "Log";
    case OpKind::kSqrt: return "Sqrt";
    case OpKind::kAbs: return "Abs";
    case OpKind::kSquare: return "Square";
    case OpKind::kRelu: return "Relu";
    case OpKind::kGelu: return "Gelu";
    case OpKind::kSigmoid: return "Sigmoid";
    case OpKind::kTanh: return "Tanh";
    case OpKind::kMatMulEx: return "MatMulEx";
    case OpKind::kSum: return "Sum";
    case OpKind::kPermute: return "Permute";
    case OpKind::kSlice: return "Slice";
    case OpKind::kPad: return "Pad";
    case OpKind::kCopy: return "Copy";
    case OpKind::kSubDivFused: return "SubDivFused";
    case OpKind::kMulAddFused: return "MulAddFused";
    case OpKind::kSliceSubFused: return "SliceSubFused";
  }
  return "?";
}

bool Active() { return t_active; }

void Begin() {
  MSD_CHECK(!t_active) << "optrace capture does not nest";
  t_trace = Trace{};
  t_regions.clear();
  t_active = true;
}

Trace End() {
  MSD_CHECK(t_active) << "optrace::End without Begin";
  t_active = false;
  Trace out = std::move(t_trace);
  t_trace = Trace{};
  t_regions.clear();
  return out;
}

void Record(RecordedOp op) {
  if (!t_active) return;
  op.region = JoinedRegion();
  t_trace.ops.push_back(std::move(op));
}

void RecordUnsupported(const char* what) {
  if (!t_active) return;
  auto& list = t_trace.unsupported;
  if (std::find(list.begin(), list.end(), what) == list.end()) {
    list.emplace_back(what);
  }
}

RegionScope::RegionScope(const std::string& name) {
  if (!t_active || name.empty()) return;
  t_regions.push_back(name);
  pushed_ = true;
}

RegionScope::~RegionScope() {
  if (pushed_) t_regions.pop_back();
}

}  // namespace optrace
}  // namespace msd
