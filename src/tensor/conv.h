// Direct 2D convolution kernels (cross-correlation convention, as in every
// deep-learning framework) with explicit gradient kernels. Used by the
// Conv2dLayer module; shapes follow the PyTorch convention.
#ifndef MSDMIXER_TENSOR_CONV_H_
#define MSDMIXER_TENSOR_CONV_H_

#include "tensor/tensor.h"

namespace msd {

struct Conv2dSpec {
  int64_t stride = 1;
  int64_t padding = 0;  // symmetric zero padding on both spatial axes
};

// Output spatial size for one axis.
int64_t ConvOutSize(int64_t input, int64_t kernel, const Conv2dSpec& spec);

// input [B, C, H, W] (*) kernel [O, C, kh, kw] -> [B, O, H', W'].
Tensor Conv2d(const Tensor& input, const Tensor& kernel,
              const Conv2dSpec& spec = {});

// Gradient of Conv2d w.r.t. the input: scatter of grad_output through the
// kernel. Shapes: grad_output [B, O, H', W'] -> [B, C, H, W].
Tensor Conv2dInputGrad(const Tensor& grad_output, const Tensor& kernel,
                       int64_t input_height, int64_t input_width,
                       const Conv2dSpec& spec = {});

// Gradient of Conv2d w.r.t. the kernel: correlation of input with
// grad_output. Shapes: -> [O, C, kh, kw].
Tensor Conv2dKernelGrad(const Tensor& input, const Tensor& grad_output,
                        int64_t kernel_height, int64_t kernel_width,
                        const Conv2dSpec& spec = {});

}  // namespace msd

#endif  // MSDMIXER_TENSOR_CONV_H_
