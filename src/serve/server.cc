#include "serve/server.h"

#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

namespace msd {
namespace serve {

ServerLoop::ServerLoop(InferenceSession* session,
                       const MicroBatcherConfig& config)
    : session_(session), batcher_(session, config) {
  MSD_CHECK(session != nullptr);
}

StatusOr<Tensor> ServerLoop::Handle(const Tensor& window, int64_t timeout_us) {
  ResultFuture future;
  Status admitted = batcher_.Submit(window, &future, timeout_us);
  if (!admitted.ok()) return admitted;
  return future.get();
}

StatusOr<Tensor> ParseWindowLine(const std::string& line, int64_t channels,
                                 int64_t length) {
  std::vector<std::vector<float>> rows(1);
  const char* cursor = line.c_str();
  const char* end = cursor + line.size();
  while (cursor < end) {
    char* next = nullptr;
    const float value = std::strtof(cursor, &next);
    if (next == cursor) {
      return Status::InvalidArgument("unparseable value at offset " +
                                     std::to_string(cursor - line.c_str()));
    }
    rows.back().push_back(value);
    cursor = next;
    while (cursor < end && (*cursor == ' ' || *cursor == '\t')) ++cursor;
    if (cursor < end) {
      if (*cursor == ';') {
        rows.emplace_back();
        ++cursor;
      } else if (*cursor == ',') {
        ++cursor;
      } else if (*cursor == '\r' || *cursor == '\n') {
        break;
      } else {
        return Status::InvalidArgument(
            std::string("unexpected character '") + *cursor + "' in request");
      }
    }
  }
  if (rows.back().empty()) rows.pop_back();
  if (rows.empty()) return Status::InvalidArgument("empty request line");
  const size_t per_channel = rows.front().size();
  for (const auto& row : rows) {
    if (row.size() != per_channel) {
      return Status::InvalidArgument("ragged channels: expected " +
                                     std::to_string(per_channel) +
                                     " values per channel");
    }
  }
  if (channels > 0 && static_cast<int64_t>(rows.size()) != channels) {
    return Status::InvalidArgument(
        "expected " + std::to_string(channels) + " channels, got " +
        std::to_string(rows.size()));
  }
  if (length > 0 && static_cast<int64_t>(per_channel) != length) {
    return Status::InvalidArgument(
        "expected " + std::to_string(length) + " values per channel, got " +
        std::to_string(per_channel));
  }
  Tensor window({static_cast<int64_t>(rows.size()),
                 static_cast<int64_t>(per_channel)});
  for (int64_t c = 0; c < window.dim(0); ++c) {
    for (int64_t t = 0; t < window.dim(1); ++t) {
      window.set({c, t}, rows[static_cast<size_t>(c)][static_cast<size_t>(t)]);
    }
  }
  return window;
}

std::string FormatTensorLine(const Tensor& tensor) {
  MSD_CHECK(tensor.defined());
  MSD_CHECK(tensor.rank() == 1 || tensor.rank() == 2)
      << "text protocol renders rank-1/rank-2 outputs";
  const int64_t rows = tensor.rank() == 2 ? tensor.dim(0) : 1;
  const int64_t cols = tensor.rank() == 2 ? tensor.dim(1) : tensor.dim(0);
  std::string out;
  out.reserve(static_cast<size_t>(rows * cols) * 10);
  char buffer[48];
  for (int64_t r = 0; r < rows; ++r) {
    if (r > 0) out.push_back(';');
    for (int64_t c = 0; c < cols; ++c) {
      if (c > 0) out.push_back(',');
      const float v =
          tensor.rank() == 2 ? tensor.at({r, c}) : tensor.at({c});
      std::snprintf(buffer, sizeof(buffer), "%.6g", static_cast<double>(v));
      out += buffer;
    }
  }
  return out;
}

std::string ServerLoop::HandleLine(const std::string& line) {
  StatusOr<Tensor> window =
      ParseWindowLine(line, session_->model_config().channels,
                      session_->model_config().input_length);
  if (!window.ok()) return "ERROR " + window.status().ToString();
  StatusOr<Tensor> result = Handle(window.value());
  if (!result.ok()) return "ERROR " + result.status().ToString();
  return FormatTensorLine(result.value());
}

}  // namespace serve
}  // namespace msd
