#include "serve/server.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "obs/exporter.h"

namespace msd {
namespace serve {

std::string TrimmedLine(const std::string& line) {
  size_t begin = 0;
  size_t end = line.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(line[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(line[end - 1])) != 0) {
    --end;
  }
  return line.substr(begin, end - begin);
}

ServerLoop::ServerLoop(InferenceSession* session,
                       const MicroBatcherConfig& config)
    : session_(session), batcher_(session, config) {
  MSD_CHECK(session != nullptr);
}

StatusOr<Tensor> ServerLoop::Handle(const Tensor& window, int64_t timeout_us) {
  ResultFuture future;
  Status admitted = batcher_.Submit(window, &future, timeout_us);
  if (!admitted.ok()) return admitted;
  return future.get();
}

StatusOr<Tensor> ParseWindowLine(const std::string& line, int64_t channels,
                                 int64_t length) {
  std::vector<std::vector<float>> rows(1);
  const char* cursor = line.c_str();
  const char* end = cursor + line.size();
  while (cursor < end) {
    char* next = nullptr;
    const float value = std::strtof(cursor, &next);
    if (next == cursor) {
      return Status::InvalidArgument("unparseable value at offset " +
                                     std::to_string(cursor - line.c_str()));
    }
    rows.back().push_back(value);
    cursor = next;
    while (cursor < end && (*cursor == ' ' || *cursor == '\t')) ++cursor;
    if (cursor < end) {
      if (*cursor == ';') {
        rows.emplace_back();
        ++cursor;
      } else if (*cursor == ',') {
        ++cursor;
      } else if (*cursor == '\r' || *cursor == '\n') {
        break;
      } else {
        return Status::InvalidArgument(
            std::string("unexpected character '") + *cursor + "' in request");
      }
    }
  }
  if (rows.back().empty()) rows.pop_back();
  if (rows.empty()) return Status::InvalidArgument("empty request line");
  const size_t per_channel = rows.front().size();
  for (const auto& row : rows) {
    if (row.size() != per_channel) {
      return Status::InvalidArgument("ragged channels: expected " +
                                     std::to_string(per_channel) +
                                     " values per channel");
    }
  }
  if (channels > 0 && static_cast<int64_t>(rows.size()) != channels) {
    return Status::InvalidArgument(
        "expected " + std::to_string(channels) + " channels, got " +
        std::to_string(rows.size()));
  }
  if (length > 0 && static_cast<int64_t>(per_channel) != length) {
    return Status::InvalidArgument(
        "expected " + std::to_string(length) + " values per channel, got " +
        std::to_string(per_channel));
  }
  Tensor window({static_cast<int64_t>(rows.size()),
                 static_cast<int64_t>(per_channel)});
  for (int64_t c = 0; c < window.dim(0); ++c) {
    for (int64_t t = 0; t < window.dim(1); ++t) {
      window.set({c, t}, rows[static_cast<size_t>(c)][static_cast<size_t>(t)]);
    }
  }
  return window;
}

std::string FormatTensorLine(const Tensor& tensor) {
  MSD_CHECK(tensor.defined());
  MSD_CHECK(tensor.rank() == 1 || tensor.rank() == 2)
      << "text protocol renders rank-1/rank-2 outputs";
  const int64_t rows = tensor.rank() == 2 ? tensor.dim(0) : 1;
  const int64_t cols = tensor.rank() == 2 ? tensor.dim(1) : tensor.dim(0);
  std::string out;
  out.reserve(static_cast<size_t>(rows * cols) * 10);
  char buffer[48];
  for (int64_t r = 0; r < rows; ++r) {
    if (r > 0) out.push_back(';');
    for (int64_t c = 0; c < cols; ++c) {
      if (c > 0) out.push_back(',');
      const float v =
          tensor.rank() == 2 ? tensor.at({r, c}) : tensor.at({c});
      std::snprintf(buffer, sizeof(buffer), "%.6g", static_cast<double>(v));
      out += buffer;
    }
  }
  return out;
}

std::string ServeStatsJson() {
  ServeInstruments& m = Instruments();
  char buf[256];
  std::string out = "{";
  std::snprintf(
      buf, sizeof(buf),
      "\"requests_total\":%lld,\"rejected_total\":%lld,"
      "\"timeouts_total\":%lld,\"deadline_miss\":%lld,\"batches_total\":%lld,",
      static_cast<long long>(m.requests.value()),
      static_cast<long long>(m.rejected.value()),
      static_cast<long long>(m.timeouts.value()),
      static_cast<long long>(m.deadline_miss.value()),
      static_cast<long long>(m.batches.value()));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"queue_depth\":%.0f,\"inflight\":%.0f",
                m.queue_depth.value(), m.inflight.value());
  out += buf;
  const struct {
    const char* key;
    const obs::Histogram* hist;
  } latencies[] = {{"queue_us", &m.queue_us},
                   {"batch_assembly_us", &m.batch_assembly_us},
                   {"compute_us", &m.compute_us},
                   {"e2e_us", &m.e2e_us}};
  for (const auto& entry : latencies) {
    std::snprintf(buf, sizeof(buf),
                  ",\"%s\":{\"count\":%lld,\"p50\":%.1f,\"p95\":%.1f,"
                  "\"p99\":%.1f}",
                  entry.key, static_cast<long long>(entry.hist->count()),
                  entry.hist->ValueAtQuantile(0.5),
                  entry.hist->ValueAtQuantile(0.95),
                  entry.hist->ValueAtQuantile(0.99));
    out += buf;
  }
  out += "}";
  return out;
}

std::string ServerLoop::StatsLine() const { return ServeStatsJson(); }

std::string HandleTraceDump(const std::string& path,
                            obs::TelemetryExporter* exporter) {
  if (path.empty()) {
    return "ERROR " +
           Status::InvalidArgument("TRACE needs a destination path").ToString();
  }
  if (exporter == nullptr) {
    return "ERROR " + Status::Internal(
                          "no telemetry exporter attached; TRACE "
                          "requires --telemetry support in the host tool")
                          .ToString();
  }
  // The exporter thread owns the file write; we only wait for the result,
  // so no blocking I/O happens in src/serve itself.
  if (exporter->RequestTraceDump(path).get()) return "OK " + path;
  return "ERROR " +
         Status::Internal("trace dump to " + path + " failed").ToString();
}

std::string ServerLoop::HandleLine(const std::string& line) {
  const std::string trimmed = TrimmedLine(line);
  if (trimmed == "STATS") return StatsLine();
  if (trimmed.rfind("TRACE", 0) == 0 &&
      (trimmed.size() == 5 || trimmed[5] == ' ' || trimmed[5] == '\t')) {
    const std::string path =
        trimmed.size() > 5 ? TrimmedLine(trimmed.substr(5)) : std::string();
    return HandleTraceDump(path, exporter_);
  }
  StatusOr<Tensor> window =
      ParseWindowLine(line, session_->model_config().channels,
                      session_->model_config().input_length);
  if (!window.ok()) return "ERROR " + window.status().ToString();
  StatusOr<Tensor> result = Handle(window.value());
  if (!result.ok()) return "ERROR " + result.status().ToString();
  return FormatTensorLine(result.value());
}

}  // namespace serve
}  // namespace msd
