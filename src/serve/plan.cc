#include "serve/plan.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"
#include "tensor/qgemm.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace serve {

using optrace::OpKind;

// ---- Result recycling -------------------------------------------------------

// Reply tensors cannot live in the arena (the next request overwrites it), so
// Execute exports the output region into a block from this free list. Blocks
// return when the caller drops the reply tensor; the deleter holds a
// shared_ptr to the pool, so replies may outlive the plan itself.
class CompiledPlan::ResultPool
    : public std::enable_shared_from_this<CompiledPlan::ResultPool> {
 public:
  explicit ResultPool(int64_t floats) : floats_(std::max<int64_t>(1, floats)) {}

  ~ResultPool() {
    for (float* block : free_) {
      std::allocator<float>().deallocate(block, static_cast<size_t>(floats_));
    }
  }

  // msd-hot-path-safe: bounded critical section around a pointer free list;
  // the allocation branch only runs while a previous reply is still held
  // (steady state pops a recycled block).
  float* Acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        float* block = free_.back();
        free_.pop_back();
        return block;
      }
    }
    return std::allocator<float>().allocate(static_cast<size_t>(floats_));
  }

  // msd-hot-path-safe: one shared_ptr control block per reply — the single
  // remaining per-request ownership cost, documented in docs/COMPILER.md.
  Tensor Wrap(float* block, const Shape& shape) {
    std::shared_ptr<ResultPool> self = shared_from_this();
    std::shared_ptr<void> owner(
        static_cast<void*>(block),
        [self](void* p) { self->Release(static_cast<float*>(p)); });
    return Tensor::FromExternal(shape, block, std::move(owner));
  }

 private:
  // msd-hot-path-safe: same contract as Acquire. push_back can grow the free
  // list only until the pool has seen its peak number of in-flight replies.
  void Release(float* block) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(block);
  }

  const int64_t floats_;
  std::mutex mu_;
  std::vector<float*> free_;
};

// ---- Schedule step ----------------------------------------------------------

// One executable entry: kernel kind, prebuilt operand/output views (arena
// regions or pinned constants), and the attributes its kernel needs.
struct CompiledPlan::Step {
  OpKind kind = OpKind::kAdd;
  Tensor a, b, c;  // operands; b/c undefined where the kind takes fewer
  Tensor out;
  // kMatMulEx against a constant [k, n] weight: b repacked at freeze time
  // so Execute calls the prepacked GEMM (no per-call pack, no pool buffer).
  Tensor packed_b;
  int64_t gemm_k = 0, gemm_n = 0;
  // Quantized GEMM (CompileOptions::quantize, after per-step calibration):
  // freeze-time int8 weights + per-channel scales. Execute then quantizes
  // the step's activations into the shared quant arena and runs
  // qgemm::QGemmPrepacked instead of the fp32 prepacked kernel.
  bool quantized = false;
  std::vector<int8_t> q_weights;
  std::vector<float> q_scales;
  float scalar = 0.0f;
  std::vector<int64_t> dims;
  int64_t dim = 0, start = 0, length = 0, before = 0, after = 0;
  float pad_value = 0.0f;
  gemm::Activation act = gemm::Activation::kIdentity;
  // Diagnostics only.
  std::string region_path;
  int64_t out_offset = -1;  // arena byte offset of out (-1: constant)
};

namespace {

// ---- Compile-time IR --------------------------------------------------------

struct SlotRec {
  Tensor pinned;  // first-seen tensor; keeps the traced buffer alive
  bool is_constant = false;
  bool is_input = false;
  // Recomputed against the post-fusion schedule.
  int def_step = -1;
  int last_use_step = -1;
};

struct Node {
  OpKind kind = OpKind::kAdd;
  std::vector<int> args;          // slot ids; -1 for an undefined operand
  std::vector<Shape> arg_shapes;  // per-use shapes (reshape-aware)
  int out = -1;
  Shape out_shape;
  float scalar = 0.0f;
  std::vector<int64_t> dims;
  int64_t dim = 0, start = 0, length = 0, before = 0, after = 0;
  float pad_value = 0.0f;
  gemm::Activation act = gemm::Activation::kIdentity;
  std::string region_path;
  bool dead = false;
};

// Operand indexes of `kind` whose region may be reused for the output
// (in-place): elementwise index-aligned kernels only. The Zip3-backed fused
// kinds allow arg0 alone — their second pass reads c after out is written,
// so b/c must stay disjoint (enforced by the clash check at the call site).
std::vector<int> InPlaceCandidates(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kDiv:
      return {0, 1};
    case OpKind::kAddScalar:
    case OpKind::kMulScalar:
    case OpKind::kNeg:
    case OpKind::kExp:
    case OpKind::kLog:
    case OpKind::kSqrt:
    case OpKind::kAbs:
    case OpKind::kSquare:
    case OpKind::kRelu:
    case OpKind::kGelu:
    case OpKind::kSigmoid:
    case OpKind::kTanh:
    case OpKind::kCopy:
      return {0};
    case OpKind::kSubDivFused:
    case OpKind::kMulAddFused:
    case OpKind::kSliceSubFused:
      return {0};
    default:
      return {};
  }
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& n : names) {
    if (!joined.empty()) joined += ", ";
    joined += n;
  }
  return joined;
}

}  // namespace

CompiledPlan::CompiledPlan() = default;
CompiledPlan::~CompiledPlan() = default;

std::unique_ptr<CompiledPlan> CompiledPlan::Compile(
    const ForwardFn& fn, const Tensor& example, std::string* why_not,
    const CompileOptions& options) {
  MSD_CHECK(example.defined());
  auto fail = [why_not](std::string reason) -> std::unique_ptr<CompiledPlan> {
    if (why_not != nullptr) *why_not = std::move(reason);
    return nullptr;
  };

  // ---- 1. Record one interpreted forward -----------------------------------
  optrace::Begin();
  Tensor traced_out = fn(example);
  optrace::Trace trace = optrace::End();
  if (!trace.unsupported.empty()) {
    return fail("unsupported ops in trace: " + JoinNames(trace.unsupported));
  }
  if (trace.ops.empty()) return fail("trace recorded no ops");
  if (!traced_out.defined()) return fail("forward returned undefined");

  // ---- 2. Intern buffers into slots (pointer identity = buffer identity) --
  std::vector<SlotRec> slots;
  std::unordered_map<const float*, int> slot_of;
  auto intern_operand = [&](const Tensor& t) -> int {
    auto it = slot_of.find(t.data());
    if (it != slot_of.end()) return it->second;
    SlotRec rec;
    rec.pinned = t;
    rec.is_input = t.data() == example.data();
    rec.is_constant = !rec.is_input;
    slots.push_back(std::move(rec));
    slot_of.emplace(t.data(), static_cast<int>(slots.size()) - 1);
    return static_cast<int>(slots.size()) - 1;
  };

  std::vector<Node> nodes;
  nodes.reserve(trace.ops.size());
  for (const optrace::RecordedOp& op : trace.ops) {
    Node n;
    n.kind = op.kind;
    for (const Tensor& in : op.inputs) {
      if (!in.defined()) {
        n.args.push_back(-1);
        n.arg_shapes.emplace_back();
        continue;
      }
      n.args.push_back(intern_operand(in));
      n.arg_shapes.push_back(in.shape());
    }
    MSD_CHECK(op.output.defined());
    if (slot_of.count(op.output.data()) != 0) {
      // A fresh pool block per recorded output is the pinning contract; a
      // repeat pointer means an op wrote into an existing buffer.
      return fail("op output buffer reused; trace is not SSA");
    }
    n.out = intern_operand(op.output);
    slots[static_cast<size_t>(n.out)].is_constant = false;
    slots[static_cast<size_t>(n.out)].is_input = false;
    n.out_shape = op.output.shape();
    n.scalar = op.scalar;
    n.dims = op.dims;
    n.dim = op.dim;
    n.start = op.start;
    n.length = op.length;
    n.before = op.before;
    n.after = op.after;
    n.pad_value = op.pad_value;
    n.act = op.act;
    n.region_path = op.region;
    nodes.push_back(std::move(n));
  }
  // Producing node per slot (pre-fusion), for the peephole pass.
  std::vector<int> def_node(slots.size(), -1);
  for (size_t i = 0; i < nodes.size(); ++i) {
    def_node[static_cast<size_t>(nodes[i].out)] = static_cast<int>(i);
  }

  auto out_it = slot_of.find(traced_out.data());
  if (out_it == slot_of.end()) {
    return fail("forward output was not produced by a traced op");
  }
  const int out_slot = out_it->second;

  // ---- 3. Peephole fusion ---------------------------------------------------
  // Use counts over the whole graph (plus one export read of the output);
  // a producer is only folded into its consumer when the intermediate has
  // exactly one reader and no reshape changed its view in between.
  std::vector<int> uses(slots.size(), 0);
  for (const Node& n : nodes) {
    for (int a : n.args) {
      if (a >= 0) ++uses[static_cast<size_t>(a)];
    }
  }
  ++uses[static_cast<size_t>(out_slot)];

  int64_t fused = 0;
  auto single_use_producer = [&](const Node& n, int arg_idx,
                                 OpKind want) -> Node* {
    const int slot = n.args[static_cast<size_t>(arg_idx)];
    if (slot < 0 || slot == out_slot) return nullptr;
    const int d = def_node[static_cast<size_t>(slot)];
    if (d < 0) return nullptr;
    Node& p = nodes[static_cast<size_t>(d)];
    if (p.dead || p.kind != want) return nullptr;
    if (uses[static_cast<size_t>(slot)] != 1) return nullptr;
    // The consumer must read the producer's buffer under its original shape
    // (no reshape in between) or the fused broadcast would differ.
    if (n.arg_shapes[static_cast<size_t>(arg_idx)] != p.out_shape) {
      return nullptr;
    }
    return &p;
  };

  for (Node& n : nodes) {
    if (n.dead) continue;
    if (n.kind == OpKind::kDiv) {
      // (a - b) / c — the RevIN / scaler normalize chain.
      Node* p = single_use_producer(n, 0, OpKind::kSub);
      if (p != nullptr && p->out_shape == n.out_shape) {
        const int c = n.args[1];
        const Shape c_shape = n.arg_shapes[1];
        n.kind = OpKind::kSubDivFused;
        n.args = {p->args[0], p->args[1], c};
        n.arg_shapes = {p->arg_shapes[0], p->arg_shapes[1], c_shape};
        p->dead = true;
        ++fused;
      }
      continue;
    }
    if (n.kind == OpKind::kAdd) {
      // a * b + c — denormalize / inverse-transform / bias-free affine.
      // Addition is commutative bitwise, so the Mul may sit on either side.
      for (int side = 0; side < 2; ++side) {
        Node* p = single_use_producer(n, side, OpKind::kMul);
        if (p == nullptr || p->out_shape != n.out_shape) continue;
        const int c = n.args[static_cast<size_t>(1 - side)];
        const Shape c_shape = n.arg_shapes[static_cast<size_t>(1 - side)];
        n.kind = OpKind::kMulAddFused;
        n.args = {p->args[0], p->args[1], c};
        n.arg_shapes = {p->arg_shapes[0], p->arg_shapes[1], c_shape};
        p->dead = true;
        ++fused;
        break;
      }
      continue;
    }
    if (n.kind == OpKind::kSub) {
      // a - Slice(src) — the per-scale residual subtract, minus the copy.
      Node* p = single_use_producer(n, 1, OpKind::kSlice);
      if (p != nullptr && p->out_shape == n.out_shape &&
          n.arg_shapes[0] == n.out_shape) {
        n.kind = OpKind::kSliceSubFused;
        n.args = {n.args[0], p->args[0]};
        n.arg_shapes = {n.arg_shapes[0], p->arg_shapes[0]};
        n.dim = p->dim;
        n.start = p->start;
        n.length = p->length;
        p->dead = true;
        ++fused;
      }
      continue;
    }
  }

  // ---- 4. Lifetimes over the compacted schedule ----------------------------
  std::vector<int> schedule;  // node index per step
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i].dead) schedule.push_back(static_cast<int>(i));
  }
  const int num_steps = static_cast<int>(schedule.size());
  for (int s = 0; s < num_steps; ++s) {
    const Node& n = nodes[static_cast<size_t>(schedule[static_cast<size_t>(s)])];
    for (int a : n.args) {
      if (a >= 0) slots[static_cast<size_t>(a)].last_use_step = s;
    }
    slots[static_cast<size_t>(n.out)].def_step = s;
  }
  slots[static_cast<size_t>(out_slot)].last_use_step = num_steps;  // export

  // ---- 5. In-place aliasing + region merging -------------------------------
  // region id == representative slot id. Merging the output of an
  // elementwise step onto an operand that (a) lives in the arena, (b) has
  // the exact output shape, (c) dies at this step, and (d) shares no region
  // with any other operand of the step turns the kernel into an in-place
  // update — the alias the kernels' exact-alias-or-disjoint policy permits.
  auto in_arena = [&](int slot) {
    const SlotRec& r = slots[static_cast<size_t>(slot)];
    if (r.is_constant) return false;
    // Unreferenced buffers (fused-away intermediates) need no storage.
    return r.is_input || r.def_step >= 0;
  };
  std::vector<int> region_of(slots.size(), -1);
  std::vector<int> region_last(slots.size(), -1);
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].last_use_step < 0 && !slots[i].is_input) continue;
    if (!in_arena(static_cast<int>(i))) continue;
    region_of[i] = static_cast<int>(i);
    region_last[i] = slots[i].last_use_step;
  }
  int64_t inplace = 0;
  for (int s = 0; s < num_steps; ++s) {
    const Node& n = nodes[static_cast<size_t>(schedule[static_cast<size_t>(s)])];
    for (int cand : InPlaceCandidates(n.kind)) {
      if (cand >= static_cast<int>(n.args.size())) continue;
      const int t = n.args[static_cast<size_t>(cand)];
      if (t < 0) continue;
      const SlotRec& rec = slots[static_cast<size_t>(t)];
      if (rec.is_constant || rec.is_input) continue;
      if (n.arg_shapes[static_cast<size_t>(cand)] != n.out_shape) continue;
      const int rt = region_of[static_cast<size_t>(t)];
      if (rt < 0 || region_last[static_cast<size_t>(rt)] != s) continue;
      bool clash = false;
      for (size_t other = 0; other < n.args.size(); ++other) {
        if (static_cast<int>(other) == cand || n.args[other] < 0) continue;
        if (region_of[static_cast<size_t>(n.args[other])] == rt) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      region_of[static_cast<size_t>(n.out)] = rt;
      region_last[static_cast<size_t>(rt)] = std::max(
          region_last[static_cast<size_t>(rt)],
          slots[static_cast<size_t>(n.out)].last_use_step);
      ++inplace;
      break;
    }
  }

  // ---- 6. First-fit offset packing -----------------------------------------
  // Region lifetime = [min def over members, max last_use over members];
  // bytes = the common member size (shape-equality on merge guarantees it).
  struct Region {
    int id = -1;
    int64_t bytes = 0;
    int first_def = 0;
    int last_use = 0;
    int64_t offset = -1;
  };
  std::unordered_map<int, Region> regions;
  for (size_t i = 0; i < slots.size(); ++i) {
    const int r = region_of[i];
    if (r < 0) continue;
    Region& reg = regions[r];
    const int def = slots[i].is_input ? -1 : slots[i].def_step;
    const int64_t bytes =
        slots[i].pinned.numel() * static_cast<int64_t>(sizeof(float));
    if (reg.id < 0) {
      reg = Region{r, bytes, def, slots[i].last_use_step, -1};
    } else {
      reg.bytes = std::max(reg.bytes, bytes);
      reg.first_def = std::min(reg.first_def, def);
      reg.last_use = std::max(reg.last_use, slots[i].last_use_step);
    }
  }
  std::vector<Region*> order;
  order.reserve(regions.size());
  for (auto& [id, reg] : regions) order.push_back(&reg);
  std::sort(order.begin(), order.end(), [](const Region* x, const Region* y) {
    if (x->first_def != y->first_def) return x->first_def < y->first_def;
    return x->id < y->id;
  });
  int64_t arena_bytes = 0;
  for (Region* reg : order) {
    if (reg->bytes == 0) {
      reg->offset = 0;  // zero-numel buffers take no space
      continue;
    }
    // Collect live conflicts, then scan for the lowest aligned gap.
    std::vector<std::pair<int64_t, int64_t>> busy;  // [offset, end)
    for (const Region* other : order) {
      if (other == reg || other->offset < 0 || other->bytes == 0) continue;
      const bool overlap = reg->first_def <= other->last_use &&
                           other->first_def <= reg->last_use;
      if (overlap) busy.emplace_back(other->offset, other->offset + other->bytes);
    }
    std::sort(busy.begin(), busy.end());
    int64_t candidate = 0;
    for (const auto& [lo, hi] : busy) {
      if (candidate + reg->bytes <= lo) break;
      candidate = std::max(candidate, arena::AlignUp(hi));
    }
    reg->offset = candidate;
    arena_bytes = std::max(arena_bytes, candidate + reg->bytes);
  }

  // ---- 7. Materialize the plan ---------------------------------------------
  std::unique_ptr<CompiledPlan> plan(new CompiledPlan());
  plan->arena_ = std::make_unique<arena::Arena>(arena_bytes);
  auto offset_of = [&](int slot) -> int64_t {
    const int r = region_of[static_cast<size_t>(slot)];
    MSD_CHECK_GE(r, 0);
    auto it = regions.find(r);
    MSD_CHECK(it != regions.end());
    return it->second.offset;
  };
  auto view = [&](int slot, const Shape& shape) -> Tensor {
    const SlotRec& rec = slots[static_cast<size_t>(slot)];
    if (rec.is_constant) {
      // Constants are read in place from the pinned buffer (a reshape view
      // when the use shape differs — shares storage, no copy).
      return rec.pinned.shape() == shape ? rec.pinned
                                         : rec.pinned.Reshape(shape);
    }
    return Tensor::FromExternal(shape, plan->arena_->at(offset_of(slot)),
                                plan->arena_->owner());
  };

  plan->input_shape_ = example.shape();
  plan->output_shape_ = traced_out.shape();
  plan->input_view_ = view(slot_of.at(example.data()), example.shape());
  plan->output_view_ = view(out_slot, traced_out.shape());
  for (const int ni : schedule) {
    const Node& n = nodes[static_cast<size_t>(ni)];
    Step step;
    step.kind = n.kind;
    step.a = view(n.args[0], n.arg_shapes[0]);
    if (n.args.size() > 1 && n.args[1] >= 0) {
      step.b = view(n.args[1], n.arg_shapes[1]);
      if (n.kind == OpKind::kMatMulEx && n.arg_shapes[1].size() == 2 &&
          slots[static_cast<size_t>(n.args[1])].is_constant) {
        // Every Linear hits this: a frozen rank-2 weight shared across the
        // batch. Pack it once now; Execute skips the per-call B pack.
        step.packed_b = PackGemmB(step.b);
        step.gemm_k = n.arg_shapes[1][0];
        step.gemm_n = n.arg_shapes[1][1];
        ++plan->stats_.num_prepacked;
      }
    }
    if (n.args.size() > 2 && n.args[2] >= 0) {
      step.c = view(n.args[2], n.arg_shapes[2]);
    }
    step.out = view(n.out, n.out_shape);
    step.scalar = n.scalar;
    step.dims = n.dims;
    step.dim = n.dim;
    step.start = n.start;
    step.length = n.length;
    step.before = n.before;
    step.after = n.after;
    step.pad_value = n.pad_value;
    step.act = n.act;
    step.region_path = n.region_path;
    step.out_offset = offset_of(n.out);
    plan->steps_.push_back(std::move(step));
  }
  for (const SlotRec& rec : slots) {
    if (rec.is_constant) plan->constants_.push_back(rec.pinned);
  }
  plan->results_ = std::make_shared<ResultPool>(traced_out.numel());

  plan->stats_.traced_ops = static_cast<int64_t>(trace.ops.size());
  plan->stats_.num_ops = num_steps;
  plan->stats_.num_fused = fused;
  plan->stats_.num_inplace = inplace;
  plan->stats_.num_regions = static_cast<int64_t>(regions.size());
  plan->stats_.arena_bytes = arena_bytes;
  for (const Region* reg : order) {
    plan->regions_.push_back(
        RegionInfo{reg->offset, reg->bytes, reg->first_def, reg->last_use});
  }

  // ---- 8. Freeze-time validation -------------------------------------------
  // Replay the example through the fresh plan and require bitwise equality
  // with the interpreted output. A mismatch means a planner bug; refuse the
  // plan rather than serve wrong (or merely different) bits.
  Tensor replay = plan->Execute(example);
  if (replay.shape() != traced_out.shape() ||
      std::memcmp(replay.data(), traced_out.data(),
                  static_cast<size_t>(traced_out.numel()) * sizeof(float)) !=
          0) {
    return fail("freeze-time validation: planned replay is not bit-identical");
  }

  // ---- 9. Quantization pass (opt-in) ---------------------------------------
  // Runs only after the fp32 plan has passed its memcmp gate, so every step
  // a candidate falls back to is the validated fp32 schedule.
  if (options.quantize) {
    plan->QuantizePass(example, options.quant_max_rel_error);
  }
  return plan;
}

void CompiledPlan::QuantizePass(const Tensor& example, float max_rel_error) {
  // Eligible: a prepacked constant-weight rank-2 GEMM whose inner dimension
  // fits the int32 accumulator bound and that has any work at all. (s.b is
  // the pinned fp32 weight view; it stays defined alongside packed_b.)
  auto eligible = [](const Step& s) {
    return s.packed_b.defined() && s.gemm_k >= 1 &&
           s.gemm_k <= qgemm::kMaxK && s.gemm_n >= 1 && s.a.numel() > 0;
  };
  // Size the shared activation scratch for the largest eligible candidate
  // (an over-reserve when some candidates fall back; activations are small
  // next to the fp32 arena and the gauge reports the true figure).
  int64_t max_aq_bytes = 0;
  int64_t max_scale_bytes = 0;
  for (const Step& s : steps_) {
    if (!eligible(s)) continue;
    const int64_t m = s.a.numel() / s.gemm_k;
    max_aq_bytes = std::max(
        max_aq_bytes,
        m * qgemm::QuantARowInt16s(s.gemm_k) *
            static_cast<int64_t>(sizeof(int16_t)));
    max_scale_bytes = std::max(
        max_scale_bytes, m * static_cast<int64_t>(sizeof(float)));
  }
  if (max_aq_bytes == 0) return;
  quant_scales_offset_ = arena::AlignUp(max_aq_bytes);
  quant_arena_ = std::make_unique<arena::Arena>(quant_scales_offset_ +
                                                max_scale_bytes);

  // Calibration replay: every step runs fp32 (so downstream candidates see
  // exact fp32 inputs and per-step error never compounds); each candidate
  // is then re-executed int8 into scratch and compared against the fp32
  // output it would replace.
  CopyInto(example, input_view_);
  std::vector<float> qout;
  for (Step& s : steps_) {
    RunStep(s);
    if (!eligible(s)) continue;
    const int64_t k = s.gemm_k;
    const int64_t n = s.gemm_n;
    const int64_t m = s.a.numel() / k;
    std::vector<int8_t> qw(
        static_cast<size_t>(qgemm::PackedQuantBInt8s(k, n)));
    std::vector<float> qs(static_cast<size_t>(qgemm::QuantBScaleFloats(n)));
    qgemm::QuantizeWeightsPerChannel(s.b.data(), k, n, qw.data(), qs.data());
    int16_t* aq = reinterpret_cast<int16_t*>(quant_arena_->base());
    float* ascales = quant_arena_->at(quant_scales_offset_);
    qgemm::QuantizeActivationsPerRow(s.a.data(), m, k, aq, ascales);
    qout.assign(static_cast<size_t>(m * n), 0.0f);
    qgemm::QGemmPrepacked(aq, ascales, qw.data(), qs.data(), qout.data(), m,
                          k, n, s.c.defined() ? s.c.data() : nullptr, s.act);
    double num = 0.0;
    double den = 0.0;
    const float* f = s.out.data();
    for (int64_t i = 0; i < m * n; ++i) {
      const double d = static_cast<double>(qout[static_cast<size_t>(i)]) -
                       static_cast<double>(f[i]);
      num += d * d;
      den += static_cast<double>(f[i]) * static_cast<double>(f[i]);
    }
    // Relative Frobenius error; an exactly-zero fp32 output accepts only an
    // exactly-zero quantized output.
    const bool ok =
        num == 0.0 || (den > 0.0 && std::sqrt(num / den) <= max_rel_error);
    if (ok) {
      s.quantized = true;
      s.q_weights = std::move(qw);
      s.q_scales = std::move(qs);
      ++stats_.num_quantized;
    } else {
      ++stats_.num_quant_fallbacks;
    }
  }
  if (stats_.num_quantized == 0) {
    quant_arena_.reset();
    quant_scales_offset_ = 0;
    return;
  }
  stats_.quant_arena_bytes = quant_arena_->bytes();
}

// msd-hot-path: one schedule step — the kernel dispatch shared by Execute
// and the quantization pass's calibration replay.
void CompiledPlan::RunStep(Step& s) {
  switch (s.kind) {
    case OpKind::kAdd:
      AddInto(s.a, s.b, s.out);
      break;
    case OpKind::kSub:
      SubInto(s.a, s.b, s.out);
      break;
    case OpKind::kMul:
      MulInto(s.a, s.b, s.out);
      break;
    case OpKind::kDiv:
      DivInto(s.a, s.b, s.out);
      break;
    case OpKind::kAddScalar:
      AddScalarInto(s.a, s.scalar, s.out);
      break;
    case OpKind::kMulScalar:
      MulScalarInto(s.a, s.scalar, s.out);
      break;
    case OpKind::kNeg:
      NegInto(s.a, s.out);
      break;
    case OpKind::kExp:
      ExpInto(s.a, s.out);
      break;
    case OpKind::kLog:
      LogInto(s.a, s.out);
      break;
    case OpKind::kSqrt:
      SqrtInto(s.a, s.out);
      break;
    case OpKind::kAbs:
      AbsInto(s.a, s.out);
      break;
    case OpKind::kSquare:
      SquareInto(s.a, s.out);
      break;
    case OpKind::kRelu:
      ReluInto(s.a, s.out);
      break;
    case OpKind::kGelu:
      GeluInto(s.a, s.out);
      break;
    case OpKind::kSigmoid:
      SigmoidInto(s.a, s.out);
      break;
    case OpKind::kTanh:
      TanhInto(s.a, s.out);
      break;
    case OpKind::kMatMulEx: {
      if (s.quantized) {
        // Int8 path: per-row dynamic activation quant into the shared
        // scratch arena, then the int8 kernel with its fused dequant +
        // bias + activation epilogue.
        const int64_t m = s.a.numel() / s.gemm_k;
        int16_t* aq = reinterpret_cast<int16_t*>(quant_arena_->base());
        float* ascales =
            quant_arena_->base() +
            quant_scales_offset_ / static_cast<int64_t>(sizeof(float));
        qgemm::QuantizeActivationsPerRow(s.a.data(), m, s.gemm_k, aq,
                                         ascales);
        qgemm::QGemmPrepacked(aq, ascales, s.q_weights.data(),
                              s.q_scales.data(), s.out.data(), m, s.gemm_k,
                              s.gemm_n, s.c.defined() ? s.c.data() : nullptr,
                              s.act);
      } else if (s.packed_b.defined()) {
        MatMulExPrepackedInto(s.a, s.packed_b, s.gemm_k, s.gemm_n, s.c,
                              s.act, s.out);
      } else {
        MatMulExInto(s.a, s.b, s.c, s.act, s.out);
      }
      break;
    }
    case OpKind::kSum:
      SumInto(s.a, s.dims, s.out);
      break;
    case OpKind::kPermute:
      PermuteInto(s.a, s.dims, s.out);
      break;
    case OpKind::kSlice:
      SliceInto(s.a, s.dim, s.start, s.length, s.out);
      break;
    case OpKind::kPad:
      PadInto(s.a, s.dim, s.before, s.after, s.pad_value, s.out);
      break;
    case OpKind::kCopy:
      CopyInto(s.a, s.out);
      break;
    case OpKind::kSubDivFused:
      SubDivInto(s.a, s.b, s.c, s.out);
      break;
    case OpKind::kMulAddFused:
      MulAddInto(s.a, s.b, s.c, s.out);
      break;
    case OpKind::kSliceSubFused:
      SliceSubInto(s.a, s.b, s.dim, s.start, s.length, s.out);
      break;
  }
}

// msd-hot-path: the planned serving forward — a flat kernel schedule over
// preplanned arena views. No pool traffic, no per-op ownership, no branches
// beyond the kind dispatch; the session lock is the exclusion domain.
Tensor CompiledPlan::Execute(const Tensor& input) {
  MSD_CHECK(input.defined());
  MSD_CHECK(input.shape() == input_shape_)
      << "plan expects input " << ShapeToString(input_shape_) << ", got "
      << ShapeToString(input.shape());
  static obs::Counter& plan_ops =
      obs::MetricsRegistry::Global().GetCounter("serve/plan_ops");
  CopyInto(input, input_view_);
  for (Step& s : steps_) RunStep(s);
  plan_ops.Add(static_cast<int64_t>(steps_.size()));
  float* block = results_->Acquire();
  std::memcpy(block, output_view_.data(),
              static_cast<size_t>(output_view_.numel()) * sizeof(float));
  return results_->Wrap(block, output_shape_);
}

std::vector<RegionInfo> CompiledPlan::Regions() const { return regions_; }

std::string CompiledPlan::DebugString() const {
  std::ostringstream out;
  out << "CompiledPlan: " << stats_.num_ops << " ops ("
      << stats_.traced_ops << " traced, " << stats_.num_fused << " fused, "
      << stats_.num_inplace << " in-place, " << stats_.num_prepacked
      << " prepacked), " << stats_.num_regions << " regions, "
      << stats_.arena_bytes << " arena bytes";
  if (stats_.num_quantized > 0 || stats_.num_quant_fallbacks > 0) {
    out << ", int8: " << stats_.num_quantized << " quantized / "
        << stats_.num_quant_fallbacks << " fp32 fallbacks, "
        << stats_.quant_arena_bytes << " quant arena bytes";
  }
  out << "\n";
  out << "  input  " << ShapeToString(input_shape_) << "\n";
  for (size_t i = 0; i < steps_.size(); ++i) {
    const Step& s = steps_[i];
    out << "  %" << i << " = " << optrace::OpKindName(s.kind) << " "
        << ShapeToString(s.out.shape()) << " @" << s.out_offset;
    if (s.quantized) out << "  int8";
    if (!s.region_path.empty()) out << "  // " << s.region_path;
    out << "\n";
  }
  out << "  output " << ShapeToString(output_shape_);
  return out.str();
}

}  // namespace serve
}  // namespace msd
