#include "serve/session.h"

#include <cstdlib>
#include <utility>

#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "tasks/pipeline.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace serve {

InferenceSession::InferenceSession(const InferenceSessionConfig& config)
    : config_(config) {}

StatusOr<std::unique_ptr<InferenceSession>> InferenceSession::Create(
    const InferenceSessionConfig& config, const std::string& checkpoint_path) {
  if (config.max_batch < 1) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  if (config.model.channels < 1 || config.model.input_length < 1) {
    return Status::InvalidArgument("model config needs channels/input_length");
  }
  if (config.scaler.fitted() &&
      config.scaler.mean().dim(0) != config.model.channels) {
    return Status::InvalidArgument(
        "scaler channel count does not match the model");
  }
  std::unique_ptr<InferenceSession> session(new InferenceSession(config));
  Rng rng(config.seed);
  session->mixer_ = std::make_unique<MsdMixer>(config.model, rng);
  Status loaded = LoadCheckpoint(*session->mixer_, checkpoint_path);
  if (!loaded.ok()) return loaded;
  session->mixer_->SetTraining(false);
  if (config.warmup) {
    // Full-size batch primes every pool size class the steady state needs;
    // requests after this never touch the system allocator.
    StatusOr<Tensor> warm = session->PredictBatch(Tensor::Zeros(
        {config.max_batch, config.model.channels, config.model.input_length}));
    if (!warm.ok()) return warm.status();
  }
  // Freeze-time planning runs after warmup so the interpreter fallback keeps
  // a primed pool. MSD_PLAN=0 pins the session to the interpreted path.
  const char* plan_env = std::getenv("MSD_PLAN");
  session->use_plan_ = plan_env == nullptr || std::string(plan_env) != "0";
  // MSD_QUANT, when set, overrides the config field: "0" pins fp32, any
  // other value requests the int8 quantization pass (docs/PERFORMANCE.md).
  const char* quant_env = std::getenv("MSD_QUANT");
  session->use_quant_ = quant_env != nullptr ? std::string(quant_env) != "0"
                                             : config.quantize;
  if (session->use_plan_) session->BuildPlans();
  static obs::Counter& sessions =
      obs::MetricsRegistry::Global().GetCounter("serve/sessions_created");
  sessions.Add(1);
  return session;
}

Status InferenceSession::ValidateBatch(const Tensor& batch) const {
  if (!batch.defined() || batch.rank() != 3) {
    return Status::InvalidArgument("batch must be [B, channels, length]");
  }
  if (batch.dim(0) < 1 || batch.dim(0) > config_.max_batch) {
    return Status::InvalidArgument(
        "batch size " + std::to_string(batch.dim(0)) + " outside [1, " +
        std::to_string(config_.max_batch) + "]");
  }
  if (batch.dim(1) != config_.model.channels ||
      batch.dim(2) != config_.model.input_length) {
    return Status::InvalidArgument(
        "window shape " + ShapeToString(batch.shape()) + " does not match [" +
        std::to_string(config_.model.channels) + ", " +
        std::to_string(config_.model.input_length) + "]");
  }
  return Status::OK();
}

Tensor InferenceSession::RunFrozen(const Tensor& batch) {
  MSD_SPAN("serve/predict_batch");
  std::lock_guard<std::mutex> lock(model_mu_);
  NoGradGuard guard;
  if (config_.synthetic_compute_us > 0) {
    // Busy-spin (not sleep) so the emulated slow model occupies the forward
    // pass exactly like real compute would, lock held and all.
    const auto until = ServeClock::now() +
                       std::chrono::microseconds(config_.synthetic_compute_us);
    while (ServeClock::now() < until) {
    }
  }
  return mixer_->Run(Variable(batch)).prediction.value();
}

Tensor InferenceSession::RunPlanned(CompiledPlan& plan, const Tensor& batch) {
  MSD_SPAN("serve/predict_batch");
  // The session mutex is the plan's exclusion domain: Execute mutates the
  // arena, so planned forwards serialize exactly like interpreted ones.
  std::lock_guard<std::mutex> lock(model_mu_);
  if (config_.synthetic_compute_us > 0) {
    const auto until = ServeClock::now() +
                       std::chrono::microseconds(config_.synthetic_compute_us);
    while (ServeClock::now() < until) {
    }
  }
  return plan.Execute(batch);
}

void InferenceSession::BuildPlans() {
  Rng rng(config_.seed + 1);
  plans_.resize(static_cast<size_t>(config_.max_batch));
  int64_t total_arena = 0;
  int64_t total_quant_arena = 0;
  CompileOptions options;
  options.quantize = use_quant_;
  options.quant_max_rel_error = config_.quant_max_rel_error;
  for (int64_t b = 1; b <= config_.max_batch; ++b) {
    // Random (not zero) example inputs so the freeze-time memcmp validation
    // cannot pass by accident on degenerate all-zero intermediates.
    Tensor example = Tensor::RandNormal(
        {b, config_.model.channels, config_.model.input_length}, 0.0f, 1.0f,
        rng);
    std::string why_not;
    plans_[static_cast<size_t>(b) - 1] = CompiledPlan::Compile(
        [this](const Tensor& in) {
          NoGradGuard guard;
          // The plan covers the whole reply chain, not just the module
          // graph: normalize, forward, and (for forecast heads)
          // denormalize all freeze into one schedule.
          const Tensor scaled =
              config_.scaler.fitted() ? config_.scaler.Transform(in) : in;
          Tensor out = mixer_->Run(Variable(scaled)).prediction.value();
          if (config_.model.task == TaskType::kForecast &&
              config_.scaler.fitted()) {
            out = config_.scaler.InverseTransform(out);
          }
          return out;
        },
        example, &why_not, options);
    const CompiledPlan* plan = plans_[static_cast<size_t>(b) - 1].get();
    if (plan != nullptr) {
      total_arena += plan->stats().arena_bytes;
      total_quant_arena += plan->stats().quant_arena_bytes;
      if (use_quant_) {
        // Freeze-time facts, surfaced once per plan: how many GEMM steps
        // adopted int8 and how many the calibration gate kept fp32.
        static obs::Counter& quant_steps =
            obs::MetricsRegistry::Global().GetCounter("serve/quant_steps");
        static obs::Counter& quant_fallbacks =
            obs::MetricsRegistry::Global().GetCounter("serve/quant_fallbacks");
        quant_steps.Add(plan->stats().num_quantized);
        quant_fallbacks.Add(plan->stats().num_quant_fallbacks);
      }
    } else {
      // No stdio in src/serve; the refusal is visible via this counter, the
      // null plan_for(b), and the per-request serve/plan_fallbacks below.
      static obs::Counter& refused =
          obs::MetricsRegistry::Global().GetCounter("serve/plan_build_refused");
      refused.Add(1);
      (void)why_not;
    }
  }
  obs::MetricsRegistry::Global()
      .GetGauge("serve/arena_bytes")
      .Set(static_cast<double>(total_arena));
  obs::MetricsRegistry::Global()
      .GetGauge("serve/quant_arena_bytes")
      .Set(static_cast<double>(total_quant_arena));
}

// msd-hot-path: the serving inference entry point.
StatusOr<Tensor> InferenceSession::PredictBatch(const Tensor& batch,
                                                TraceContext* trace) {
  Status valid = ValidateBatch(batch);
  if (!valid.ok()) return valid;
  // Direct callers make this an admission point: mint a context here so the
  // compute interval is still measured and (if sampled) traced.
  TraceContext local;
  const bool direct = trace == nullptr;
  if (direct) {
    local = MintTraceContext();
    trace = &local;
  }
  trace->compute_start = ServeClock::now();
  Tensor out;
  CompiledPlan* plan =
      use_plan_ ? plans_[static_cast<size_t>(batch.dim(0)) - 1].get() : nullptr;
  if (plan != nullptr) {
    // The frozen schedule bakes in the scaler transform (and, for forecast
    // heads, the inverse transform) — the raw batch goes straight in.
    out = RunPlanned(*plan, batch);
  } else {
    if (use_plan_) {
      static obs::Counter& fallbacks =
          obs::MetricsRegistry::Global().GetCounter("serve/plan_fallbacks");
      fallbacks.Add(1);
    }
    const Tensor scaled =
        config_.scaler.fitted() ? config_.scaler.Transform(batch) : batch;
    out = RunFrozen(scaled);
    if (config_.model.task == TaskType::kForecast && config_.scaler.fitted()) {
      out = config_.scaler.InverseTransform(out);
    }
  }
  trace->compute_end = ServeClock::now();
  if (direct) {
    Instruments().compute_us.Observe(static_cast<double>(
        ToMicros(trace->compute_end - trace->compute_start)));
    if (trace->sampled) {
      obs::TraceRing::Global().Push(
          {trace->request_id, "compute", TimePointUs(trace->compute_start),
           ToMicros(trace->compute_end - trace->compute_start)});
    }
  }
  static obs::Counter& items =
      obs::MetricsRegistry::Global().GetCounter("serve/predicted_items");
  items.Add(batch.dim(0));
  return out;
}

StatusOr<Tensor> InferenceSession::Predict(const Tensor& window) {
  if (!window.defined() || window.rank() != 2) {
    return Status::InvalidArgument("window must be [channels, length]");
  }
  StatusOr<Tensor> batched = PredictBatch(
      window.Reshape({1, window.dim(0), window.dim(1)}));
  if (!batched.ok()) return batched;
  Tensor out = std::move(batched).value();
  Shape squeezed(out.shape().begin() + 1, out.shape().end());
  return out.Reshape(std::move(squeezed));
}

StatusOr<Tensor> InferenceSession::AnomalyScores(const Tensor& batch) {
  if (config_.model.task != TaskType::kReconstruction) {
    return Status::InvalidArgument(
        "AnomalyScores needs a reconstruction-task session");
  }
  Status valid = ValidateBatch(batch);
  if (!valid.ok()) return valid;
  const Tensor scaled =
      config_.scaler.fitted() ? config_.scaler.Transform(batch) : batch;
  Tensor recon = RunFrozen(scaled);
  // Per-window mean squared reconstruction error — the quantity the anomaly
  // protocol (tasks/evaluate.h) thresholds.
  return Mean(Square(Sub(recon, scaled)), {1, 2}, /*keepdim=*/false);
}

StatusOr<std::unique_ptr<InferenceSession>> CreateForecastSession(
    const std::string& checkpoint_path,
    const ForecastSessionOptions& options) {
  StatusOr<ForecastMeta> meta = LoadForecastMeta(checkpoint_path);
  if (!meta.ok()) return meta.status();
  InferenceSessionConfig config;
  config.model.input_length = options.lookback;
  config.model.channels = meta.value().scaler.mean().dim(0);
  config.model.patch_sizes = meta.value().patch_sizes;
  config.model.model_dim = options.model_dim;
  config.model.hidden_dim = options.hidden_dim;
  config.model.task = TaskType::kForecast;
  config.model.horizon = options.horizon;
  config.model.use_instance_norm = options.use_instance_norm;
  config.scaler = meta.value().scaler;
  config.max_batch = options.max_batch;
  config.quantize = options.quantize;
  return InferenceSession::Create(config, checkpoint_path);
}

}  // namespace serve
}  // namespace msd
