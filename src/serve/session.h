// Frozen inference session (docs/SERVING.md).
//
// An InferenceSession owns an eval-mode MSD-Mixer restored from an MSDCKPT
// checkpoint and answers Predict requests with no autograd tape, no weight
// mutation, and pool-recycled activation buffers:
//
//  * Frozen: weights load once at Create(); SetTraining(false) is applied
//    immediately and every forward runs under NoGradGuard, so no request
//    can record a tape or touch gradients (regression-tested via the
//    autograd/nodes_recorded counter).
//  * Pool-backed: the session holds a pool::MemoryScope for its lifetime and
//    runs a warmup batch at Create(), so steady-state requests draw every
//    activation buffer from the size-class free lists instead of the system
//    allocator.
//  * Thread-safe: concurrent PredictBatch calls are serialized on an
//    internal mutex. Within a batch the GEMM engine already spreads work
//    across the MSD_THREADS pool, so inter-batch concurrency adds nothing
//    on a single node; the mutex keeps the forward pass trivially safe.
//  * Deterministic: outputs are bit-identical for any MSD_THREADS value and
//    for any batch composition — row b of PredictBatch equals the
//    single-request Predict of window b (tests/serve_test.cc).
//  * Planned: unless MSD_PLAN=0, Create() freezes one CompiledPlan per batch
//    size (1..max_batch) — a flat kernel schedule over a single arena
//    allocation (serve/plan.h, docs/COMPILER.md) — and PredictBatch replays
//    the plan instead of interpreting the module graph. Planned outputs are
//    bit-identical to the interpreted path (enforced by a freeze-time
//    memcmp and swept in tests/plan_test.cc); batch sizes whose plan could
//    not be built fall back to the interpreter (serve/plan_fallbacks).
//
// Shape contract per task head (C = channels, L = input_length):
//   kForecast        [C, L] -> [C, horizon]        (original units)
//   kClassification  [C, L] -> [num_classes]       (logits)
//   kReconstruction  [C, L] -> [C, L]              (scaled units)
#ifndef MSDMIXER_SERVE_SESSION_H_
#define MSDMIXER_SERVE_SESSION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/msd_mixer.h"
#include "data/scaler.h"
#include "serve/plan.h"
#include "serve/trace.h"
#include "tensor/pool.h"

namespace msd {
namespace serve {

struct InferenceSessionConfig {
  // Architecture; must match the checkpoint (LoadCheckpoint verifies every
  // parameter name and shape).
  MsdMixerConfig model;
  // Optional per-channel standardization applied to inputs; forecast
  // outputs are mapped back through InverseTransform. Unfitted = identity.
  StandardScaler scaler;
  // Upper bound on rows per PredictBatch call; also the warmup batch size.
  int64_t max_batch = 32;
  // Run one full-size batch at Create() to prime the tensor pool.
  bool warmup = true;
  // Seed for the throwaway weight init that the checkpoint overwrites.
  uint64_t seed = 1;
  // Test/bench hook: busy-spin this long inside the locked forward pass to
  // emulate a slower model. 0 (the default) disables the hook; real
  // deployments never set it.
  int64_t synthetic_compute_us = 0;
  // Int8 inference (docs/PERFORMANCE.md): ask the planner to rewrite
  // eligible constant-weight GEMM steps to the quantized kernels
  // (tensor/qgemm.h). Per-step calibration against the fp32 plan decides
  // adoption; see CompileOptions. The MSD_QUANT environment variable, when
  // set, overrides this field ("0" forces off, anything else forces on).
  // Off by default — the fp32 path stays bit-identical to prior releases.
  bool quantize = false;
  // Calibration gate forwarded to CompileOptions::quant_max_rel_error.
  float quant_max_rel_error = 0.05f;
};

class InferenceSession {
 public:
  // Builds the model, restores `checkpoint_path`, freezes, warms up.
  static StatusOr<std::unique_ptr<InferenceSession>> Create(
      const InferenceSessionConfig& config, const std::string& checkpoint_path);

  // Single request: input [C, L]; output per the task-head table above.
  StatusOr<Tensor> Predict(const Tensor& window);

  // Batched: inputs [B, C, L] with 1 <= B <= max_batch; outputs gain the
  // same leading B axis. Row b is bit-identical to Predict of window b.
  //
  // Trace protocol: when `trace` is null (a direct caller) this is an
  // admission point — the session mints a TraceContext, observes the
  // serve/compute_us histogram itself and pushes a compute span for sampled
  // calls. When the MicroBatcher passes a context, the session only fills
  // compute_start/compute_end and the batcher attributes the interval to
  // each member of the batch.
  StatusOr<Tensor> PredictBatch(const Tensor& batch,
                                TraceContext* trace = nullptr);

  // Reconstruction sessions only: per-window anomaly score [B] = mean
  // squared reconstruction error over channels and time (scaled units, the
  // same quantity tasks/evaluate.h thresholds).
  StatusOr<Tensor> AnomalyScores(const Tensor& batch);

  const MsdMixerConfig& model_config() const { return config_.model; }
  int64_t max_batch() const { return config_.max_batch; }

  // True when Create() ran the planner (MSD_PLAN unset or != "0").
  bool planned() const { return use_plan_; }
  // True when plans were compiled with the quantization pass requested
  // (config.quantize, overridden by MSD_QUANT when set). Individual steps
  // may still have fallen back fp32; see PlanStats::num_quantized.
  bool quantized() const { return use_quant_; }
  // The frozen plan serving batch size `b`, or null when that size fell
  // back to the interpreter (or planning is off). Exposed for tests and
  // the selftest's schedule dump.
  const CompiledPlan* plan_for(int64_t b) const {
    if (b < 1 || b > static_cast<int64_t>(plans_.size())) return nullptr;
    return plans_[static_cast<size_t>(b) - 1].get();
  }

 private:
  explicit InferenceSession(const InferenceSessionConfig& config);

  Status ValidateBatch(const Tensor& batch) const;
  // The locked, NoGradGuard-protected forward pass; `batch` is [B, C, L]
  // in scaled units and the result is the raw head output.
  Tensor RunFrozen(const Tensor& batch);
  // The locked planned forward: replays the frozen schedule (which bakes in
  // the scaler transform and, for forecast heads, the inverse transform).
  Tensor RunPlanned(CompiledPlan& plan, const Tensor& batch);
  // Freezes one CompiledPlan per batch size 1..max_batch and publishes the
  // serve/arena_bytes gauge. Sizes that refuse to compile stay null.
  void BuildPlans();

  InferenceSessionConfig config_;
  // Keeps the activation free-lists alive between requests.
  pool::MemoryScope memory_scope_;
  std::unique_ptr<MsdMixer> mixer_;
  std::mutex model_mu_;
  bool use_plan_ = false;
  // Resolved quantization request (config.quantize / MSD_QUANT override).
  bool use_quant_ = false;
  // Index b-1 serves batch size b; null entries fall back to RunFrozen.
  std::vector<std::unique_ptr<CompiledPlan>> plans_;
};

// Convenience for checkpoints written by ForecastPipeline::Save: reads the
// `.meta` sidecar for the patch ladder and scaler statistics, then Create()s
// a forecast session whose Predict is bit-identical to
// ForecastPipeline::Predict on the same lookback window.
struct ForecastSessionOptions {
  int64_t lookback = 96;
  int64_t horizon = 24;
  int64_t model_dim = 16;
  int64_t hidden_dim = 32;
  bool use_instance_norm = true;
  int64_t max_batch = 32;
  // Forwarded to InferenceSessionConfig::quantize (int8 plan rewriting,
  // docs/PERFORMANCE.md); MSD_QUANT still overrides when set.
  bool quantize = false;
};

StatusOr<std::unique_ptr<InferenceSession>> CreateForecastSession(
    const std::string& checkpoint_path, const ForecastSessionOptions& options);

}  // namespace serve
}  // namespace msd

#endif  // MSDMIXER_SERVE_SESSION_H_
