#include "serve/registry.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/metrics.h"
#include "serve/server.h"

namespace msd {
namespace serve {

namespace {

// Names feed the serve/<name>/... metric taxonomy, so they stay inside the
// [a-z0-9_]+ segment grammar the metric-name-taxonomy lint enforces.
bool ValidModelName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

Status ManifestError(int line_no, const std::string& message) {
  return Status::InvalidArgument("manifest line " + std::to_string(line_no) +
                                 ": " + message);
}

StatusOr<int64_t> ParseIntValue(int line_no, const std::string& key,
                                const std::string& value, int64_t min) {
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size()) {
    return ManifestError(line_no, key + "=" + value + " is not an integer");
  }
  if (parsed < min) {
    return ManifestError(line_no, key + "=" + value + " must be >= " +
                                      std::to_string(min));
  }
  return static_cast<int64_t>(parsed);
}

StatusOr<bool> ParseBoolValue(int line_no, const std::string& key,
                              const std::string& value) {
  if (value == "0") return false;
  if (value == "1") return true;
  return ManifestError(line_no, key + "=" + value + " must be 0 or 1");
}

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
    }
    size_t start = i;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) == 0) {
      ++i;
    }
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

// Per-model instrument names are dynamic ("serve/<model>/<leaf>"); the
// manifest parser constrains <model> to [a-z0-9_]+ so the result always
// lands inside the metric-name-taxonomy grammar the lint enforces on
// literals.
obs::Counter& ModelCounter(const std::string& model, const char* leaf) {
  const std::string name = "serve/" + model + "/" + leaf;
  return obs::MetricsRegistry::Global().GetCounter(name);
}

obs::Gauge& ModelGauge(const std::string& model, const char* leaf) {
  const std::string name = "serve/" + model + "/" + leaf;
  return obs::MetricsRegistry::Global().GetGauge(name);
}

}  // namespace

StatusOr<Manifest> ParseManifest(const std::string& text) {
  Manifest manifest;
  // name -> (version, declaring line) for duplicate/regression diagnostics.
  std::map<std::string, std::pair<int64_t, int>> seen;
  int default_line = 0;
  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t nl = text.find('\n', pos);
    std::string line = nl == std::string::npos
                           ? text.substr(pos)
                           : text.substr(pos, nl - pos);
    pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> tokens = SplitTokens(line);
    if (tokens.empty()) continue;
    if (tokens[0] != "model") {
      return ManifestError(line_no, "expected 'model', got '" + tokens[0] +
                                        "'");
    }
    ManifestEntry entry;
    bool has_name = false;
    bool has_version = false;
    bool has_checkpoint = false;
    for (size_t i = 1; i < tokens.size(); ++i) {
      const size_t eq = tokens[i].find('=');
      if (eq == std::string::npos || eq == 0) {
        return ManifestError(line_no, "expected key=value, got '" + tokens[i] +
                                          "'");
      }
      const std::string key = tokens[i].substr(0, eq);
      const std::string value = tokens[i].substr(eq + 1);
      if (key == "name") {
        if (!ValidModelName(value)) {
          return ManifestError(
              line_no, "name '" + value + "' must match [a-z0-9_]+");
        }
        entry.name = value;
        has_name = true;
      } else if (key == "checkpoint") {
        if (value.empty()) {
          return ManifestError(line_no, "checkpoint path is empty");
        }
        entry.checkpoint = value;
        has_checkpoint = true;
      } else if (key == "version") {
        StatusOr<int64_t> v = ParseIntValue(line_no, key, value, 1);
        if (!v.ok()) return v.status();
        entry.version = v.value();
        has_version = true;
      } else if (key == "lookback" || key == "horizon" || key == "model_dim" ||
                 key == "hidden_dim" || key == "max_batch") {
        StatusOr<int64_t> v = ParseIntValue(line_no, key, value, 1);
        if (!v.ok()) return v.status();
        if (key == "lookback") entry.lookback = v.value();
        if (key == "horizon") entry.horizon = v.value();
        if (key == "model_dim") entry.model_dim = v.value();
        if (key == "hidden_dim") entry.hidden_dim = v.value();
        if (key == "max_batch") entry.max_batch = v.value();
      } else if (key == "max_inflight") {
        StatusOr<int64_t> v = ParseIntValue(line_no, key, value, 0);
        if (!v.ok()) return v.status();
        entry.max_inflight = v.value();
      } else if (key == "instance_norm" || key == "quantize" ||
                 key == "default") {
        StatusOr<bool> b = ParseBoolValue(line_no, key, value);
        if (!b.ok()) return b.status();
        if (key == "instance_norm") entry.use_instance_norm = b.value();
        if (key == "quantize") entry.quantize = b.value();
        if (key == "default") entry.is_default = b.value();
      } else {
        return ManifestError(line_no, "unknown key '" + key + "'");
      }
    }
    if (!has_name) return ManifestError(line_no, "missing name=<id>");
    if (!has_version) return ManifestError(line_no, "missing version=<n>");
    if (!has_checkpoint) {
      return ManifestError(line_no, "missing checkpoint=<path>");
    }
    const auto it = seen.find(entry.name);
    if (it != seen.end()) {
      if (entry.version <= it->second.first) {
        return ManifestError(
            line_no, "version regression for model '" + entry.name + "': v" +
                         std::to_string(entry.version) + " but line " +
                         std::to_string(it->second.second) + " already "
                         "declared v" + std::to_string(it->second.first) +
                         "; versions must strictly increase");
      }
      return ManifestError(
          line_no, "duplicate model '" + entry.name + "' (first declared on "
                       "line " + std::to_string(it->second.second) +
                       "); list each model once and use RELOAD to publish a "
                       "new version");
    }
    seen.emplace(entry.name, std::make_pair(entry.version, line_no));
    if (entry.is_default) {
      if (default_line != 0) {
        return ManifestError(
            line_no, "default=1 already set on line " +
                         std::to_string(default_line) +
                         "; only one model can be the default");
      }
      default_line = line_no;
      manifest.default_model = entry.name;
    }
    manifest.entries.push_back(std::move(entry));
  }
  if (manifest.entries.empty()) {
    return Status::InvalidArgument("manifest declares no models");
  }
  if (manifest.default_model.empty()) {
    manifest.default_model = manifest.entries.front().name;
  }
  return manifest;
}

ServedModel::ServedModel(const ManifestEntry& entry,
                         std::unique_ptr<InferenceSession> session,
                         const MicroBatcherConfig& batcher_config)
    : entry_(entry),
      session_(std::move(session)),
      requests_(ModelCounter(entry.name, "requests_total")),
      rejected_(ModelCounter(entry.name, "rejected_total")),
      inflight_gauge_(ModelGauge(entry.name, "inflight")),
      version_gauge_(ModelGauge(entry.name, "version")),
      batcher_(session_.get(), batcher_config) {
  version_gauge_.Set(static_cast<double>(entry_.version));
  batcher_.Start();
}

ServedModel::~ServedModel() { batcher_.Stop(); }

Status ServedModel::AdmitQuota() {
  const int64_t now = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (entry_.max_inflight > 0 && now > entry_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.Add(1);
    return Status::ResourceExhausted(
        "model '" + entry_.name + "' is at its admission quota (" +
        std::to_string(entry_.max_inflight) + " in flight); retry with "
        "backoff");
  }
  inflight_gauge_.Set(static_cast<double>(now));
  requests_.Add(1);
  return Status::OK();
}

void ServedModel::ReleaseQuota() {
  inflight_gauge_.Set(static_cast<double>(
      inflight_.fetch_sub(1, std::memory_order_relaxed) - 1));
}

StatusOr<Tensor> ServedModel::Handle(const Tensor& window, int64_t timeout_us) {
  Status admitted = AdmitQuota();
  if (!admitted.ok()) return admitted;
  ResultFuture future;
  Status submitted = batcher_.Submit(Tensor(window), &future, timeout_us);
  if (!submitted.ok()) {
    ReleaseQuota();
    return submitted;
  }
  StatusOr<Tensor> result = future.get();
  ReleaseQuota();
  return result;
}

Status ServedModel::SubmitAsync(Tensor window, ResultCallback done,
                                int64_t timeout_us) {
  Status admitted = AdmitQuota();
  if (!admitted.ok()) return admitted;
  Status submitted = batcher_.SubmitAsync(
      std::move(window),
      // `this` stays valid: the caller's `done` closes over the ServedModel
      // snapshot, and the batcher holds this callback until it resolves.
      [this, done = std::move(done)](StatusOr<Tensor> result) {
        ReleaseQuota();
        done(std::move(result));
      },
      timeout_us);
  if (!submitted.ok()) ReleaseQuota();
  return submitted;
}

// msd-hot-path-safe: session construction is a swap-time chokepoint —
// checkpoint restore, warmup and plan freezing allocate by design and never
// run per-request; audited here so the hot-path scan does not descend.
StatusOr<std::shared_ptr<ServedModel>> CreateServedModel(
    const ManifestEntry& entry, const MicroBatcherConfig& batcher_config) {
  ForecastSessionOptions options;
  options.lookback = entry.lookback;
  options.horizon = entry.horizon;
  options.model_dim = entry.model_dim;
  options.hidden_dim = entry.hidden_dim;
  options.use_instance_norm = entry.use_instance_norm;
  options.max_batch = entry.max_batch;
  options.quantize = entry.quantize;
  StatusOr<std::unique_ptr<InferenceSession>> session =
      CreateForecastSession(entry.checkpoint, options);
  if (!session.ok()) {
    return Status(session.status().code(),
                  "model '" + entry.name + "': " + session.status().message());
  }
  return std::make_shared<ServedModel>(entry, std::move(session).value(),
                                       batcher_config);
}

ModelRegistry::ModelRegistry(const MicroBatcherConfig& batcher_config)
    : batcher_config_(batcher_config) {}

ModelRegistry::~ModelRegistry() {
  // Stop every batcher from this (owner) thread BEFORE dropping references:
  // a worker thread may still be tearing down a resolved request whose
  // completion holds the last model snapshot, and letting it run
  // ~ServedModel would make the batcher join its own worker. After Stop()
  // the workers are joined and no completion holds a reference, so the
  // plain destruction below is safe on any thread.
  std::vector<std::shared_ptr<ServedModel>> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& pair : models_) all.push_back(pair.second);
    for (const auto& model : retired_) all.push_back(model);
  }
  for (const std::shared_ptr<ServedModel>& model : all) {
    model->batcher().Stop();
  }
  all.clear();
  ReapRetired();
  std::map<std::string, std::shared_ptr<ServedModel>> models;
  {
    std::lock_guard<std::mutex> lock(mu_);
    models.swap(models_);
  }
  models.clear();
}

Status ModelRegistry::Load(const Manifest& manifest) {
  for (const ManifestEntry& entry : manifest.entries) {
    StatusOr<std::shared_ptr<ServedModel>> model =
        CreateServedModel(entry, batcher_config_);
    if (!model.ok()) return model.status();
    Status added = Add(std::move(model).value());
    if (!added.ok()) return added;
  }
  default_model_ = manifest.default_model;
  return Status::OK();
}

Status ModelRegistry::Add(std::shared_ptr<ServedModel> model) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& name = model->name();
  if (models_.count(name) != 0) {
    return Status::InvalidArgument("model '" + name +
                                   "' already registered; use RELOAD to "
                                   "publish a new version");
  }
  models_.emplace(name, std::move(model));
  return Status::OK();
}

// msd-hot-path-safe: one mutex-guarded map lookup and a shared_ptr copy —
// the per-request routing cost, audited; no allocation past the lock.
StatusOr<std::shared_ptr<ServedModel>> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& key = name.empty() ? default_model_ : name;
  const auto it = models_.find(key);
  if (it == models_.end()) {
    return Status::NotFound("unknown model '" + key +
                            "'; LIST shows the registered models");
  }
  return it->second;
}

Status ModelRegistry::Swap(std::shared_ptr<ServedModel> replacement) {
  if (replacement == nullptr) return Status::InvalidArgument("null model");
  std::vector<std::shared_ptr<ServedModel>> reap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = models_.find(replacement->name());
    if (it == models_.end()) {
      return Status::NotFound("model '" + replacement->name() +
                              "' is not registered; swaps replace existing "
                              "models");
    }
    if (replacement->version() <= it->second->version()) {
      return Status::InvalidArgument(
          "version regression for model '" + replacement->name() + "': v" +
          std::to_string(replacement->version()) + " does not supersede the "
          "live v" + std::to_string(it->second->version()));
    }
    // The outgoing model is retired, not destroyed: in-flight completions
    // still hold snapshots, and the last one may run on its own batcher
    // worker thread, where ~ServedModel would self-join.
    retired_.push_back(std::move(it->second));
    it->second = std::move(replacement);
    static obs::Counter& swaps =
        obs::MetricsRegistry::Global().GetCounter("serve/registry_swaps");
    swaps.Add(1);
    for (size_t i = 0; i < retired_.size();) {
      if (retired_[i].use_count() == 1) {
        reap.push_back(std::move(retired_[i]));
        retired_[i] = std::move(retired_.back());
        retired_.pop_back();
      } else {
        ++i;
      }
    }
  }
  // Stop()/join of drained batchers happens outside the registry lock so
  // Get() never blocks behind a teardown.
  reap.clear();
  return Status::OK();
}

Status ModelRegistry::Reload(const std::string& name,
                             const std::string& checkpoint) {
  StatusOr<std::shared_ptr<ServedModel>> current = Get(name);
  if (!current.ok()) return current.status();
  // Same architecture keys as the live entry; only the checkpoint and the
  // version move. Concurrent Reloads race benignly: both build the same
  // next version and the loser's Swap is rejected as a regression.
  ManifestEntry entry = current.value()->entry();
  entry.checkpoint = checkpoint;
  entry.version += 1;
  StatusOr<std::shared_ptr<ServedModel>> replacement =
      CreateServedModel(entry, batcher_config_);
  if (!replacement.ok()) return replacement.status();
  return Swap(std::move(replacement).value());
}

std::vector<std::shared_ptr<ServedModel>> ModelRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<ServedModel>> models;
  models.reserve(models_.size());
  for (const auto& pair : models_) models.push_back(pair.second);
  return models;
}

void ModelRegistry::ReapRetired() {
  std::vector<std::shared_ptr<ServedModel>> reap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    reap.swap(retired_);
  }
  // Models that still have in-flight holders go back on the list; the rest
  // are destroyed here, on a thread that is not one of their workers.
  std::vector<std::shared_ptr<ServedModel>> still_live;
  for (std::shared_ptr<ServedModel>& model : reap) {
    if (model.use_count() > 1) still_live.push_back(std::move(model));
  }
  reap.clear();
  if (!still_live.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::shared_ptr<ServedModel>& model : still_live) {
      retired_.push_back(std::move(model));
    }
  }
}

std::string ModelService::ListLine() const {
  std::string out = "{\"default\":\"" + registry_->default_model() +
                    "\",\"models\":[";
  bool first = true;
  char buf[160];
  for (const std::shared_ptr<ServedModel>& model : registry_->List()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"" + model->name() + "\",";
    std::snprintf(buf, sizeof(buf),
                  "\"version\":%lld,\"inflight\":%lld,\"max_inflight\":%lld,"
                  "\"quantized\":%s}",
                  static_cast<long long>(model->version()),
                  static_cast<long long>(model->inflight()),
                  static_cast<long long>(model->entry().max_inflight),
                  model->session()->quantized() ? "true" : "false");
    out += buf;
  }
  out += "]}";
  return out;
}

std::string ModelService::StatsLine() const {
  // The global serve/* snapshot, extended with one object per model.
  std::string out = ServeStatsJson();
  MSD_CHECK(!out.empty() && out.back() == '}');
  out.pop_back();
  out += ",\"models\":{";
  bool first = true;
  char buf[160];
  for (const std::shared_ptr<ServedModel>& model : registry_->List()) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + model->name() + "\":";
    std::snprintf(buf, sizeof(buf),
                  "{\"version\":%lld,\"requests_total\":%lld,"
                  "\"rejected_total\":%lld,\"inflight\":%lld}",
                  static_cast<long long>(model->version()),
                  static_cast<long long>(model->requests_total()),
                  static_cast<long long>(model->rejected_total()),
                  static_cast<long long>(model->inflight()));
    out += buf;
  }
  out += "}}";
  return out;
}

bool ModelService::MaybeAdmin(const std::string& trimmed, std::string* reply) {
  if (trimmed == "STATS") {
    *reply = StatsLine();
    return true;
  }
  if (trimmed == "LIST") {
    *reply = ListLine();
    return true;
  }
  if (trimmed.rfind("TRACE", 0) == 0 &&
      (trimmed.size() == 5 || trimmed[5] == ' ' || trimmed[5] == '\t')) {
    const std::string path =
        trimmed.size() > 5 ? TrimmedLine(trimmed.substr(5)) : std::string();
    *reply = HandleTraceDump(path, exporter_);
    return true;
  }
  if (trimmed.rfind("RELOAD", 0) == 0 &&
      (trimmed.size() == 6 || trimmed[6] == ' ' || trimmed[6] == '\t')) {
    const std::vector<std::string> tokens = SplitTokens(trimmed);
    if (tokens.size() != 3) {
      *reply = "ERROR " + Status::InvalidArgument(
                              "RELOAD needs <model> <checkpoint>")
                              .ToString();
      return true;
    }
    Status reloaded = registry_->Reload(tokens[1], tokens[2]);
    if (!reloaded.ok()) {
      *reply = "ERROR " + reloaded.ToString();
      return true;
    }
    StatusOr<std::shared_ptr<ServedModel>> swapped = registry_->Get(tokens[1]);
    *reply = "OK " + tokens[1] + " v" +
             (swapped.ok() ? std::to_string(swapped.value()->version())
                           : std::string("?"));
    return true;
  }
  return false;
}

StatusOr<std::shared_ptr<ServedModel>> ModelService::Route(
    const std::string& line, std::string* payload) const {
  if (line.rfind("MODEL", 0) == 0 &&
      (line.size() == 5 || line[5] == ' ' || line[5] == '\t')) {
    size_t i = 5;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    const std::string name = line.substr(start, i - start);
    if (name.empty()) {
      return Status::InvalidArgument("MODEL needs a model name");
    }
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    *payload = line.substr(i);
    return registry_->Get(name);
  }
  *payload = line;
  return registry_->Get(std::string());
}

std::string ModelService::HandleLine(const std::string& line) {
  const std::string trimmed = TrimmedLine(line);
  std::string reply;
  if (MaybeAdmin(trimmed, &reply)) return reply;
  std::string payload;
  StatusOr<std::shared_ptr<ServedModel>> model = Route(trimmed, &payload);
  if (!model.ok()) return "ERROR " + model.status().ToString();
  const MsdMixerConfig& mc = model.value()->session()->model_config();
  StatusOr<Tensor> window =
      ParseWindowLine(payload, mc.channels, mc.input_length);
  if (!window.ok()) return "ERROR " + window.status().ToString();
  StatusOr<Tensor> result = model.value()->Handle(window.value());
  if (!result.ok()) return "ERROR " + result.status().ToString();
  return FormatTensorLine(result.value());
}

// msd-hot-path: the multi-tenant request path every socket line runs
// through — routing, parse, async admission.
void ModelService::HandleLineAsync(const std::string& line,
                                   std::function<void(std::string)> done) {
  const std::string trimmed = TrimmedLine(line);
  std::string reply;
  if (MaybeAdmin(trimmed, &reply)) {
    done(std::move(reply));
    return;
  }
  std::string payload;
  StatusOr<std::shared_ptr<ServedModel>> routed = Route(trimmed, &payload);
  if (!routed.ok()) {
    done("ERROR " + routed.status().ToString());
    return;
  }
  std::shared_ptr<ServedModel> model = std::move(routed).value();
  const MsdMixerConfig& mc = model->session()->model_config();
  StatusOr<Tensor> window =
      ParseWindowLine(payload, mc.channels, mc.input_length);
  if (!window.ok()) {
    done("ERROR " + window.status().ToString());
    return;
  }
  // `done` is copied into the completion (not moved): on a non-OK admission
  // the callback is discarded unfired and the reject still needs answering.
  // The captured snapshot keeps the admitted-to model alive across swaps.
  Status submitted = model->SubmitAsync(
      std::move(window).value(), [model, done](StatusOr<Tensor> result) {
        if (result.ok()) {
          done(FormatTensorLine(result.value()));
        } else {
          done("ERROR " + result.status().ToString());
        }
      });
  if (!submitted.ok()) done("ERROR " + submitted.ToString());
}

}  // namespace serve
}  // namespace msd
