#include "serve/batcher.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace serve {

MicroBatcher::MicroBatcher(InferenceSession* session,
                           const MicroBatcherConfig& config)
    : session_(session), config_(config) {
  MSD_CHECK(session != nullptr);
  MSD_CHECK_GE(config_.max_batch, 1);
  MSD_CHECK_GE(config_.queue_capacity, 1);
  MSD_CHECK_GE(config_.num_workers, 1);
  MSD_CHECK_GE(config_.max_delay_us, 0);
  // A batch can never exceed what one PredictBatch call accepts.
  config_.max_batch = std::min(config_.max_batch, session->max_batch());
}

MicroBatcher::~MicroBatcher() { Stop(); }

void MicroBatcher::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MSD_CHECK(!stopped_) << "MicroBatcher cannot restart after Stop()";
    if (started_) return;
    started_ = true;
  }
  workers_.Start(config_.num_workers, [this](int64_t) { WorkerLoop(); });
}

void MicroBatcher::Stop() {
  std::deque<Request> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    drained.swap(queue_);
    Instruments().queue_depth.Set(0.0);
  }
  cv_.notify_all();
  workers_.Join();
  for (Request& request : drained) {
    Resolve(&request,
            Status::Cancelled("micro-batcher stopped before the request ran"));
    DecInflight();
  }
}

void MicroBatcher::Resolve(Request* request, StatusOr<Tensor> result) {
  if (request->done) {
    request->done(std::move(result));
  } else {
    request->promise.set_value(std::move(result));
  }
}

Status MicroBatcher::Submit(Tensor window, ResultFuture* result,
                            int64_t timeout_us) {
  MSD_CHECK(result != nullptr);
  Request request;
  request.input = std::move(window);
  // The future is handed out only once admission is certain (Admit moves
  // the request away only on OK), so a rejected Submit never leaves the
  // caller a broken promise.
  ResultFuture future = request.promise.get_future();
  request.deadline = Clock::time_point::max();
  Status admitted = AdmitWithTimeout(std::move(request), timeout_us);
  if (admitted.ok()) *result = std::move(future);
  return admitted;
}

Status MicroBatcher::SubmitAsync(Tensor window, ResultCallback done,
                                 int64_t timeout_us) {
  MSD_CHECK(done != nullptr);
  Request request;
  request.input = std::move(window);
  request.done = std::move(done);
  return AdmitWithTimeout(std::move(request), timeout_us);
}

Status MicroBatcher::AdmitWithTimeout(Request request, int64_t timeout_us) {
  if (!request.input.defined() || request.input.rank() != 2 ||
      request.input.dim(0) != session_->model_config().channels ||
      request.input.dim(1) != session_->model_config().input_length) {
    return Status::InvalidArgument(
        "window must be [" +
        std::to_string(session_->model_config().channels) + ", " +
        std::to_string(session_->model_config().input_length) + "]");
  }
  if (timeout_us < 0) timeout_us = config_.default_timeout_us;

  // Minting assigns the monotonic request id, the 1-in-N sampling bit and
  // the enqueue timestamp every downstream phase is measured against.
  request.trace = MintTraceContext();
  request.deadline = timeout_us > 0
                         ? request.trace.enqueue +
                               std::chrono::microseconds(timeout_us)
                         : Clock::time_point::max();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return Status::Cancelled("micro-batcher is stopped");
    }
    if (static_cast<int64_t>(queue_.size()) >= config_.queue_capacity) {
      Instruments().rejected.Add(1);
      return Status::ResourceExhausted(
          "request queue full (" + std::to_string(config_.queue_capacity) +
          " pending); retry with backoff");
    }
    queue_.push_back(std::move(request));
    const double depth = static_cast<double>(queue_.size());
    Instruments().queue_depth.Set(depth);
    Instruments().queue_depth_peak.SetMax(depth);
    Instruments().requests.Add(1);
    Instruments().inflight.Set(static_cast<double>(
        inflight_.fetch_add(1, std::memory_order_relaxed) + 1));
  }
  cv_.notify_one();
  return Status::OK();
}

void MicroBatcher::DecInflight() {
  Instruments().inflight.Set(static_cast<double>(
      inflight_.fetch_sub(1, std::memory_order_relaxed) - 1));
}

int64_t MicroBatcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

// msd-hot-path: per-batch worker cycle; every request's latency includes it.
void MicroBatcher::WorkerLoop() {
  const auto max_delay = std::chrono::microseconds(config_.max_delay_us);
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
      if (stopped_) return;
      // Coalesce: wait for more requests until the batch is full or the
      // oldest pending request has aged out. The deadline is re-derived from
      // the current front each pass — another worker may have taken the
      // requests we were originally batching behind.
      while (!stopped_ && !queue_.empty() &&
             static_cast<int64_t>(queue_.size()) < config_.max_batch) {
        const auto batch_deadline = queue_.front().trace.enqueue + max_delay;
        if (Clock::now() >= batch_deadline) break;
        cv_.wait_until(lock, batch_deadline);
      }
      if (stopped_) return;
      if (queue_.empty()) continue;
      const int64_t take =
          std::min<int64_t>(static_cast<int64_t>(queue_.size()),
                            config_.max_batch);
      batch.reserve(static_cast<size_t>(take));
      for (int64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      Instruments().queue_depth.Set(static_cast<double>(queue_.size()));
    }
    ProcessBatch(std::move(batch));
  }
}

void MicroBatcher::ProcessBatch(std::vector<Request> batch) {
  // The queue-wait phase ends here for every member: the batch is off the
  // queue and owned by this worker.
  const auto dequeue = Clock::now();
  // Expired requests resolve immediately and never occupy batch rows.
  std::vector<Request> live;
  live.reserve(batch.size());
  for (Request& request : batch) {
    request.trace.dequeue = dequeue;
    if (dequeue >= request.deadline) {
      Instruments().timeouts.Add(1);
      // serve/deadline_miss counts exactly the kDeadlineExceeded outcomes.
      Instruments().deadline_miss.Add(1);
      Resolve(&request, Status::DeadlineExceeded(
                            "request timed out in the batch queue"));
      DecInflight();
    } else {
      live.push_back(std::move(request));
    }
  }
  if (live.empty()) return;

  std::vector<Tensor> inputs;
  inputs.reserve(live.size());
  for (const Request& request : live) inputs.push_back(request.input);
  // The session fills compute_start/compute_end into `compute_trace` and
  // skips its own direct-call observation: the batcher attributes the shared
  // compute interval to every member of the batch below.
  TraceContext compute_trace;
  StatusOr<Tensor> outputs =
      session_->PredictBatch(Stack(inputs), &compute_trace);

  Instruments().batches.Add(1);
  Instruments().batch_size.Observe(static_cast<double>(live.size()));

  if (!outputs.ok()) {
    for (Request& request : live) {
      Resolve(&request, outputs.status());
      DecInflight();
    }
    return;
  }
  const Tensor& stacked = outputs.value();
  const auto done = Clock::now();
  for (size_t i = 0; i < live.size(); ++i) {
    TraceContext& trace = live[i].trace;
    trace.compute_start = compute_trace.compute_start;
    trace.compute_end = compute_trace.compute_end;
    // Row i of the stacked output, with the batch axis dropped.
    Tensor row = Slice(stacked, 0, static_cast<int64_t>(i), 1);
    Shape squeezed(row.shape().begin() + 1, row.shape().end());
    Instruments().queue_us.Observe(
        static_cast<double>(ToMicros(trace.dequeue - trace.enqueue)));
    Instruments().batch_assembly_us.Observe(
        static_cast<double>(ToMicros(trace.compute_start - trace.dequeue)));
    Instruments().compute_us.Observe(static_cast<double>(
        ToMicros(trace.compute_end - trace.compute_start)));
    Instruments().e2e_us.Observe(
        static_cast<double>(ToMicros(done - trace.enqueue)));
    if (trace.sampled) PushRequestSpans(trace);
    // Telemetry must land before the request resolves: a client that reads
    // STATS/TRACE immediately after its reply must see its own request's
    // histograms and spans, not race this thread for them.
    Resolve(&live[i], row.Reshape(std::move(squeezed)));
    DecInflight();
  }
}

}  // namespace serve
}  // namespace msd
