// Dynamic micro-batching request engine (docs/SERVING.md).
//
// Requests enter a bounded MPMC queue; dedicated worker threads
// (runtime::WorkerGroup) coalesce pending requests into a batch when either
// `max_batch` requests are waiting or the oldest request has waited
// `max_delay_us`, then run one InferenceSession::PredictBatch and resolve
// each request's future (Submit) or completion callback (SubmitAsync —
// the path the epoll front-end in serve/netio.h uses, so no thread is
// parked per in-flight request) with its own row.
//
// Policies:
//  * Admission control: Submit() on a full queue fails fast with
//    kResourceExhausted — callers get backpressure, requests are never
//    dropped on the floor.
//  * Timeout: a request that is still queued past its deadline resolves
//    with kDeadlineExceeded at dequeue time (it never occupies batch space).
//  * Cancellation: Stop() drains the queue and resolves every pending
//    request with kCancelled before joining the workers; no future is ever
//    left unresolved.
//
// This file is serving hot-path code: the repo lint rule
// no-blocking-io-in-serve-hot-path forbids file/stdio calls anywhere in
// src/serve so a batch cycle stays compute-only.
//
// Telemetry (docs/OBSERVABILITY.md taxonomy, serve/trace.h handles): every
// request carries a TraceContext minted at Submit(), so each reply is
// decomposed into the serve/queue_us, serve/batch_assembly_us,
// serve/compute_us and serve/e2e_us histograms; counters
// serve/requests_total, serve/rejected_total, serve/timeouts_total,
// serve/deadline_miss, serve/batches_total; gauges serve/queue_depth,
// serve/queue_depth_peak, serve/inflight; histogram serve/batch_size.
// Sampled requests push per-phase spans into obs::TraceRing.
#ifndef MSDMIXER_SERVE_BATCHER_H_
#define MSDMIXER_SERVE_BATCHER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>

#include "common/status.h"
#include "runtime/worker.h"
#include "serve/session.h"
#include "serve/trace.h"

namespace msd {
namespace serve {

struct MicroBatcherConfig {
  // Coalescing window: a batch closes at `max_batch` requests or when the
  // oldest member has waited `max_delay_us`, whichever comes first.
  // (Clamped to the session's max_batch.)
  int64_t max_batch = 8;
  int64_t max_delay_us = 2000;
  // Bounded queue; Submit() beyond this rejects with kResourceExhausted.
  int64_t queue_capacity = 64;
  // Dedicated batch-assembly threads. One is enough to saturate the GEMM
  // engine (PredictBatch fans out over the MSD_THREADS pool); a second
  // overlaps batch assembly with compute.
  int64_t num_workers = 1;
  // Default per-request timeout; <= 0 means no deadline.
  int64_t default_timeout_us = 0;
};

using ResultFuture = std::future<StatusOr<Tensor>>;
// Completion for SubmitAsync: invoked exactly once per admitted request,
// on a batcher worker thread (success, inference error, deadline) or on the
// Stop()ing thread (kCancelled). Must not block — the epoll front-end's
// completions only move the formatted reply onto a wake queue.
using ResultCallback = std::function<void(StatusOr<Tensor>)>;

class MicroBatcher {
 public:
  // `session` must outlive the batcher.
  MicroBatcher(InferenceSession* session, const MicroBatcherConfig& config);
  ~MicroBatcher();  // Stop()s if still running.

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  // Spawns the worker threads. Submit() before Start() is allowed — requests
  // queue up (subject to capacity) and are served once workers exist.
  void Start();

  // Drains the queue (pending requests resolve with kCancelled), joins the
  // workers. Idempotent.
  void Stop();

  // Enqueues one window ([channels, length]). On OK, *result resolves with
  // the per-request output or an error produced later in the cycle. Non-OK
  // return means the request was NOT admitted: kResourceExhausted when the
  // queue is full, kCancelled after Stop(), kInvalidArgument on bad shape.
  // timeout_us: <0 uses config.default_timeout_us; 0 means no deadline.
  Status Submit(Tensor window, ResultFuture* result, int64_t timeout_us = -1);

  // Callback twin of Submit, for front-ends that must not park a thread per
  // request (the epoll loop in serve/netio.h). Same admission contract; on
  // OK, `done` fires exactly once with the result. A non-OK return means
  // `done` was NOT taken and will never fire.
  Status SubmitAsync(Tensor window, ResultCallback done,
                     int64_t timeout_us = -1);

  int64_t queue_depth() const;
  const MicroBatcherConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    Tensor input;
    std::promise<StatusOr<Tensor>> promise;
    // Non-empty for SubmitAsync requests: resolution calls this instead of
    // fulfilling the promise.
    ResultCallback done;
    // Carries request id, sampling bit and the enqueue/dequeue/compute
    // timestamps; trace.enqueue doubles as the admission time the deadline
    // and coalescing window are derived from.
    TraceContext trace;
    // time_point::max() when the request has no deadline.
    Clock::time_point deadline;
  };

  void WorkerLoop();
  // Resolves every member of `batch`: expired requests with
  // kDeadlineExceeded, the rest with rows of one PredictBatch call.
  void ProcessBatch(std::vector<Request> batch);
  // Single admission path shared by Submit and SubmitAsync: validates the
  // window, mints the trace context, derives the deadline, enqueues.
  Status AdmitWithTimeout(Request request, int64_t timeout_us);
  // The one place a request resolves: callback or promise, never both.
  static void Resolve(Request* request, StatusOr<Tensor> result);
  // One request left the pipeline (resolved, any status).
  void DecInflight();

  InferenceSession* session_;
  MicroBatcherConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool started_ = false;
  bool stopped_ = false;
  // Admitted-but-unresolved requests, mirrored to the serve/inflight gauge.
  std::atomic<int64_t> inflight_{0};
  runtime::WorkerGroup workers_;
};

}  // namespace serve
}  // namespace msd

#endif  // MSDMIXER_SERVE_BATCHER_H_
