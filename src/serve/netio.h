// Epoll multi-client socket front-end (docs/SERVING.md).
//
// SocketServer multiplexes hundreds of concurrent AF_UNIX connections onto
// one event-loop thread, replacing the old one-connection-at-a-time accept
// loop in tools/msd_serve. Every connection is non-blocking and owns a pair
// of byte buffers:
//
//  * inbound bytes accumulate until '\n' frames a request line, which is
//    handed to the LineHandler (ModelService::HandleLineAsync) — the loop
//    never blocks on a request: admitted lines resolve later on a batcher
//    worker thread;
//  * completions Post() the formatted reply onto an eventfd-signaled queue;
//    the loop drains it, appends to the connection's outbound buffer, and
//    writes under EPOLLOUT readiness (armed only while bytes are pending).
//
// Ordering: replies carry the connection's id, so a completion for a
// connection that already closed is dropped (serve/net_dropped_replies
// counts them) instead of landing on a recycled fd. Within one connection,
// pipelined lines are admitted in order but may complete out of order
// across different models; clients that need strict pairing send one line
// at a time (the bench clients do).
//
// Robustness (the socket-hardening checklist): SOCK_NONBLOCK/SOCK_CLOEXEC
// everywhere, EINTR retried on accept/read/send, sends use MSG_NOSIGNAL
// (hosts also ignore SIGPIPE for the stdin front-end), listen() backlog is
// configurable and defaults to 128 instead of the old 8, connections past
// max_conns get a best-effort ERROR line and an immediate close, and a
// request line that exceeds max_line_bytes closes the offending connection
// instead of growing without bound.
//
// This is src/serve: the no-blocking-io-in-serve-hot-path lint applies.
// Raw non-blocking syscalls (epoll_wait, accept4, read, send) are the
// transport and are legal; buffered stdio is not.
#ifndef MSDMIXER_SERVE_NETIO_H_
#define MSDMIXER_SERVE_NETIO_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace msd {
namespace serve {

struct SocketServerConfig {
  // AF_UNIX listening path; any stale socket file is unlinked at Listen()
  // and the live one at shutdown.
  std::string path;
  // Concurrent-connection cap: accepts beyond it are answered with a
  // best-effort ERROR line and closed (serve/net_rejected_conns).
  int64_t max_conns = 256;
  // listen(2) backlog for connection bursts.
  int64_t backlog = 128;
  // A connection whose current line exceeds this many bytes is closed.
  int64_t max_line_bytes = 1 << 20;
};

// Called on the event-loop thread once per complete request line (without
// the trailing '\n'). `reply` must be invoked exactly once; it is
// thread-safe and non-blocking (it enqueues the reply and wakes the loop),
// so batcher completions call it directly.
using LineHandler =
    std::function<void(std::string line, std::function<void(std::string)>)>;

class SocketServer {
 public:
  SocketServer(const SocketServerConfig& config, LineHandler handler);
  // Shutdown()s and releases every fd. Destruction order matters: anything
  // that can still invoke a reply closure (the registry's model batchers)
  // must be destroyed BEFORE the server, so Post never writes a recycled
  // wake fd. Hosts declare the SocketServer before the ModelRegistry.
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds and listens (non-blocking listener, epoll + wake eventfd).
  Status Listen();

  // The event loop; blocks the calling thread until Shutdown(). Requires a
  // successful Listen().
  void Run();

  // Thread-safe, idempotent: makes Run() return. Open connections are
  // closed; unflushed replies are dropped.
  void Shutdown();

  const std::string& path() const { return config_.path; }
  // Test hook: connections currently open (loop-thread accurate).
  int64_t open_connections() const {
    return open_conns_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    std::string in;   // bytes received, not yet framed into lines
    std::string out;  // replies not yet written; out_offset consumed
    size_t out_offset = 0;
    // Lines handed to the handler whose reply has not been posted yet; a
    // closing connection lingers until this drains so no reply is lost.
    int64_t pending = 0;
    bool peer_closed = false;
    bool want_write = false;  // EPOLLOUT currently armed
  };

  // Completion-side entry point: enqueues (conn_id, reply) and wakes the
  // loop via the eventfd. Replies for ids that no longer exist are dropped.
  void Post(uint64_t conn_id, std::string reply);

  void AcceptReady();
  void ReadReady(Conn* conn);
  // Appends framed lines to the handler; returns false when the connection
  // was closed (oversized line).
  bool ExtractLines(Conn* conn);
  // Writes as much of conn->out as the socket takes; arms/disarms EPOLLOUT.
  void FlushWrites(Conn* conn);
  void DrainReplies();
  // True when a peer-closed connection has nothing left to deliver.
  bool Finished(const Conn& conn) const;
  void CloseConn(uint64_t conn_id);
  void UpdateInterest(Conn* conn);

  SocketServerConfig config_;
  LineHandler handler_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wake eventfd
  std::unordered_map<uint64_t, Conn> conns_;
  std::atomic<int64_t> open_conns_{0};

  std::mutex reply_mu_;
  std::vector<std::pair<uint64_t, std::string>> replies_;

  // serve/net_* instruments, resolved once.
  obs::Counter& accepted_;
  obs::Counter& rejected_conns_;
  obs::Counter& lines_;
  obs::Counter& dropped_replies_;
  obs::Gauge& conns_gauge_;
};

}  // namespace serve
}  // namespace msd

#endif  // MSDMIXER_SERVE_NETIO_H_
