// Serving front-end (docs/SERVING.md).
//
// ServerLoop glues a frozen InferenceSession to a MicroBatcher and exposes
// the two call surfaces the tools use:
//
//  * Handle(window)   — synchronous Tensor-in/Tensor-out: submits to the
//    batcher and blocks on the request future. This is what load-generator
//    clients (bench/bench_serving.cc) call from many threads at once.
//  * HandleLine(line) — the text protocol used by tools/msd_serve over
//    stdin or a unix socket. One request per line; channels are separated
//    by ';', values within a channel by ','. The response uses the same
//    layout, or "ERROR <code>: <message>" on failure. Transport IO stays in
//    the tools — this file only transforms strings (the
//    no-blocking-io-in-serve-hot-path lint rule bans stdio here).
//
// Admin commands (HandleLine, docs/OBSERVABILITY.md):
//  * "STATS"        — one JSON line of serve/* counters, gauges and
//    histogram-derived p50/p95/p99 (Histogram::ValueAtQuantile).
//  * "TRACE <path>" — dumps the sampled obs::TraceRing as chrome://tracing
//    JSON to <path> via the attached TelemetryExporter (SetExporter); the
//    exporter thread does the write, this thread only waits for the result.
//
// Lifecycle: Start() spawns the batcher workers, Stop() drains in-flight
// requests (they resolve with kCancelled) and joins. The destructor Stop()s.
#ifndef MSDMIXER_SERVE_SERVER_H_
#define MSDMIXER_SERVE_SERVER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "serve/batcher.h"
#include "serve/session.h"

namespace msd {
namespace obs {
class TelemetryExporter;
}  // namespace obs

namespace serve {

class ServerLoop {
 public:
  // `session` must outlive the server.
  ServerLoop(InferenceSession* session, const MicroBatcherConfig& config);

  void Start() { batcher_.Start(); }
  void Stop() { batcher_.Stop(); }

  // Submits `window` ([channels, length]) and waits for the result.
  // timeout_us: <0 uses the batcher default, 0 disables the deadline.
  StatusOr<Tensor> Handle(const Tensor& window, int64_t timeout_us = -1);

  // Parses one text-protocol request line (or an admin command, see the file
  // comment), runs Handle, renders the reply. Never throws; malformed input
  // yields an "ERROR ..." string.
  std::string HandleLine(const std::string& line);

  // Attaches the exporter the TRACE admin command routes dumps through.
  // Optional; without one TRACE answers with an error. `exporter` must
  // outlive the server.
  void SetExporter(obs::TelemetryExporter* exporter) { exporter_ = exporter; }

  // The STATS reply: one JSON object with serve counters/gauges and
  // p50/p95/p99 for each serve latency histogram.
  std::string StatsLine() const;

  InferenceSession* session() { return session_; }
  MicroBatcher& batcher() { return batcher_; }

 private:
  InferenceSession* session_;
  MicroBatcher batcher_;
  obs::TelemetryExporter* exporter_ = nullptr;
};

// Text-protocol helpers, exposed for tests and tools.
//
// ParseWindowLine: "1,2,3;4,5,6" -> [2, 3] tensor. Every channel must have
// the same number of values and match the expected [channels, length] if
// those are positive.
StatusOr<Tensor> ParseWindowLine(const std::string& line, int64_t channels,
                                 int64_t length);

// Strips leading/trailing ASCII whitespace (the transport's framing), so
// admin commands match regardless of trailing newlines.
std::string TrimmedLine(const std::string& line);

// The process-wide serve/* snapshot both front-ends render for STATS: one
// JSON object with the request counters, gauges, and p50/p95/p99 for each
// latency histogram (Histogram::ValueAtQuantile).
std::string ServeStatsJson();

// The TRACE admin command, shared by ServerLoop and the multi-model
// ModelService (serve/registry.h): dumps the sampled obs::TraceRing as
// chrome://tracing JSON to `path` via `exporter` (the exporter thread does
// the file write). Returns the protocol reply ("OK <path>" or "ERROR ...").
std::string HandleTraceDump(const std::string& path,
                            obs::TelemetryExporter* exporter);

// FormatTensorLine: inverse rendering — rank-1 tensors become one
// comma-separated channel; rank-2 rows are joined with ';'. %.6g floats.
std::string FormatTensorLine(const Tensor& tensor);

}  // namespace serve
}  // namespace msd

#endif  // MSDMIXER_SERVE_SERVER_H_
