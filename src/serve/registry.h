// Multi-tenant model registry and hot-swap (docs/SERVING.md).
//
// Three layers turn the single-session ServerLoop into a multi-model server:
//
//  * ManifestEntry / ParseManifest — the text manifest describing the fleet.
//    One model per line:
//
//      model name=<id> version=<n> checkpoint=<path> [key=value ...]
//
//    Optional keys: lookback, horizon, model_dim, hidden_dim, instance_norm
//    (0/1), max_batch, max_inflight (admission quota, 0 = unlimited),
//    quantize (0/1), default (0/1). '#' starts a comment. Names are
//    [a-z0-9_]+ so per-model metric names stay inside the
//    metric-name-taxonomy lint grammar. The parser rejects duplicate model
//    names and version regressions outright instead of silently taking the
//    last line.
//
//  * ServedModel — one live (session, micro-batcher) pair plus the
//    per-model admission quota and metrics. Submissions beyond
//    `max_inflight` fail fast with kResourceExhausted before touching the
//    batcher, so one tenant cannot queue out the others. Counters/gauges:
//    serve/<name>/requests_total, serve/<name>/rejected_total,
//    serve/<name>/inflight, serve/<name>/version.
//
//  * ModelRegistry — the name -> ServedModel map with atomic hot-swap.
//    Get() hands out a shared_ptr snapshot; Swap()/Reload() flip the map
//    entry under the registry mutex so requests admitted before the flip
//    finish on the old session (their completions hold the snapshot) while
//    every later Get() sees the new one — no request is dropped or crosses
//    versions. A swap requires a strictly newer version; regressions are
//    rejected. Swapped-out models are retired, not destroyed inline: the
//    last in-flight completion may run on a batcher worker thread, and
//    destroying the ServedModel there would self-join. The retired list is
//    reaped on later admin calls and in the destructor.
//
// ModelService is the protocol front-end over a registry: the single-model
// text protocol (serve/server.h) extended with an optional "MODEL <name> "
// request prefix and the admin commands LIST, RELOAD <name> <checkpoint>,
// STATS, TRACE <path>. HandleLineAsync is the epoll path (serve/netio.h):
// data lines resolve through MicroBatcher::SubmitAsync so no thread is
// parked per in-flight request.
#ifndef MSDMIXER_SERVE_REGISTRY_H_
#define MSDMIXER_SERVE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "serve/batcher.h"
#include "serve/session.h"

namespace msd {
namespace obs {
class TelemetryExporter;
}  // namespace obs

namespace serve {

// One manifest line. Defaults mirror ForecastSessionOptions.
struct ManifestEntry {
  std::string name;        // [a-z0-9_]+, required
  int64_t version = 0;     // >= 1, required
  std::string checkpoint;  // required
  int64_t lookback = 96;
  int64_t horizon = 24;
  int64_t model_dim = 16;
  int64_t hidden_dim = 32;
  bool use_instance_norm = true;
  int64_t max_batch = 32;
  // Per-model admission quota: requests in flight beyond this fail with
  // kResourceExhausted. 0 = unlimited.
  int64_t max_inflight = 0;
  bool quantize = false;
  bool is_default = false;
};

struct Manifest {
  std::vector<ManifestEntry> entries;
  // The entry requests route to when no MODEL prefix is given: the one
  // marked default=1, else the first entry.
  std::string default_model;
};

// Parses manifest TEXT (not a path — file IO stays in the tools; see the
// no-blocking-io-in-serve-hot-path lint rule). Errors carry 1-based line
// numbers. Rejects duplicate names, version regressions between lines of
// the same name, bad keys/values, and multiple default=1 entries.
StatusOr<Manifest> ParseManifest(const std::string& text);

// A live model: frozen session + its own micro-batcher + admission quota.
// Construction starts the batcher workers; destruction stops them (pending
// requests resolve kCancelled). Create ServedModels via CreateServedModel
// (builds the session from the entry's checkpoint) or directly from a
// session you already own (tests inject synthetic-compute sessions this way).
class ServedModel {
 public:
  ServedModel(const ManifestEntry& entry,
              std::unique_ptr<InferenceSession> session,
              const MicroBatcherConfig& batcher_config);
  ~ServedModel();

  ServedModel(const ServedModel&) = delete;
  ServedModel& operator=(const ServedModel&) = delete;

  // Synchronous submit-and-wait (bench clients, stdin front-end). Applies
  // the quota, then blocks on the batcher future.
  StatusOr<Tensor> Handle(const Tensor& window, int64_t timeout_us = -1);

  // Callback twin for the epoll front-end. Same admission contract as
  // MicroBatcher::SubmitAsync: on OK `done` fires exactly once (it must not
  // block); a non-OK return means `done` will never fire. The quota slot is
  // released when `done` runs.
  Status SubmitAsync(Tensor window, ResultCallback done,
                     int64_t timeout_us = -1);

  const ManifestEntry& entry() const { return entry_; }
  const std::string& name() const { return entry_.name; }
  int64_t version() const { return entry_.version; }
  InferenceSession* session() { return session_.get(); }
  MicroBatcher& batcher() { return batcher_; }
  int64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  // Per-model counter snapshots (the STATS per-model object).
  int64_t requests_total() const { return requests_.value(); }
  int64_t rejected_total() const { return rejected_.value(); }

 private:
  // Takes one quota slot or fails with kResourceExhausted; bumps the
  // per-model request counter on success.
  Status AdmitQuota();
  void ReleaseQuota();

  ManifestEntry entry_;
  std::unique_ptr<InferenceSession> session_;
  std::atomic<int64_t> inflight_{0};
  // Per-model metric handles (serve/<name>/...). Resolved once here: the
  // names are dynamic, and registry lookups by string do not belong on the
  // request path.
  obs::Counter& requests_;
  obs::Counter& rejected_;
  obs::Gauge& inflight_gauge_;
  obs::Gauge& version_gauge_;
  MicroBatcher batcher_;
};

// Builds the InferenceSession described by `entry` (checkpoint + .meta
// sidecar, CreateForecastSession) and wraps it in a started ServedModel.
StatusOr<std::shared_ptr<ServedModel>> CreateServedModel(
    const ManifestEntry& entry, const MicroBatcherConfig& batcher_config);

class ModelRegistry {
 public:
  explicit ModelRegistry(const MicroBatcherConfig& batcher_config);
  // Reaps every retired model and drops the live ones. Safe: this runs on
  // an owner thread, never on a batcher worker.
  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // Loads every manifest entry (CreateServedModel per entry) and records
  // the default model. Fails without side effects being rolled back —
  // callers treat a non-OK Load as fatal at startup.
  Status Load(const Manifest& manifest);

  // Registers a new model under entry.name. kInvalidArgument if the name
  // exists (use Swap/Reload to replace).
  Status Add(std::shared_ptr<ServedModel> model);

  // Snapshot lookup; empty name resolves the default model. The returned
  // shared_ptr stays valid across swaps — completions finish on the
  // session they were admitted to.
  StatusOr<std::shared_ptr<ServedModel>> Get(const std::string& name) const;

  // Atomically replaces the model named `replacement->name()`. Requires the
  // name to exist and replacement->version() to be strictly newer; rejects
  // version regressions with kInvalidArgument. Bumps serve/registry_swaps.
  Status Swap(std::shared_ptr<ServedModel> replacement);

  // Builds version current+1 of `name` from `checkpoint` (same architecture
  // keys as the original manifest entry) and Swap()s it in.
  Status Reload(const std::string& name, const std::string& checkpoint);

  // Names in deterministic (sorted) order, with their current snapshots.
  std::vector<std::shared_ptr<ServedModel>> List() const;

  const std::string& default_model() const { return default_model_; }
  void set_default_model(std::string name) {
    default_model_ = std::move(name);
  }
  const MicroBatcherConfig& batcher_config() const { return batcher_config_; }

  // Destroys retired models with no remaining in-flight holders. Called
  // from admin paths and the destructor; exposed for tests.
  void ReapRetired();

 private:
  MicroBatcherConfig batcher_config_;
  std::string default_model_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<ServedModel>> models_;
  // Swapped-out models that may still have in-flight completions holding
  // snapshots. Destroying one inline could run ~ServedModel on its own
  // batcher worker (self-join); instead they wait here for a safe thread.
  std::vector<std::shared_ptr<ServedModel>> retired_;
};

// Text-protocol front-end over a registry. Thread-compatible: HandleLine /
// HandleLineAsync may be called from many threads; admin mutations (RELOAD)
// serialize on the registry mutex.
class ModelService {
 public:
  explicit ModelService(ModelRegistry* registry) : registry_(registry) {}

  // Attaches the exporter TRACE dumps route through (may be null).
  void SetExporter(obs::TelemetryExporter* exporter) { exporter_ = exporter; }

  // Parses one protocol line, answers synchronously (stdin front-end,
  // selftest). Data lines block on the model's batcher future.
  std::string HandleLine(const std::string& line);

  // The epoll path: admin lines and admission failures answer `done`
  // inline on the calling thread; admitted data lines answer later on a
  // batcher worker thread. `done` fires exactly once and must not block.
  // RELOAD builds the new session synchronously on the calling thread —
  // the event loop stalls for the load, which is the documented cost of
  // in-band admin (docs/SERVING.md).
  void HandleLineAsync(const std::string& line,
                       std::function<void(std::string)> done);

  // One JSON line: default model plus name/version/inflight/quota for
  // every model. The LIST admin reply.
  std::string ListLine() const;

  // Global serve/* stats (ServeStatsJson) extended with a per-model object.
  std::string StatsLine() const;

 private:
  // Answers admin commands (STATS, LIST, TRACE, RELOAD) in *reply and
  // returns true; data lines return false untouched.
  bool MaybeAdmin(const std::string& trimmed, std::string* reply);
  // Resolves the optional "MODEL <name> " prefix. On OK, *payload holds the
  // remaining window text and the snapshot is returned.
  StatusOr<std::shared_ptr<ServedModel>> Route(const std::string& line,
                                               std::string* payload) const;

  ModelRegistry* registry_;
  obs::TelemetryExporter* exporter_ = nullptr;
};

}  // namespace serve
}  // namespace msd

#endif  // MSDMIXER_SERVE_REGISTRY_H_
