#include "serve/netio.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace msd {
namespace serve {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

// The best-effort refusal line for connections past max_conns; mirrors the
// protocol's ERROR rendering so clients can parse it like any other reply.
const char kTooManyConns[] =
    "ERROR ResourceExhausted: connection limit reached; retry later\n";

}  // namespace

SocketServer::SocketServer(const SocketServerConfig& config,
                           LineHandler handler)
    : config_(config),
      handler_(std::move(handler)),
      accepted_(obs::MetricsRegistry::Global().GetCounter(
          "serve/net_accepted_conns")),
      rejected_conns_(obs::MetricsRegistry::Global().GetCounter(
          "serve/net_rejected_conns")),
      lines_(obs::MetricsRegistry::Global().GetCounter("serve/net_lines")),
      dropped_replies_(obs::MetricsRegistry::Global().GetCounter(
          "serve/net_dropped_replies")),
      conns_gauge_(
          obs::MetricsRegistry::Global().GetGauge("serve/net_connections")) {
  MSD_CHECK(handler_ != nullptr);
  MSD_CHECK_GE(config_.max_conns, 1);
  MSD_CHECK_GE(config_.backlog, 1);
  MSD_CHECK_GE(config_.max_line_bytes, 1);
}

SocketServer::~SocketServer() {
  Shutdown();
  for (auto& pair : conns_) {
    if (pair.second.fd >= 0) ::close(pair.second.fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (!config_.path.empty()) ::unlink(config_.path.c_str());
}

Status SocketServer::Listen() {
  if (config_.path.empty()) {
    return Status::InvalidArgument("socket path is empty");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + config_.path);
  }
  std::memcpy(addr.sun_path, config_.path.c_str(), config_.path.size() + 1);

  listen_fd_ =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  ::unlink(config_.path.c_str());  // stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind " + config_.path);
  }
  if (::listen(listen_fd_, static_cast<int>(config_.backlog)) != 0) {
    return Errno("listen");
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return Errno("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Errno("epoll_ctl(listener)");
  }
  ev.events = EPOLLIN;
  ev.data.u64 = 1;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Errno("epoll_ctl(wake)");
  }
  return Status::OK();
}

void SocketServer::Shutdown() {
  stop_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    ssize_t rc;
    do {
      rc = ::write(wake_fd_, &one, sizeof(one));
    } while (rc < 0 && errno == EINTR);
  }
}

void SocketServer::Post(uint64_t conn_id, std::string reply) {
  {
    std::lock_guard<std::mutex> lock(reply_mu_);
    replies_.emplace_back(conn_id, std::move(reply));
  }
  const uint64_t one = 1;
  ssize_t rc;
  do {
    rc = ::write(wake_fd_, &one, sizeof(one));
  } while (rc < 0 && errno == EINTR);
}

bool SocketServer::Finished(const Conn& conn) const {
  return conn.peer_closed && conn.pending == 0 &&
         conn.out_offset >= conn.out.size();
}

void SocketServer::UpdateInterest(Conn* conn) {
  const bool want = conn->out_offset < conn->out.size();
  if (want == conn->want_write) return;
  conn->want_write = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void SocketServer::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  conns_.erase(it);
  conns_gauge_.Set(static_cast<double>(
      open_conns_.fetch_sub(1, std::memory_order_relaxed) - 1));
}

void SocketServer::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN drains the burst; anything else (EMFILE, ECONNABORTED) is
      // per-connection and must not kill the loop.
      return;
    }
    if (static_cast<int64_t>(conns_.size()) >= config_.max_conns) {
      rejected_conns_.Add(1);
      // Best effort: a non-blocking send of the refusal, then close. The
      // fd's buffer is empty so a short write is effectively impossible.
      ssize_t rc;
      do {
        rc = ::send(fd, kTooManyConns, sizeof(kTooManyConns) - 1,
                    MSG_NOSIGNAL);
      } while (rc < 0 && errno == EINTR);
      ::close(fd);
      continue;
    }
    const uint64_t id = next_conn_id_++;
    Conn conn;
    conn.fd = fd;
    conn.id = id;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(id, std::move(conn));
    accepted_.Add(1);
    conns_gauge_.Set(static_cast<double>(
        open_conns_.fetch_add(1, std::memory_order_relaxed) + 1));
  }
}

bool SocketServer::ExtractLines(Conn* conn) {
  size_t start = 0;
  for (;;) {
    const size_t nl = conn->in.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = conn->in.substr(start, nl - start);
    start = nl + 1;
    lines_.Add(1);
    conn->pending += 1;
    const uint64_t id = conn->id;
    // The completion may fire on this thread (admin lines, admission
    // errors) or later on a batcher worker; both routes go through Post,
    // which only enqueues and wakes the loop — so `conn` cannot be
    // invalidated from under this frame.
    handler_(std::move(line), [this, id](std::string reply) {
      Post(id, std::move(reply));
    });
  }
  if (start > 0) conn->in.erase(0, start);
  if (static_cast<int64_t>(conn->in.size()) > config_.max_line_bytes) {
    // An unframed line this large is a protocol violation; drop the
    // connection rather than buffering without bound.
    CloseConn(conn->id);
    return false;
  }
  return true;
}

void SocketServer::ReadReady(Conn* conn) {
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buffer, sizeof(buffer));
    if (n > 0) {
      conn->in.append(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      conn->peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    // Hard error: nothing more can be delivered on this connection.
    CloseConn(conn->id);
    return;
  }
  if (!ExtractLines(conn)) return;
  if (Finished(*conn)) CloseConn(conn->id);
}

void SocketServer::FlushWrites(Conn* conn) {
  while (conn->out_offset < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_offset,
               conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EPIPE and friends: the peer is gone, unflushed replies are moot.
    CloseConn(conn->id);
    return;
  }
  if (conn->out_offset >= conn->out.size()) {
    conn->out.clear();
    conn->out_offset = 0;
  } else if (conn->out_offset > (conn->out.size() >> 1)) {
    // Reclaim the consumed half so a slow reader does not pin the peak.
    conn->out.erase(0, conn->out_offset);
    conn->out_offset = 0;
  }
  if (Finished(*conn)) {
    CloseConn(conn->id);
    return;
  }
  UpdateInterest(conn);
}

void SocketServer::DrainReplies() {
  uint64_t drained = 0;
  ssize_t rc;
  do {
    rc = ::read(wake_fd_, &drained, sizeof(drained));
  } while (rc < 0 && errno == EINTR);
  std::vector<std::pair<uint64_t, std::string>> batch;
  {
    std::lock_guard<std::mutex> lock(reply_mu_);
    batch.swap(replies_);
  }
  for (auto& entry : batch) {
    auto it = conns_.find(entry.first);
    if (it == conns_.end()) {
      // The connection died before its reply resolved; the request itself
      // still completed on the model it was admitted to.
      dropped_replies_.Add(1);
      continue;
    }
    Conn& conn = it->second;
    conn.out += entry.second;
    conn.out.push_back('\n');
    conn.pending -= 1;
    FlushWrites(&conn);  // may CloseConn; `it` is not reused after this
  }
}

// msd-hot-path: the serving event loop — every socket request's transport
// latency is this thread's dispatch plus the batcher cycle behind it.
void SocketServer::Run() {
  MSD_CHECK(epoll_fd_ >= 0) << "Listen() must succeed before Run()";
  epoll_event events[64];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == 0) {
        AcceptReady();
        continue;
      }
      if (id == 1) {
        DrainReplies();
        continue;
      }
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        CloseConn(id);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) FlushWrites(&it->second);
      // FlushWrites may close; re-find before reading.
      it = conns_.find(id);
      if (it == conns_.end()) continue;
      if ((events[i].events & (EPOLLIN | EPOLLHUP)) != 0) {
        ReadReady(&it->second);
      }
    }
  }
  // Drain once more so completions that raced Shutdown() are accounted
  // (they are dropped — their connections close right below).
  DrainReplies();
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& pair : conns_) ids.push_back(pair.first);
  for (uint64_t id : ids) CloseConn(id);
  if (!config_.path.empty()) ::unlink(config_.path.c_str());
}

}  // namespace serve
}  // namespace msd
