// Request-level trace propagation for the serving stack (docs/SERVING.md,
// docs/OBSERVABILITY.md).
//
// A TraceContext is minted once per request at an admission point —
// MicroBatcher::Submit (the ServerLoop path) or a direct
// InferenceSession::PredictBatch call — and carried with the request through
// the batching pipeline, so every reply decomposes into
//
//   queue-wait       enqueue  -> dequeue        (serve/queue_us)
//   batch assembly   dequeue  -> compute_start  (serve/batch_assembly_us)
//   compute          compute_start -> compute_end (serve/compute_us)
//   end-to-end       enqueue  -> reply resolved (serve/e2e_us)
//
// recorded into log-spaced microsecond histograms the server reads back as
// p50/p95/p99 via Histogram::ValueAtQuantile (the `STATS` admin command,
// bench_serving's server-side report, tools/bench_compare gating).
//
// Sampled requests (1-in-N, obs::TraceRing::Sampled) additionally push one
// obs::TraceSpan per phase into the global trace ring, dumped on demand as
// chrome://tracing JSON by the `TRACE <path>` admin command.
//
// Everything here is hot-path instrumentation: minting is one relaxed
// fetch_add, instrument handles are created once and cached (function-local
// static), and all updates are relaxed atomics — no locks are added to
// Submit/PredictBatch beyond the ones they already hold.
#ifndef MSDMIXER_SERVE_TRACE_H_
#define MSDMIXER_SERVE_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "obs/ring.h"

namespace msd {
namespace serve {

using ServeClock = std::chrono::steady_clock;

// Per-request trace state. Timestamps are filled in as the request moves
// through the pipeline; a default-constructed time_point means "not reached".
struct TraceContext {
  int64_t request_id = 0;
  // Decided once at admission from TraceRing's 1-in-N rate.
  bool sampled = false;
  ServeClock::time_point enqueue{};
  ServeClock::time_point dequeue{};        // taken off the queue by a worker
  ServeClock::time_point compute_start{};  // model forward entered
  ServeClock::time_point compute_end{};    // model forward returned
};

// Process-wide monotonic request id (0, 1, 2, ...).
inline int64_t NextRequestId() {
  static std::atomic<int64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Mints the context for a request admitted now.
inline TraceContext MintTraceContext() {
  TraceContext ctx;
  ctx.request_id = NextRequestId();
  ctx.sampled = obs::TraceRing::Global().Sampled(ctx.request_id);
  ctx.enqueue = ServeClock::now();
  return ctx;
}

inline int64_t ToMicros(ServeClock::duration d) {
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

// Microseconds since the steady-clock epoch: the shared time base of every
// span in the trace ring's chrome://tracing dump.
inline int64_t TimePointUs(ServeClock::time_point t) {
  return ToMicros(t.time_since_epoch());
}

// Log-spaced microsecond buckets for the serve latency histograms: 48 per
// decade over [1us, 10s] keeps adjacent bounds ~4.9% apart, so interpolated
// quantiles sit well inside the 10% server-vs-client agreement gate.
inline std::vector<double> LatencyBoundsUs() {
  return obs::LogSpacedBounds(1.0, 1e7, 48);
}

// Shared serve/* instrument handles: find-or-create once, relaxed atomic
// updates afterwards (docs/OBSERVABILITY.md taxonomy).
struct ServeInstruments {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter& requests = registry.GetCounter("serve/requests_total");
  obs::Counter& rejected = registry.GetCounter("serve/rejected_total");
  obs::Counter& timeouts = registry.GetCounter("serve/timeouts_total");
  // Increments exactly when a request resolves kDeadlineExceeded.
  obs::Counter& deadline_miss = registry.GetCounter("serve/deadline_miss");
  obs::Counter& batches = registry.GetCounter("serve/batches_total");
  obs::Gauge& queue_depth = registry.GetGauge("serve/queue_depth");
  obs::Gauge& queue_depth_peak = registry.GetGauge("serve/queue_depth_peak");
  // Requests admitted but not yet resolved (queued or mid-batch).
  obs::Gauge& inflight = registry.GetGauge("serve/inflight");
  obs::Histogram& batch_size = registry.GetHistogram(
      "serve/batch_size", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  obs::Histogram& queue_us =
      registry.GetHistogram("serve/queue_us", LatencyBoundsUs());
  obs::Histogram& batch_assembly_us =
      registry.GetHistogram("serve/batch_assembly_us", LatencyBoundsUs());
  obs::Histogram& compute_us =
      registry.GetHistogram("serve/compute_us", LatencyBoundsUs());
  obs::Histogram& e2e_us =
      registry.GetHistogram("serve/e2e_us", LatencyBoundsUs());
};

// msd-hot-path-safe: once-only registration; the leaked singleton caches
// every counter reference so steady-state use is a static pointer read.
inline ServeInstruments& Instruments() {
  static ServeInstruments* instruments = new ServeInstruments();
  return *instruments;
}

// Pushes the queue / batch_assembly / compute spans of one completed sampled
// request into the global trace ring.
inline void PushRequestSpans(const TraceContext& ctx) {
  obs::TraceRing& ring = obs::TraceRing::Global();
  ring.Push({ctx.request_id, "queue", TimePointUs(ctx.enqueue),
             ToMicros(ctx.dequeue - ctx.enqueue)});
  ring.Push({ctx.request_id, "batch_assembly", TimePointUs(ctx.dequeue),
             ToMicros(ctx.compute_start - ctx.dequeue)});
  ring.Push({ctx.request_id, "compute", TimePointUs(ctx.compute_start),
             ToMicros(ctx.compute_end - ctx.compute_start)});
}

}  // namespace serve
}  // namespace msd

#endif  // MSDMIXER_SERVE_TRACE_H_
