// Session-freeze inference compiler (docs/COMPILER.md).
//
// A CompiledPlan is built once per (session, batch size) at freeze time:
// the planner records one interpreted forward through the op trace
// (tensor/optrace.h), flattens it into a static schedule of kernel calls
// with fully resolved shapes, rewrites fusible pairs into the fused kernels
// (SubDiv / MulAdd / SliceSub), runs lifetime analysis over every traced
// buffer, and packs all intermediates into ONE arena allocation with
// first-fit offset reuse. Execute() then replays the schedule into the
// preplanned arena views: no pool lookups, no tensor allocations, no
// shared_ptr churn per op — the only steady-state costs outside the kernels
// themselves are two memcpys (input staging, result export) and one
// control block for the reply tensor's owner.
//
// Correctness contract: Execute(x) is bit-identical (memcmp) to the
// interpreted forward it was traced from, for any MSD_THREADS value. The
// planner enforces this mechanically — Compile() replays the example input
// through the freshly built plan and memcmps against the traced output,
// discarding the plan on any mismatch — and the fused kernels round every
// intermediate through memory so compiler FMA contraction cannot change
// bits (tensor/kernels.h Zip3KernelInto). tests/plan_test.cc sweeps the
// contract across task heads, thread counts, and batch sizes.
//
// Thread safety: Execute mutates the arena, so calls on one plan must be
// serialized — the owning InferenceSession's model mutex is the exclusion
// domain, exactly as for the interpreted path.
#ifndef MSDMIXER_SERVE_PLAN_H_
#define MSDMIXER_SERVE_PLAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/arena.h"
#include "tensor/optrace.h"
#include "tensor/tensor.h"

namespace msd {
namespace serve {

// Aggregate facts about a built plan, for gauges, logs, and tests.
struct PlanStats {
  int64_t traced_ops = 0;    // ops recorded by the interpreted forward
  int64_t num_ops = 0;       // schedule length after fusion
  int64_t num_fused = 0;     // peephole rewrites applied
  int64_t num_inplace = 0;   // outputs aliased onto a dying operand's region
  int64_t num_prepacked = 0;  // constant GEMM weights packed at freeze time
  int64_t num_regions = 0;   // arena regions after aliasing
  int64_t arena_bytes = 0;   // single allocation backing all regions
  int64_t num_quantized = 0;        // GEMM steps rewritten to int8
  int64_t num_quant_fallbacks = 0;  // candidates kept fp32 by calibration
  int64_t quant_arena_bytes = 0;    // activation-quant scratch arena
};

// Knobs for CompiledPlan::Compile. Defaults reproduce the fp32 plan exactly.
struct CompileOptions {
  // Rewrite eligible constant-weight rank-2 GEMM steps to the int8 kernels
  // (tensor/qgemm.h): weights quantize at freeze time, activations per
  // request. Every candidate is calibrated against the fp32 step it
  // replaces; see quant_max_rel_error. Off by default — an fp32 plan stays
  // bit-identical to the interpreted forward.
  bool quantize = false;
  // Calibration gate: a candidate whose quantized output deviates from the
  // fp32 step output on the freeze example by more than this relative
  // Frobenius error stays fp32 (counted in num_quant_fallbacks).
  float quant_max_rel_error = 0.05f;
};

// One arena region's placement and lifetime, exposed for the planner tests
// (offset disjointness under overlapping lifetimes is an invariant there).
struct RegionInfo {
  int64_t offset = 0;      // byte offset into the arena, 64-aligned
  int64_t bytes = 0;       // payload size (0 for zero-numel buffers)
  int64_t first_def = 0;   // earliest defining step (-1: staged input)
  int64_t last_use = 0;    // latest reading step (num_ops: plan output)
};

class CompiledPlan {
 public:
  // The forward to freeze: takes the request batch, returns the reply.
  using ForwardFn = std::function<Tensor(const Tensor&)>;

  // Records one interpreted run of `fn` on `example`, builds the schedule +
  // memory plan, and validates it by replaying `example` and memcmp-ing
  // against the interpreted output. Returns null — with a reason in
  // `why_not` when provided — if the trace hit an unsupported op or the
  // validation replay was not bit-identical. With options.quantize, a
  // quantization pass then runs AFTER that fp32 validation: each prepacked
  // GEMM step is re-executed int8 against the example and adopted only when
  // its output stays within options.quant_max_rel_error of the fp32 step
  // (per-step fallback otherwise) — so a quantized plan's fp32 remainder is
  // still the validated schedule, and the bit-identity contract narrows to
  // "identical except the adopted int8 steps".
  static std::unique_ptr<CompiledPlan> Compile(
      const ForwardFn& fn, const Tensor& example,
      std::string* why_not = nullptr,
      const CompileOptions& options = CompileOptions());

  // Replays the schedule on `input` (must match input_shape()). The reply
  // tensor is backed by a recycled result block, not the tensor pool.
  // Callers must serialize calls per plan (see thread-safety note above).
  Tensor Execute(const Tensor& input);

  const PlanStats& stats() const { return stats_; }
  const Shape& input_shape() const { return input_shape_; }
  const Shape& output_shape() const { return output_shape_; }

  // Region table for the planner tests.
  std::vector<RegionInfo> Regions() const;

  // Human-readable schedule: one line per step with kind, shapes, region
  // offsets, and the module path that produced the op.
  std::string DebugString() const;

  ~CompiledPlan();

 private:
  // Recycles result-block buffers across requests. shared_ptr-owned so a
  // reply tensor can outlive the plan (its deleter keeps the pool alive).
  class ResultPool;

  // One schedule entry: a kernel kind plus prebuilt operand/output views
  // into the arena (or directly into pinned constant buffers).
  struct Step;

  CompiledPlan();

  // Runs one schedule step (the Execute switch body); shared between
  // Execute and the quantization pass's calibration replay.
  void RunStep(Step& s);

  // The quantization pass (options.quantize): replays `example` step by
  // step in fp32, re-executes each prepacked GEMM step int8 into scratch,
  // and adopts candidates within `max_rel_error` of their fp32 output.
  // Calibration always compares against fp32 *inputs* (the replay keeps
  // fp32 results in the arena), so per-step error never compounds.
  void QuantizePass(const Tensor& example, float max_rel_error);

  Tensor input_view_;   // staging region, input_shape_
  Tensor output_view_;  // final region, output_shape_
  Shape input_shape_;
  Shape output_shape_;
  std::vector<Step> steps_;
  // Pinned constant tensors (weights, scaler stats, traced literals); holding
  // them keeps every non-arena operand buffer alive for the plan's lifetime.
  std::vector<Tensor> constants_;
  std::unique_ptr<arena::Arena> arena_;
  // Activation-quant scratch shared by every quantized step (a quantized
  // activation dies within its own step, so one arena sized for the largest
  // step suffices): int16 rows at offset 0, per-row scales above them.
  std::unique_ptr<arena::Arena> quant_arena_;
  int64_t quant_scales_offset_ = 0;  // byte offset of the scale block
  std::shared_ptr<ResultPool> results_;
  PlanStats stats_;
  std::vector<RegionInfo> regions_;
};

}  // namespace serve
}  // namespace msd

#endif  // MSDMIXER_SERVE_PLAN_H_
