// Session-freeze inference compiler (docs/COMPILER.md).
//
// A CompiledPlan is built once per (session, batch size) at freeze time:
// the planner records one interpreted forward through the op trace
// (tensor/optrace.h), flattens it into a static schedule of kernel calls
// with fully resolved shapes, rewrites fusible pairs into the fused kernels
// (SubDiv / MulAdd / SliceSub), runs lifetime analysis over every traced
// buffer, and packs all intermediates into ONE arena allocation with
// first-fit offset reuse. Execute() then replays the schedule into the
// preplanned arena views: no pool lookups, no tensor allocations, no
// shared_ptr churn per op — the only steady-state costs outside the kernels
// themselves are two memcpys (input staging, result export) and one
// control block for the reply tensor's owner.
//
// Correctness contract: Execute(x) is bit-identical (memcmp) to the
// interpreted forward it was traced from, for any MSD_THREADS value. The
// planner enforces this mechanically — Compile() replays the example input
// through the freshly built plan and memcmps against the traced output,
// discarding the plan on any mismatch — and the fused kernels round every
// intermediate through memory so compiler FMA contraction cannot change
// bits (tensor/kernels.h Zip3KernelInto). tests/plan_test.cc sweeps the
// contract across task heads, thread counts, and batch sizes.
//
// Thread safety: Execute mutates the arena, so calls on one plan must be
// serialized — the owning InferenceSession's model mutex is the exclusion
// domain, exactly as for the interpreted path.
#ifndef MSDMIXER_SERVE_PLAN_H_
#define MSDMIXER_SERVE_PLAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/arena.h"
#include "tensor/optrace.h"
#include "tensor/tensor.h"

namespace msd {
namespace serve {

// Aggregate facts about a built plan, for gauges, logs, and tests.
struct PlanStats {
  int64_t traced_ops = 0;    // ops recorded by the interpreted forward
  int64_t num_ops = 0;       // schedule length after fusion
  int64_t num_fused = 0;     // peephole rewrites applied
  int64_t num_inplace = 0;   // outputs aliased onto a dying operand's region
  int64_t num_prepacked = 0;  // constant GEMM weights packed at freeze time
  int64_t num_regions = 0;   // arena regions after aliasing
  int64_t arena_bytes = 0;   // single allocation backing all regions
};

// One arena region's placement and lifetime, exposed for the planner tests
// (offset disjointness under overlapping lifetimes is an invariant there).
struct RegionInfo {
  int64_t offset = 0;      // byte offset into the arena, 64-aligned
  int64_t bytes = 0;       // payload size (0 for zero-numel buffers)
  int64_t first_def = 0;   // earliest defining step (-1: staged input)
  int64_t last_use = 0;    // latest reading step (num_ops: plan output)
};

class CompiledPlan {
 public:
  // The forward to freeze: takes the request batch, returns the reply.
  using ForwardFn = std::function<Tensor(const Tensor&)>;

  // Records one interpreted run of `fn` on `example`, builds the schedule +
  // memory plan, and validates it by replaying `example` and memcmp-ing
  // against the interpreted output. Returns null — with a reason in
  // `why_not` when provided — if the trace hit an unsupported op or the
  // validation replay was not bit-identical.
  static std::unique_ptr<CompiledPlan> Compile(const ForwardFn& fn,
                                               const Tensor& example,
                                               std::string* why_not = nullptr);

  // Replays the schedule on `input` (must match input_shape()). The reply
  // tensor is backed by a recycled result block, not the tensor pool.
  // Callers must serialize calls per plan (see thread-safety note above).
  Tensor Execute(const Tensor& input);

  const PlanStats& stats() const { return stats_; }
  const Shape& input_shape() const { return input_shape_; }
  const Shape& output_shape() const { return output_shape_; }

  // Region table for the planner tests.
  std::vector<RegionInfo> Regions() const;

  // Human-readable schedule: one line per step with kind, shapes, region
  // offsets, and the module path that produced the op.
  std::string DebugString() const;

  ~CompiledPlan();

 private:
  // Recycles result-block buffers across requests. shared_ptr-owned so a
  // reply tensor can outlive the plan (its deleter keeps the pool alive).
  class ResultPool;

  // One schedule entry: a kernel kind plus prebuilt operand/output views
  // into the arena (or directly into pinned constant buffers).
  struct Step;

  CompiledPlan();

  Tensor input_view_;   // staging region, input_shape_
  Tensor output_view_;  // final region, output_shape_
  Shape input_shape_;
  Shape output_shape_;
  std::vector<Step> steps_;
  // Pinned constant tensors (weights, scaler stats, traced literals); holding
  // them keeps every non-arena operand buffer alive for the plan's lifetime.
  std::vector<Tensor> constants_;
  std::unique_ptr<arena::Arena> arena_;
  std::shared_ptr<ResultPool> results_;
  PlanStats stats_;
  std::vector<RegionInfo> regions_;
};

}  // namespace serve
}  // namespace msd

#endif  // MSDMIXER_SERVE_PLAN_H_
