#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

namespace msd {
namespace obs {

namespace {

#if MSD_PROFILING_ENABLED
// Stack top of the calling thread's open spans (for nesting / self-time).
thread_local ScopedSpan* g_span_top = nullptr;

// Small sequential ids instead of std::thread::id: stable, compact, and what
// chrome://tracing expects in the "tid" field.
int32_t ThisThreadId() {
  static std::atomic<int32_t> next{0};
  thread_local int32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}
#endif

std::string MsToJson(int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// msd-hot-path-safe: once-only lazy init; steady state is a pointer read.
Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();  // never destroyed
  return *profiler;
}

void Profiler::SetTraceCapacity(int64_t max_events) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<int64_t>(0, max_events);
  if (static_cast<int64_t>(events_.size()) > capacity_) {
    events_.resize(static_cast<size_t>(capacity_));
  }
  events_space_.store(static_cast<int64_t>(events_.size()) < capacity_,
                      std::memory_order_relaxed);
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  // Per-thread maps are cleared lazily: bumping the epoch marks them stale,
  // the owning thread clears on its next record, and readers skip them.
  epoch_.fetch_add(1, std::memory_order_relaxed);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  events_space_.store(capacity_ > 0, std::memory_order_relaxed);
}

Profiler::ThreadAgg& Profiler::LocalAgg() {
  // Per-(thread, profiler) slots. The registry holds a shared_ptr too, so a
  // thread's stats outlive the thread. Instances are effectively the leaked
  // Global() in production; a destroyed local Profiler leaves a dead slot
  // behind, which only costs a pointer compare.
  thread_local std::vector<std::pair<Profiler*, std::shared_ptr<ThreadAgg>>>
      slots;
  for (auto& [profiler, agg] : slots) {
    if (profiler == this) return *agg;
  }
  auto agg = std::make_shared<ThreadAgg>();
  agg->epoch = epoch_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads_.push_back(agg);
  }
  slots.emplace_back(this, agg);
  return *agg;
}

void Profiler::RecordSpan(const char* label, int64_t start_ns, int64_t end_ns,
                          int64_t child_ns, int32_t tid) {
  const int64_t dur = end_ns - start_ns;
  ThreadAgg& agg = LocalAgg();
  {
    // Uncontended in steady state: only merges from reader threads compete.
    std::lock_guard<std::mutex> lock(agg.mu);
    const int64_t epoch = epoch_.load(std::memory_order_relaxed);
    if (agg.epoch != epoch) {
      agg.aggregates.clear();
      agg.epoch = epoch;
    }
    SpanStats& s = agg.aggregates[label];
    s.count += 1;
    s.total_ns += dur;
    s.self_ns += dur - child_ns;
    s.min_ns = std::min(s.min_ns, dur);
    s.max_ns = std::max(s.max_ns, dur);
  }
  if (!events_space_.load(std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int64_t>(events_.size()) < capacity_) {
    events_.push_back(TraceEvent{label, tid, start_ns, dur});
    if (static_cast<int64_t>(events_.size()) >= capacity_) {
      events_space_.store(false, std::memory_order_relaxed);
    }
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::map<std::string, SpanStats> Profiler::Aggregates() const {
  // Deterministic merge: per-label sums, min, and max all commute, so the
  // result does not depend on thread registration order or which worker ran
  // which span.
  const int64_t epoch = epoch_.load(std::memory_order_relaxed);
  std::vector<std::shared_ptr<ThreadAgg>> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads = threads_;
  }
  std::map<std::string, SpanStats> merged;
  for (const auto& agg : threads) {
    std::lock_guard<std::mutex> lock(agg->mu);
    if (agg->epoch != epoch) continue;  // stale: predates the last Reset
    for (const auto& [label, s] : agg->aggregates) {
      SpanStats& m = merged[label];
      m.count += s.count;
      m.total_ns += s.total_ns;
      m.self_ns += s.self_ns;
      m.min_ns = std::min(m.min_ns, s.min_ns);
      m.max_ns = std::max(m.max_ns, s.max_ns);
    }
  }
  return merged;
}

std::string Profiler::AggregateReportJson() const {
  const std::map<std::string, SpanStats> aggregates = Aggregates();
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [label, s] : aggregates) {
    if (!first) out << ",";
    first = false;
    out << "\"" << label << "\":{\"count\":" << s.count
        << ",\"total_ms\":" << MsToJson(s.total_ns)
        << ",\"self_ms\":" << MsToJson(s.self_ns)
        << ",\"min_ms\":" << MsToJson(s.count > 0 ? s.min_ns : 0)
        << ",\"max_ms\":" << MsToJson(s.max_ns) << "}";
  }
  out << "}";
  return out.str();
}

std::string Profiler::ChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  // "X" (complete) events: viewers infer nesting from ts/dur per tid, so the
  // exact self-time structure shows up as stacked slices.
  out << "{\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (i > 0) out << ",";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.start_ns) / 1e3);
    out << "{\"name\":\"" << e.label << "\",\"ph\":\"X\",\"ts\":" << buf;
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(e.dur_ns) / 1e3);
    out << ",\"dur\":" << buf << ",\"pid\":1,\"tid\":" << e.tid << "}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

bool Profiler::WriteChromeTrace(const std::string& path) const {
  const std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 && written == json.size();
}

#if MSD_PROFILING_ENABLED

ScopedSpan::ScopedSpan(const char* label)
    : label_(label),
      parent_(nullptr),
      start_ns_(0),
      active_(Profiler::Global().enabled()) {
  if (!active_) return;
  parent_ = g_span_top;
  g_span_top = this;
  start_ns_ = MonotonicNowNs();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const int64_t end_ns = MonotonicNowNs();
  g_span_top = parent_;
  if (parent_ != nullptr) parent_->child_ns_ += end_ns - start_ns_;
  Profiler::Global().RecordSpan(label_, start_ns_, end_ns, child_ns_,
                                ThisThreadId());
}

#endif  // MSD_PROFILING_ENABLED

}  // namespace obs
}  // namespace msd
