#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

namespace msd {
namespace obs {

namespace {

#if MSD_PROFILING_ENABLED
// Stack top of the calling thread's open spans (for nesting / self-time).
thread_local ScopedSpan* g_span_top = nullptr;

// Small sequential ids instead of std::thread::id: stable, compact, and what
// chrome://tracing expects in the "tid" field.
int32_t ThisThreadId() {
  static std::atomic<int32_t> next{0};
  thread_local int32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}
#endif

std::string MsToJson(int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();  // never destroyed
  return *profiler;
}

void Profiler::SetTraceCapacity(int64_t max_events) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<int64_t>(0, max_events);
  if (static_cast<int64_t>(events_.size()) > capacity_) {
    events_.resize(static_cast<size_t>(capacity_));
  }
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  aggregates_.clear();
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void Profiler::RecordSpan(const char* label, int64_t start_ns, int64_t end_ns,
                          int64_t child_ns, int32_t tid) {
  const int64_t dur = end_ns - start_ns;
  std::lock_guard<std::mutex> lock(mu_);
  SpanStats& s = aggregates_[label];
  s.count += 1;
  s.total_ns += dur;
  s.self_ns += dur - child_ns;
  s.min_ns = std::min(s.min_ns, dur);
  s.max_ns = std::max(s.max_ns, dur);
  if (static_cast<int64_t>(events_.size()) < capacity_) {
    events_.push_back(TraceEvent{label, tid, start_ns, dur});
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::map<std::string, SpanStats> Profiler::Aggregates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return aggregates_;
}

std::string Profiler::AggregateReportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [label, s] : aggregates_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << label << "\":{\"count\":" << s.count
        << ",\"total_ms\":" << MsToJson(s.total_ns)
        << ",\"self_ms\":" << MsToJson(s.self_ns)
        << ",\"min_ms\":" << MsToJson(s.count > 0 ? s.min_ns : 0)
        << ",\"max_ms\":" << MsToJson(s.max_ns) << "}";
  }
  out << "}";
  return out.str();
}

std::string Profiler::ChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  // "X" (complete) events: viewers infer nesting from ts/dur per tid, so the
  // exact self-time structure shows up as stacked slices.
  out << "{\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (i > 0) out << ",";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.start_ns) / 1e3);
    out << "{\"name\":\"" << e.label << "\",\"ph\":\"X\",\"ts\":" << buf;
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(e.dur_ns) / 1e3);
    out << ",\"dur\":" << buf << ",\"pid\":1,\"tid\":" << e.tid << "}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

bool Profiler::WriteChromeTrace(const std::string& path) const {
  const std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 && written == json.size();
}

#if MSD_PROFILING_ENABLED

ScopedSpan::ScopedSpan(const char* label)
    : label_(label),
      parent_(nullptr),
      start_ns_(0),
      active_(Profiler::Global().enabled()) {
  if (!active_) return;
  parent_ = g_span_top;
  g_span_top = this;
  start_ns_ = MonotonicNowNs();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const int64_t end_ns = MonotonicNowNs();
  g_span_top = parent_;
  if (parent_ != nullptr) parent_->child_ns_ += end_ns - start_ns_;
  Profiler::Global().RecordSpan(label_, start_ns_, end_ns, child_ns_,
                                ThisThreadId());
}

#endif  // MSD_PROFILING_ENABLED

}  // namespace obs
}  // namespace msd
