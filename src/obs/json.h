// Minimal JSON support for the observability subsystem: string escaping for
// the emitters and a strict recursive-descent parser used to validate and
// round-trip telemetry snapshots (tests, bench --metrics-out self-checks).
//
// The parser handles the full JSON grammar (objects, arrays, strings with
// escapes, numbers, booleans, null) but is tuned for machine-generated
// telemetry files, not adversarial input: nesting depth is capped.
#ifndef MSDMIXER_OBS_JSON_H_
#define MSDMIXER_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace msd {
namespace obs {

// Escapes `s` for embedding inside a JSON string literal (no surrounding
// quotes added).
std::string JsonEscape(const std::string& s);

// Parsed JSON document node. Object member order is preserved.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  // Member lookup on objects; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

// Parses `text` into `*out`. Returns false (and leaves `*out` unspecified) on
// any syntax error or trailing garbage.
bool JsonParse(const std::string& text, JsonValue* out);

}  // namespace obs
}  // namespace msd

#endif  // MSDMIXER_OBS_JSON_H_
