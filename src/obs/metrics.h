// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms with a JSON snapshot export.
//
// Design:
//  * Instruments are created once (under a registry mutex) and then updated
//    with relaxed atomics only — call sites cache the returned reference in a
//    function-local static so the hot path is a single atomic add:
//
//      static obs::Counter& calls =
//          obs::MetricsRegistry::Global().GetCounter("tensor/matmul_calls");
//      calls.Add(1);
//
//  * Instrument references remain valid for the life of the process;
//    ResetAll() zeroes values but never invalidates handles.
//  * Names follow the slash taxonomy documented in docs/OBSERVABILITY.md
//    (e.g. "tensor/alloc_bytes", "train/epochs").
#ifndef MSDMIXER_OBS_METRICS_H_
#define MSDMIXER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace msd {
namespace obs {

// Monotonically increasing integer (events, bytes, flops).
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-write-wins floating-point level (current LR, tape depth, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  // Keeps the maximum of the current value and `v`. Race-free under
  // concurrent callers: a CAS loop re-reads the current value on every
  // failed exchange, so no writer can overwrite a larger concurrent value
  // (tests/obs_test.cc hammers this from 8 threads).
  void SetMax(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram. Bucket i counts observations <= upper_bounds[i];
// one implicit overflow bucket counts the rest. Not movable: lives in the
// registry behind a unique_ptr.
class Histogram {
 public:
  // `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const { return bounds_; }
  // bounds_.size() + 1 entries; last is the overflow bucket.
  std::vector<int64_t> BucketCounts() const;

  // Estimated value at quantile q in [0, 1] from the bucket counts
  // (Prometheus-style linear interpolation inside the covering bucket).
  // Returns 0 on an empty histogram; quantiles that land in the overflow
  // bucket clamp to the largest finite bound. Accuracy is one bucket width,
  // so latency histograms use log-spaced bounds (LogSpacedBounds) fine
  // enough for <10% quantile error.
  double ValueAtQuantile(double q) const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Quantile estimate shared by Histogram::ValueAtQuantile and offline
// consumers of snapshot JSON (tools/bench_compare): `counts` has one entry
// per bound plus the trailing overflow bucket, exactly as BucketCounts()
// and the snapshot "buckets" array lay them out.
double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<int64_t>& counts, double q);

// Log-spaced bucket bounds for latency histograms: `per_decade` bounds per
// power of ten, from `lo` up to and including the first bound >= `hi`.
// With per_decade=32 adjacent bounds differ by ~7.5%, keeping interpolated
// p50/p95/p99 within a few percent of the exact order statistics.
std::vector<double> LogSpacedBounds(double lo, double hi, int per_decade);

class MetricsRegistry {
 public:
  // The process-wide instance every instrumented call site uses.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create; the returned reference is stable forever.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // Fatal if `name` already exists with different bounds.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds);

  // Zeroes every instrument (handles stay valid). For bench/test isolation.
  void ResetAll();

  // Snapshot of all instruments as a JSON object:
  //   {"counters": {name: int, ...},
  //    "gauges": {name: double, ...},
  //    "histograms": {name: {"count": n, "sum": s,
  //                          "buckets": [{"le": bound, "count": n}, ...]}}}
  // The overflow bucket is emitted with "le": "inf".
  std::string ToJson() const;

  // Writes ToJson() to `path`; returns false on I/O failure.
  bool WriteJsonFile(const std::string& path) const;

 private:
  mutable std::mutex mu_;  // guards the maps, not the instrument values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace msd

#endif  // MSDMIXER_OBS_METRICS_H_
