#include "obs/exporter.h"

#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/ring.h"

namespace msd {
namespace obs {

namespace {

bool WriteWholeFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  return std::fclose(f) == 0 && written == contents.size();
}

}  // namespace

TelemetryExporter::TelemetryExporter(TelemetryExporterOptions options)
    : options_(std::move(options)) {
  if (options_.interval_ms < 10) options_.interval_ms = 10;
}

TelemetryExporter::~TelemetryExporter() { Stop(); }

bool TelemetryExporter::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MSD_CHECK(!stopped_) << "TelemetryExporter cannot restart after Stop()";
    if (started_) return true;
    if (!options_.path.empty()) {
      std::FILE* f = std::fopen(options_.path.c_str(), "w");
      if (f == nullptr) return false;
      file_ = f;
    }
    started_ = true;
  }
  worker_.Start(1, [this](int64_t) { Loop(); });
  return true;
}

void TelemetryExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopped_) {
      stopped_ = true;
      return;
    }
    stopped_ = true;
  }
  cv_.notify_all();
  worker_.Join();
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(file_));
    file_ = nullptr;
  }
}

std::future<bool> TelemetryExporter::RequestTraceDump(const std::string& path) {
  DumpRequest request;
  request.path = path;
  std::future<bool> done = request.done.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopped_) {
      request.done.set_value(false);
      return done;
    }
    dumps_.push_back(std::move(request));
  }
  cv_.notify_all();
  return done;
}

int64_t TelemetryExporter::snapshots_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_;
}

bool TelemetryExporter::WriteSnapshotLine() {
  // Called on the exporter thread with mu_ held (file_ access); the
  // registry snapshot takes the registry's own mutex internally.
  if (file_ == nullptr) return true;
  std::string line;
  line.reserve(1 << 12);
  char head[96];
  std::snprintf(head, sizeof(head), "{\"ts_ms\":%lld,\"seq\":%lld,",
                static_cast<long long>(MonotonicNowNs() / 1000000),
                static_cast<long long>(snapshots_));
  line += head;
  line += "\"metrics\":";
  line += MetricsRegistry::Global().ToJson();
  line += "}\n";
  std::FILE* f = static_cast<std::FILE*>(file_);
  // One fwrite per line + flush: readers never observe a partial line.
  const size_t written = std::fwrite(line.data(), 1, line.size(), f);
  if (written != line.size() || std::fflush(f) != 0) return false;
  ++snapshots_;
  return true;
}

void TelemetryExporter::ServiceDumpRequests() {
  // Drain under the lock, write outside it: a big trace render must not
  // block Stop()/RequestTraceDump callers.
  std::deque<DumpRequest> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending.swap(dumps_);
  }
  for (DumpRequest& request : pending) {
    request.done.set_value(
        WriteWholeFile(request.path, TraceRing::Global().ChromeTraceJson()));
  }
}

void TelemetryExporter::Loop() {
  const auto interval = std::chrono::milliseconds(options_.interval_ms);
  {
    std::lock_guard<std::mutex> lock(mu_);
    WriteSnapshotLine();  // t=0 snapshot so short runs still emit one line
  }
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, interval,
                   [this] { return stopped_ || !dumps_.empty(); });
      if (stopped_) {
        WriteSnapshotLine();  // flush-on-shutdown snapshot
        break;
      }
      if (dumps_.empty()) WriteSnapshotLine();  // periodic tick
    }
    ServiceDumpRequests();
  }
  ServiceDumpRequests();  // resolve anything enqueued during shutdown
}

}  // namespace obs
}  // namespace msd
