// Background telemetry exporter (docs/OBSERVABILITY.md).
//
// A TelemetryExporter owns ALL file I/O for a serving process's telemetry:
// it runs one dedicated runtime::WorkerGroup thread that
//
//  * appends a JSONL registry snapshot line to `options.path` every
//    `interval_ms` while running, and once more at Stop() (flush-on-
//    shutdown), so a crash loses at most one interval of visibility;
//  * services asynchronous chrome://tracing dump requests
//    (RequestTraceDump) against the global obs::TraceRing — this is what
//    the serving text protocol's `TRACE <path>` admin command routes
//    through, keeping the `no-blocking-io-in-serve-hot-path` lint honest:
//    src/serve only formats strings, the exporter thread does the write.
//
// Each snapshot line is one self-contained JSON object:
//
//   {"ts_ms": <monotonic ms>, "seq": <0,1,2,...>,
//    "metrics": <MetricsRegistry::ToJson()>}
//
// written with a single fwrite + fflush so concurrent readers (tail -f,
// the check.sh validator) always see whole lines. The registry snapshot
// itself is lock-light (one registry mutex held while formatting), and
// nothing here ever runs on a request thread.
#ifndef MSDMIXER_OBS_EXPORTER_H_
#define MSDMIXER_OBS_EXPORTER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>

#include "runtime/worker.h"

namespace msd {
namespace obs {

struct TelemetryExporterOptions {
  // JSONL output file; truncated at Start(). Empty disables periodic
  // snapshots (the exporter then only services trace dump requests).
  std::string path;
  // Snapshot period. Clamped to >= 10ms.
  int64_t interval_ms = 1000;
};

class TelemetryExporter {
 public:
  explicit TelemetryExporter(TelemetryExporterOptions options);
  ~TelemetryExporter();  // Stop()s if still running.

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  // Spawns the exporter worker and writes the first snapshot immediately.
  // Returns false (nothing spawned) when the output file cannot be opened.
  bool Start();

  // Writes one final snapshot, resolves outstanding dump requests, joins.
  // Idempotent.
  void Stop();

  // Schedules a chrome://tracing dump of obs::TraceRing::Global() to `path`
  // on the exporter thread; the future resolves true once the file is
  // written. Resolves false immediately if the exporter is not running.
  std::future<bool> RequestTraceDump(const std::string& path);

  // Snapshot lines written so far (including the flush-on-shutdown one).
  int64_t snapshots_written() const;

 private:
  struct DumpRequest {
    std::string path;
    std::promise<bool> done;
  };

  void Loop();
  // Appends one snapshot line; returns false on I/O failure.
  bool WriteSnapshotLine();
  void ServiceDumpRequests();

  TelemetryExporterOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool started_ = false;
  bool stopped_ = false;
  std::deque<DumpRequest> dumps_;
  int64_t snapshots_ = 0;
  void* file_ = nullptr;  // std::FILE*, opaque here to keep the header lean
  runtime::WorkerGroup worker_;
};

}  // namespace obs
}  // namespace msd

#endif  // MSDMIXER_OBS_EXPORTER_H_
