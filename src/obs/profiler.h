// Hierarchical span profiler: RAII ScopedSpan timers that nest, aggregate
// per-label, and export an aggregate JSON report plus a
// chrome://tracing-compatible event file.
//
// Usage (hot paths use the macro so spans vanish entirely when profiling is
// compiled out via -DMSD_ENABLE_PROFILING=OFF):
//
//   void MatMulKernel(...) {
//     MSD_SPAN("tensor/matmul");
//     ...
//   }
//
// Semantics:
//  * Spans nest per-thread: a span opened while another is active becomes its
//    child. Per-label aggregates track count, total (inclusive) time,
//    self time (total minus direct children), min and max.
//  * Self-time accounting is exact: each closing span adds its inclusive
//    duration to its parent's child-time accumulator.
//  * Recording is also runtime-toggleable (Profiler::SetEnabled); a disabled
//    profiler costs one relaxed atomic load per span.
//  * The trace-event buffer is capped (SetTraceCapacity); once full, further
//    events only update aggregates and `dropped_events` counts them.
//  * Aggregation is per-thread: each recording thread owns its own
//    label->stats map behind an uncontended mutex, so pool workers
//    (src/runtime/) never serialize on a global lock. Readers merge the
//    per-thread maps label-by-label with commutative combines (sum/min/max),
//    so the merged aggregates are deterministic regardless of which worker
//    executed which span. Trace events stay in one global capped buffer;
//    their order reflects actual execution and is not deterministic across
//    runs with MSD_THREADS > 1.
//
// Label taxonomy ("subsystem/operation", e.g. "tensor/matmul",
// "train/epoch") is documented in docs/OBSERVABILITY.md.
#ifndef MSDMIXER_OBS_PROFILER_H_
#define MSDMIXER_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef MSD_PROFILING_ENABLED
#define MSD_PROFILING_ENABLED 1
#endif

namespace msd {
namespace obs {

// Monotonic clock in nanoseconds (steady across the process).
int64_t MonotonicNowNs();

struct SpanStats {
  int64_t count = 0;
  int64_t total_ns = 0;  // inclusive (span + children)
  int64_t self_ns = 0;   // exclusive (span minus direct children)
  int64_t min_ns = std::numeric_limits<int64_t>::max();
  int64_t max_ns = 0;
};

class Profiler {
 public:
  static Profiler& Global();

  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  // Max buffered trace events (default 65536). 0 keeps aggregates only.
  void SetTraceCapacity(int64_t max_events);

  // Clears aggregates and the trace buffer; keeps enabled/capacity settings.
  // Per-thread maps are invalidated lazily via an epoch bump — safe to call
  // while worker threads exist, as long as no span is concurrently open.
  void Reset();

  // Deterministic merge of every thread's aggregates (see header comment).
  std::map<std::string, SpanStats> Aggregates() const;
  int64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // {"label": {"count": n, "total_ms": t, "self_ms": s,
  //            "min_ms": lo, "max_ms": hi}, ...} sorted by label.
  std::string AggregateReportJson() const;

  // chrome://tracing / Perfetto "traceEvents" JSON ("X" complete events).
  std::string ChromeTraceJson() const;
  bool WriteChromeTrace(const std::string& path) const;

  // Internal API used by ScopedSpan; `start/end` from MonotonicNowNs.
  void RecordSpan(const char* label, int64_t start_ns, int64_t end_ns,
                  int64_t child_ns, int32_t tid);

 private:
  struct TraceEvent {
    const char* label;  // string literals from call sites; never freed
    int32_t tid;
    int64_t start_ns;
    int64_t dur_ns;
  };

  // One recording thread's aggregates. Owned jointly by that thread's
  // thread_local slot and the profiler's registry, so stats survive thread
  // exit. `epoch` lags the profiler's reset epoch; a stale map is cleared on
  // the owner's next record and skipped by readers.
  struct ThreadAgg {
    std::mutex mu;  // owner writes, readers merge: rarely contended
    std::map<std::string, SpanStats> aggregates;
    int64_t epoch = 0;
  };

  // The calling thread's aggregation slot, registered on first use.
  ThreadAgg& LocalAgg();

  std::atomic<bool> enabled_{true};
  std::atomic<int64_t> dropped_{0};
  std::atomic<int64_t> epoch_{0};
  // Fast-path hint that the event buffer has room, so spans recorded after
  // the buffer fills (or with capacity 0) skip the global lock entirely.
  std::atomic<bool> events_space_{true};
  mutable std::mutex mu_;  // guards threads_, events_, capacity_
  std::vector<std::shared_ptr<ThreadAgg>> threads_;
  std::vector<TraceEvent> events_;
  int64_t capacity_ = 65536;
};

#if MSD_PROFILING_ENABLED

class ScopedSpan {
 public:
  // `label` must outlive the profiler (use string literals).
  explicit ScopedSpan(const char* label);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* label_;
  ScopedSpan* parent_;
  int64_t start_ns_;
  int64_t child_ns_ = 0;
  bool active_;
};

#define MSD_SPAN_CONCAT_INNER(a, b) a##b
#define MSD_SPAN_CONCAT(a, b) MSD_SPAN_CONCAT_INNER(a, b)
#define MSD_SPAN(label) \
  ::msd::obs::ScopedSpan MSD_SPAN_CONCAT(msd_span_, __COUNTER__)(label)

#else  // !MSD_PROFILING_ENABLED

// Compiled-out spans: constructing one is a no-op the optimizer removes.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* label) { (void)label; }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#define MSD_SPAN(label) \
  do {                  \
  } while (false)

#endif  // MSD_PROFILING_ENABLED

}  // namespace obs
}  // namespace msd

#endif  // MSDMIXER_OBS_PROFILER_H_
