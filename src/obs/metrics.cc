#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "obs/json.h"

namespace msd {
namespace obs {

namespace {

// Portable atomic double accumulate (fetch_add on atomic<double> is C++20 but
// a CAS loop avoids relying on library support).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

// Race-free running max: compare_exchange_weak refreshes `current` on every
// failed exchange (including spurious failures), and the loop re-tests
// `current < v` against the refreshed value, so a concurrent writer that
// installed something larger is never clobbered and the loop terminates as
// soon as the stored value is >= v.
void AtomicMax(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (current < v && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

// Emits a double with enough digits to round-trip, avoiding locale issues.
std::string NumberToJson(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void Gauge::SetMax(double v) { AtomicMax(value_, v); }

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  MSD_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    MSD_CHECK_LT(bounds_[i - 1], bounds_[i])
        << "histogram bounds must be strictly increasing";
  }
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  // Construction happens-before any concurrent Observe (the registry hands
  // the histogram out only after the constructor returns).
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double v) {
  // Small histograms use a branch-predictable linear scan; the log-spaced
  // latency histograms (~200 buckets) binary-search instead so an Observe
  // on the serving hot path stays a handful of comparisons.
  size_t i;
  if (bounds_.size() <= 16) {
    i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
  } else {
    i = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  }
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::ValueAtQuantile(double q) const {
  return QuantileFromBuckets(bounds_, BucketCounts(), q);
}

double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<int64_t>& counts, double q) {
  MSD_CHECK(!bounds.empty());
  MSD_CHECK_EQ(counts.size(), bounds.size() + 1)
      << "counts must cover every bound plus the overflow bucket";
  q = std::min(1.0, std::max(0.0, q));
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  // Rank of the target observation (1-based); ceil so q=1 hits the last one.
  const double rank = std::max(1.0, std::ceil(q * static_cast<double>(total)));
  double cumulative = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    // Overflow bucket: no finite upper edge, clamp to the largest bound.
    if (i == bounds.size()) return bounds.back();
    const double upper = bounds[i];
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    // Observations spread uniformly inside the bucket.
    return lower + (upper - lower) * (rank - cumulative) / in_bucket;
  }
  return bounds.back();
}

std::vector<double> LogSpacedBounds(double lo, double hi, int per_decade) {
  MSD_CHECK(lo > 0.0 && hi > lo) << "need 0 < lo < hi";
  MSD_CHECK_GE(per_decade, 1);
  const double ratio = std::pow(10.0, 1.0 / static_cast<double>(per_decade));
  std::vector<double> bounds;
  double b = lo;
  while (b < hi) {
    bounds.push_back(b);
    b *= ratio;
  }
  bounds.push_back(b);  // first bound >= hi closes the range
  return bounds;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// msd-hot-path-safe: once-only lazy init; steady state is a pointer read.
MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

// msd-hot-path-safe: registration path; hot callers cache the returned
// reference in a function-local static (see serve/trace.h Instruments).
Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

// msd-hot-path-safe: same contract as GetCounter.
Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

// msd-hot-path-safe: same contract as GetCounter.
Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  } else {
    MSD_CHECK(slot->upper_bounds() == upper_bounds)
        << "histogram '" << name << "' re-registered with different bounds";
  }
  return *slot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << NumberToJson(g->value());
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":{\"count\":" << h->count()
        << ",\"sum\":" << NumberToJson(h->sum()) << ",\"buckets\":[";
    const auto& bounds = h->upper_bounds();
    const auto counts = h->BucketCounts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"le\":";
      if (i < bounds.size()) {
        out << NumberToJson(bounds[i]);
      } else {
        out << "\"inf\"";
      }
      out << ",\"count\":" << counts[i] << "}";
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

}  // namespace obs
}  // namespace msd
