#include "obs/ring.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/check.h"

namespace msd {
namespace obs {
namespace {

// GCC warns (-Wtsan, fatal under -Werror) that ThreadSanitizer cannot model
// atomic_thread_fence. That is a false-positive risk for plain memory only:
// every field the fences below order is itself a relaxed std::atomic, which
// TSan instruments directly, so no access in this file can be reported as a
// data race through the unmodeled fence. Keep the fences (they are the
// correct spelling for real hardware — see Push) and silence the warning.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wtsan"
inline void FenceRelease() {
  std::atomic_thread_fence(std::memory_order_release);
}
inline void FenceSeqCst() {
  std::atomic_thread_fence(std::memory_order_seq_cst);
}
#pragma GCC diagnostic pop

}  // namespace

// msd-hot-path-safe: once-only lazy init; steady state is a pointer read.
TraceRing& TraceRing::Global() {
  static TraceRing* ring = new TraceRing();  // never destroyed
  return *ring;
}

TraceRing::TraceRing(int64_t capacity) { SetCapacity(capacity); }

void TraceRing::SetCapacity(int64_t capacity) {
  capacity_ = capacity < 1 ? 1 : capacity;
  slots_ = std::make_unique<Slot[]>(static_cast<size_t>(capacity_));
  next_.store(0, std::memory_order_relaxed);
}

void TraceRing::Clear() {
  for (int64_t i = 0; i < capacity_; ++i) {
    slots_[i].seq.store(0, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_relaxed);
}

void TraceRing::Push(const TraceSpan& span) {
  const int64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % capacity_];
  // Seqlock write: negative seq marks the slot mid-write so a concurrent
  // Snapshot skips it; the final release store publishes ticket+1 (>0).
  // The release fence keeps the payload stores from becoming visible before
  // the busy marker (a release store on the marker would not order the
  // LATER stores, so a fence is the only correct spelling here) — without
  // it a reader on a weakly-ordered machine can observe new payload under
  // the old seq on both reads of its validation pair and accept torn data.
  slot.seq.store(-(ticket + 1), std::memory_order_relaxed);
  FenceRelease();
  slot.request_id.store(span.request_id, std::memory_order_relaxed);
  slot.name.store(span.name, std::memory_order_relaxed);
  slot.start_us.store(span.start_us, std::memory_order_relaxed);
  slot.dur_us.store(span.dur_us, std::memory_order_relaxed);
  slot.seq.store(ticket + 1, std::memory_order_release);
}

std::vector<TraceSpan> TraceRing::Snapshot() const {
  std::vector<std::pair<int64_t, TraceSpan>> ordered;
  ordered.reserve(static_cast<size_t>(capacity_));
  for (int64_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    const int64_t before = slot.seq.load(std::memory_order_acquire);
    if (before <= 0) continue;  // never written, or a writer is mid-publish
    TraceSpan span;
    span.request_id = slot.request_id.load(std::memory_order_relaxed);
    span.name = slot.name.load(std::memory_order_relaxed);
    span.start_us = slot.start_us.load(std::memory_order_relaxed);
    span.dur_us = slot.dur_us.load(std::memory_order_relaxed);
    FenceSeqCst();
    // A writer that wrapped around and reused the slot mid-copy bumped seq;
    // drop the (possibly torn) record rather than report a franken-span.
    if (slot.seq.load(std::memory_order_relaxed) != before) continue;
    ordered.emplace_back(before, span);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<TraceSpan> out;
  out.reserve(ordered.size());
  for (auto& [seq, span] : ordered) out.push_back(span);
  return out;
}

std::string TraceRing::ChromeTraceJson() const {
  const std::vector<TraceSpan> spans = Snapshot();
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const TraceSpan& span : spans) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%lld,"
                  "\"ts\":%lld,\"dur\":%lld}",
                  first ? "" : ",", span.name,
                  static_cast<long long>(span.request_id),
                  static_cast<long long>(span.start_us),
                  static_cast<long long>(span.dur_us));
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace msd
