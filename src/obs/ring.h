// Sampled lock-free trace ring for request-level serving telemetry
// (docs/OBSERVABILITY.md).
//
// The serving hot path (serve::MicroBatcher / InferenceSession) records one
// TraceSpan per phase (queue / batch_assembly / compute) of every sampled
// request. Recording must not add locks to the request path, so the ring is
// a fixed-capacity array of atomic slots:
//
//  * Push() claims a ticket with one relaxed fetch_add and writes the span's
//    fields as relaxed atomic stores, publishing with a release store of the
//    slot's sequence number. Capacity overflow silently overwrites the
//    oldest slot (drop-oldest), so the ring always holds the most recent
//    window of sampled traffic.
//  * Snapshot() (admin/debug path) acquires nothing: it reads each slot's
//    sequence before and after copying the payload and discards slots a
//    concurrent writer was mid-publish on, so a dump taken under load is a
//    consistent sample, never a torn record.
//  * Sampled(id) implements 1-in-N request sampling: `id % sample_every == 0`
//    with sample_every == 0 disabling tracing entirely. The decision is made
//    once at request admission and carried in the request's TraceContext.
//
// ChromeTraceJson() renders the snapshot as a chrome://tracing "traceEvents"
// array: one "X" (complete) event per span, with the request id as the tid
// so every sampled request gets its own row of queue/batch/compute spans.
// The ring itself never touches a file — callers (the TelemetryExporter
// worker, tools) own all I/O.
#ifndef MSDMIXER_OBS_RING_H_
#define MSDMIXER_OBS_RING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace msd {
namespace obs {

// One recorded phase of one request. `name` must be a string literal (it is
// stored as a pointer and never freed).
struct TraceSpan {
  int64_t request_id = 0;
  const char* name = "";
  int64_t start_us = 0;  // MonotonicNowNs()-based microseconds
  int64_t dur_us = 0;
};

class TraceRing {
 public:
  // The process-wide ring the serving stack records into.
  static TraceRing& Global();

  // `capacity` slots, rounded up to at least 1. Existing contents are
  // dropped when the capacity changes.
  explicit TraceRing(int64_t capacity = 4096);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  // Hot path: one relaxed ticket fetch_add + field stores + release publish.
  // Never blocks, never allocates; overwrites the oldest slot when full.
  void Push(const TraceSpan& span);

  // 1-in-N sampling decision for a request id; 0 disables sampling.
  bool Sampled(int64_t request_id) const {
    const int64_t n = sample_every_.load(std::memory_order_relaxed);
    return n > 0 && request_id % n == 0;
  }
  void SetSampleEvery(int64_t n) {
    sample_every_.store(n < 0 ? 0 : n, std::memory_order_relaxed);
  }
  int64_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  // Drops all recorded spans (capacity and sampling rate are kept). Not
  // linearizable against concurrent Push; meant for test isolation and
  // admin resets, like MetricsRegistry::ResetAll.
  void Clear();

  // Re-sizes the ring (drops contents). Not safe concurrently with Push.
  void SetCapacity(int64_t capacity);

  int64_t capacity() const { return capacity_; }
  // Total spans ever pushed (including overwritten ones).
  int64_t pushed() const { return next_.load(std::memory_order_relaxed); }

  // Consistent copy of the current contents, oldest first. Slots being
  // concurrently rewritten are skipped.
  std::vector<TraceSpan> Snapshot() const;

  // chrome://tracing / Perfetto "traceEvents" JSON of Snapshot().
  std::string ChromeTraceJson() const;

 private:
  // All-atomic payload so a reader racing a (wrapped-around) writer is a
  // benign relaxed-load race, filtered out by the seq re-check — TSan-clean
  // without a lock. seq holds ticket+1 of the last completed write; 0 means
  // the slot was never written.
  struct Slot {
    std::atomic<int64_t> seq{0};
    std::atomic<int64_t> request_id{0};
    std::atomic<const char*> name{""};
    std::atomic<int64_t> start_us{0};
    std::atomic<int64_t> dur_us{0};
  };

  int64_t capacity_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<int64_t> next_{0};
  std::atomic<int64_t> sample_every_{16};
};

}  // namespace obs
}  // namespace msd

#endif  // MSDMIXER_OBS_RING_H_
