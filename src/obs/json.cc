#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace msd {
namespace obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, 0)) return false;
    SkipWs();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        const char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            pos_ += 4;
            // Telemetry files only ever contain ASCII escapes; encode the
            // code point as UTF-8 without surrogate-pair handling.
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return false;
        }
        continue;
      }
      *out += c;
      ++pos_;
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonParse(const std::string& text, JsonValue* out) {
  return Parser(text).Parse(out);
}

}  // namespace obs
}  // namespace msd
