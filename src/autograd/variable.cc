#include "autograd/variable.h"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "runtime/parallel.h"
#include "tensor/kernels.h"
#include "tensor/tensor_ops.h"

namespace msd {

namespace {

// Graph recording toggle for NoGradGuard. Tape construction stays on the
// thread that runs the training loop (parallelism lives below the op layer,
// in src/runtime/); thread_local keeps the toggle safe for pool workers that
// run forward math inside kernels.
thread_local bool g_grad_enabled = true;

#if MSD_DEBUG_CHECKS_ENABLED
// Tape-lint registry of requires-grad leaves created on this thread, used by
// the dropped-leaf scan at the end of Backward(). Expired entries are pruned
// on every sweep so the registry tracks live parameters only.
thread_local std::vector<std::weak_ptr<AutogradNode>> g_debug_leaves;
#endif

// In-place dst += src (same shape). Parallel over fixed chunks: each element
// is touched by exactly one chunk, so accumulation stays deterministic.
void AddInto(Tensor& dst, const Tensor& src) {
  MSD_CHECK(dst.shape() == src.shape());
  float* d = dst.data();
  const float* s = src.data();
  const int64_t n = dst.numel();
  MSD_DCHECK(!debug::RangesOverlap(
      d, n * static_cast<int64_t>(sizeof(float)), s,
      n * static_cast<int64_t>(sizeof(float))))
      << "gradient accumulation would read its own output buffer";
  runtime::ParallelFor(0, n, kernel::kElementwiseGrain,
                       [&](int64_t cb, int64_t ce) {
                         for (int64_t i = cb; i < ce; ++i) d[i] += s[i];
                       });
}

}  // namespace

void AccumulateGrad(AutogradNode& node, const Tensor& g) {
  if (!node.requires_grad) return;
  Tensor reduced = ReduceTo(g, node.value.shape());
#if MSD_DEBUG_CHECKS_ENABLED
  {
    const int64_t bad = debug::FirstNonFinite(reduced.data(), reduced.numel());
    MSD_CHECK_EQ(bad, -1) << "debug check: non-finite gradient (element "
                          << bad << " of shape "
                          << ShapeToString(node.value.shape()) << ")";
  }
#endif
  if (!node.grad.defined()) {
    // Clone: `reduced` may alias `g` (ReduceTo is a pass-through when shapes
    // match) and the caller may reuse that buffer.
    node.grad = reduced.Clone();
  } else {
    AddInto(node.grad, reduced);
  }
}

Variable::Variable(Tensor value, bool requires_grad) {
  MSD_CHECK(value.defined());
  node_ = std::make_shared<AutogradNode>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
#if MSD_DEBUG_CHECKS_ENABLED
  if (requires_grad) g_debug_leaves.push_back(node_);
#endif
}

const Tensor& Variable::value() const {
  MSD_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  MSD_CHECK(defined());
  return node_->value;
}

const Tensor& Variable::grad() const {
  MSD_CHECK(defined());
  return node_->grad;
}

Tensor& Variable::mutable_grad() {
  MSD_CHECK(defined());
  return node_->grad;
}

bool Variable::has_grad() const { return defined() && node_->grad.defined(); }

void Variable::ZeroGrad() {
  MSD_CHECK(defined());
  node_->grad = Tensor();
}

bool Variable::requires_grad() const {
  MSD_CHECK(defined());
  return node_->requires_grad;
}

void Variable::Backward() const {
  MSD_CHECK(defined());
  MSD_CHECK_EQ(node_->value.numel(), 1)
      << "Backward() must start from a scalar loss";
  MSD_SPAN("autograd/backward");
#if MSD_DEBUG_CHECKS_ENABLED
  if (!g_grad_enabled) {
    debug::EmitTapeDiagnostic(
        "autograd: Backward() while gradient recording is disabled — a "
        "NoGradGuard is active (or was leaked), so this graph predates the "
        "guard and later steps will silently record nothing");
  }
#endif

  // Iterative post-order DFS to produce a topological order (parents before
  // children in `topo`), then sweep in reverse.
  std::vector<AutogradNode*> topo;
  std::unordered_set<AutogradNode*> visited;
  struct Frame {
    AutogradNode* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  size_t max_depth = 0;
  if (visited.insert(node_.get()).second) {
    stack.push_back({node_.get(), 0});
  }
  while (!stack.empty()) {
    max_depth = std::max(max_depth, stack.size());
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      AutogradNode* parent = top.node->parents[top.next_parent++].get();
      if (visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      topo.push_back(top.node);
      stack.pop_back();
    }
  }

  {
    // Tape telemetry: how big/deep the graphs we differentiate are.
    static obs::Counter& backward_calls =
        obs::MetricsRegistry::Global().GetCounter("autograd/backward_calls");
    static obs::Histogram& tape_nodes =
        obs::MetricsRegistry::Global().GetHistogram(
            "autograd/tape_nodes", {100.0, 1000.0, 10000.0, 100000.0});
    static obs::Gauge& tape_depth =
        obs::MetricsRegistry::Global().GetGauge("autograd/max_tape_depth");
    backward_calls.Add(1);
    tape_nodes.Observe(static_cast<double>(topo.size()));
    tape_depth.SetMax(static_cast<double>(max_depth));
  }

#if MSD_DEBUG_CHECKS_ENABLED
  // Tape lint: a second sweep over nodes whose backward closures already ran
  // double-accumulates gradients — the classic backward-after-backward bug.
  // Report once per sweep, not per node.
  bool reported_consumed = false;
  for (AutogradNode* n : topo) {
    if (n->backward_fn && n->debug_swept && !reported_consumed) {
      reported_consumed = true;
      debug::EmitTapeDiagnostic(
          "autograd: Backward() on an already-consumed tape — a node's "
          "backward closure is running a second time without the forward "
          "pass being recomputed, so gradients double-accumulate");
    }
  }
#endif

  node_->grad = Tensor::Ones(node_->value.shape());
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    AutogradNode* n = *it;
    if (n->backward_fn && n->grad.defined()) {
      n->backward_fn(*n);
#if MSD_DEBUG_CHECKS_ENABLED
      n->debug_swept = true;
#endif
    }
    // Free intermediate gradients (keep leaves', i.e. parameters').
    if (n->backward_fn) n->grad = Tensor();
  }

#if MSD_DEBUG_CHECKS_ENABLED
  // Tape lint: requires-grad leaves consumed by a recorded op but never
  // reached by a sweep were cut out of the graph (typically by a Detach() or
  // a value-level rebuild on the path to the loss) — they will never train.
  // Heuristic: a leaf feeding a *different* pending graph also trips this;
  // see docs/ANALYSIS.md. Capped to avoid drowning the sink.
  {
    int64_t reported_dropped = 0;
    std::vector<std::weak_ptr<AutogradNode>> live;
    live.reserve(g_debug_leaves.size());
    for (const auto& weak : g_debug_leaves) {
      std::shared_ptr<AutogradNode> leaf = weak.lock();
      if (!leaf) continue;  // parameter died; prune
      live.push_back(weak);
      if (visited.count(leaf.get()) > 0) {
        // Reached by this sweep: the "used" mark is consumed.
        leaf->debug_used_in_graph = false;
      } else if (leaf->debug_used_in_graph && !leaf->grad.defined() &&
                 reported_dropped < 8) {
        ++reported_dropped;
        leaf->debug_used_in_graph = false;  // report each drop once
        debug::EmitTapeDiagnostic(
            "autograd: requires-grad leaf of shape " +
            ShapeToString(leaf->value.shape()) +
            " was consumed by a recorded op but not reached by Backward() — "
            "dropped from the graph (Detach() on the path to the loss?)");
      }
    }
    g_debug_leaves.swap(live);
  }
#endif
}

Variable Variable::Detach() const {
  MSD_CHECK(defined());
  return Variable(node_->value, /*requires_grad=*/false);
}

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

bool NoGradGuard::GradEnabled() { return g_grad_enabled; }

}  // namespace msd
