#include "autograd/variable.h"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "tensor/tensor_ops.h"

namespace msd {

namespace {

// Graph recording toggle for NoGradGuard. The library is single-threaded by
// design (one training loop per process); thread_local keeps it safe if that
// ever changes.
thread_local bool g_grad_enabled = true;

// In-place dst += src (same shape).
void AddInto(Tensor& dst, const Tensor& src) {
  MSD_CHECK(dst.shape() == src.shape());
  float* d = dst.data();
  const float* s = src.data();
  const int64_t n = dst.numel();
  for (int64_t i = 0; i < n; ++i) d[i] += s[i];
}

}  // namespace

void AccumulateGrad(AutogradNode& node, const Tensor& g) {
  if (!node.requires_grad) return;
  Tensor reduced = ReduceTo(g, node.value.shape());
  if (!node.grad.defined()) {
    // Clone: `reduced` may alias `g` (ReduceTo is a pass-through when shapes
    // match) and the caller may reuse that buffer.
    node.grad = reduced.Clone();
  } else {
    AddInto(node.grad, reduced);
  }
}

Variable::Variable(Tensor value, bool requires_grad) {
  MSD_CHECK(value.defined());
  node_ = std::make_shared<AutogradNode>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  MSD_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  MSD_CHECK(defined());
  return node_->value;
}

const Tensor& Variable::grad() const {
  MSD_CHECK(defined());
  return node_->grad;
}

Tensor& Variable::mutable_grad() {
  MSD_CHECK(defined());
  return node_->grad;
}

bool Variable::has_grad() const { return defined() && node_->grad.defined(); }

void Variable::ZeroGrad() {
  MSD_CHECK(defined());
  node_->grad = Tensor();
}

bool Variable::requires_grad() const {
  MSD_CHECK(defined());
  return node_->requires_grad;
}

void Variable::Backward() const {
  MSD_CHECK(defined());
  MSD_CHECK_EQ(node_->value.numel(), 1)
      << "Backward() must start from a scalar loss";
  MSD_SPAN("autograd/backward");

  // Iterative post-order DFS to produce a topological order (parents before
  // children in `topo`), then sweep in reverse.
  std::vector<AutogradNode*> topo;
  std::unordered_set<AutogradNode*> visited;
  struct Frame {
    AutogradNode* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  size_t max_depth = 0;
  if (visited.insert(node_.get()).second) {
    stack.push_back({node_.get(), 0});
  }
  while (!stack.empty()) {
    max_depth = std::max(max_depth, stack.size());
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      AutogradNode* parent = top.node->parents[top.next_parent++].get();
      if (visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      topo.push_back(top.node);
      stack.pop_back();
    }
  }

  {
    // Tape telemetry: how big/deep the graphs we differentiate are.
    static obs::Counter& backward_calls =
        obs::MetricsRegistry::Global().GetCounter("autograd/backward_calls");
    static obs::Histogram& tape_nodes =
        obs::MetricsRegistry::Global().GetHistogram(
            "autograd/tape_nodes", {100.0, 1000.0, 10000.0, 100000.0});
    static obs::Gauge& tape_depth =
        obs::MetricsRegistry::Global().GetGauge("autograd/max_tape_depth");
    backward_calls.Add(1);
    tape_nodes.Observe(static_cast<double>(topo.size()));
    tape_depth.SetMax(static_cast<double>(max_depth));
  }

  node_->grad = Tensor::Ones(node_->value.shape());
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    AutogradNode* n = *it;
    if (n->backward_fn && n->grad.defined()) {
      n->backward_fn(*n);
    }
    // Free intermediate gradients (keep leaves', i.e. parameters').
    if (n->backward_fn) n->grad = Tensor();
  }
}

Variable Variable::Detach() const {
  MSD_CHECK(defined());
  return Variable(node_->value, /*requires_grad=*/false);
}

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

bool NoGradGuard::GradEnabled() { return g_grad_enabled; }

}  // namespace msd
