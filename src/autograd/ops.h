// Differentiable operations on Variables. Each op computes its value with the
// tensor kernels and, when gradients are enabled and some input requires
// them, records a backward closure on the tape.
//
// These overload the tensor-level functions of the same names; overload
// resolution picks the Variable versions for Variable arguments.
#ifndef MSDMIXER_AUTOGRAD_OPS_H_
#define MSDMIXER_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"
#include "tensor/gemm.h"

namespace msd {

// ---- Elementwise binary (broadcasting) -----------------------------------
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);

// ---- Scalar ----------------------------------------------------------------
Variable AddScalar(const Variable& a, float s);
Variable MulScalar(const Variable& a, float s);

// ---- Elementwise unary -------------------------------------------------------
Variable Neg(const Variable& a);
Variable Exp(const Variable& a);
Variable Log(const Variable& a);
Variable Sqrt(const Variable& a);
Variable Square(const Variable& a);
Variable Abs(const Variable& a);
Variable Relu(const Variable& a);
Variable Gelu(const Variable& a);
Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);

// ---- Linear algebra ------------------------------------------------------------
// Batched matrix product with broadcastable batch dims (see tensor MatMul).
Variable MatMul(const Variable& a, const Variable& b);

// Fused act(a @ b + bias): a single GEMM whose epilogue applies the bias add
// and activation, so neither the bias-sum nor the pre-activation tensor is
// materialized in the graph. `bias` may be an undefined Variable (no bias).
// The backward is fused too: one dz tensor feeds the two matmul gradients
// and the (broadcast-reduced) bias gradient; only kGelu stores the
// pre-activation, the other activations recover their derivative from the
// output.
Variable MatMulEx(const Variable& a, const Variable& b, const Variable& bias,
                  gemm::Activation act);

// 2D convolution: input [B, C, H, W] (*) kernel [O, C, kh, kw]; stride and
// symmetric zero padding per tensor/conv.h.
Variable Conv2d(const Variable& input, const Variable& kernel,
                int64_t stride = 1, int64_t padding = 0);

// ---- Reductions -------------------------------------------------------------------
Variable Sum(const Variable& a, std::vector<int64_t> dims, bool keepdim);
Variable Mean(const Variable& a, std::vector<int64_t> dims, bool keepdim);
Variable SumAll(const Variable& a);
Variable MeanAll(const Variable& a);

// ---- Movement ----------------------------------------------------------------------
Variable Reshape(const Variable& a, Shape new_shape);
Variable Permute(const Variable& a, std::vector<int64_t> perm);
Variable Transpose(const Variable& a, int64_t dim0, int64_t dim1);
Variable Slice(const Variable& a, int64_t dim, int64_t start, int64_t length);
Variable Concat(const std::vector<Variable>& parts, int64_t dim);
Variable Pad(const Variable& a, int64_t dim, int64_t before, int64_t after,
             float value);

// ---- Composite -------------------------------------------------------------------------
Variable Softmax(const Variable& a, int64_t dim);
// log(softmax(a)) computed stably; preferred for cross-entropy losses.
Variable LogSoftmax(const Variable& a, int64_t dim);

}  // namespace msd

#endif  // MSDMIXER_AUTOGRAD_OPS_H_
