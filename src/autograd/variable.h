// Reverse-mode automatic differentiation over Tensor.
//
// A Variable is a cheap handle to a node in a dynamically-built computation
// graph (a "tape"). Differentiable ops (autograd/ops.h) create new nodes that
// remember their parents and a closure computing parent gradients from the
// node's own gradient. Calling Backward() on a scalar Variable runs a reverse
// topological sweep, accumulating gradients into every reachable node with
// requires_grad set (typically model parameters).
//
// Lifetime: children hold shared_ptrs to parents, never vice versa, so a
// graph is freed as soon as the last Variable referring to its sink dies.
// Leaf parameters survive across training steps; intermediate nodes do not.
#ifndef MSDMIXER_AUTOGRAD_VARIABLE_H_
#define MSDMIXER_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/debug.h"
#include "tensor/tensor.h"

namespace msd {

struct AutogradNode {
  Tensor value;
  // Undefined until the first gradient contribution arrives.
  Tensor grad;
  bool requires_grad = false;
  std::vector<std::shared_ptr<AutogradNode>> parents;
  // Reads this->grad and accumulates into parents' grads. Null for leaves
  // and for nodes created under NoGradGuard.
  std::function<void(AutogradNode&)> backward_fn;
#if MSD_DEBUG_CHECKS_ENABLED
  // Tape-linter state (debug-checks builds only; the flag is set globally by
  // CMake so every translation unit agrees on this layout). `debug_swept`
  // marks nodes whose backward_fn already ran; `debug_used_in_graph` marks
  // leaves consumed as parents of a recorded op since they were last reached
  // by a Backward() sweep. See common/debug.h and docs/ANALYSIS.md.
  bool debug_swept = false;
  bool debug_used_in_graph = false;
#endif
};

// Accumulates `g` into `node`'s gradient, reducing over broadcast dims so the
// stored gradient always matches the value's shape. No-op if the node does
// not require (or propagate) gradients.
void AccumulateGrad(AutogradNode& node, const Tensor& g);

class Variable {
 public:
  Variable() = default;
  // Wraps a tensor as a leaf. Parameters pass requires_grad=true.
  explicit Variable(Tensor value, bool requires_grad = false);
  // Wraps an existing node (used by ops).
  explicit Variable(std::shared_ptr<AutogradNode> node)
      : node_(std::move(node)) {}

  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const;
  // Mutable access for optimizers; never call while a graph referencing this
  // leaf is still pending a Backward().
  Tensor& mutable_value();

  // Gradient accumulated by the last Backward() calls; undefined Tensor if
  // no gradient has arrived.
  const Tensor& grad() const;
  // Mutable gradient access for optimizers (e.g. in-place clipping).
  Tensor& mutable_grad();
  bool has_grad() const;
  void ZeroGrad();

  bool requires_grad() const;

  // Shape conveniences.
  const Shape& shape() const { return value().shape(); }
  int64_t rank() const { return value().rank(); }
  int64_t dim(int64_t axis) const { return value().dim(axis); }
  int64_t numel() const { return value().numel(); }
  float item() const { return value().item(); }

  // Runs reverse-mode differentiation from this (scalar) Variable, seeding
  // d(self)/d(self) = 1. Gradients *accumulate*; call ZeroGrad() on leaves
  // (or Optimizer::ZeroGrad) between steps.
  void Backward() const;

  // A new leaf Variable sharing this value but cut off from the graph.
  Variable Detach() const;

  const std::shared_ptr<AutogradNode>& node() const { return node_; }

 private:
  std::shared_ptr<AutogradNode> node_;
};

// RAII scope that disables graph recording: ops executed inside produce
// detached results. Use for evaluation loops to save memory and time.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  static bool GradEnabled();

 private:
  bool previous_;
};

}  // namespace msd

#endif  // MSDMIXER_AUTOGRAD_VARIABLE_H_
