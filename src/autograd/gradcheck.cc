#include "autograd/gradcheck.h"

#include <cmath>
#include <sstream>

#include "tensor/tensor_ops.h"

namespace msd {

std::string GradCheckResult::ToString() const {
  if (ok) return "gradcheck OK";
  std::ostringstream out;
  out << "gradcheck FAILED at element " << worst_index << ": analytic "
      << analytic << " vs numeric " << numeric;
  return out.str();
}

GradCheckResult CheckGradient(
    const std::function<Variable(const Variable&)>& f, const Tensor& x0,
    const GradCheckOptions& options) {
  Variable x(x0.Clone(), /*requires_grad=*/true);
  Variable y = f(x);
  MSD_CHECK_EQ(y.numel(), 1) << "gradcheck requires a scalar-valued function";
  y.Backward();
  MSD_CHECK(x.has_grad()) << "function does not depend on its input";
  const Tensor analytic = x.grad().Clone();

  GradCheckResult result;
  Tensor probe = x0.Clone();
  Variable xp(probe, /*requires_grad=*/false);
  float worst_error = -1.0f;
  for (int64_t i = 0; i < probe.numel(); ++i) {
    const float saved = probe.data()[i];
    probe.data()[i] = saved + options.epsilon;
    const float up = f(xp).item();
    probe.data()[i] = saved - options.epsilon;
    const float down = f(xp).item();
    probe.data()[i] = saved;
    const float numeric = (up - down) / (2.0f * options.epsilon);
    const float a = analytic.data()[i];
    const float error = std::fabs(a - numeric);
    const float bound = options.absolute_tolerance +
                        options.relative_tolerance * std::fabs(numeric);
    if (error > bound && error > worst_error) {
      worst_error = error;
      result.ok = false;
      result.worst_index = i;
      result.analytic = a;
      result.numeric = numeric;
    }
  }
  return result;
}

}  // namespace msd
