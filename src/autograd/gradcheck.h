// Numerical gradient verification, exposed as a library so downstream users
// can validate custom ops and composite models the same way the test suite
// validates the built-in ones.
#ifndef MSDMIXER_AUTOGRAD_GRADCHECK_H_
#define MSDMIXER_AUTOGRAD_GRADCHECK_H_

#include <functional>
#include <string>

#include "autograd/variable.h"

namespace msd {

struct GradCheckOptions {
  float epsilon = 1e-2f;  // central-difference step
  float absolute_tolerance = 2e-3f;
  float relative_tolerance = 3e-2f;
};

struct GradCheckResult {
  bool ok = true;
  // Worst offending element, for diagnostics.
  int64_t worst_index = -1;
  float analytic = 0.0f;
  float numeric = 0.0f;
  std::string ToString() const;
};

// Compares the analytic gradient of scalar-valued `f` at `x0` against
// central finite differences, elementwise. `f` must be a pure function of
// its input (same value for the same input).
GradCheckResult CheckGradient(
    const std::function<Variable(const Variable&)>& f, const Tensor& x0,
    const GradCheckOptions& options = {});

}  // namespace msd

#endif  // MSDMIXER_AUTOGRAD_GRADCHECK_H_
