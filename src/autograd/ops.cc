#include "autograd/ops.h"

#include <utility>

#include "obs/metrics.h"
#include "tensor/conv.h"
#include "tensor/tensor_ops.h"

namespace msd {

namespace {

using NodePtr = std::shared_ptr<AutogradNode>;

// Creates the result node; records parents + backward closure only when
// recording is enabled and some parent participates in gradients.
Variable MakeOp(Tensor value, std::vector<NodePtr> parents,
                std::function<void(AutogradNode&)> backward) {
  static obs::Counter& nodes_created =
      obs::MetricsRegistry::Global().GetCounter("autograd/nodes_created");
  nodes_created.Add(1);
#if MSD_DEBUG_CHECKS_ENABLED
  {
    // NaN/Inf guard on every differentiable op output. Fatal: a non-finite
    // value this deep in a training graph is already silent corruption.
    const int64_t bad = debug::FirstNonFinite(value.data(), value.numel());
    MSD_CHECK_EQ(bad, -1) << "debug check: non-finite value in op output "
                          << "(element " << bad << " of shape "
                          << ShapeToString(value.shape()) << ")";
  }
#endif
  auto node = std::make_shared<AutogradNode>();
  node->value = std::move(value);
  bool any_requires = false;
  for (const NodePtr& p : parents) any_requires |= p->requires_grad;
  if (NoGradGuard::GradEnabled() && any_requires) {
    // Counts only nodes that join the tape (parents + backward closure kept).
    // Flat across an inference pass under NoGradGuard — the serving tests
    // regress on exactly that (tests/serve_test.cc).
    static obs::Counter& nodes_recorded =
        obs::MetricsRegistry::Global().GetCounter("autograd/nodes_recorded");
    nodes_recorded.Add(1);
    node->requires_grad = true;
#if MSD_DEBUG_CHECKS_ENABLED
    // Tape lint: mark leaves consumed by this recorded op; Backward() clears
    // the mark on every leaf its sweep reaches and reports the rest.
    for (const NodePtr& p : parents) {
      if (!p->backward_fn && p->requires_grad) p->debug_used_in_graph = true;
    }
#endif
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward);
  }
  return Variable(std::move(node));
}

template <typename F>
Variable UnaryFromGrad(const Variable& a, Tensor value, F local_grad) {
  // local_grad: () -> Tensor, the elementwise dvalue/da (computed lazily so
  // inference pays nothing).
  NodePtr na = a.node();
  return MakeOp(std::move(value), {na},
                [na, local_grad](AutogradNode& self) {
                  AccumulateGrad(*na, Mul(self.grad, local_grad()));
                });
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  NodePtr na = a.node();
  NodePtr nb = b.node();
  return MakeOp(Add(a.value(), b.value()), {na, nb},
                [na, nb](AutogradNode& self) {
                  AccumulateGrad(*na, self.grad);
                  AccumulateGrad(*nb, self.grad);
                });
}

Variable Sub(const Variable& a, const Variable& b) {
  NodePtr na = a.node();
  NodePtr nb = b.node();
  return MakeOp(Sub(a.value(), b.value()), {na, nb},
                [na, nb](AutogradNode& self) {
                  AccumulateGrad(*na, self.grad);
                  AccumulateGrad(*nb, Neg(self.grad));
                });
}

Variable Mul(const Variable& a, const Variable& b) {
  NodePtr na = a.node();
  NodePtr nb = b.node();
  return MakeOp(Mul(a.value(), b.value()), {na, nb},
                [na, nb](AutogradNode& self) {
                  AccumulateGrad(*na, Mul(self.grad, nb->value));
                  AccumulateGrad(*nb, Mul(self.grad, na->value));
                });
}

Variable Div(const Variable& a, const Variable& b) {
  NodePtr na = a.node();
  NodePtr nb = b.node();
  return MakeOp(Div(a.value(), b.value()), {na, nb},
                [na, nb](AutogradNode& self) {
                  AccumulateGrad(*na, Div(self.grad, nb->value));
                  // d/db (a/b) = -a / b^2
                  AccumulateGrad(
                      *nb, Neg(Div(Mul(self.grad, na->value),
                                   Square(nb->value))));
                });
}

Variable AddScalar(const Variable& a, float s) {
  NodePtr na = a.node();
  return MakeOp(AddScalar(a.value(), s), {na}, [na](AutogradNode& self) {
    AccumulateGrad(*na, self.grad);
  });
}

Variable MulScalar(const Variable& a, float s) {
  NodePtr na = a.node();
  return MakeOp(MulScalar(a.value(), s), {na}, [na, s](AutogradNode& self) {
    AccumulateGrad(*na, MulScalar(self.grad, s));
  });
}

Variable Neg(const Variable& a) { return MulScalar(a, -1.0f); }

Variable Exp(const Variable& a) {
  Tensor y = Exp(a.value());
  return UnaryFromGrad(a, y, [y]() { return y; });
}

Variable Log(const Variable& a) {
  Tensor x = a.value();
  return UnaryFromGrad(a, Log(x), [x]() {
    return Div(Tensor::Ones(x.shape()), x);
  });
}

Variable Sqrt(const Variable& a) {
  Tensor y = Sqrt(a.value());
  return UnaryFromGrad(a, y, [y]() {
    return Div(Tensor::Full(y.shape(), 0.5f), y);
  });
}

Variable Square(const Variable& a) {
  Tensor x = a.value();
  return UnaryFromGrad(a, Square(x), [x]() { return MulScalar(x, 2.0f); });
}

Variable Abs(const Variable& a) {
  Tensor x = a.value();
  return UnaryFromGrad(a, Abs(x), [x]() { return Sign(x); });
}

Variable Relu(const Variable& a) {
  Tensor x = a.value();
  return UnaryFromGrad(a, Relu(x), [x]() {
    return Greater(x, Tensor::Zeros({}));
  });
}

Variable Gelu(const Variable& a) {
  Tensor x = a.value();
  return UnaryFromGrad(a, Gelu(x), [x]() { return GeluGrad(x); });
}

Variable Sigmoid(const Variable& a) {
  Tensor y = Sigmoid(a.value());
  return UnaryFromGrad(a, y, [y]() {
    return Mul(y, Sub(Tensor::Ones(y.shape()), y));
  });
}

Variable Tanh(const Variable& a) {
  Tensor y = Tanh(a.value());
  return UnaryFromGrad(a, y, [y]() {
    return Sub(Tensor::Ones(y.shape()), Square(y));
  });
}

Variable MatMul(const Variable& a, const Variable& b) {
  NodePtr na = a.node();
  NodePtr nb = b.node();
  return MakeOp(
      MatMul(a.value(), b.value()), {na, nb}, [na, nb](AutogradNode& self) {
        // dA = G B^T ; dB = A^T G (AccumulateGrad reduces broadcast batches).
        AccumulateGrad(*na, MatMul(self.grad, Transpose(nb->value, -1, -2)));
        AccumulateGrad(*nb, MatMul(Transpose(na->value, -1, -2), self.grad));
      });
}

Variable MatMulEx(const Variable& a, const Variable& b, const Variable& bias,
                  gemm::Activation act) {
  NodePtr na = a.node();
  NodePtr nb = b.node();
  NodePtr nbias = bias.defined() ? bias.node() : nullptr;
  // Only gelu's derivative needs the pre-activation z = a@b + bias; relu,
  // tanh, and sigmoid recover theirs from the output, and identity needs
  // nothing — so z is captured (one extra tensor) for gelu only, and only
  // while recording.
  const bool save_pre =
      act == gemm::Activation::kGelu && NoGradGuard::GradEnabled();
  Tensor pre;
  Tensor value = MatMulEx(a.value(), b.value(),
                          bias.defined() ? bias.value() : Tensor(), act,
                          save_pre ? &pre : nullptr);
  std::vector<NodePtr> parents = {na, nb};
  if (nbias != nullptr) parents.push_back(nbias);
  return MakeOp(
      std::move(value), std::move(parents),
      [na, nb, nbias, act, pre](AutogradNode& self) {
        // dz: gradient at the pre-activation, shared by all three inputs.
        // The derivative expressions mirror the standalone Relu/Gelu/
        // Sigmoid/Tanh ops so fused and composed graphs train identically.
        const Tensor& y = self.value;
        Tensor dz;
        switch (act) {
          case gemm::Activation::kIdentity:
            dz = self.grad;
            break;
          case gemm::Activation::kRelu:
            // y > 0 exactly where the pre-activation was > 0.
            dz = Mul(self.grad, Greater(y, Tensor::Zeros({})));
            break;
          case gemm::Activation::kGelu:
            dz = Mul(self.grad, GeluGrad(pre));
            break;
          case gemm::Activation::kTanh:
            dz = Mul(self.grad, Sub(Tensor::Ones(y.shape()), Square(y)));
            break;
          case gemm::Activation::kSigmoid:
            dz = Mul(self.grad, Mul(y, Sub(Tensor::Ones(y.shape()), y)));
            break;
        }
        AccumulateGrad(*na, MatMul(dz, Transpose(nb->value, -1, -2)));
        AccumulateGrad(*nb, MatMul(Transpose(na->value, -1, -2), dz));
        // AccumulateGrad reduces dz over every leading dim down to [n].
        if (nbias != nullptr) AccumulateGrad(*nbias, dz);
      });
}

Variable Conv2d(const Variable& input, const Variable& kernel, int64_t stride,
                int64_t padding) {
  NodePtr ni = input.node();
  NodePtr nk = kernel.node();
  const Conv2dSpec spec{stride, padding};
  const int64_t height = input.dim(2);
  const int64_t width = input.dim(3);
  const int64_t kh = kernel.dim(2);
  const int64_t kw = kernel.dim(3);
  return MakeOp(Conv2d(input.value(), kernel.value(), spec), {ni, nk},
                [ni, nk, spec, height, width, kh, kw](AutogradNode& self) {
                  AccumulateGrad(*ni, Conv2dInputGrad(self.grad, nk->value,
                                                      height, width, spec));
                  AccumulateGrad(*nk, Conv2dKernelGrad(ni->value, self.grad,
                                                       kh, kw, spec));
                });
}

Variable Sum(const Variable& a, std::vector<int64_t> dims, bool keepdim) {
  NodePtr na = a.node();
  const Shape in_shape = a.shape();
  Shape keep_shape = in_shape;
  for (int64_t d : dims) {
    keep_shape[static_cast<size_t>(NormalizeDim(d, a.rank()))] = 1;
  }
  return MakeOp(Sum(a.value(), dims, keepdim), {na},
                [na, in_shape, keep_shape](AutogradNode& self) {
                  Tensor g = self.grad.Reshape(keep_shape);
                  AccumulateGrad(*na, ExpandTo(g, in_shape));
                });
}

Variable Mean(const Variable& a, std::vector<int64_t> dims, bool keepdim) {
  int64_t count = 1;
  for (int64_t d : dims) count *= a.dim(NormalizeDim(d, a.rank()));
  MSD_CHECK_GT(count, 0);
  return MulScalar(Sum(a, std::move(dims), keepdim),
                   1.0f / static_cast<float>(count));
}

Variable SumAll(const Variable& a) {
  NodePtr na = a.node();
  const Shape in_shape = a.shape();
  return MakeOp(SumAll(a.value()), {na},
                [na, in_shape](AutogradNode& self) {
                  AccumulateGrad(*na,
                                 Tensor::Full(in_shape, self.grad.item()));
                });
}

Variable MeanAll(const Variable& a) {
  MSD_CHECK_GT(a.numel(), 0);
  return MulScalar(SumAll(a), 1.0f / static_cast<float>(a.numel()));
}

Variable Reshape(const Variable& a, Shape new_shape) {
  NodePtr na = a.node();
  const Shape in_shape = a.shape();
  return MakeOp(a.value().Reshape(std::move(new_shape)), {na},
                [na, in_shape](AutogradNode& self) {
                  AccumulateGrad(*na, self.grad.Reshape(in_shape));
                });
}

Variable Permute(const Variable& a, std::vector<int64_t> perm) {
  NodePtr na = a.node();
  const int64_t rank = a.rank();
  std::vector<int64_t> inverse(static_cast<size_t>(rank));
  for (int64_t i = 0; i < rank; ++i) {
    inverse[static_cast<size_t>(NormalizeDim(perm[static_cast<size_t>(i)], rank))] = i;
  }
  return MakeOp(Permute(a.value(), perm), {na},
                [na, inverse](AutogradNode& self) {
                  AccumulateGrad(*na, Permute(self.grad, inverse));
                });
}

Variable Transpose(const Variable& a, int64_t dim0, int64_t dim1) {
  const int64_t rank = a.rank();
  std::vector<int64_t> perm(static_cast<size_t>(rank));
  for (int64_t i = 0; i < rank; ++i) perm[static_cast<size_t>(i)] = i;
  std::swap(perm[static_cast<size_t>(NormalizeDim(dim0, rank))],
            perm[static_cast<size_t>(NormalizeDim(dim1, rank))]);
  return Permute(a, perm);
}

// msd-hot-path-safe: overload twin of the audited Tensor Slice — the serve
// batcher calls the Tensor overload, but a lexical call graph cannot tell
// overloads apart; the frozen path only reaches Variable ops through
// MsdMixer::Run, which is audited as a unit.
Variable Slice(const Variable& a, int64_t dim, int64_t start, int64_t length) {
  NodePtr na = a.node();
  const int64_t norm_dim = NormalizeDim(dim, a.rank());
  const int64_t in_dim = a.dim(norm_dim);
  return MakeOp(Slice(a.value(), dim, start, length), {na},
                [na, norm_dim, start, length, in_dim](AutogradNode& self) {
                  AccumulateGrad(*na, Pad(self.grad, norm_dim, start,
                                          in_dim - start - length, 0.0f));
                });
}

Variable Concat(const std::vector<Variable>& parts, int64_t dim) {
  MSD_CHECK(!parts.empty());
  std::vector<NodePtr> nodes;
  std::vector<Tensor> tensors;
  nodes.reserve(parts.size());
  tensors.reserve(parts.size());
  for (const Variable& p : parts) {
    nodes.push_back(p.node());
    tensors.push_back(p.value());
  }
  const int64_t norm_dim = NormalizeDim(dim, parts[0].rank());
  std::vector<int64_t> sizes;
  sizes.reserve(parts.size());
  for (const Variable& p : parts) sizes.push_back(p.dim(norm_dim));
  return MakeOp(Concat(tensors, dim), nodes,
                [nodes, sizes, norm_dim](AutogradNode& self) {
                  int64_t offset = 0;
                  for (size_t i = 0; i < nodes.size(); ++i) {
                    AccumulateGrad(*nodes[i], Slice(self.grad, norm_dim,
                                                    offset, sizes[i]));
                    offset += sizes[i];
                  }
                });
}

Variable Pad(const Variable& a, int64_t dim, int64_t before, int64_t after,
             float value) {
  NodePtr na = a.node();
  const int64_t norm_dim = NormalizeDim(dim, a.rank());
  const int64_t in_dim = a.dim(norm_dim);
  return MakeOp(Pad(a.value(), dim, before, after, value), {na},
                [na, norm_dim, before, in_dim](AutogradNode& self) {
                  AccumulateGrad(*na,
                                 Slice(self.grad, norm_dim, before, in_dim));
                });
}

Variable Softmax(const Variable& a, int64_t dim) {
  NodePtr na = a.node();
  const int64_t norm_dim = NormalizeDim(dim, a.rank());
  Tensor y = Softmax(a.value(), norm_dim);
  return MakeOp(y, {na}, [na, y, norm_dim](AutogradNode& self) {
    // dx = y * (g - sum(g * y, dim))
    Tensor gy = Mul(self.grad, y);
    Tensor s = Sum(gy, {norm_dim}, /*keepdim=*/true);
    AccumulateGrad(*na, Mul(y, Sub(self.grad, s)));
  });
}

Variable LogSoftmax(const Variable& a, int64_t dim) {
  NodePtr na = a.node();
  const int64_t norm_dim = NormalizeDim(dim, a.rank());
  // Stable forward: x - max - log(sum(exp(x - max))).
  Tensor x = a.value();
  Tensor mx = MaxReduce(x, norm_dim, /*keepdim=*/true);
  Tensor shifted = Sub(x, mx);
  Tensor logz = Log(Sum(Exp(shifted), {norm_dim}, /*keepdim=*/true));
  Tensor y = Sub(shifted, logz);
  return MakeOp(y, {na}, [na, y, norm_dim](AutogradNode& self) {
    // dx = g - softmax(x) * sum(g, dim)
    Tensor s = Sum(self.grad, {norm_dim}, /*keepdim=*/true);
    AccumulateGrad(*na, Sub(self.grad, Mul(Exp(y), s)));
  });
}

}  // namespace msd
