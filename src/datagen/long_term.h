// Scaled-down analogues of the eight long-term forecasting benchmarks
// (paper Table III). Each config reproduces the defining structure of its
// namesake at a size tractable on one CPU core:
//
//   ETTm1/ETTm2 : 7 ch, dual-period (daily 96-step + short 24-step) + trend
//   ETTh1/ETTh2 : 7 ch, daily 24 + weekly 168 periods, channel heterogeneity
//   ECL         : many correlated channels with strong daily/weekly cycles
//   Traffic     : peaky (harmonic-rich) daily pattern, strong coupling
//   Weather     : smooth AR(0.95) channels with mild daily cycle
//   Exchange    : pure random walk + drift (no seasonality) — the regime
//                 where linear/naive baselines are competitive in the paper
#ifndef MSDMIXER_DATAGEN_LONG_TERM_H_
#define MSDMIXER_DATAGEN_LONG_TERM_H_

#include <string>
#include <vector>

#include "datagen/series_builder.h"

namespace msd {

enum class LongTermDataset {
  kEttM1,
  kEttM2,
  kEttH1,
  kEttH2,
  kEcl,
  kTraffic,
  kWeather,
  kExchange,
};

// All eight, in paper order.
std::vector<LongTermDataset> AllLongTermDatasets();

// Display name ("ETTm1", ...).
std::string LongTermDatasetName(LongTermDataset dataset);

// The generative recipe for one dataset (deterministic given `seed`).
SeriesConfig LongTermConfig(LongTermDataset dataset, uint64_t seed);

// Dominant seasonal period in steps — used to choose patch sizes, mirroring
// how the paper sets patch sizes from the sampling interval.
int64_t LongTermDominantPeriod(LongTermDataset dataset);

}  // namespace msd

#endif  // MSDMIXER_DATAGEN_LONG_TERM_H_
