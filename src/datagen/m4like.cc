#include "datagen/m4like.h"

#include <cmath>

#include "common/check.h"

namespace msd {

std::vector<M4SubsetSpec> DefaultM4Subsets() {
  // name, horizon, period (m for MASE/Naive2), history length, #series.
  // Horizons and periods follow the M4 competition; history lengths are in
  // the typical range for each subset; counts are scaled for CPU runtime.
  return {
      {"Yearly", 6, 1, 36, 64},
      {"Quarterly", 8, 4, 48, 64},
      {"Monthly", 18, 12, 108, 64},
      {"Weekly", 13, 1, 91, 32},
      {"Daily", 14, 1, 98, 48},
      {"Hourly", 48, 24, 192, 32},
  };
}

std::vector<UnivariateSeries> GenerateM4Like(const M4SubsetSpec& spec,
                                             uint64_t seed) {
  MSD_CHECK_GT(spec.horizon, 0);
  MSD_CHECK_GT(spec.history_length, 2 * spec.period);
  Rng master(seed ^ 0x4d34d34d34ULL);
  std::vector<UnivariateSeries> out;
  out.reserve(static_cast<size_t>(spec.num_series));
  const int64_t total = spec.history_length + spec.horizon;

  for (int64_t s = 0; s < spec.num_series; ++s) {
    Rng rng = master.Fork();
    // Per-series generative parameters, drawn to span the heterogeneity of a
    // real M4 subset: base level, damped trend, seasonal strength, noise.
    // Trends are strong and the seasonal phase drifts slowly — structure a
    // learned model can pool across series, while the training-free Naive2
    // (flat level x fixed multiplicative indices) cannot extrapolate either.
    const double level = 20.0 + 80.0 * rng.NextDouble();
    const double trend = rng.Gaussian(0.0f, 1.0f) * level / 120.0;
    const double damp = 0.990 + 0.009 * rng.NextDouble();
    const double seasonal_amp =
        spec.period > 1 ? (0.05 + 0.25 * rng.NextDouble()) * level : 0.0;
    const double phase = rng.Uniform(0.0f, 2.0f * static_cast<float>(M_PI));
    const double phase_drift_sigma = 0.03;
    const double ar = 0.3 + 0.4 * rng.NextDouble();
    const double sigma = (0.01 + 0.02 * rng.NextDouble()) * level;

    UnivariateSeries series;
    series.history.reserve(static_cast<size_t>(spec.history_length));
    series.future.reserve(static_cast<size_t>(spec.horizon));
    double trend_acc = 0.0;
    double trend_step = trend;
    double ar_state = 0.0;
    double drifted_phase = phase;
    for (int64_t t = 0; t < total; ++t) {
      trend_acc += trend_step;
      trend_step *= damp;  // damped trend, common in M4 series
      double value = level + trend_acc;
      if (spec.period > 1) {
        drifted_phase += rng.Gaussian(0.0f, static_cast<float>(phase_drift_sigma));
        value += seasonal_amp *
                 std::sin(2.0 * M_PI * static_cast<double>(t) /
                              static_cast<double>(spec.period) +
                          drifted_phase);
      }
      ar_state = ar * ar_state + rng.Gaussian(0.0f, static_cast<float>(sigma));
      value += ar_state;
      // M4 series are positive.
      value = std::max(value, 0.1);
      if (t < spec.history_length) {
        series.history.push_back(static_cast<float>(value));
      } else {
        series.future.push_back(static_cast<float>(value));
      }
    }
    out.push_back(std::move(series));
  }
  return out;
}

}  // namespace msd
