#include "datagen/classification_gen.h"

#include <cmath>

#include "common/rng.h"

namespace msd {

namespace {

// Per-class generative template: a small bank of oscillators with
// class-specific frequencies/phases and per-channel loadings, plus a
// class-specific temporal envelope.
struct ClassTemplate {
  struct Oscillator {
    double frequency;  // cycles over the full window
    double phase;
    std::vector<double> loadings;  // per channel
  };
  std::vector<Oscillator> oscillators;
  double envelope_center;  // where activity concentrates, in [0.2, 0.8]
  double envelope_width;
  // Class-specific noise texture: AR(1) coefficient of the additive noise.
  // A second-order statistic invisible to template matching (DTW) and hard
  // for shallow linear features, but accessible to the fine-scale layers of
  // a deep multi-scale model.
  double noise_ar;
};

ClassTemplate MakeTemplate(int64_t channels, Rng& rng) {
  ClassTemplate tpl;
  const int64_t num_osc = 2 + rng.UniformInt(2);
  for (int64_t o = 0; o < num_osc; ++o) {
    ClassTemplate::Oscillator osc;
    osc.frequency = 1.5 + 10.0 * rng.NextDouble();
    osc.phase = rng.Uniform(0.0f, 6.2831853f);
    osc.loadings.reserve(static_cast<size_t>(channels));
    for (int64_t c = 0; c < channels; ++c) {
      osc.loadings.push_back(rng.Gaussian(0.0f, 1.0f));
    }
    tpl.oscillators.push_back(std::move(osc));
  }
  tpl.envelope_center = 0.2 + 0.6 * rng.NextDouble();
  tpl.envelope_width = 0.15 + 0.3 * rng.NextDouble();
  tpl.noise_ar = -0.7 + 1.6 * rng.NextDouble();
  return tpl;
}

Tensor RenderSample(const ClassTemplate& tpl, int64_t channels, int64_t length,
                    double noise, Rng& rng) {
  Tensor x({channels, length});
  // Per-sample jitter keeps the class separable but non-trivial. The random
  // time shift means the class signature is not phase-locked to absolute
  // positions — as in real gesture/ECG data — which penalizes position-bound
  // models (flatten-MLPs) relative to sub-series/warping models.
  const double amp_jitter = 0.7 + 0.6 * rng.NextDouble();
  const double phase_jitter = rng.Gaussian(0.0f, 0.5f);
  const double center_jitter = rng.Gaussian(0.0f, 0.08f);
  const int64_t shift = rng.UniformInt(length / 16 + 1) - length / 32;
  float* p = x.data();
  for (int64_t c = 0; c < channels; ++c) {
    double ar_state = 0.0;
    for (int64_t t = 0; t < length; ++t) {
      const int64_t shifted = ((t + shift) % length + length) % length;
      const double u =
          static_cast<double>(shifted) / static_cast<double>(length);
      const double d = (u - tpl.envelope_center - center_jitter) /
                       tpl.envelope_width;
      const double envelope = std::exp(-0.5 * d * d);
      double value = 0.0;
      for (const auto& osc : tpl.oscillators) {
        value += osc.loadings[static_cast<size_t>(c)] *
                 std::sin(2.0 * M_PI * osc.frequency * u + osc.phase +
                          phase_jitter);
      }
      ar_state = tpl.noise_ar * ar_state +
                 rng.Gaussian(0.0f, static_cast<float>(noise));
      value = amp_jitter * envelope * value + ar_state;
      p[c * length + t] = static_cast<float>(value);
    }
  }
  return x;
}

}  // namespace

std::vector<ClassificationSubset> DefaultClassificationSubsets() {
  // Names and channel/length/class profiles follow paper Table X; sizes are
  // scaled (e.g., FD 5890 -> 240 train) and very long series shortened.
  // Noise levels are tuned so accuracies span a realistic range (roughly
  // 0.5-0.99 across subsets, as in paper Table XI) rather than saturating.
  return {
      {"AWR", 9, 144, 10, 200, 200, 2.2},
      {"AF", 2, 160, 3, 30, 30, 2.6},
      {"CT", 3, 182, 10, 300, 300, 1.8},
      {"CR", 6, 160, 6, 108, 72, 1.8},
      {"FD", 16, 62, 2, 240, 160, 3.2},
      {"FM", 12, 50, 2, 160, 100, 3.0},
      {"MI", 12, 200, 2, 140, 100, 3.6},
      {"SCP1", 6, 224, 2, 160, 150, 2.4},
      {"SCP2", 7, 240, 2, 150, 120, 3.8},
      {"UWGL", 3, 160, 8, 120, 160, 2.0},
  };
}

ClassificationData GenerateClassificationData(
    const ClassificationSubset& subset, uint64_t seed) {
  MSD_CHECK_GT(subset.classes, 1);
  Rng class_rng(seed ^ 0xc1a55e5ULL);
  std::vector<ClassTemplate> templates;
  templates.reserve(static_cast<size_t>(subset.classes));
  for (int64_t k = 0; k < subset.classes; ++k) {
    templates.push_back(MakeTemplate(subset.channels, class_rng));
  }

  Rng sample_rng(seed ^ 0x5a5a5a5aULL);
  ClassificationData data;
  auto emit = [&](int64_t count, std::vector<Tensor>* xs,
                  std::vector<int64_t>* ys) {
    for (int64_t i = 0; i < count; ++i) {
      const int64_t label = i % subset.classes;  // balanced classes
      xs->push_back(RenderSample(templates[static_cast<size_t>(label)],
                                 subset.channels, subset.length, subset.noise,
                                 sample_rng));
      ys->push_back(label);
    }
  };
  emit(subset.train_size, &data.train_x, &data.train_y);
  emit(subset.test_size, &data.test_x, &data.test_y);
  return data;
}

}  // namespace msd
