// Class-conditioned multivariate series generators mirroring the ten UEA
// subsets of paper Table X. Each subset keeps its namesake's channel/length/
// class-count profile (scaled where the original is very large); the class
// signal lives in frequencies, phases, channel loadings, and envelope shape
// at multiple time scales, with per-sample jitter and noise.
#ifndef MSDMIXER_DATAGEN_CLASSIFICATION_GEN_H_
#define MSDMIXER_DATAGEN_CLASSIFICATION_GEN_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace msd {

struct ClassificationSubset {
  std::string name;
  int64_t channels = 3;
  int64_t length = 128;
  int64_t classes = 4;
  int64_t train_size = 100;
  int64_t test_size = 100;
  // Sample noise std relative to the class-signal amplitude: higher is
  // harder. Tuned per subset so accuracies land in a realistic range.
  double noise = 0.5;
};

struct ClassificationData {
  std::vector<Tensor> train_x;  // each [C, L]
  std::vector<int64_t> train_y;
  std::vector<Tensor> test_x;
  std::vector<int64_t> test_y;
};

// The ten UEA-like subsets (AWR, AF, CT, CR, FD, FM, MI, SCP1, SCP2, UWGL)
// with scaled sizes.
std::vector<ClassificationSubset> DefaultClassificationSubsets();

// Deterministic generation from `seed`.
ClassificationData GenerateClassificationData(
    const ClassificationSubset& subset, uint64_t seed);

}  // namespace msd

#endif  // MSDMIXER_DATAGEN_CLASSIFICATION_GEN_H_
