#include "datagen/series_builder.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace msd {

std::vector<float> GenerateChannel(const ChannelSpec& spec, int64_t length,
                                   Rng& rng) {
  MSD_CHECK_GT(length, 0);
  std::vector<float> out(static_cast<size_t>(length));
  double ar_state = 0.0;
  double walk = 0.0;
  for (int64_t t = 0; t < length; ++t) {
    double value = spec.level + spec.trend_slope * static_cast<double>(t);
    for (const SeasonalSpec& s : spec.seasonals) {
      MSD_CHECK_GT(s.period, 0.0);
      const double omega = 2.0 * M_PI / s.period;
      for (int h = 1; h <= std::max(1, s.harmonics); ++h) {
        value += (s.amplitude / h) *
                 std::sin(omega * h * static_cast<double>(t) + s.phase * h);
      }
    }
    if (spec.random_walk_sigma > 0.0) {
      walk += rng.Gaussian(0.0f, static_cast<float>(spec.random_walk_sigma));
      value += walk;
    }
    ar_state = spec.ar_coeff * ar_state +
               rng.Gaussian(0.0f, static_cast<float>(spec.noise_sigma));
    value += ar_state;
    out[static_cast<size_t>(t)] = static_cast<float>(value);
  }
  return out;
}

Tensor GenerateSeries(const SeriesConfig& config) {
  const int64_t channels = static_cast<int64_t>(config.channels.size());
  MSD_CHECK_GT(channels, 0) << "series config has no channels";
  MSD_CHECK_GE(config.channel_mix, 0.0);
  MSD_CHECK_LT(config.channel_mix, 1.0);
  Rng rng(config.seed);

  Tensor raw({channels, config.length});
  for (int64_t c = 0; c < channels; ++c) {
    const std::vector<float> ch =
        GenerateChannel(config.channels[static_cast<size_t>(c)], config.length,
                        rng);
    std::copy(ch.begin(), ch.end(), raw.data() + c * config.length);
  }

  if (config.driver.amplitude > 0.0) {
    const DriverSpec& drv = config.driver;
    MSD_CHECK_GT(drv.period, 0.0);
    MSD_CHECK_GE(drv.max_lag, 0);
    // Latent pseudo-periodic driver with slowly wandering phase and a slow
    // amplitude envelope; rendered long enough to cover every channel lag.
    const int64_t total = config.length + drv.max_lag;
    std::vector<double> driver(static_cast<size_t>(total));
    double phase = rng.Uniform(0.0f, 6.2831853f);
    for (int64_t t = 0; t < total; ++t) {
      phase += rng.Gaussian(0.0f, static_cast<float>(drv.phase_jitter));
      const double envelope =
          1.0 + 0.4 * std::sin(2.0 * M_PI * static_cast<double>(t) /
                               (3.7 * drv.period));
      driver[static_cast<size_t>(t)] =
          envelope * std::sin(2.0 * M_PI * static_cast<double>(t) /
                                  drv.period +
                              phase);
    }
    for (int64_t c = 0; c < channels; ++c) {
      // Deterministic lag spread so some channel always leads (lag 0).
      const int64_t lag =
          channels > 1 ? (c * drv.max_lag) / (channels - 1) : 0;
      const double loading =
          (rng.Bernoulli(0.5) ? 1.0 : -1.0) * (0.7 + 0.6 * rng.NextDouble());
      float* row = raw.data() + c * config.length;
      for (int64_t t = 0; t < config.length; ++t) {
        // Channel c at time t observes the driver delayed by `lag`; the
        // rendered buffer index (t + max_lag - lag) keeps everything causal.
        double d = driver[static_cast<size_t>(t + drv.max_lag - lag)];
        if (drv.nonlinear) d = std::tanh(1.8 * d);
        row[t] += static_cast<float>(drv.amplitude * loading * d);
      }
    }
  }
  if (config.channel_mix == 0.0 || channels == 1) return raw;

  // Random row-stochastic mixing matrix; couples channels while keeping each
  // one dominated by its own signal.
  Tensor mix({channels, channels});
  for (int64_t i = 0; i < channels; ++i) {
    float row_sum = 0.0f;
    for (int64_t j = 0; j < channels; ++j) {
      const float w = rng.Uniform(0.0f, 1.0f);
      mix.set({i, j}, w);
      row_sum += w;
    }
    for (int64_t j = 0; j < channels; ++j) {
      mix.set({i, j}, mix.at({i, j}) / row_sum);
    }
  }
  Tensor mixed = MatMul(mix, raw);
  const float alpha = static_cast<float>(config.channel_mix);
  return Add(MulScalar(raw, 1.0f - alpha), MulScalar(mixed, alpha));
}

}  // namespace msd
