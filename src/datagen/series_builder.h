// Component-based synthetic time-series construction.
//
// Real benchmark datasets (ETT, ECL, Traffic, ...) are not available in this
// environment; these builders synthesize series that preserve the structural
// properties the paper's experiments exercise: superposed multi-scale
// seasonality, trend, autocorrelated noise, random-walk channels, and
// cross-channel coupling. See DESIGN.md §2 for the substitution rationale.
#ifndef MSDMIXER_DATAGEN_SERIES_BUILDER_H_
#define MSDMIXER_DATAGEN_SERIES_BUILDER_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace msd {

// One sinusoidal component; `harmonics` > 1 adds decaying overtones, which
// sharpens peaks (rush-hour-like shapes).
struct SeasonalSpec {
  double period = 24.0;
  double amplitude = 1.0;
  double phase = 0.0;  // radians
  int harmonics = 1;
};

// Generative recipe for one channel.
struct ChannelSpec {
  double level = 0.0;
  double trend_slope = 0.0;  // linear drift per step
  std::vector<SeasonalSpec> seasonals;
  double ar_coeff = 0.0;          // AR(1) coefficient of the noise process
  double noise_sigma = 0.1;       // innovation std of the noise process
  double random_walk_sigma = 0.0; // integrated-noise std (random-walk part)
};

// A shared latent driver with channel-specific lags and a nonlinear readout.
// This makes channels *mutually predictive* (a lag-0 channel reveals the
// future of a lag-delta channel delta steps ahead) through a nonlinearity —
// structure that channel-independent linear forecasters cannot exploit but
// channel-mixing models can. It stands in for the inter-channel dependency
// of the real multivariate benchmarks (paper §I, §II).
struct DriverSpec {
  double amplitude = 0.0;  // 0 disables the driver
  double period = 48.0;    // pseudo-period of the latent oscillation
  double phase_jitter = 0.02;  // random-walk phase noise per step
  int64_t max_lag = 48;    // channel lags spread over [0, max_lag]
  bool nonlinear = true;   // tanh readout (breaks linear predictability)
};

struct SeriesConfig {
  std::string name;
  int64_t length = 1000;
  std::vector<ChannelSpec> channels;
  // Cross-channel coupling in [0, 1): each output channel becomes
  // (1 - mix) * own + mix * (random convex combination of all channels).
  double channel_mix = 0.0;
  DriverSpec driver;
  uint64_t seed = 1;
};

// Renders the configured series as a [C, T] tensor.
Tensor GenerateSeries(const SeriesConfig& config);

// Renders a single channel as a length-T vector (no mixing).
std::vector<float> GenerateChannel(const ChannelSpec& spec, int64_t length,
                                   Rng& rng);

}  // namespace msd

#endif  // MSDMIXER_DATAGEN_SERIES_BUILDER_H_
