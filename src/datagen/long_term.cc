#include "datagen/long_term.h"

namespace msd {

namespace {

// Varies a base channel spec so channels are heterogeneous but share the
// dataset's periodic skeleton.
ChannelSpec Perturb(const ChannelSpec& base, Rng& rng) {
  ChannelSpec spec = base;
  spec.level += rng.Gaussian(0.0f, 0.5f);
  spec.trend_slope *= 0.5 + rng.NextDouble();
  for (SeasonalSpec& s : spec.seasonals) {
    s.amplitude *= 0.6 + 0.8 * rng.NextDouble();
    s.phase += rng.Uniform(-0.8f, 0.8f);
  }
  spec.noise_sigma *= 0.7 + 0.6 * rng.NextDouble();
  return spec;
}

SeriesConfig MakeConfig(std::string name, int64_t channels, int64_t length,
                        const ChannelSpec& base, double mix, uint64_t seed) {
  SeriesConfig config;
  config.name = std::move(name);
  config.length = length;
  config.channel_mix = mix;
  config.seed = seed;
  Rng rng(seed ^ 0xabcdef12345ULL);
  config.channels.reserve(static_cast<size_t>(channels));
  for (int64_t c = 0; c < channels; ++c) {
    config.channels.push_back(Perturb(base, rng));
  }
  return config;
}

}  // namespace

std::vector<LongTermDataset> AllLongTermDatasets() {
  return {LongTermDataset::kEttM1,   LongTermDataset::kEttM2,
          LongTermDataset::kEttH1,   LongTermDataset::kEttH2,
          LongTermDataset::kEcl,     LongTermDataset::kTraffic,
          LongTermDataset::kWeather, LongTermDataset::kExchange};
}

std::string LongTermDatasetName(LongTermDataset dataset) {
  switch (dataset) {
    case LongTermDataset::kEttM1:
      return "ETTm1";
    case LongTermDataset::kEttM2:
      return "ETTm2";
    case LongTermDataset::kEttH1:
      return "ETTh1";
    case LongTermDataset::kEttH2:
      return "ETTh2";
    case LongTermDataset::kEcl:
      return "ECL";
    case LongTermDataset::kTraffic:
      return "Traffic";
    case LongTermDataset::kWeather:
      return "Weather";
    case LongTermDataset::kExchange:
      return "Exchange";
  }
  MSD_FATAL("unknown long-term dataset");
}

int64_t LongTermDominantPeriod(LongTermDataset dataset) {
  switch (dataset) {
    case LongTermDataset::kEttM1:
    case LongTermDataset::kEttM2:
      return 96;  // one day at 15-minute sampling
    case LongTermDataset::kEttH1:
    case LongTermDataset::kEttH2:
    case LongTermDataset::kEcl:
    case LongTermDataset::kTraffic:
      return 24;  // one day at hourly sampling
    case LongTermDataset::kWeather:
      return 24;
    case LongTermDataset::kExchange:
      return 24;  // no true seasonality; nominal
  }
  MSD_FATAL("unknown long-term dataset");
}

SeriesConfig LongTermConfig(LongTermDataset dataset, uint64_t seed) {
  ChannelSpec base;
  switch (dataset) {
    case LongTermDataset::kEttM1: {
      base.seasonals = {{96.0, 1.2, 0.0, 2}, {24.0, 0.5, 0.4, 1}};
      base.trend_slope = 2e-4;
      base.ar_coeff = 0.6;
      base.noise_sigma = 0.25;
      SeriesConfig config = MakeConfig("ETTm1", 7, 4096, base, 0.35, seed);
      config.driver = {0.9, 96.0, 0.02, 64, true};
      return config;
    }
    case LongTermDataset::kEttM2: {
      // Noisier sibling with a slower extra period.
      base.seasonals = {{96.0, 1.0, 0.7, 1}, {384.0, 0.8, 0.2, 1}};
      base.trend_slope = -1.5e-4;
      base.ar_coeff = 0.75;
      base.noise_sigma = 0.35;
      SeriesConfig config = MakeConfig("ETTm2", 7, 4096, base, 0.35, seed + 1);
      config.driver = {0.8, 128.0, 0.03, 64, true};
      return config;
    }
    case LongTermDataset::kEttH1: {
      base.seasonals = {{24.0, 1.2, 0.0, 2}, {168.0, 0.7, 0.9, 1}};
      base.trend_slope = 3e-4;
      base.ar_coeff = 0.65;
      base.noise_sigma = 0.3;
      SeriesConfig config = MakeConfig("ETTh1", 7, 3072, base, 0.4, seed + 2);
      config.driver = {0.9, 48.0, 0.02, 48, true};
      return config;
    }
    case LongTermDataset::kEttH2: {
      base.seasonals = {{24.0, 0.9, 0.5, 1}, {168.0, 0.9, 0.1, 1}};
      base.trend_slope = -2e-4;
      base.ar_coeff = 0.8;
      base.noise_sigma = 0.4;
      SeriesConfig config = MakeConfig("ETTh2", 7, 3072, base, 0.4, seed + 3);
      config.driver = {0.8, 72.0, 0.03, 48, true};
      return config;
    }
    case LongTermDataset::kEcl: {
      base.seasonals = {{24.0, 1.4, 0.0, 2}, {168.0, 0.6, 0.3, 1}};
      base.trend_slope = 1e-4;
      base.ar_coeff = 0.5;
      base.noise_sigma = 0.2;
      // Paper: 321 channels; scaled to 12 correlated channels.
      SeriesConfig config = MakeConfig("ECL", 12, 3072, base, 0.5, seed + 4);
      config.driver = {1.0, 48.0, 0.02, 56, true};
      return config;
    }
    case LongTermDataset::kTraffic: {
      // Peaky rush-hour shape: strong harmonics, strong coupling.
      base.seasonals = {{24.0, 1.6, -0.5, 4}, {168.0, 0.8, 0.0, 2}};
      base.trend_slope = 0.0;
      base.ar_coeff = 0.4;
      base.noise_sigma = 0.25;
      // Paper: 862 channels; scaled to 16.
      SeriesConfig config = MakeConfig("Traffic", 16, 3072, base, 0.6, seed + 5);
      config.driver = {1.2, 24.0, 0.02, 48, true};
      return config;
    }
    case LongTermDataset::kWeather: {
      base.seasonals = {{24.0, 0.5, 0.2, 1}};
      base.trend_slope = 5e-5;
      base.ar_coeff = 0.95;
      base.noise_sigma = 0.15;
      // Paper: 21 channels; scaled to 10.
      SeriesConfig config = MakeConfig("Weather", 10, 3072, base, 0.3, seed + 6);
      config.driver = {0.5, 96.0, 0.04, 48, true};
      return config;
    }
    case LongTermDataset::kExchange: {
      // Random walk with drift and no seasonality: the regime where naive
      // and linear baselines shine (paper Table IV Exchange rows).
      base.seasonals = {};
      base.trend_slope = 1e-4;
      base.ar_coeff = 0.0;
      base.noise_sigma = 0.02;
      base.random_walk_sigma = 0.05;
      return MakeConfig("Exchange", 8, 2048, base, 0.1, seed + 7);
    }
  }
  MSD_FATAL("unknown long-term dataset");
}

}  // namespace msd
