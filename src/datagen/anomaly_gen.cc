#include "datagen/anomaly_gen.h"

#include <cmath>

#include "common/rng.h"
#include "datagen/series_builder.h"
#include "tensor/tensor_ops.h"

namespace msd {

namespace {

struct AnomalyProfile {
  int64_t channels;
  int64_t train_length;
  int64_t test_length;
  // Expected number of anomalous segments in the test span.
  int64_t num_segments;
  // Segment length range.
  int64_t min_len;
  int64_t max_len;
  // Magnitude of injected disturbances, in units of signal std.
  double severity;
  // Normal-regime recipe parameters.
  double daily_amp;
  double ar_coeff;
  double noise_sigma;
};

AnomalyProfile ProfileFor(AnomalyDataset dataset) {
  switch (dataset) {
    case AnomalyDataset::kSmd:   // server machine metrics: smooth + spikes
      return {8, 4000, 4000, 12, 5, 50, 3.0, 0.8, 0.7, 0.15};
    case AnomalyDataset::kMsl:   // spacecraft telemetry: regime shifts
      return {8, 3000, 3000, 7, 15, 80, 2.5, 0.5, 0.8, 0.2};
    case AnomalyDataset::kSmap:  // spacecraft telemetry: long quiet + bursts
      return {6, 3000, 4000, 8, 20, 100, 2.0, 0.4, 0.85, 0.15};
    case AnomalyDataset::kSwat:  // water treatment: strong periodic actuation
      return {8, 4000, 4000, 7, 30, 120, 3.5, 1.2, 0.6, 0.1};
    case AnomalyDataset::kPsm:   // pooled server metrics
      return {6, 3500, 3000, 9, 10, 60, 2.5, 0.9, 0.7, 0.2};
  }
  MSD_FATAL("unknown anomaly dataset");
}

// Builds the normal-regime config shared by train and test spans.
SeriesConfig NormalConfig(const AnomalyProfile& profile, int64_t length,
                          uint64_t seed) {
  SeriesConfig config;
  config.length = length;
  config.channel_mix = 0.3;
  config.seed = seed;
  Rng rng(seed ^ 0x77aa77aa77ULL);
  for (int64_t c = 0; c < profile.channels; ++c) {
    ChannelSpec spec;
    spec.level = rng.Gaussian(0.0f, 1.0f);
    spec.seasonals = {{100.0, profile.daily_amp * (0.7 + 0.6 * rng.NextDouble()),
                       rng.Uniform(0.0f, 6.28f), 2},
                      {25.0, 0.3 * profile.daily_amp, rng.Uniform(0.0f, 6.28f),
                       1}};
    spec.ar_coeff = profile.ar_coeff;
    spec.noise_sigma = profile.noise_sigma;
    config.channels.push_back(spec);
  }
  return config;
}

}  // namespace

std::vector<AnomalyDataset> AllAnomalyDatasets() {
  return {AnomalyDataset::kSmd, AnomalyDataset::kMsl, AnomalyDataset::kSmap,
          AnomalyDataset::kSwat, AnomalyDataset::kPsm};
}

std::string AnomalyDatasetName(AnomalyDataset dataset) {
  switch (dataset) {
    case AnomalyDataset::kSmd:
      return "SMD";
    case AnomalyDataset::kMsl:
      return "MSL";
    case AnomalyDataset::kSmap:
      return "SMAP";
    case AnomalyDataset::kSwat:
      return "SWaT";
    case AnomalyDataset::kPsm:
      return "PSM";
  }
  MSD_FATAL("unknown anomaly dataset");
}

AnomalyData GenerateAnomalyDataset(AnomalyDataset dataset, uint64_t seed) {
  const AnomalyProfile profile = ProfileFor(dataset);
  // One continuous normal series split into train/test keeps the regimes
  // consistent across the boundary (as in the real benchmarks).
  SeriesConfig config = NormalConfig(
      profile, profile.train_length + profile.test_length, seed);
  Tensor full = GenerateSeries(config);
  AnomalyData data;
  data.train = Slice(full, 1, 0, profile.train_length);
  Tensor test = Slice(full, 1, profile.train_length, profile.test_length)
                    .Clone();  // own buffer: we mutate it below
  data.labels.assign(static_cast<size_t>(profile.test_length), 0);

  Rng rng(seed ^ 0xfeedbeefULL);
  const int64_t channels = profile.channels;
  float* p = test.data();
  const int64_t len = profile.test_length;

  for (int64_t seg = 0; seg < profile.num_segments; ++seg) {
    const int64_t seg_len =
        profile.min_len + rng.UniformInt(profile.max_len - profile.min_len + 1);
    const int64_t start = rng.UniformInt(len - seg_len);
    // Each segment disturbs a random subset of channels with one anomaly
    // type. Beyond the obvious amplitude anomalies (spikes, shifts, bursts)
    // we inject *structural* ones — frozen sensors, time-reversed dynamics,
    // channel desynchronization — that keep amplitudes plausible and are
    // only visible to models of the temporal/cross-channel pattern.
    const int64_t type = rng.UniformInt(6);
    const int64_t affected = 1 + rng.UniformInt(channels);
    for (int64_t t = start; t < start + seg_len; ++t) {
      data.labels[static_cast<size_t>(t)] = 1;
    }
    for (int64_t a = 0; a < affected; ++a) {
      const int64_t c = rng.UniformInt(channels);
      float* row = p + c * len;
      switch (type) {
        case 0: {  // point spikes scattered across the segment
          for (int64_t t = start; t < start + seg_len; ++t) {
            if (rng.Bernoulli(0.35)) {
              row[t] += static_cast<float>(profile.severity) *
                        (rng.Bernoulli(0.5) ? 1.0f : -1.0f);
            }
          }
          break;
        }
        case 1: {  // level shift
          const float shift = static_cast<float>(profile.severity) *
                              (rng.Bernoulli(0.5) ? 1.0f : -1.0f);
          for (int64_t t = start; t < start + seg_len; ++t) row[t] += shift;
          break;
        }
        case 2: {  // variance burst
          for (int64_t t = start; t < start + seg_len; ++t) {
            row[t] += rng.Gaussian(0.0f,
                                   static_cast<float>(profile.severity));
          }
          break;
        }
        case 3: {  // frozen sensor: hold the value entering the segment
          const float frozen = row[start];
          for (int64_t t = start; t < start + seg_len; ++t) row[t] = frozen;
          break;
        }
        case 4: {  // time reversal: plausible values, broken dynamics
          for (int64_t i = 0; i < seg_len / 2; ++i) {
            std::swap(row[start + i], row[start + seg_len - 1 - i]);
          }
          break;
        }
        case 5: {  // channel desync: swap this channel with another one
          const int64_t other = rng.UniformInt(channels);
          if (other != c) {
            float* other_row = p + other * len;
            for (int64_t t = start; t < start + seg_len; ++t) {
              std::swap(row[t], other_row[t]);
            }
          } else {
            // Degenerate draw: fall back to a mild level shift.
            for (int64_t t = start; t < start + seg_len; ++t) {
              row[t] += 0.5f * static_cast<float>(profile.severity);
            }
          }
          break;
        }
        default:
          MSD_FATAL("unreachable");
      }
    }
  }
  data.test = test;
  return data;
}

}  // namespace msd
