// Synthetic anomaly-detection datasets mirroring the five benchmarks of
// paper Table VIII (SMD, MSL, SMAP, SWaT, PSM): a clean multivariate
// training span and a labeled test span with injected anomalies of several
// types (point spikes, level shifts, noise bursts, frozen sensors).
#ifndef MSDMIXER_DATAGEN_ANOMALY_GEN_H_
#define MSDMIXER_DATAGEN_ANOMALY_GEN_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace msd {

enum class AnomalyDataset { kSmd, kMsl, kSmap, kSwat, kPsm };

std::vector<AnomalyDataset> AllAnomalyDatasets();
std::string AnomalyDatasetName(AnomalyDataset dataset);

struct AnomalyData {
  Tensor train;             // [C, T_train], anomaly-free
  Tensor test;              // [C, T_test]
  std::vector<int> labels;  // length T_test; 1 = anomalous time step
};

// Deterministic generation from `seed`. Channel counts are scaled down from
// the real datasets; the window length (100) and the normal-train /
// labeled-test protocol match the paper.
AnomalyData GenerateAnomalyDataset(AnomalyDataset dataset, uint64_t seed);

// The evaluation window length used by all anomaly benchmarks in the paper.
constexpr int64_t kAnomalyWindow = 100;

}  // namespace msd

#endif  // MSDMIXER_DATAGEN_ANOMALY_GEN_H_
