// M4-like short-term forecasting collections (paper Table V): six subsets
// keyed by sampling frequency, each a set of independent positive univariate
// series with subset-specific horizon and seasonal periodicity. Series
// counts are scaled down from the 100k-series competition; horizons,
// periodicities, and the metric pipeline (SMAPE/MASE/OWA vs Naive2) match.
#ifndef MSDMIXER_DATAGEN_M4LIKE_H_
#define MSDMIXER_DATAGEN_M4LIKE_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace msd {

struct M4SubsetSpec {
  std::string name;
  int64_t horizon = 6;
  // Seasonal periodicity m used by MASE and Naive2 (1 = non-seasonal).
  int64_t period = 1;
  int64_t history_length = 36;
  int64_t num_series = 64;
};

// One univariate sample: observed history plus the future to forecast.
struct UnivariateSeries {
  std::vector<float> history;
  std::vector<float> future;  // length == subset horizon
};

// The six canonical subsets (Yearly, Quarterly, Monthly, Weekly, Daily,
// Hourly) with paper-matching horizons/periods and scaled-down counts.
std::vector<M4SubsetSpec> DefaultM4Subsets();

// Deterministically generates the subset's series: multiplicative-ish trend
// + period-m seasonality + AR noise, strictly positive (as in M4).
std::vector<UnivariateSeries> GenerateM4Like(const M4SubsetSpec& spec,
                                             uint64_t seed);

}  // namespace msd

#endif  // MSDMIXER_DATAGEN_M4LIKE_H_
