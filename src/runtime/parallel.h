// Chunked data-parallel primitives with a bit-determinism contract
// (docs/RUNTIME.md).
//
// Every parallel loop in the library goes through ParallelFor /
// ParallelChunks / ParallelReduce. The contract that makes results
// bit-identical for any MSD_THREADS value:
//
//  1. Chunk geometry is a pure function of the iteration range and the grain
//     (NumChunks/ChunkBounds below) — the thread count only decides which
//     thread executes a chunk, never where a chunk starts or ends.
//  2. A chunk body writes only to locations derived from its own indices
//     (disjoint writes), so execution order across chunks is unobservable.
//  3. Cross-chunk combination (ParallelReduce) folds per-chunk partials with
//     a fixed-order binary tree over chunk indices, identical for every
//     thread count — including 1, where the same chunked evaluation runs
//     inline.
//
// Nested parallel loops (a body that itself calls ParallelFor) execute
// inline on the calling worker: same chunk geometry, sequential order.
#ifndef MSDMIXER_RUNTIME_PARALLEL_H_
#define MSDMIXER_RUNTIME_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "runtime/thread_pool.h"

namespace msd {
namespace runtime {

// ---- Thread-count control ---------------------------------------------------

// Current size of the global pool (1 = fully inline execution).
int64_t NumThreads();

// Resizes the global pool; n <= 0 restores the MSD_THREADS / hardware
// default. Must not be called from inside a parallel region.
void SetNumThreads(int64_t n);

// RAII override: applies `n` threads for the scope when n > 0, restores the
// previous count on destruction; n <= 0 is a no-op (inherit current).
class ScopedThreads {
 public:
  explicit ScopedThreads(int64_t n)
      : previous_(NumThreads()), active_(n > 0 && n != previous_) {
    if (active_) SetNumThreads(n);
  }
  ~ScopedThreads() {
    if (active_) SetNumThreads(previous_);
  }

  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  int64_t previous_;
  bool active_;
};

// ---- Deterministic chunk geometry -------------------------------------------

// Upper bound on chunks per loop. Fixed (never derived from the thread
// count) so chunk boundaries — and therefore reduction trees — are identical
// for every MSD_THREADS value. 64 chunks load-balance pools up to ~64
// threads while keeping per-chunk dispatch overhead negligible.
inline constexpr int64_t kMaxChunksPerLoop = 64;

// Number of chunks for n iterations at the given grain (min iterations per
// chunk): ceil(n / grain) clamped to [1, kMaxChunksPerLoop].
int64_t NumChunks(int64_t n, int64_t grain);

// Half-open bounds of chunk `chunk_index` when [begin, begin + n) is split
// into `chunks` near-equal parts (the first n % chunks parts get one extra).
std::pair<int64_t, int64_t> ChunkBounds(int64_t begin, int64_t n,
                                        int64_t chunks, int64_t chunk_index);

// ---- Primitives -------------------------------------------------------------

using RangeFn = std::function<void(int64_t begin, int64_t end)>;
using IndexedRangeFn =
    std::function<void(int64_t chunk, int64_t begin, int64_t end)>;

// Runs body(chunk_begin, chunk_end) over fixed chunks of [begin, end),
// in parallel when the pool has threads and we are not already inside a
// parallel region. Blocks until every chunk finished; rethrows the first
// exception a chunk threw.
// msd-hot-path-safe: the sanctioned parallelism chokepoint — the pool
// handshake (futex wait + one lock per dispatch) is the audited design
// (docs/RUNTIME.md); callers must not re-flag it per call site.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const RangeFn& body);

// ParallelFor variant that also passes the chunk index, for bodies that
// write per-chunk slots (the building block of ParallelReduce).
// msd-hot-path-safe: same contract as ParallelFor.
void ParallelChunks(int64_t begin, int64_t end, int64_t grain,
                    const IndexedRangeFn& body);

// Chunked reduction: map_chunk(chunk_begin, chunk_end) -> T computes each
// chunk's partial; partials are folded with combine(T, T) in a fixed-order
// binary tree over chunk indices. Returns `identity` for an empty range.
// combine must be associative; it need not be commutative.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(int64_t begin, int64_t end, int64_t grain, T identity,
                 const MapFn& map_chunk, const CombineFn& combine) {
  const int64_t n = end - begin;
  if (n <= 0) return identity;
  const int64_t chunks = NumChunks(n, grain);
  std::vector<T> partials(static_cast<size_t>(chunks), identity);
  ParallelChunks(begin, end, grain,
                 [&](int64_t chunk, int64_t b, int64_t e) {
                   partials[static_cast<size_t>(chunk)] = map_chunk(b, e);
                 });
  // Fixed-order tree reduction: pairing depends only on the chunk count.
  for (int64_t stride = 1; stride < chunks; stride *= 2) {
    for (int64_t i = 0; i + stride < chunks; i += 2 * stride) {
      partials[static_cast<size_t>(i)] =
          combine(partials[static_cast<size_t>(i)],
                  partials[static_cast<size_t>(i + stride)]);
    }
  }
  return partials[0];
}

}  // namespace runtime
}  // namespace msd

#endif  // MSDMIXER_RUNTIME_PARALLEL_H_
