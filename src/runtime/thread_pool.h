// Persistent worker pool behind the ParallelFor/ParallelReduce primitives in
// runtime/parallel.h (see docs/RUNTIME.md).
//
// Design:
//  * One process-wide pool (Global()), sized from the MSD_THREADS environment
//    variable, falling back to std::thread::hardware_concurrency(). A pool of
//    size 1 owns no worker threads at all: every chunk runs inline on the
//    calling thread, preserving the exact single-threaded execution of the
//    pre-runtime library.
//  * Work arrives as a fixed set of chunk indices (RunChunks). Workers and
//    the calling thread claim indices from a shared atomic cursor, so load
//    balances dynamically while the chunk *geometry* stays fixed — the
//    determinism contract lives in runtime/parallel.h, which derives chunk
//    boundaries from the iteration range only, never from the thread count.
//  * The calling thread participates: RunChunks never blocks until every
//    chunk has been claimed, so a pool of N threads applies N cores to the
//    loop, not N-1.
//  * Exceptions thrown by a chunk are captured (first one wins) and rethrown
//    on the calling thread after the loop completes. The library's own
//    MSD_CHECK failures abort the process directly, on whichever thread they
//    fire — the pool adds no exception translation for those.
//  * This is the only file in the tree allowed to spawn std::thread; the
//    repo analyzer (tools/analyze/, rule no-raw-thread) enforces it.
#ifndef MSDMIXER_RUNTIME_THREAD_POOL_H_
#define MSDMIXER_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace msd {
namespace runtime {

// Body invoked once per chunk index in [0, chunk_count).
using ChunkFn = std::function<void(int64_t)>;

// True while the calling thread is executing a chunk body (worker or
// participating caller). Nested parallel loops observe this and run inline.
bool InParallelRegion();

class ThreadPool {
 public:
  // num_threads <= 0 resolves DefaultNumThreads().
  explicit ThreadPool(int64_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // The process-wide pool every parallel primitive dispatches through.
  static ThreadPool& Global();

  // MSD_THREADS when set to a positive integer, else hardware concurrency
  // (else 1). Read once per call so tests can vary the environment.
  static int64_t DefaultNumThreads();

  int64_t num_threads() const;

  // Joins the workers and restarts with the new count (<= 0 restores the
  // default). Fatal if called while a RunChunks is in flight.
  void Resize(int64_t num_threads);

  // Executes fn(0) .. fn(chunk_count - 1), each exactly once, on the worker
  // threads plus the calling thread; blocks until every chunk has finished.
  // The first exception thrown by `fn` is rethrown here; once a chunk has
  // thrown, remaining unclaimed chunks are skipped.
  void RunChunks(int64_t chunk_count, const ChunkFn& fn);

 private:
  // One parallel loop in flight. Lives on the submitting thread's stack;
  // `completed` reaching chunk_count is the hand-off that lets the submitter
  // destroy it.
  struct Job {
    const ChunkFn* fn = nullptr;
    int64_t chunk_count = 0;
    std::atomic<int64_t> next{0};     // claim cursor
    std::atomic<bool> failed{false};  // fast-path skip after an exception
    int64_t completed = 0;            // guarded by pool mu_
    std::exception_ptr error;         // guarded by pool mu_
    bool dequeued = false;            // guarded by pool mu_
    // Participants currently holding a pointer to this job (taken under mu_
    // at pick time, released in WorkOn's final section). The submitter may
    // only destroy the job once this drops to zero: a worker that picked the
    // job but lost every chunk to its siblings still touches the claim
    // cursor, and without the ref that touch races the next Job constructed
    // at the same stack address.
    int64_t refs = 0;                 // guarded by pool mu_
  };

  void Start(int64_t num_threads);
  void Stop();
  void WorkerLoop();
  // Claims and runs chunks of `job` until the cursor is exhausted, then folds
  // the completion count into the job under mu_ (signalling done_cv_ when the
  // job finishes) and dequeues it so idle workers stop scanning it.
  void WorkOn(Job& job);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a job arrived or stop_
  std::condition_variable done_cv_;  // submitters: a job completed
  std::deque<Job*> jobs_;
  std::vector<std::thread> workers_;
  int64_t num_threads_ = 1;
  bool stop_ = false;
};

}  // namespace runtime
}  // namespace msd

#endif  // MSDMIXER_RUNTIME_THREAD_POOL_H_
