#include "runtime/thread_pool.h"

#include <cstdlib>

#include "common/check.h"

namespace msd {
namespace runtime {

namespace {

// Set while this thread executes a chunk body; nested parallel loops check it
// through InParallelRegion() and fall back to inline execution.
thread_local bool g_in_parallel_region = false;

}  // namespace

bool InParallelRegion() { return g_in_parallel_region; }

int64_t ThreadPool::DefaultNumThreads() {
  const char* env = std::getenv("MSD_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    MSD_CHECK(end != env && *end == '\0' && v >= 1)
        << "MSD_THREADS must be a positive integer, got \"" << env << "\"";
    return static_cast<int64_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int64_t>(hw);
}

ThreadPool::ThreadPool(int64_t num_threads) {
  Start(num_threads > 0 ? num_threads : DefaultNumThreads());
}

ThreadPool::~ThreadPool() { Stop(); }

// msd-hot-path-safe: once-only lazy init (workers spawn on first use);
// steady state is a pointer read.
ThreadPool& ThreadPool::Global() {
  // Leaked (like obs::Profiler::Global) so worker threads never race static
  // destruction order at process exit.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

int64_t ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_threads_;
}

void ThreadPool::Start(int64_t num_threads) {
  MSD_CHECK_GE(num_threads, 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    num_threads_ = num_threads;
    stop_ = false;
  }
  // The calling thread is participant #0; only the extras are spawned.
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int64_t i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MSD_CHECK(jobs_.empty())
        << "ThreadPool resized or destroyed while a parallel loop is running";
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void ThreadPool::Resize(int64_t num_threads) {
  Stop();
  Start(num_threads > 0 ? num_threads : DefaultNumThreads());
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_) return;
      job = jobs_.front();
      ++job->refs;
    }
    WorkOn(*job);
  }
}

void ThreadPool::WorkOn(Job& job) {
  int64_t executed = 0;
  const bool was_in_parallel = g_in_parallel_region;
  g_in_parallel_region = true;
  while (true) {
    const int64_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.chunk_count) break;
    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        (*job.fn)(i);
      } catch (...) {
        job.failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu_);
        if (!job.error) job.error = std::current_exception();
      }
    }
    ++executed;
  }
  g_in_parallel_region = was_in_parallel;

  std::lock_guard<std::mutex> lock(mu_);
  if (!job.dequeued) {
    // The claim loop only exits once every index is taken, so the job can be
    // retired from the queue even while other participants still execute
    // their final chunks.
    job.dequeued = true;
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (*it == &job) {
        jobs_.erase(it);
        break;
      }
    }
  }
  job.completed += executed;
  --job.refs;
  if (job.completed == job.chunk_count && job.refs == 0) {
    done_cv_.notify_all();
  }
}

void ThreadPool::RunChunks(int64_t chunk_count, const ChunkFn& fn) {
  MSD_CHECK_GT(chunk_count, 0);
  Job job;
  job.fn = &fn;
  job.chunk_count = chunk_count;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(&job);
    ++job.refs;  // the submitting thread's own participation
  }
  work_cv_.notify_all();
  WorkOn(job);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Wait for refs to drain, not just chunk completion: a worker that lost
    // every chunk still holds the job pointer until its WorkOn epilogue runs.
    done_cv_.wait(lock, [&] {
      return job.completed == job.chunk_count && job.refs == 0;
    });
    error = job.error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace runtime
}  // namespace msd
