// Dedicated long-running service threads (docs/SERVING.md).
//
// The chunked ThreadPool (runtime/thread_pool.h) executes *bounded* parallel
// loops and must never be blocked on external events: a worker that sleeps
// on a condition variable inside RunChunks would stall every kernel in the
// process. Service loops — micro-batcher workers draining a request queue,
// closed-loop load-generator clients — therefore run on their own dedicated
// threads, grouped here. A WorkerGroup thread is free to block, and it can
// still dispatch chunked kernels: ParallelFor from a WorkerGroup thread
// submits to the global pool like any other caller (concurrent submitters
// are supported).
//
// src/runtime is the only directory allowed to spawn std::thread (repo lint
// rule no-raw-thread); every serving thread goes through this class.
#ifndef MSDMIXER_RUNTIME_WORKER_H_
#define MSDMIXER_RUNTIME_WORKER_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace msd {
namespace runtime {

class WorkerGroup {
 public:
  // Invoked exactly once per worker with its index in [0, size()).
  // The function is expected to loop until an owner-provided stop signal
  // (e.g. the batcher's stop flag) tells it to return.
  using WorkerFn = std::function<void(int64_t worker_index)>;

  WorkerGroup() = default;
  // Joins any still-running workers; the owner must have signalled its stop
  // condition first or this blocks forever (by design — losing a service
  // thread silently is worse).
  ~WorkerGroup();

  WorkerGroup(const WorkerGroup&) = delete;
  WorkerGroup& operator=(const WorkerGroup&) = delete;

  // Spawns `count` threads running fn(0) .. fn(count-1). Fatal if the group
  // already holds unjoined workers.
  void Start(int64_t count, WorkerFn fn);

  // Blocks until every worker function has returned, then empties the group
  // so Start() may be called again. No-op when nothing is running.
  void Join();

  int64_t size() const { return static_cast<int64_t>(threads_.size()); }

 private:
  std::vector<std::thread> threads_;
};

}  // namespace runtime
}  // namespace msd

#endif  // MSDMIXER_RUNTIME_WORKER_H_
