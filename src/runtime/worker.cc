#include "runtime/worker.h"

#include <utility>

#include "common/check.h"

namespace msd {
namespace runtime {

WorkerGroup::~WorkerGroup() { Join(); }

void WorkerGroup::Start(int64_t count, WorkerFn fn) {
  MSD_CHECK(threads_.empty())
      << "WorkerGroup::Start while workers are still running; Join() first";
  MSD_CHECK_GT(count, 0);
  MSD_CHECK(fn != nullptr);
  threads_.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    threads_.emplace_back([fn, i] { fn(i); });
  }
}

void WorkerGroup::Join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

}  // namespace runtime
}  // namespace msd
