#include "runtime/parallel.h"

#include "common/check.h"
#include "obs/metrics.h"

namespace msd {
namespace runtime {

namespace {

obs::Counter& ParallelCallsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("runtime/parallel_calls");
  return c;
}

obs::Counter& ChunksExecutedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("runtime/chunks_executed");
  return c;
}

obs::Gauge& ThreadsGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("runtime/threads");
  return g;
}

}  // namespace

int64_t NumThreads() { return ThreadPool::Global().num_threads(); }

void SetNumThreads(int64_t n) {
  MSD_CHECK(!InParallelRegion())
      << "SetNumThreads called from inside a parallel region";
  ThreadPool::Global().Resize(n);
  ThreadsGauge().Set(static_cast<double>(ThreadPool::Global().num_threads()));
}

int64_t NumChunks(int64_t n, int64_t grain) {
  MSD_CHECK_GT(n, 0);
  MSD_CHECK_GT(grain, 0);
  const int64_t chunks = (n + grain - 1) / grain;
  return chunks < kMaxChunksPerLoop ? chunks : kMaxChunksPerLoop;
}

std::pair<int64_t, int64_t> ChunkBounds(int64_t begin, int64_t n,
                                        int64_t chunks, int64_t chunk_index) {
  const int64_t base = n / chunks;
  const int64_t rem = n % chunks;
  // Chunks [0, rem) get base + 1 iterations, the rest get base.
  const int64_t extra = chunk_index < rem ? chunk_index : rem;
  const int64_t b = begin + chunk_index * base + extra;
  const int64_t len = base + (chunk_index < rem ? 1 : 0);
  return {b, b + len};
}

// msd-hot-path-safe: the sanctioned parallelism chokepoint — the pool
// handshake (futex wait + one lock per dispatch) is the audited design
// (docs/RUNTIME.md); callers must not re-flag it per call site.
void ParallelChunks(int64_t begin, int64_t end, int64_t grain,
                    const IndexedRangeFn& body) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  const int64_t chunks = NumChunks(n, grain);
  ParallelCallsCounter().Add(1);
  ChunksExecutedCounter().Add(chunks);
  ThreadPool& pool = ThreadPool::Global();
  if (chunks == 1 || InParallelRegion() || pool.num_threads() == 1) {
    // Inline path: same chunk geometry, ascending order. Used for nested
    // loops, single-chunk ranges, and MSD_THREADS=1.
    for (int64_t c = 0; c < chunks; ++c) {
      const auto [b, e] = ChunkBounds(begin, n, chunks, c);
      body(c, b, e);
    }
    return;
  }
  pool.RunChunks(chunks, [&](int64_t c) {
    const auto [b, e] = ChunkBounds(begin, n, chunks, c);
    body(c, b, e);
  });
}

// msd-hot-path-safe: same contract as ParallelChunks.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const RangeFn& body) {
  ParallelChunks(begin, end, grain,
                 [&](int64_t /*chunk*/, int64_t b, int64_t e) { body(b, e); });
}

}  // namespace runtime
}  // namespace msd
