#include "data/window_dataset.h"

#include "tensor/tensor_ops.h"

namespace msd {

SeriesSplits SplitSeries(const Tensor& series, const SplitSpec& spec) {
  MSD_CHECK_EQ(series.rank(), 2) << "SplitSeries expects [C, T]";
  const int64_t total = series.dim(1);
  const int64_t n_train = static_cast<int64_t>(total * spec.train_fraction);
  const int64_t n_val = static_cast<int64_t>(total * spec.val_fraction);
  const int64_t n_test = total - n_train - n_val;
  MSD_CHECK_GT(n_train, 0);
  MSD_CHECK_GT(n_val, 0);
  MSD_CHECK_GT(n_test, 0);
  SeriesSplits splits;
  splits.train = Slice(series, 1, 0, n_train);
  splits.val = Slice(series, 1, n_train, n_val);
  splits.test = Slice(series, 1, n_train + n_val, n_test);
  return splits;
}

ForecastWindowDataset::ForecastWindowDataset(Tensor series, int64_t lookback,
                                             int64_t horizon, int64_t stride)
    : series_(std::move(series)),
      lookback_(lookback),
      horizon_(horizon),
      stride_(stride) {
  MSD_CHECK_EQ(series_.rank(), 2);
  MSD_CHECK_GT(lookback, 0);
  MSD_CHECK_GT(horizon, 0);
  MSD_CHECK_GT(stride, 0);
  const int64_t usable = series_.dim(1) - lookback_ - horizon_;
  MSD_CHECK_GE(usable, 0) << "series too short for lookback+horizon";
  count_ = usable / stride_ + 1;
}

Sample ForecastWindowDataset::Get(int64_t index) const {
  MSD_CHECK_GE(index, 0);
  MSD_CHECK_LT(index, count_);
  const int64_t start = index * stride_;
  return Sample{Slice(series_, 1, start, lookback_),
                Slice(series_, 1, start + lookback_, horizon_)};
}

ImputationWindowDataset::ImputationWindowDataset(Tensor series, int64_t window,
                                                 double missing_ratio,
                                                 uint64_t seed, int64_t stride)
    : series_(std::move(series)),
      window_(window),
      missing_ratio_(missing_ratio),
      seed_(seed),
      stride_(stride) {
  MSD_CHECK_EQ(series_.rank(), 2);
  MSD_CHECK_GT(window, 0);
  MSD_CHECK_GT(stride, 0);
  MSD_CHECK_GE(missing_ratio, 0.0);
  MSD_CHECK_LT(missing_ratio, 1.0);
  const int64_t usable = series_.dim(1) - window_;
  MSD_CHECK_GE(usable, 0) << "series too short for window";
  count_ = usable / stride_ + 1;
}

Tensor ImputationWindowDataset::MaskFor(int64_t index) const {
  MSD_CHECK_GE(index, 0);
  MSD_CHECK_LT(index, count_);
  Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(index + 1)));
  return RandomObservationMask({series_.dim(0), window_}, missing_ratio_, rng);
}

Sample ImputationWindowDataset::Get(int64_t index) const {
  const int64_t start = index * stride_;
  Tensor clean = Slice(series_, 1, start, window_);
  Tensor mask = MaskFor(index);
  return Sample{Mul(clean, mask), clean};
}

ReconstructionWindowDataset::ReconstructionWindowDataset(Tensor series,
                                                         int64_t window,
                                                         int64_t stride)
    : series_(std::move(series)),
      window_(window),
      stride_(stride > 0 ? stride : window) {
  MSD_CHECK_EQ(series_.rank(), 2);
  MSD_CHECK_GT(window, 0);
  MSD_CHECK_GE(series_.dim(1), window) << "series shorter than one window";
  count_ = (series_.dim(1) - window_) / stride_ + 1;
}

Sample ReconstructionWindowDataset::Get(int64_t index) const {
  MSD_CHECK_GE(index, 0);
  MSD_CHECK_LT(index, count_);
  Tensor window = Slice(series_, 1, index * stride_, window_);
  return Sample{window, window};
}

Tensor RandomObservationMask(const Shape& shape, double missing_ratio,
                             Rng& rng) {
  Tensor mask(shape);
  float* m = mask.data();
  for (int64_t i = 0; i < mask.numel(); ++i) {
    m[i] = rng.Bernoulli(missing_ratio) ? 0.0f : 1.0f;
  }
  return mask;
}

}  // namespace msd
