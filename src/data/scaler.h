// Per-channel standardization fit on the training split, following the
// Time-Series-Library protocol the paper builds on: statistics come from the
// training region only and are applied to all splits.
#ifndef MSDMIXER_DATA_SCALER_H_
#define MSDMIXER_DATA_SCALER_H_

#include "tensor/tensor.h"

namespace msd {

class StandardScaler {
 public:
  StandardScaler() = default;

  // Fits per-channel mean/std on `series` [C, T] (typically the train span).
  void Fit(const Tensor& series);

  // (x - mean) / std per channel; accepts [C, T] or [B, C, T].
  Tensor Transform(const Tensor& x) const;

  // x * std + mean per channel; accepts [C, T] or [B, C, T].
  Tensor InverseTransform(const Tensor& x) const;

  bool fitted() const { return mean_.defined(); }
  const Tensor& mean() const { return mean_; }
  const Tensor& std() const { return std_; }

 private:
  Tensor mean_;  // [C, 1]
  Tensor std_;   // [C, 1], floored at a small epsilon
};

}  // namespace msd

#endif  // MSDMIXER_DATA_SCALER_H_
