// Sliding-window datasets over a single long multivariate series, as used by
// the long-term forecasting, imputation, and anomaly-detection protocols.
#ifndef MSDMIXER_DATA_WINDOW_DATASET_H_
#define MSDMIXER_DATA_WINDOW_DATASET_H_

#include "common/rng.h"
#include "data/dataset.h"
#include "tensor/tensor.h"

namespace msd {

// Chronological train/val/test spans of a series of length T.
struct SplitSpec {
  double train_fraction = 0.7;
  double val_fraction = 0.1;
  // test gets the remainder.
};

struct SeriesSplits {
  Tensor train;  // [C, T_train]
  Tensor val;    // [C, T_val]
  Tensor test;   // [C, T_test]
};

// Splits chronologically; fatal if any split would be empty.
SeriesSplits SplitSeries(const Tensor& series, const SplitSpec& spec);

// Forecasting windows: input = lookback [C, L], target = horizon [C, H],
// advanced by `stride` (1 reproduces the paper's dense sliding window).
class ForecastWindowDataset : public Dataset {
 public:
  ForecastWindowDataset(Tensor series, int64_t lookback, int64_t horizon,
                        int64_t stride = 1);

  int64_t Size() const override { return count_; }
  Sample Get(int64_t index) const override;

 private:
  Tensor series_;  // [C, T]
  int64_t lookback_;
  int64_t horizon_;
  int64_t stride_;
  int64_t count_;
};

// Imputation windows: target is the clean window [C, L]; input is the window
// with a per-sample random mask applied (missing points zeroed). The mask is
// regenerated deterministically per index from the dataset seed, matching
// the protocol of masking the *input* and scoring only masked points.
class ImputationWindowDataset : public Dataset {
 public:
  ImputationWindowDataset(Tensor series, int64_t window, double missing_ratio,
                          uint64_t seed, int64_t stride = 1);

  int64_t Size() const override { return count_; }
  // Sample.input = masked window, Sample.target = clean window.
  Sample Get(int64_t index) const override;

  // The 0/1 observation mask used for sample `index` (1 = observed).
  Tensor MaskFor(int64_t index) const;

 private:
  Tensor series_;
  int64_t window_;
  double missing_ratio_;
  uint64_t seed_;
  int64_t stride_;
  int64_t count_;
};

// Reconstruction windows for anomaly detection: input == target == the
// window [C, W]. Scoring uses non-overlapping windows (stride == window, the
// benchmark protocol); training may use a smaller stride for more samples.
class ReconstructionWindowDataset : public Dataset {
 public:
  ReconstructionWindowDataset(Tensor series, int64_t window,
                              int64_t stride = 0 /* 0 = window */);

  int64_t Size() const override { return count_; }
  Sample Get(int64_t index) const override;

 private:
  Tensor series_;
  int64_t window_;
  int64_t stride_;
  int64_t count_;
};

// Generates a 0/1 observation mask (1 = observed) with the given missing
// ratio, i.i.d. per element.
Tensor RandomObservationMask(const Shape& shape, double missing_ratio,
                             Rng& rng);

}  // namespace msd

#endif  // MSDMIXER_DATA_WINDOW_DATASET_H_
