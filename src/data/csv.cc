#include "data/csv.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace msd {

namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) {
    // Trim whitespace and CR.
    size_t begin = cell.find_first_not_of(" \t\r");
    size_t end = cell.find_last_not_of(" \t\r");
    cells.push_back(begin == std::string::npos
                        ? ""
                        : cell.substr(begin, end - begin + 1));
  }
  if (!line.empty() && line.back() == ',') cells.push_back("");
  return cells;
}

bool ParseFloat(const std::string& cell, float* out) {
  if (cell.empty()) {
    *out = std::numeric_limits<float>::quiet_NaN();
    return true;  // empty = missing value
  }
  char* end = nullptr;
  const float v = std::strtof(cell.c_str(), &end);
  if (end == cell.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

StatusOr<CsvSeries> ParseCsvSeries(const std::string& content) {
  std::vector<std::vector<std::string>> rows;
  std::stringstream ss(content);
  std::string line;
  while (std::getline(ss, line)) {
    if (line.empty() || line == "\r") continue;
    rows.push_back(SplitLine(line));
  }
  if (rows.empty()) return Status::InvalidArgument("empty CSV");

  // Header detection: the first row is a header iff any of its cells fails
  // to parse as a number (and is non-empty).
  bool has_header = false;
  for (const std::string& cell : rows[0]) {
    float unused;
    if (!cell.empty() && !ParseFloat(cell, &unused)) {
      has_header = true;
      break;
    }
  }
  const size_t first_data_row = has_header ? 1 : 0;
  if (first_data_row >= rows.size()) {
    return Status::InvalidArgument("CSV has a header but no data rows");
  }

  // Timestamp-column detection on the first data row.
  const auto& probe = rows[first_data_row];
  if (probe.empty()) return Status::InvalidArgument("empty CSV row");
  float unused;
  const size_t first_col = !ParseFloat(probe[0], &unused) ? 1 : 0;
  if (probe.size() <= first_col) {
    return Status::InvalidArgument("CSV has no numeric columns");
  }
  const size_t channels = probe.size() - first_col;
  const size_t steps = rows.size() - first_data_row;

  CsvSeries series;
  if (has_header && rows[0].size() == probe.size()) {
    for (size_t c = first_col; c < rows[0].size(); ++c) {
      series.channel_names.push_back(rows[0][c]);
    }
  }
  series.values = Tensor({static_cast<int64_t>(channels),
                          static_cast<int64_t>(steps)});
  float* data = series.values.data();
  for (size_t r = 0; r < steps; ++r) {
    const auto& row = rows[first_data_row + r];
    if (row.size() != probe.size()) {
      return Status::InvalidArgument(
          "ragged CSV: row " + std::to_string(first_data_row + r + 1) +
          " has " + std::to_string(row.size()) + " cells, expected " +
          std::to_string(probe.size()));
    }
    for (size_t c = 0; c < channels; ++c) {
      float value;
      if (!ParseFloat(row[first_col + c], &value)) {
        return Status::InvalidArgument(
            "non-numeric cell '" + row[first_col + c] + "' at row " +
            std::to_string(first_data_row + r + 1));
      }
      data[c * steps + r] = value;
    }
  }
  return series;
}

StatusOr<CsvSeries> ReadCsvSeries(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) return Status::NotFound("cannot open: " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseCsvSeries(buffer.str());
}

Status WriteCsvSeries(const Tensor& series,
                      const std::vector<std::string>& channel_names,
                      const std::string& path) {
  if (series.rank() != 2) {
    return Status::InvalidArgument("series must be [C, T]");
  }
  const int64_t channels = series.dim(0);
  const int64_t steps = series.dim(1);
  if (!channel_names.empty() &&
      static_cast<int64_t>(channel_names.size()) != channels) {
    return Status::InvalidArgument("channel name count mismatch");
  }
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  if (!channel_names.empty()) {
    for (int64_t c = 0; c < channels; ++c) {
      file << (c > 0 ? "," : "") << channel_names[static_cast<size_t>(c)];
    }
    file << "\n";
  }
  const float* data = series.data();
  for (int64_t t = 0; t < steps; ++t) {
    for (int64_t c = 0; c < channels; ++c) {
      if (c > 0) file << ",";
      const float v = data[c * steps + t];
      if (std::isnan(v)) {
        // Missing values round-trip as empty cells.
      } else {
        file << v;
      }
    }
    file << "\n";
  }
  return file.good() ? Status::OK() : Status::Internal("write failed");
}

}  // namespace msd
