#include "data/dataset.h"

#include <numeric>

#include "runtime/parallel.h"
#include "tensor/tensor_ops.h"

namespace msd {

Sample VectorDataset::Get(int64_t index) const {
  MSD_CHECK_GE(index, 0);
  MSD_CHECK_LT(index, Size());
  return samples_[static_cast<size_t>(index)];
}

DataLoader::DataLoader(const Dataset* dataset, int64_t batch_size,
                       bool shuffle, Rng& rng)
    : dataset_(dataset), batch_size_(batch_size), shuffle_(shuffle), rng_(&rng) {
  MSD_CHECK(dataset != nullptr);
  MSD_CHECK_GT(batch_size, 0);
  order_.resize(static_cast<size_t>(dataset->Size()));
  std::iota(order_.begin(), order_.end(), 0);
  if (shuffle_) rng_->Shuffle(order_);
}

int64_t DataLoader::NumBatches() const {
  return (dataset_->Size() + batch_size_ - 1) / batch_size_;
}

Batch DataLoader::GetBatch(int64_t batch_index) const {
  MSD_CHECK_GE(batch_index, 0);
  MSD_CHECK_LT(batch_index, NumBatches());
  const int64_t begin = batch_index * batch_size_;
  const int64_t end = std::min<int64_t>(begin + batch_size_, dataset_->Size());
  // Parallel batch synthesis: Get() is const and samples land in their own
  // slots, so sample construction (windowing, datagen synthesis) fans out
  // across the pool. Slot order — and therefore the stacked batch — is
  // independent of the thread count.
  std::vector<Tensor> inputs(static_cast<size_t>(end - begin));
  std::vector<Tensor> targets(static_cast<size_t>(end - begin));
  runtime::ParallelFor(begin, end, 1, [&](int64_t cb, int64_t ce) {
    for (int64_t i = cb; i < ce; ++i) {
      Sample s = dataset_->Get(order_[static_cast<size_t>(i)]);
      inputs[static_cast<size_t>(i - begin)] = std::move(s.input);
      targets[static_cast<size_t>(i - begin)] = std::move(s.target);
    }
  });
  return Batch{Stack(inputs), Stack(targets)};
}

void DataLoader::Reshuffle() {
  if (shuffle_) rng_->Shuffle(order_);
}

}  // namespace msd
