// CSV ingestion for real multivariate time-series data.
//
// Expected layout, matching the common benchmark format (ETT, ECL, ...):
// one row per time step, one column per channel, optional header row and
// optional leading timestamp column (auto-detected: a column whose first
// data cell does not parse as a number is skipped). Values parse as floats;
// empty cells become NaN so downstream imputation can handle them.
#ifndef MSDMIXER_DATA_CSV_H_
#define MSDMIXER_DATA_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace msd {

struct CsvSeries {
  Tensor values;  // [C, T]
  std::vector<std::string> channel_names;  // empty if the file had no header
};

// Reads a whole CSV file into a channel-major tensor.
StatusOr<CsvSeries> ReadCsvSeries(const std::string& path);

// Parses CSV content from a string (used by tests and in-memory pipelines).
StatusOr<CsvSeries> ParseCsvSeries(const std::string& content);

// Writes a [C, T] tensor as CSV (header = channel names, rows = steps).
Status WriteCsvSeries(const Tensor& series,
                      const std::vector<std::string>& channel_names,
                      const std::string& path);

}  // namespace msd

#endif  // MSDMIXER_DATA_CSV_H_
