#include "data/scaler.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace msd {

void StandardScaler::Fit(const Tensor& series) {
  MSD_CHECK_EQ(series.rank(), 2) << "Fit expects [C, T]";
  MSD_CHECK_GT(series.dim(1), 1);
  mean_ = Mean(series, {1}, /*keepdim=*/true);
  Tensor centered = Sub(series, mean_);
  Tensor var = Mean(Square(centered), {1}, /*keepdim=*/true);
  std_ = Maximum(Sqrt(var), Tensor::Full({1}, 1e-6f));
}

// msd-hot-path-safe: pool-backed elementwise scaling; the small
// shape/stride vectors inside the zip kernels are audited with it.
Tensor StandardScaler::Transform(const Tensor& x) const {
  MSD_CHECK(fitted());
  MSD_CHECK(x.rank() == 2 || x.rank() == 3);
  MSD_CHECK_EQ(x.dim(-2), mean_.dim(0)) << "channel count mismatch";
  return Div(Sub(x, mean_), std_);
}

// msd-hot-path-safe: same contract as Transform.
Tensor StandardScaler::InverseTransform(const Tensor& x) const {
  MSD_CHECK(fitted());
  MSD_CHECK(x.rank() == 2 || x.rank() == 3);
  MSD_CHECK_EQ(x.dim(-2), mean_.dim(0)) << "channel count mismatch";
  return Add(Mul(x, std_), mean_);
}

}  // namespace msd
