// Dataset and batching abstractions.
//
// A Dataset yields (input, target) sample pairs; the DataLoader stacks them
// into batches with optional shuffling. Tensors are float32 throughout;
// classification labels are stored as float class indices.
#ifndef MSDMIXER_DATA_DATASET_H_
#define MSDMIXER_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace msd {

struct Sample {
  Tensor input;
  Tensor target;
};

class Dataset {
 public:
  virtual ~Dataset() = default;
  virtual int64_t Size() const = 0;
  virtual Sample Get(int64_t index) const = 0;
};

// An in-memory dataset over pre-materialized samples.
class VectorDataset : public Dataset {
 public:
  explicit VectorDataset(std::vector<Sample> samples)
      : samples_(std::move(samples)) {}

  int64_t Size() const override {
    return static_cast<int64_t>(samples_.size());
  }
  Sample Get(int64_t index) const override;

 private:
  std::vector<Sample> samples_;
};

struct Batch {
  Tensor input;   // [B, ...]
  Tensor target;  // [B, ...]
  int64_t size() const { return input.dim(0); }
};

// Batches a dataset. Order is reshuffled by Reshuffle() (typically once per
// epoch); without shuffling, batches follow dataset order. The final batch
// may be smaller than batch_size.
class DataLoader {
 public:
  DataLoader(const Dataset* dataset, int64_t batch_size, bool shuffle,
             Rng& rng);

  int64_t NumBatches() const;
  Batch GetBatch(int64_t batch_index) const;
  void Reshuffle();

 private:
  const Dataset* dataset_;
  int64_t batch_size_;
  bool shuffle_;
  Rng* rng_;
  std::vector<int64_t> order_;
};

}  // namespace msd

#endif  // MSDMIXER_DATA_DATASET_H_
