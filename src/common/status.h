// Lightweight Status/StatusOr for recoverable errors (I/O in examples,
// configuration validation). Modeled after the RocksDB/Abseil convention:
// functions that can fail in ways the caller should handle return Status.
#ifndef MSDMIXER_COMMON_STATUS_H_
#define MSDMIXER_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/check.h"

namespace msd {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kInternal,
  kOutOfRange,
  // Admission control: a bounded resource (request queue, batch slot) is
  // full right now; the caller may retry after backing off.
  kResourceExhausted,
  // The work item's deadline expired before a result was produced.
  kDeadlineExceeded,
  // The owner shut down / abandoned the work before it ran.
  kCancelled,
};

// Value-semantic error carrier. OK status carries no message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string name;
    switch (code_) {
      case StatusCode::kOk:
        name = "OK";
        break;
      case StatusCode::kInvalidArgument:
        name = "InvalidArgument";
        break;
      case StatusCode::kNotFound:
        name = "NotFound";
        break;
      case StatusCode::kInternal:
        name = "Internal";
        break;
      case StatusCode::kOutOfRange:
        name = "OutOfRange";
        break;
      case StatusCode::kResourceExhausted:
        name = "ResourceExhausted";
        break;
      case StatusCode::kDeadlineExceeded:
        name = "DeadlineExceeded";
        break;
      case StatusCode::kCancelled:
        name = "Cancelled";
        break;
    }
    return name + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Minimal StatusOr: either an OK status with a value, or a non-OK status.
template <typename T>
class StatusOr {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors absl::StatusOr.
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {
    MSD_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MSD_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T& value() & {
    MSD_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T&& value() && {
    MSD_CHECK(ok()) << status_.ToString();
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace msd

#endif  // MSDMIXER_COMMON_STATUS_H_
