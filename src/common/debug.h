// Debug invariant layer (see docs/ANALYSIS.md).
//
// Compiled in only when the build sets MSD_DEBUG_CHECKS_ENABLED=1 (CMake
// option MSD_DEBUG_CHECKS). When the option is OFF every macro in this file
// expands to dead code the optimizer removes, so release builds pay nothing
// — the zero-overhead guarantee is validated by tools/check.sh, which diffs
// quickstart training losses between the two configurations.
//
// Three families of checks live behind the flag:
//  * MSD_DCHECK* — debug-only variants of the MSD_CHECK macros, for
//    invariants too hot to validate in release (per-element loops, kernel
//    entry validation).
//  * Data guards — non-finite (NaN/Inf) detection over float spans and
//    alias-overlap detection between kernel input/output buffers. Violations
//    are fatal: silent numerical corruption is the exact failure class this
//    layer exists to catch.
//  * Autograd tape lint — heuristic diagnostics (double backward on a
//    consumed tape, requires-grad leaves dropped from the graph, Backward()
//    under a leaked NoGradGuard). These are *recorded*, not fatal, because
//    they can false-positive in legitimate multi-graph workflows; tests and
//    tools read them via TakeTapeDiagnostics().
#ifndef MSDMIXER_COMMON_DEBUG_H_
#define MSDMIXER_COMMON_DEBUG_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

// The build system defines this globally (add_compile_definitions) so every
// translation unit in a build tree agrees on the struct layouts and inline
// function bodies below. Default to OFF for embedders that bypass CMake.
#ifndef MSD_DEBUG_CHECKS_ENABLED
#define MSD_DEBUG_CHECKS_ENABLED 0
#endif

namespace msd {
namespace debug {

inline constexpr bool kDebugChecksEnabled = MSD_DEBUG_CHECKS_ENABLED != 0;

// ---- Data guards ----------------------------------------------------------

// Index of the first non-finite element in [p, p + n), or -1 if all finite.
inline int64_t FirstNonFinite(const float* p, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) return i;
  }
  return -1;
}

// True when the half-open byte ranges [a, a + a_bytes) and [b, b + b_bytes)
// overlap. Empty ranges never overlap.
inline bool RangesOverlap(const void* a, int64_t a_bytes, const void* b,
                          int64_t b_bytes) {
  if (a_bytes <= 0 || b_bytes <= 0) return false;
  const auto* pa = static_cast<const char*>(a);
  const auto* pb = static_cast<const char*>(b);
  return pa < pb + b_bytes && pb < pa + a_bytes;
}

// ---- Autograd tape lint diagnostic sink -----------------------------------
//
// Thread-local so concurrent training loops cannot interleave diagnostics.
// The sink is unbounded in principle but every producer caps what it emits
// per Backward() sweep.

namespace internal {
inline thread_local std::vector<std::string> tape_diagnostics;
}  // namespace internal

// Records a tape-lint diagnostic and mirrors it to stderr.
inline void EmitTapeDiagnostic(std::string message) {
  std::fprintf(stderr, "[msd-tape-lint] %s\n", message.c_str());
  internal::tape_diagnostics.push_back(std::move(message));
}

// Returns and clears the diagnostics recorded by this thread.
inline std::vector<std::string> TakeTapeDiagnostics() {
  std::vector<std::string> out;
  out.swap(internal::tape_diagnostics);
  return out;
}

inline int64_t TapeDiagnosticCount() {
  return static_cast<int64_t>(internal::tape_diagnostics.size());
}

}  // namespace debug
}  // namespace msd

// ---- Debug-only check macros ----------------------------------------------
//
// When MSD_DEBUG_CHECKS is OFF these expand to `while (false) MSD_CHECK(...)`:
// the condition and streamed operands still type-check (so debug-only code
// cannot rot) but are never evaluated and the optimizer deletes the branch.
#if MSD_DEBUG_CHECKS_ENABLED

#define MSD_DCHECK(condition) MSD_CHECK(condition)
#define MSD_DCHECK_EQ(a, b) MSD_CHECK_EQ(a, b)
#define MSD_DCHECK_NE(a, b) MSD_CHECK_NE(a, b)
#define MSD_DCHECK_LT(a, b) MSD_CHECK_LT(a, b)
#define MSD_DCHECK_LE(a, b) MSD_CHECK_LE(a, b)
#define MSD_DCHECK_GT(a, b) MSD_CHECK_GT(a, b)
#define MSD_DCHECK_GE(a, b) MSD_CHECK_GE(a, b)

// Runs the statement only in debug-checks builds (for multi-line validation).
// Variadic so unparenthesized commas in the statement are preserved.
#define MSD_DEBUG_ONLY(...) __VA_ARGS__

#else  // !MSD_DEBUG_CHECKS_ENABLED

#define MSD_DCHECK(condition) \
  while (false) MSD_CHECK(condition)
#define MSD_DCHECK_EQ(a, b) \
  while (false) MSD_CHECK_EQ(a, b)
#define MSD_DCHECK_NE(a, b) \
  while (false) MSD_CHECK_NE(a, b)
#define MSD_DCHECK_LT(a, b) \
  while (false) MSD_CHECK_LT(a, b)
#define MSD_DCHECK_LE(a, b) \
  while (false) MSD_CHECK_LE(a, b)
#define MSD_DCHECK_GT(a, b) \
  while (false) MSD_CHECK_GT(a, b)
#define MSD_DCHECK_GE(a, b) \
  while (false) MSD_CHECK_GE(a, b)

#define MSD_DEBUG_ONLY(...) \
  do {                      \
  } while (false)

#endif  // MSD_DEBUG_CHECKS_ENABLED

#endif  // MSDMIXER_COMMON_DEBUG_H_
