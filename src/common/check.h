// Fatal assertion macros for programming errors (shape mismatches, API
// misuse). The library does not use exceptions; unrecoverable contract
// violations terminate the process with a diagnostic, matching the style of
// mainstream C++ database/tensor codebases.
#ifndef MSDMIXER_COMMON_CHECK_H_
#define MSDMIXER_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace msd {
namespace internal_check {

// Accumulates a failure message and aborts on destruction. Usage is via the
// MSD_CHECK* macros only.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "MSD_CHECK failed at " << file << ":" << line << ": "
            << condition << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Converts the streamed FatalMessage chain to void so it can sit on the
// false branch of the ternary in MSD_CHECK. operator& binds looser than <<.
struct Voidify {
  void operator&(FatalMessage&) {}
  void operator&(FatalMessage&&) {}
};

}  // namespace internal_check
}  // namespace msd

#define MSD_CHECK(condition)                               \
  (condition) ? (void)0                                    \
              : ::msd::internal_check::Voidify() &         \
                    ::msd::internal_check::FatalMessage(   \
                        __FILE__, __LINE__, #condition)

#define MSD_CHECK_OP(a, b, op)                                             \
  ((a)op(b)) ? (void)0                                                     \
             : ::msd::internal_check::Voidify() &                          \
                   (::msd::internal_check::FatalMessage(                   \
                        __FILE__, __LINE__, #a " " #op " " #b)             \
                    << "(" << (a) << " vs " << (b) << ") ")

#define MSD_CHECK_EQ(a, b) MSD_CHECK_OP(a, b, ==)
#define MSD_CHECK_NE(a, b) MSD_CHECK_OP(a, b, !=)
#define MSD_CHECK_LT(a, b) MSD_CHECK_OP(a, b, <)
#define MSD_CHECK_LE(a, b) MSD_CHECK_OP(a, b, <=)
#define MSD_CHECK_GT(a, b) MSD_CHECK_OP(a, b, >)
#define MSD_CHECK_GE(a, b) MSD_CHECK_OP(a, b, >=)

#define MSD_FATAL(msg)                                      \
  ::msd::internal_check::Voidify() &                        \
      (::msd::internal_check::FatalMessage(__FILE__, __LINE__, "FATAL") << msg)

#endif  // MSDMIXER_COMMON_CHECK_H_
