// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the library (weight init, dropout masks, data
// generation, shuffling) flows through Rng so that any experiment is
// reproducible bit-for-bit from its seed. The generator is xoshiro256**
// seeded via SplitMix64, a well-studied non-cryptographic combination with
// 256 bits of state and excellent statistical quality.
#ifndef MSDMIXER_COMMON_RNG_H_
#define MSDMIXER_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace msd {

// SplitMix64 step; used for seeding and as a cheap stateless hash.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
    cached_gaussian_valid_ = false;
  }

  // Uniform in [0, 2^64).
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Uniform float in [lo, hi).
  float Uniform(float lo, float hi) {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

  // Uniform integer in [0, n). n must be positive.
  int64_t UniformInt(int64_t n) {
    MSD_CHECK_GT(n, 0);
    // Rejection-free for our purposes; modulo bias is negligible for n << 2^64.
    return static_cast<int64_t>(NextUint64() % static_cast<uint64_t>(n));
  }

  // Standard normal via Box-Muller with caching of the second deviate.
  float Gaussian() {
    if (cached_gaussian_valid_) {
      cached_gaussian_valid_ = false;
      return cached_gaussian_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = NextDouble();
    const double u2 = NextDouble();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = static_cast<float>(radius * std::sin(theta));
    cached_gaussian_valid_ = true;
    return static_cast<float>(radius * std::cos(theta));
  }

  float Gaussian(float mean, float stddev) {
    return mean + stddev * Gaussian();
  }

  // Bernoulli with probability p of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (int64_t i = static_cast<int64_t>(values.size()) - 1; i > 0; --i) {
      const int64_t j = UniformInt(i + 1);
      std::swap(values[i], values[j]);
    }
  }

  // Derives an independent child generator; useful for giving each dataset
  // or worker its own stream without correlation.
  Rng Fork() { return Rng(NextUint64() ^ 0xa02bdbf7bb3c0a7ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
  float cached_gaussian_ = 0.0f;
  bool cached_gaussian_valid_ = false;
};

}  // namespace msd

#endif  // MSDMIXER_COMMON_RNG_H_
