#include "core/msd_mixer.h"

#include "nn/revin.h"

#include <cmath>
#include <memory>
#include <string>

namespace msd {

std::vector<int64_t> MsdMixerConfig::UniformPatchSizes(int64_t input_length,
                                                       int64_t num_layers) {
  MSD_CHECK_GT(num_layers, 0);
  const int64_t p = std::max<int64_t>(
      1, static_cast<int64_t>(std::round(
             std::sqrt(static_cast<double>(input_length)))));
  return std::vector<int64_t>(static_cast<size_t>(num_layers), p);
}

MsdMixerLayer::MsdMixerLayer(const MsdMixerConfig& config, int64_t patch_size,
                             Rng& rng)
    : input_length_(config.input_length),
      patch_size_(patch_size),
      num_patches_(NumPatches(config.input_length, patch_size)),
      mode_(config.patching_mode) {
  MSD_CHECK_GT(patch_size, 0);
  MSD_CHECK_LE(patch_size, config.input_length);
  PatchCoderDims dims;
  dims.channels = config.channels;
  dims.num_patches = num_patches_;
  // In pooling mode each "patch" collapses to one pooled value.
  dims.patch_size = mode_ == PatchingMode::kPatching ? patch_size_ : 1;
  dims.model_dim = config.model_dim;
  dims.hidden_dim = config.hidden_dim;
  dims.drop_path = config.drop_path;
  encoder_ = RegisterModule("encoder", std::make_unique<PatchEncoder>(dims, rng));
  decoder_ = RegisterModule("decoder", std::make_unique<PatchDecoder>(dims, rng));
}

MsdMixerLayer::Result MsdMixerLayer::Decompose(const Variable& z) {
  MSD_CHECK_EQ(z.rank(), 3);
  MSD_CHECK_EQ(z.dim(2), input_length_);
  if (mode_ == PatchingMode::kPatching) {
    Variable patched = Patch(z, patch_size_);
    Variable embedding = encoder_->Forward(patched);
    Variable decoded = decoder_->Forward(embedding);
    return {embedding, Unpatch(decoded, input_length_)};
  }
  // -N ablation: average-pool each span to one value, encode as patch size 1,
  // and upsample the decoded series by nearest-neighbor repetition.
  Variable patched = Patch(z, patch_size_);                    // [B,C,L',p]
  Variable pooled = Mean(patched, {3}, /*keepdim=*/true);      // [B,C,L',1]
  Variable embedding = encoder_->Forward(pooled);              // [B,C,L',d]
  Variable decoded = decoder_->Forward(embedding);             // [B,C,L',1]
  Variable upsampled =
      Mul(decoded, Variable(Tensor::Ones({patch_size_})));     // broadcast
  return {embedding, Unpatch(upsampled, input_length_)};
}

MsdMixer::MsdMixer(const MsdMixerConfig& config, Rng& rng) : config_(config) {
  MSD_CHECK(!config.patch_sizes.empty()) << "need at least one layer";
  for (size_t i = 0; i < config.patch_sizes.size(); ++i) {
    layers_.push_back(RegisterModule(
        "layer" + std::to_string(i),
        std::make_unique<MsdMixerLayer>(config, config.patch_sizes[i], rng)));
  }
  if (config.task == TaskType::kReconstruction) return;
  if (config.head_dropout > 0.0f) {
    head_dropout_ = RegisterModule(
        "head_dropout", std::make_unique<Dropout>(config.head_dropout, rng));
  }
  for (size_t i = 0; i < layers_.size(); ++i) {
    const int64_t patches_term = config.pool_classification_head &&
                                         config.task == TaskType::kClassification
                                     ? 1
                                     : layers_[i]->num_patches();
    const int64_t flat = patches_term * config.model_dim;
    const int64_t in_features =
        config.task == TaskType::kForecast ? flat : flat * config.channels;
    const int64_t out_features = config.task == TaskType::kForecast
                                     ? config.horizon
                                     : config.num_classes;
    heads_.push_back(RegisterModule(
        "head" + std::to_string(i),
        std::make_unique<Linear>(in_features, out_features, rng)));
  }
}

Variable MsdMixer::HeadOutput(int64_t layer_index, const Variable& embedding) {
  const int64_t batch = embedding.dim(0);
  Linear* head = heads_[static_cast<size_t>(layer_index)];
  if (config_.task == TaskType::kForecast) {
    // Channel-shared head: [B, C, L'*d] -> [B, C, H].
    Variable flat = Reshape(embedding, {batch, config_.channels, -1});
    if (head_dropout_ != nullptr) flat = head_dropout_->Forward(flat);
    return head->Forward(flat);
  }
  // Classification: [B, C*L'*d] -> [B, M] (or [B, C*d] with pooling).
  Variable features = embedding;
  if (config_.pool_classification_head) {
    features = Mean(features, {2}, /*keepdim=*/false);  // [B, C, d]
  }
  Variable flat = Reshape(features, {batch, -1});
  if (head_dropout_ != nullptr) flat = head_dropout_->Forward(flat);
  return head->Forward(flat);
}

// msd-hot-path-safe: the frozen forward pass — tensor buffers come from the
// size-class pool and serving sessions prime every class during warmup
// (docs/SERVING.md), so its interior is audited as a unit, not per call site.
MsdMixerOutput MsdMixer::Run(const Variable& x, bool collect_components) {
  MSD_CHECK_EQ(x.rank(), 3) << "MsdMixer expects [B, C, L]";
  MSD_CHECK_EQ(x.dim(1), config_.channels);
  MSD_CHECK_EQ(x.dim(2), config_.input_length);

  const bool instance_norm =
      config_.use_instance_norm && config_.task == TaskType::kForecast;
  RevInStats stats;
  Variable normalized = x;
  if (instance_norm) {
    stats = ComputeRevInStats(x);
    normalized = RevInNormalize(x, stats);
  }

  MsdMixerOutput out;
  Variable z = normalized;
  Variable head_sum;
  for (size_t i = 0; i < layers_.size(); ++i) {
    MsdMixerLayer::Result result = layers_[i]->Decompose(z);
    z = Sub(z, result.component);
    if (collect_components) out.components.push_back(result.component);
    if (!heads_.empty()) {
      Variable y = HeadOutput(static_cast<int64_t>(i), result.embedding);
      head_sum = head_sum.defined() ? Add(head_sum, y) : y;
    }
  }
  out.residual = z;
  if (config_.task == TaskType::kReconstruction) {
    out.prediction = Sub(x, z);
  } else {
    out.prediction =
        instance_norm ? RevInDenormalize(head_sum, stats) : head_sum;
  }
  return out;
}

}  // namespace msd
