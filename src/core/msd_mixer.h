// MSD-Mixer: Multi-Scale Decomposition MLP-Mixer (paper §III, Fig. 1,
// Algorithm 1).
//
// The model is a stack of k layers. Layer i receives the running residual
// Z_{i-1} (Z_0 = X), patches it at its own scale p_i, encodes the patched
// tensor into the component representation E_i, decodes E_i back into the
// component S_i, and passes Z_i = Z_{i-1} - S_i on. Task output is the sum
// of per-layer linear heads on the E_i (Eq. 2); reconstruction-style tasks
// use X - Z_k = sum_i S_i directly. Z_k is returned for the Residual Loss.
//
// Ablation variants of §IV-G are configuration, not separate code paths:
//   -I : pass ascending patch_sizes;
//   -U : pass uniform patch_sizes (sqrt(L) each);
//   -N : set patching_mode = kPoolingInterpolation;
//   -L : train with residual-loss weight lambda = 0 (a trainer setting).
#ifndef MSDMIXER_CORE_MSD_MIXER_H_
#define MSDMIXER_CORE_MSD_MIXER_H_

#include <vector>

#include "core/patch_coder.h"
#include "core/patching.h"

namespace msd {

enum class TaskType { kForecast, kClassification, kReconstruction };

enum class PatchingMode {
  // Multi-scale temporal patching (the paper's contribution).
  kPatching,
  // MSD-Mixer-N ablation: average-pool downsampling with nearest-neighbor
  // upsampling in place of patching/unpatching (after N-HiTS).
  kPoolingInterpolation,
};

struct MsdMixerConfig {
  int64_t input_length = 96;   // L
  int64_t channels = 7;        // C
  // One entry per layer; the paper arranges these in descending order and
  // derives them from the sampling interval (e.g., {24, 12, 6, 2, 1}).
  std::vector<int64_t> patch_sizes = {24, 12, 6, 2, 1};
  int64_t model_dim = 32;   // d, the component-representation width
  int64_t hidden_dim = 64;  // MLP expansion width
  float drop_path = 0.1f;

  TaskType task = TaskType::kForecast;
  int64_t horizon = 96;      // forecast head output length H
  int64_t num_classes = 2;   // classification head width M
  // Dropout applied to the flattened representation before each task head
  // (used by the classification configuration to curb head overfitting).
  float head_dropout = 0.0f;
  // Classification-head input: false = flatten C x L' x d (the paper's
  // layout); true = mean-pool over the patch axis first (C x d input),
  // which is far smaller and shift-robust — the better choice in the
  // low-data regime of the scaled benchmarks (see DESIGN.md).
  bool pool_classification_head = false;

  PatchingMode patching_mode = PatchingMode::kPatching;

  // Reversible per-window instance normalization for the forecast task
  // (normalize the input window per (sample, channel), denormalize the
  // forecast) — standard practice in this model family for distribution
  // shift between windows.
  bool use_instance_norm = false;

  // Uniform patch sizes sqrt(L) for the -U ablation.
  static std::vector<int64_t> UniformPatchSizes(int64_t input_length,
                                                int64_t num_layers);
};

struct MsdMixerOutput {
  // [B, C, H] (forecast), [B, M] (classification), or [B, C, L]
  // (reconstruction = X - Z_k).
  Variable prediction;
  // Z_k, the decomposition residual, [B, C, L].
  Variable residual;
  // Per-layer components S_i, each [B, C, L] (populated when
  // collect_components is set on Run).
  std::vector<Variable> components;
};

// One decomposition layer: patch -> encode -> (head input E_i) -> decode ->
// unpatch.
class MsdMixerLayer : public Module {
 public:
  MsdMixerLayer(const MsdMixerConfig& config, int64_t patch_size, Rng& rng);

  struct Result {
    Variable embedding;  // E_i, [B, C, L', d]
    Variable component;  // S_i, [B, C, L]
  };
  Result Decompose(const Variable& z);

  int64_t patch_size() const { return patch_size_; }
  int64_t num_patches() const { return num_patches_; }

 private:
  int64_t input_length_;
  int64_t patch_size_;
  int64_t num_patches_;
  PatchingMode mode_;
  PatchEncoder* encoder_;
  PatchDecoder* decoder_;
};

class MsdMixer : public Module {
 public:
  MsdMixer(const MsdMixerConfig& config, Rng& rng);

  // Full forward pass. `x` is [B, C, L].
  MsdMixerOutput Run(const Variable& x, bool collect_components = false);

  const MsdMixerConfig& config() const { return config_; }

 private:
  Variable HeadOutput(int64_t layer_index, const Variable& embedding);

  MsdMixerConfig config_;
  std::vector<MsdMixerLayer*> layers_;
  std::vector<Linear*> heads_;   // empty for reconstruction tasks
  Dropout* head_dropout_ = nullptr;  // null when head_dropout == 0
};

}  // namespace msd

#endif  // MSDMIXER_CORE_MSD_MIXER_H_
