#include "core/residual_loss.h"

#include <cmath>

namespace msd {

Variable ResidualLoss(const Variable& residual,
                      const ResidualLossOptions& options) {
  MSD_CHECK_EQ(residual.rank(), 3) << "ResidualLoss expects [B, C, L]";
  const int64_t length = residual.dim(2);
  MSD_CHECK_GT(length, 1);

  // Magnitude term: mean of z^2 over everything (second term of Eq. 6).
  Variable magnitude = MeanAll(Square(residual));
  if (!options.include_autocorrelation) return magnitude;

  // Autocorrelation term (Eq. 5). Center per (sample, channel) series.
  Variable mean = Mean(residual, {2}, /*keepdim=*/true);
  Variable centered = Sub(residual, mean);                     // [B, C, L]
  Variable denom =
      AddScalar(Sum(Square(centered), {2}, /*keepdim=*/true), 1e-8f);

  const float band =
      options.alpha / std::sqrt(static_cast<float>(length));
  int64_t max_lag = length - 1;
  if (options.max_lag > 0 && options.max_lag < max_lag) {
    max_lag = options.max_lag;
  }

  // Accumulate sum over lags of ReLU(|a_j| - band)^2, shape [B, C, 1].
  Variable acc;
  for (int64_t lag = 1; lag <= max_lag; ++lag) {
    Variable head = Slice(centered, 2, lag, length - lag);
    Variable tail = Slice(centered, 2, 0, length - lag);
    Variable numer = Sum(Mul(head, tail), {2}, /*keepdim=*/true);
    Variable coeff = Div(numer, denom);  // a_{c, lag} in [-1, 1]
    Variable excess = Relu(AddScalar(Abs(coeff), -band));
    Variable sq = Square(excess);
    acc = acc.defined() ? Add(acc, sq) : sq;
  }
  // Eq. 6 first term: MeanAll over [B, C, 1] divides by B*C; dividing by the
  // lag count completes the C * (L-1) normalization (averaged over batch).
  Variable acf_term = MulScalar(MeanAll(acc), 1.0f / static_cast<float>(max_lag));
  return Add(acf_term, magnitude);
}

}  // namespace msd
