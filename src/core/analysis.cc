#include "core/analysis.h"

#include <cstdio>
#include <sstream>

#include "metrics/metrics.h"
#include "tensor/tensor_ops.h"

namespace msd {

DecompositionReport AnalyzeDecomposition(MsdMixer& mixer, const Tensor& window,
                                         int64_t acf_lags) {
  MSD_CHECK_EQ(window.rank(), 2) << "expects one [C, L] window";
  const int64_t channels = window.dim(0);
  const int64_t length = window.dim(1);
  MSD_CHECK_EQ(channels, mixer.config().channels);
  MSD_CHECK_EQ(length, mixer.config().input_length);

  NoGradGuard guard;
  const bool was_training = mixer.training();
  mixer.SetTraining(false);
  MsdMixerOutput out = mixer.Run(
      Variable(window.Reshape({1, channels, length})),
      /*collect_components=*/true);
  mixer.SetTraining(was_training);

  DecompositionReport report;
  report.input_power = MeanAll(Square(window)).item();
  for (size_t i = 0; i < out.components.size(); ++i) {
    Tensor component = out.components[i].value().Reshape({channels, length});
    ComponentSummary summary;
    summary.layer = static_cast<int64_t>(i) + 1;
    summary.patch_size = mixer.config().patch_sizes[i];
    summary.power = MeanAll(Square(component)).item();
    summary.dominant_period = DominantPeriod(component, 0);
    report.components.push_back(summary);
  }

  Tensor residual = out.residual.value().Reshape({channels, length});
  report.residual_power = MeanAll(Square(residual)).item();
  Tensor acf = AutocorrelationMatrix(residual);
  report.residual_acf_band_fraction = WhiteNoiseBandFraction(acf, length);
  const int64_t lags = std::min<int64_t>(acf_lags, length - 1);
  double q_sum = 0.0;
  bool all_white = true;
  for (int64_t c = 0; c < channels; ++c) {
    q_sum += LjungBoxStatistic(residual, c, lags);
    all_white = all_white && PassesLjungBoxWhitenessTest(residual, c, lags);
  }
  report.residual_ljung_box_q = q_sum / static_cast<double>(channels);
  report.residual_is_white = all_white;
  return report;
}

std::string FormatDecompositionReport(const DecompositionReport& report) {
  std::ostringstream out;
  char line[160];
  std::snprintf(line, sizeof(line), "input power %.4f\n", report.input_power);
  out << line;
  for (const ComponentSummary& c : report.components) {
    std::snprintf(line, sizeof(line),
                  "  layer %lld (patch %3lld): power %.4f, dominant period "
                  "%lld\n",
                  static_cast<long long>(c.layer),
                  static_cast<long long>(c.patch_size), c.power,
                  static_cast<long long>(c.dominant_period));
    out << line;
  }
  std::snprintf(line, sizeof(line),
                "residual: power %.4f (%.1f%% of input explained), ACF "
                "in-band %.0f%%, Ljung-Box Q %.1f (%s)\n",
                report.residual_power,
                100.0 * report.explained_power_ratio(),
                100.0 * report.residual_acf_band_fraction,
                report.residual_ljung_box_q,
                report.residual_is_white ? "white" : "not white");
  out << line;
  return out.str();
}

}  // namespace msd
