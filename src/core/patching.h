// Multi-scale temporal patching (paper §III-C, Fig. 2).
//
// A [B, C, L] batch is zero-padded *at the front* so the length divides the
// patch size p, then segmented into non-overlapping patches, giving
// [B, C, L', p] with L' = ceil(L / p). Unpatching inverts the transform.
// Both directions are differentiable compositions of Pad/Reshape/Slice.
#ifndef MSDMIXER_CORE_PATCHING_H_
#define MSDMIXER_CORE_PATCHING_H_

#include "autograd/ops.h"
#include "autograd/variable.h"

namespace msd {

// Number of patches a length-L series yields at patch size p.
int64_t NumPatches(int64_t length, int64_t patch_size);

// [B, C, L] -> [B, C, L', p].
Variable Patch(const Variable& x, int64_t patch_size);

// [B, C, L', p] -> [B, C, length]; `length` is the original (pre-pad) L.
Variable Unpatch(const Variable& x, int64_t length);

}  // namespace msd

#endif  // MSDMIXER_CORE_PATCHING_H_
