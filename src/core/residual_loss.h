// Residual Loss (paper §III-E, Eq. 5-6): constrains the decomposition
// residual Z_k to look like white noise by penalizing (a) autocorrelation
// coefficients beyond the +-alpha/sqrt(L) band and (b) the residual's mean
// square magnitude.
#ifndef MSDMIXER_CORE_RESIDUAL_LOSS_H_
#define MSDMIXER_CORE_RESIDUAL_LOSS_H_

#include "autograd/ops.h"
#include "autograd/variable.h"

namespace msd {

struct ResidualLossOptions {
  // Band tolerance alpha in Eq. 6.
  float alpha = 2.0f;
  // Include the autocorrelation term. The imputation task disables it
  // (paper §IV-D: with masked inputs the residual ACF is not meaningful)
  // leaving only the magnitude term.
  bool include_autocorrelation = true;
  // Cap on the number of lags evaluated (0 = all L-1 lags as in Eq. 5).
  // Long-lag coefficients are estimated from very few terms; capping also
  // bounds graph size for long inputs.
  int64_t max_lag = 0;
};

// residual: [B, C, L]. Returns a scalar Variable (differentiable).
Variable ResidualLoss(const Variable& residual,
                      const ResidualLossOptions& options = {});

}  // namespace msd

#endif  // MSDMIXER_CORE_RESIDUAL_LOSS_H_
