// The MSD-Mixer MLP block (paper Fig. 3a): two fully-connected layers with a
// GELU nonlinearity and DropPath, wrapped in a residual connection. The block
// mixes along the *last* axis of its input; AxisMlpBlock transposes an
// arbitrary axis into last position so one primitive serves the channel-wise,
// inter-patch, and intra-patch roles of §III-D.
#ifndef MSDMIXER_CORE_MLP_BLOCK_H_
#define MSDMIXER_CORE_MLP_BLOCK_H_

#include "nn/layers.h"

namespace msd {

class MlpBlock : public Module {
 public:
  // features: size of the mixed (last) axis; hidden: expansion width.
  MlpBlock(int64_t features, int64_t hidden, float drop_path, Rng& rng);

  Variable DoForward(const Variable& input) override;

 private:
  Linear* fc1_;
  Linear* fc2_;
  DropPath* drop_path_;
};

// Applies an MlpBlock along axis `axis` of a rank-4 [B, C, L', p] tensor
// (or any rank, axis != 0) by transposing it into last position.
class AxisMlpBlock : public Module {
 public:
  AxisMlpBlock(int64_t axis, int64_t features, int64_t hidden, float drop_path,
               Rng& rng);

  Variable DoForward(const Variable& input) override;

  int64_t axis() const { return axis_; }

 private:
  int64_t axis_;
  MlpBlock* block_;
};

}  // namespace msd

#endif  // MSDMIXER_CORE_MLP_BLOCK_H_
