// Patch Encoder and Patch Decoder (paper §III-D, Fig. 3b/3c).
//
// Encoder: channel-wise MLP -> inter-patch MLP -> intra-patch MLP -> linear
// (p -> d), mapping patched input [B, C, L', p] to the component
// representation E_i in [B, C, L', d].
// Decoder: the same block types in reverse order with a linear d -> p,
// reconstructing the patched component S_i from E_i.
#ifndef MSDMIXER_CORE_PATCH_CODER_H_
#define MSDMIXER_CORE_PATCH_CODER_H_

#include "core/mlp_block.h"

namespace msd {

struct PatchCoderDims {
  int64_t channels;     // C
  int64_t num_patches;  // L'
  int64_t patch_size;   // p
  int64_t model_dim;    // d
  int64_t hidden_dim;   // MLP expansion width
  float drop_path = 0.0f;
};

class PatchEncoder : public Module {
 public:
  PatchEncoder(const PatchCoderDims& dims, Rng& rng);

  // [B, C, L', p] -> [B, C, L', d].
  Variable DoForward(const Variable& patched) override;

 private:
  AxisMlpBlock* channel_mlp_;
  AxisMlpBlock* inter_patch_mlp_;
  AxisMlpBlock* intra_patch_mlp_;
  Linear* to_embedding_;
};

class PatchDecoder : public Module {
 public:
  PatchDecoder(const PatchCoderDims& dims, Rng& rng);

  // [B, C, L', d] -> [B, C, L', p].
  Variable DoForward(const Variable& embedding) override;

 private:
  Linear* from_embedding_;
  AxisMlpBlock* intra_patch_mlp_;
  AxisMlpBlock* inter_patch_mlp_;
  AxisMlpBlock* channel_mlp_;
};

}  // namespace msd

#endif  // MSDMIXER_CORE_PATCH_CODER_H_
