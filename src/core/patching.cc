#include "core/patching.h"

namespace msd {

int64_t NumPatches(int64_t length, int64_t patch_size) {
  MSD_CHECK_GT(length, 0);
  MSD_CHECK_GT(patch_size, 0);
  return (length + patch_size - 1) / patch_size;
}

Variable Patch(const Variable& x, int64_t patch_size) {
  MSD_CHECK_EQ(x.rank(), 3) << "Patch expects [B, C, L]";
  const int64_t batch = x.dim(0);
  const int64_t channels = x.dim(1);
  const int64_t length = x.dim(2);
  const int64_t num_patches = NumPatches(length, patch_size);
  const int64_t padded = num_patches * patch_size;
  Variable padded_x = x;
  if (padded != length) {
    padded_x = Pad(x, /*dim=*/2, /*before=*/padded - length, /*after=*/0,
                   /*value=*/0.0f);
  }
  return Reshape(padded_x, {batch, channels, num_patches, patch_size});
}

Variable Unpatch(const Variable& x, int64_t length) {
  MSD_CHECK_EQ(x.rank(), 4) << "Unpatch expects [B, C, L', p]";
  const int64_t batch = x.dim(0);
  const int64_t channels = x.dim(1);
  const int64_t padded = x.dim(2) * x.dim(3);
  MSD_CHECK_GE(padded, length);
  Variable flat = Reshape(x, {batch, channels, padded});
  if (padded == length) return flat;
  return Slice(flat, /*dim=*/2, /*start=*/padded - length, /*length=*/length);
}

}  // namespace msd
