// Decomposition interpretability utilities (the paper's Fig. 4 case study
// as a reusable API): given a trained MSD-Mixer and an input window, report
// per-component scale and dominant period plus residual whiteness
// statistics (ACF band fraction and the Ljung-Box test).
#ifndef MSDMIXER_CORE_ANALYSIS_H_
#define MSDMIXER_CORE_ANALYSIS_H_

#include <string>
#include <vector>

#include "core/msd_mixer.h"

namespace msd {

struct ComponentSummary {
  int64_t layer = 0;
  int64_t patch_size = 0;
  // Mean square of the component over the window (all channels).
  double power = 0.0;
  // Dominant periodogram period of channel 0, in steps.
  int64_t dominant_period = 0;
};

struct DecompositionReport {
  std::vector<ComponentSummary> components;
  double input_power = 0.0;
  double residual_power = 0.0;
  // Fraction of residual ACF coefficients inside the +-2/sqrt(L) band.
  double residual_acf_band_fraction = 0.0;
  // Mean Ljung-Box Q over channels, and whether every channel passes the
  // whiteness test at 5%.
  double residual_ljung_box_q = 0.0;
  bool residual_is_white = false;
  // Share of the input's power captured by the components (1 - res/input).
  double explained_power_ratio() const {
    return input_power > 0.0 ? 1.0 - residual_power / input_power : 0.0;
  }
};

// Runs the mixer on a single [C, L] window (eval mode, no gradients) and
// summarizes the decomposition. `acf_lags` bounds the Ljung-Box lag count.
DecompositionReport AnalyzeDecomposition(MsdMixer& mixer, const Tensor& window,
                                         int64_t acf_lags = 20);

// Multi-line human-readable rendering of a report.
std::string FormatDecompositionReport(const DecompositionReport& report);

}  // namespace msd

#endif  // MSDMIXER_CORE_ANALYSIS_H_
