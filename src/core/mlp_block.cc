#include "core/mlp_block.h"

#include <memory>

namespace msd {

MlpBlock::MlpBlock(int64_t features, int64_t hidden, float drop_path,
                   Rng& rng) {
  fc1_ = RegisterModule("fc1", std::make_unique<Linear>(features, hidden, rng));
  fc2_ = RegisterModule("fc2", std::make_unique<Linear>(hidden, features, rng));
  drop_path_ =
      RegisterModule("drop_path", std::make_unique<DropPath>(drop_path, rng));
}

Variable MlpBlock::DoForward(const Variable& input) {
  // fc1 + GELU run as one fused GEMM; fc2 fuses its bias the same way.
  Variable branch =
      fc2_->Forward(fc1_->ForwardActivated(input, ActivationKind::kGelu));
  return Add(input, drop_path_->Forward(branch));
}

AxisMlpBlock::AxisMlpBlock(int64_t axis, int64_t features, int64_t hidden,
                           float drop_path, Rng& rng)
    : axis_(axis) {
  MSD_CHECK_NE(axis, 0) << "axis 0 is the batch dimension";
  block_ = RegisterModule(
      "block", std::make_unique<MlpBlock>(features, hidden, drop_path, rng));
}

Variable AxisMlpBlock::DoForward(const Variable& input) {
  const int64_t last = input.rank() - 1;
  const int64_t axis = axis_ < 0 ? axis_ + input.rank() : axis_;
  if (axis == last) return block_->Forward(input);
  Variable moved = Transpose(input, axis, last);
  Variable mixed = block_->Forward(moved);
  return Transpose(mixed, axis, last);
}

}  // namespace msd
