#include "core/patch_coder.h"

#include <memory>

namespace msd {

namespace {
// Axis indices in the patched layout [B, C, L', p].
constexpr int64_t kChannelAxis = 1;
constexpr int64_t kPatchAxis = 2;
constexpr int64_t kWithinPatchAxis = 3;
}  // namespace

PatchEncoder::PatchEncoder(const PatchCoderDims& dims, Rng& rng) {
  channel_mlp_ = RegisterModule(
      "channel_mlp",
      std::make_unique<AxisMlpBlock>(kChannelAxis, dims.channels,
                                     dims.hidden_dim, dims.drop_path, rng));
  inter_patch_mlp_ = RegisterModule(
      "inter_patch_mlp",
      std::make_unique<AxisMlpBlock>(kPatchAxis, dims.num_patches,
                                     dims.hidden_dim, dims.drop_path, rng));
  intra_patch_mlp_ = RegisterModule(
      "intra_patch_mlp",
      std::make_unique<AxisMlpBlock>(kWithinPatchAxis, dims.patch_size,
                                     dims.hidden_dim, dims.drop_path, rng));
  to_embedding_ = RegisterModule(
      "to_embedding",
      std::make_unique<Linear>(dims.patch_size, dims.model_dim, rng));
}

Variable PatchEncoder::DoForward(const Variable& patched) {
  MSD_CHECK_EQ(patched.rank(), 4) << "PatchEncoder expects [B, C, L', p]";
  Variable x = channel_mlp_->Forward(patched);
  x = inter_patch_mlp_->Forward(x);
  x = intra_patch_mlp_->Forward(x);
  return to_embedding_->Forward(x);
}

PatchDecoder::PatchDecoder(const PatchCoderDims& dims, Rng& rng) {
  from_embedding_ = RegisterModule(
      "from_embedding",
      std::make_unique<Linear>(dims.model_dim, dims.patch_size, rng));
  intra_patch_mlp_ = RegisterModule(
      "intra_patch_mlp",
      std::make_unique<AxisMlpBlock>(kWithinPatchAxis, dims.patch_size,
                                     dims.hidden_dim, dims.drop_path, rng));
  inter_patch_mlp_ = RegisterModule(
      "inter_patch_mlp",
      std::make_unique<AxisMlpBlock>(kPatchAxis, dims.num_patches,
                                     dims.hidden_dim, dims.drop_path, rng));
  channel_mlp_ = RegisterModule(
      "channel_mlp",
      std::make_unique<AxisMlpBlock>(kChannelAxis, dims.channels,
                                     dims.hidden_dim, dims.drop_path, rng));
}

Variable PatchDecoder::DoForward(const Variable& embedding) {
  MSD_CHECK_EQ(embedding.rank(), 4) << "PatchDecoder expects [B, C, L', d]";
  Variable x = from_embedding_->Forward(embedding);
  x = intra_patch_mlp_->Forward(x);
  x = inter_patch_mlp_->Forward(x);
  return channel_mlp_->Forward(x);
}

}  // namespace msd
