#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace msd {

double MseMetric(const Tensor& prediction, const Tensor& target) {
  MSD_CHECK(prediction.shape() == target.shape());
  double acc = 0.0;
  const float* p = prediction.data();
  const float* t = target.data();
  for (int64_t i = 0; i < prediction.numel(); ++i) {
    const double d = static_cast<double>(p[i]) - t[i];
    acc += d * d;
  }
  return acc / static_cast<double>(prediction.numel());
}

double MaeMetric(const Tensor& prediction, const Tensor& target) {
  MSD_CHECK(prediction.shape() == target.shape());
  double acc = 0.0;
  const float* p = prediction.data();
  const float* t = target.data();
  for (int64_t i = 0; i < prediction.numel(); ++i) {
    acc += std::fabs(static_cast<double>(p[i]) - t[i]);
  }
  return acc / static_cast<double>(prediction.numel());
}

namespace {

double MaskedMetric(const Tensor& prediction, const Tensor& target,
                    const Tensor& mask, bool squared) {
  MSD_CHECK(prediction.shape() == target.shape());
  MSD_CHECK(prediction.shape() == mask.shape());
  double acc = 0.0;
  int64_t count = 0;
  const float* p = prediction.data();
  const float* t = target.data();
  const float* m = mask.data();
  for (int64_t i = 0; i < prediction.numel(); ++i) {
    if (m[i] == 0.0f) continue;
    const double d = static_cast<double>(p[i]) - t[i];
    acc += squared ? d * d : std::fabs(d);
    ++count;
  }
  MSD_CHECK_GT(count, 0) << "mask selects no elements";
  return acc / static_cast<double>(count);
}

}  // namespace

double MaskedMseMetric(const Tensor& prediction, const Tensor& target,
                       const Tensor& mask) {
  return MaskedMetric(prediction, target, mask, /*squared=*/true);
}

double MaskedMaeMetric(const Tensor& prediction, const Tensor& target,
                       const Tensor& mask) {
  return MaskedMetric(prediction, target, mask, /*squared=*/false);
}

double Smape(const std::vector<float>& forecast,
             const std::vector<float>& actual) {
  MSD_CHECK_EQ(forecast.size(), actual.size());
  MSD_CHECK(!forecast.empty());
  double acc = 0.0;
  for (size_t i = 0; i < forecast.size(); ++i) {
    const double denom = std::fabs(actual[i]) + std::fabs(forecast[i]);
    if (denom > 1e-12) {
      acc += std::fabs(actual[i] - forecast[i]) / denom;
    }
  }
  return 200.0 * acc / static_cast<double>(forecast.size());
}

double Mase(const std::vector<float>& forecast,
            const std::vector<float>& actual,
            const std::vector<float>& insample, int64_t m) {
  MSD_CHECK_EQ(forecast.size(), actual.size());
  MSD_CHECK_GT(m, 0);
  MSD_CHECK_GT(static_cast<int64_t>(insample.size()), m);
  double scale = 0.0;
  for (size_t t = static_cast<size_t>(m); t < insample.size(); ++t) {
    scale += std::fabs(insample[t] - insample[t - static_cast<size_t>(m)]);
  }
  scale /= static_cast<double>(insample.size() - static_cast<size_t>(m));
  if (scale < 1e-12) scale = 1e-12;
  double err = 0.0;
  for (size_t i = 0; i < forecast.size(); ++i) {
    err += std::fabs(actual[i] - forecast[i]);
  }
  return err / static_cast<double>(forecast.size()) / scale;
}

std::vector<float> Naive2Forecast(const std::vector<float>& history,
                                  int64_t horizon, int64_t m) {
  MSD_CHECK(!history.empty());
  MSD_CHECK_GT(horizon, 0);
  const int64_t n = static_cast<int64_t>(history.size());
  if (m <= 1 || n < 2 * m) {
    return std::vector<float>(static_cast<size_t>(horizon), history.back());
  }
  // Multiplicative seasonal indices: phase mean / grand mean.
  double grand = 0.0;
  for (float v : history) grand += v;
  grand /= static_cast<double>(n);
  if (std::fabs(grand) < 1e-9) {
    return std::vector<float>(static_cast<size_t>(horizon), history.back());
  }
  std::vector<double> phase_sum(static_cast<size_t>(m), 0.0);
  std::vector<int64_t> phase_count(static_cast<size_t>(m), 0);
  for (int64_t t = 0; t < n; ++t) {
    phase_sum[static_cast<size_t>(t % m)] += history[static_cast<size_t>(t)];
    ++phase_count[static_cast<size_t>(t % m)];
  }
  std::vector<double> index(static_cast<size_t>(m));
  for (int64_t k = 0; k < m; ++k) {
    const double phase_mean =
        phase_sum[static_cast<size_t>(k)] /
        std::max<int64_t>(1, phase_count[static_cast<size_t>(k)]);
    index[static_cast<size_t>(k)] = std::max(phase_mean / grand, 1e-6);
  }
  // Deseasonalized last level.
  const double last_index = index[static_cast<size_t>((n - 1) % m)];
  const double level = history.back() / last_index;
  std::vector<float> forecast(static_cast<size_t>(horizon));
  for (int64_t h = 0; h < horizon; ++h) {
    const double idx = index[static_cast<size_t>((n + h) % m)];
    forecast[static_cast<size_t>(h)] = static_cast<float>(level * idx);
  }
  return forecast;
}

M4Scores EvaluateM4(const std::vector<std::vector<float>>& forecasts,
                    const std::vector<std::vector<float>>& actuals,
                    const std::vector<std::vector<float>>& histories,
                    int64_t m) {
  MSD_CHECK_EQ(forecasts.size(), actuals.size());
  MSD_CHECK_EQ(forecasts.size(), histories.size());
  MSD_CHECK(!forecasts.empty());
  double smape_model = 0.0;
  double mase_model = 0.0;
  double smape_naive = 0.0;
  double mase_naive = 0.0;
  for (size_t i = 0; i < forecasts.size(); ++i) {
    smape_model += Smape(forecasts[i], actuals[i]);
    mase_model += Mase(forecasts[i], actuals[i], histories[i], m);
    const std::vector<float> naive2 = Naive2Forecast(
        histories[i], static_cast<int64_t>(actuals[i].size()), m);
    smape_naive += Smape(naive2, actuals[i]);
    mase_naive += Mase(naive2, actuals[i], histories[i], m);
  }
  const double n = static_cast<double>(forecasts.size());
  M4Scores scores;
  scores.smape = smape_model / n;
  scores.mase = mase_model / n;
  const double s_ref = std::max(smape_naive / n, 1e-9);
  const double m_ref = std::max(mase_naive / n, 1e-9);
  scores.owa = 0.5 * (scores.smape / s_ref + scores.mase / m_ref);
  return scores;
}

std::vector<int> PointAdjust(const std::vector<int>& predictions,
                             const std::vector<int>& labels) {
  MSD_CHECK_EQ(predictions.size(), labels.size());
  std::vector<int> adjusted = predictions;
  const size_t n = labels.size();
  size_t i = 0;
  while (i < n) {
    if (labels[i] == 1) {
      size_t j = i;
      while (j < n && labels[j] == 1) ++j;
      bool any_hit = false;
      for (size_t k = i; k < j; ++k) {
        if (predictions[k] == 1) {
          any_hit = true;
          break;
        }
      }
      if (any_hit) {
        for (size_t k = i; k < j; ++k) adjusted[k] = 1;
      }
      i = j;
    } else {
      ++i;
    }
  }
  return adjusted;
}

DetectionScores PrecisionRecallF1(const std::vector<int>& predictions,
                                  const std::vector<int>& labels) {
  MSD_CHECK_EQ(predictions.size(), labels.size());
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t fn = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == 1 && labels[i] == 1) ++tp;
    if (predictions[i] == 1 && labels[i] == 0) ++fp;
    if (predictions[i] == 0 && labels[i] == 1) ++fn;
  }
  DetectionScores scores;
  scores.precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
  scores.recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
  scores.f1 = scores.precision + scores.recall > 0.0
                  ? 2.0 * scores.precision * scores.recall /
                        (scores.precision + scores.recall)
                  : 0.0;
  return scores;
}

float ThresholdForRatio(std::vector<float> scores, double anomaly_ratio) {
  MSD_CHECK(!scores.empty());
  MSD_CHECK_GT(anomaly_ratio, 0.0);
  MSD_CHECK_LT(anomaly_ratio, 1.0);
  const size_t k = static_cast<size_t>(
      (1.0 - anomaly_ratio) * static_cast<double>(scores.size() - 1));
  std::nth_element(scores.begin(), scores.begin() + static_cast<int64_t>(k),
                   scores.end());
  return scores[k];
}

double Accuracy(const std::vector<int64_t>& predictions,
                const std::vector<int64_t>& labels) {
  MSD_CHECK_EQ(predictions.size(), labels.size());
  MSD_CHECK(!predictions.empty());
  int64_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

std::vector<double> MeanRanks(const std::vector<std::vector<double>>& scores) {
  MSD_CHECK(!scores.empty());
  const size_t methods = scores[0].size();
  std::vector<double> rank_sum(methods, 0.0);
  for (const std::vector<double>& row : scores) {
    MSD_CHECK_EQ(row.size(), methods);
    for (size_t m = 0; m < methods; ++m) {
      // Rank = 1 + count(strictly better) + 0.5 * count(equal others).
      double better = 0.0;
      double equal = 0.0;
      for (size_t o = 0; o < methods; ++o) {
        if (o == m) continue;
        if (row[o] > row[m]) better += 1.0;
        if (row[o] == row[m]) equal += 1.0;
      }
      rank_sum[m] += 1.0 + better + 0.5 * equal;
    }
  }
  for (double& r : rank_sum) r /= static_cast<double>(scores.size());
  return rank_sum;
}

Tensor AutocorrelationMatrix(const Tensor& series) {
  MSD_CHECK_EQ(series.rank(), 2) << "expects [C, L]";
  const int64_t channels = series.dim(0);
  const int64_t length = series.dim(1);
  MSD_CHECK_GT(length, 1);
  Tensor acf({channels, length - 1});
  const float* p = series.data();
  float* out = acf.data();
  for (int64_t c = 0; c < channels; ++c) {
    const float* z = p + c * length;
    double mean = 0.0;
    for (int64_t t = 0; t < length; ++t) mean += z[t];
    mean /= static_cast<double>(length);
    double denom = 0.0;
    for (int64_t t = 0; t < length; ++t) {
      const double d = z[t] - mean;
      denom += d * d;
    }
    if (denom < 1e-12) denom = 1e-12;
    for (int64_t lag = 1; lag < length; ++lag) {
      double numer = 0.0;
      for (int64_t t = lag; t < length; ++t) {
        numer += (z[t] - mean) * (z[t - lag] - mean);
      }
      out[c * (length - 1) + (lag - 1)] =
          static_cast<float>(numer / denom);
    }
  }
  return acf;
}

double LjungBoxStatistic(const Tensor& series, int64_t channel,
                         int64_t max_lag) {
  MSD_CHECK_EQ(series.rank(), 2);
  const int64_t n = series.dim(1);
  MSD_CHECK_GT(max_lag, 0);
  MSD_CHECK_LT(max_lag, n);
  Tensor row = Slice(series, 0, channel, 1);
  Tensor acf = AutocorrelationMatrix(row);
  double q = 0.0;
  for (int64_t k = 1; k <= max_lag; ++k) {
    const double rho = acf.at({0, k - 1});
    q += rho * rho / static_cast<double>(n - k);
  }
  return static_cast<double>(n) * (n + 2.0) * q;
}

double ChiSquaredCriticalValue(int64_t degrees_of_freedom,
                               double significance) {
  MSD_CHECK_GT(degrees_of_freedom, 0);
  MSD_CHECK_GT(significance, 0.0);
  MSD_CHECK_LT(significance, 1.0);
  // Standard-normal upper quantile via Acklam-style rational approximation
  // on the central region (sufficient for typical significance levels).
  const double p = 1.0 - significance;
  // Beasley-Springer-Moro approximation of the normal quantile.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  double z;
  if (p < 0.02425) {
    const double u = std::sqrt(-2.0 * std::log(p));
    z = (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) /
        ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
  } else if (p > 1.0 - 0.02425) {
    const double u = std::sqrt(-2.0 * std::log(1.0 - p));
    z = -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) /
        ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
  } else {
    const double u = p - 0.5;
    const double t = u * u;
    z = (((((a[0] * t + a[1]) * t + a[2]) * t + a[3]) * t + a[4]) * t + a[5]) *
        u /
        (((((b[0] * t + b[1]) * t + b[2]) * t + b[3]) * t + b[4]) * t + 1.0);
  }
  // Wilson-Hilferty: chi2_q ~ k * (1 - 2/(9k) + z * sqrt(2/(9k)))^3.
  const double k = static_cast<double>(degrees_of_freedom);
  const double term = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * term * term * term;
}

bool PassesLjungBoxWhitenessTest(const Tensor& series, int64_t channel,
                                 int64_t max_lag, double significance) {
  const double q = LjungBoxStatistic(series, channel, max_lag);
  return q <= ChiSquaredCriticalValue(max_lag, significance);
}

std::vector<double> Periodogram(const Tensor& series, int64_t channel) {
  MSD_CHECK_EQ(series.rank(), 2);
  const int64_t n = series.dim(1);
  const float* z = series.data() + channel * n;
  double mean = 0.0;
  for (int64_t t = 0; t < n; ++t) mean += z[t];
  mean /= static_cast<double>(n);
  std::vector<double> power(static_cast<size_t>(n / 2 + 1), 0.0);
  for (int64_t period = 2; period <= n / 2; ++period) {
    const double omega = 2.0 * M_PI / static_cast<double>(period);
    double re = 0.0;
    double im = 0.0;
    for (int64_t t = 0; t < n; ++t) {
      const double v = z[t] - mean;
      re += v * std::cos(omega * static_cast<double>(t));
      im += v * std::sin(omega * static_cast<double>(t));
    }
    power[static_cast<size_t>(period)] = (re * re + im * im) / n;
  }
  return power;
}

int64_t DominantPeriod(const Tensor& series, int64_t channel) {
  const std::vector<double> power = Periodogram(series, channel);
  int64_t best_period = 2;
  double best = -1.0;
  for (size_t p = 2; p < power.size(); ++p) {
    if (power[p] > best) {
      best = power[p];
      best_period = static_cast<int64_t>(p);
    }
  }
  return best_period;
}

double WhiteNoiseBandFraction(const Tensor& acf, int64_t series_length,
                              double alpha) {
  MSD_CHECK_GT(series_length, 0);
  const double band = alpha / std::sqrt(static_cast<double>(series_length));
  int64_t inside = 0;
  const float* p = acf.data();
  for (int64_t i = 0; i < acf.numel(); ++i) {
    if (std::fabs(p[i]) <= band) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(acf.numel());
}

}  // namespace msd
