// Evaluation metrics for the five tasks: MSE/MAE (forecasting, imputation),
// SMAPE/MASE/OWA with a Naive2 reference (M4 short-term protocol),
// point-adjusted precision/recall/F1 (anomaly detection), accuracy and mean
// rank (classification), and autocorrelation utilities used by the Residual
// Loss analysis (paper Eq. 5 and Fig. 4).
#ifndef MSDMIXER_METRICS_METRICS_H_
#define MSDMIXER_METRICS_METRICS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace msd {

// ---- Regression -------------------------------------------------------------
double MseMetric(const Tensor& prediction, const Tensor& target);
double MaeMetric(const Tensor& prediction, const Tensor& target);
// MSE/MAE restricted to positions where mask == 1.
double MaskedMseMetric(const Tensor& prediction, const Tensor& target,
                       const Tensor& mask);
double MaskedMaeMetric(const Tensor& prediction, const Tensor& target,
                       const Tensor& mask);

// ---- M4 short-term (paper Eq. 8) ---------------------------------------------
// SMAPE in percent (0..200).
double Smape(const std::vector<float>& forecast,
             const std::vector<float>& actual);

// MASE: mean |error| scaled by the in-sample seasonal-naive MAE with
// periodicity m (m=1 -> plain naive differencing).
double Mase(const std::vector<float>& forecast,
            const std::vector<float>& actual,
            const std::vector<float>& insample, int64_t m);

// Naive2 reference forecast: deseasonalize the history with multiplicative
// period-m indices (when m > 1), repeat the last deseasonalized value, and
// reseasonalize. With m == 1 this is the plain naive forecast.
std::vector<float> Naive2Forecast(const std::vector<float>& history,
                                  int64_t horizon, int64_t m);

struct M4Scores {
  double smape = 0.0;
  double mase = 0.0;
  double owa = 0.0;  // vs the Naive2 reference
};

// Aggregates SMAPE/MASE over a set of series and forms OWA against Naive2
// computed on the same data.
M4Scores EvaluateM4(const std::vector<std::vector<float>>& forecasts,
                    const std::vector<std::vector<float>>& actuals,
                    const std::vector<std::vector<float>>& histories,
                    int64_t m);

// ---- Anomaly detection -----------------------------------------------------------
struct DetectionScores {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

// Applies the point-adjustment protocol (Xu et al., Anomaly Transformer; used
// by the paper's Table IX): if any point of a contiguous ground-truth anomaly
// segment is predicted, the whole segment counts as detected. Inputs are 0/1
// sequences of equal length.
std::vector<int> PointAdjust(const std::vector<int>& predictions,
                             const std::vector<int>& labels);

DetectionScores PrecisionRecallF1(const std::vector<int>& predictions,
                                  const std::vector<int>& labels);

// Threshold chosen so that `anomaly_ratio` of the combined scores exceed it
// (the Time-Series-Library convention).
float ThresholdForRatio(std::vector<float> scores, double anomaly_ratio);

// ---- Classification -----------------------------------------------------------------
double Accuracy(const std::vector<int64_t>& predictions,
                const std::vector<int64_t>& labels);

// Average rank of each method across benchmarks; `scores[b][m]` is method
// m's score on benchmark b, where *higher is better*. Ties share the mean
// rank. Returns one mean rank per method (lower is better).
std::vector<double> MeanRanks(const std::vector<std::vector<double>>& scores);

// ---- Autocorrelation ----------------------------------------------------------------
// Sample ACF per channel: for input [C, L] returns [C, L-1] with entry (c, j)
// the lag-(j+1) autocorrelation coefficient (paper Eq. 5).
Tensor AutocorrelationMatrix(const Tensor& series);

// Fraction of ACF entries within the white-noise band |a| <= alpha/sqrt(L).
double WhiteNoiseBandFraction(const Tensor& acf, int64_t series_length,
                              double alpha = 2.0);

// Ljung-Box portmanteau statistic Q = n(n+2) * sum_{k=1..h} rho_k^2/(n-k)
// for a single channel of `series` [C, L]. Under the white-noise null, Q is
// approximately chi-squared with h degrees of freedom.
double LjungBoxStatistic(const Tensor& series, int64_t channel,
                         int64_t max_lag);

// Upper critical value of the chi-squared distribution (Wilson-Hilferty
// approximation); significance is the upper tail mass, e.g. 0.05.
double ChiSquaredCriticalValue(int64_t degrees_of_freedom,
                               double significance);

// True if the Ljung-Box test fails to reject whiteness at `significance`.
bool PassesLjungBoxWhitenessTest(const Tensor& series, int64_t channel,
                                 int64_t max_lag, double significance = 0.05);

// Naive-DFT periodogram of one channel: power at integer periods
// 2..L/2, indexed by period (index p holds the power of period p; entries
// 0 and 1 are zero).
std::vector<double> Periodogram(const Tensor& series, int64_t channel);

// Period in [2, L/2] with maximal periodogram power.
int64_t DominantPeriod(const Tensor& series, int64_t channel);

}  // namespace msd

#endif  // MSDMIXER_METRICS_METRICS_H_
