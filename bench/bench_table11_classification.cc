// Reproduces paper Table XI (classification) and prints the dataset
// statistics of Table X: ten UEA-like subsets, top-1 accuracy, plus the
// paper's Mean Rank summary row.
//
// Models: MSD-Mixer (classification head), 1-NN DTW-D (the classical
// baseline), and a flatten-MLP classifier.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "baselines/dtw.h"
#include "baselines/mlp_classifier.h"
#include "bench_util.h"
#include "datagen/classification_gen.h"
#include "metrics/metrics.h"

namespace msd {
namespace {

using bench::BenchTrainer;
using bench::MixerConfig;

struct RunResult {
  std::string model;
  double accuracy;
};

std::vector<RunResult> RunAllModels(const ClassificationSubset& subset,
                                    const ClassificationData& data) {
  ClassificationExperimentConfig config;
  config.trainer = BenchTrainer(/*epochs=*/30, /*max_batches=*/0, 2e-3f);
  config.trainer.batch_size = 16;
  config.trainer.weight_decay = 1e-3f;

  std::vector<RunResult> results;
  {
    Rng rng(1);
    // Patch ladder from the series length: sub-series at several scales.
    // Narrow representation + heavy head dropout: the per-layer flatten
    // heads overfit badly in this low-data regime otherwise.
    MsdMixerConfig mc = MixerConfig(TaskType::kClassification, subset.channels,
                                    subset.length, 1, subset.length / 4,
                                    subset.classes);
    mc.model_dim = 8;
    mc.drop_path = 0.1f;
    mc.head_dropout = 0.7f;
    MsdMixer mixer(mc, rng);
    ResidualLossOptions ro;
    ro.max_lag = 16;
    MsdMixerTaskModel model(&mixer, 0.05f, ro);
    results.push_back(
        {"MSD-Mixer", RunClassificationExperiment(model, data, config)});
  }
  {
    DtwKnnClassifier knn(0.1);
    knn.Fit(data.train_x, data.train_y);
    const std::vector<int64_t> pred = knn.PredictBatch(data.test_x);
    results.push_back({"DTW-1NN", Accuracy(pred, data.test_y)});
  }
  {
    Rng rng(2);
    MlpClassifier mlp(subset.channels, subset.length, subset.classes, rng);
    ModuleTaskModel model(&mlp);
    results.push_back(
        {"Flat-MLP", RunClassificationExperiment(model, data, config)});
  }
  return results;
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  msd::bench::InitThreads(argc, argv);
  using namespace msd;
  const auto subsets = DefaultClassificationSubsets();

  std::printf("== Table X analogue: classification datasets ==\n");
  bench::TablePrinter stats({"Subset", "Dim", "Length", "Classes", "Train",
                             "Test", "Paper dim/len"},
                            {7, 4, 6, 7, 5, 5, 13});
  stats.PrintHeader();
  const std::map<std::string, std::string> paper_profile = {
      {"AWR", "9 / 144"},  {"AF", "2 / 640"},    {"CT", "3 / 182"},
      {"CR", "6 / 1197"},  {"FD", "144 / 62"},   {"FM", "28 / 50"},
      {"MI", "64 / 3000"}, {"SCP1", "6 / 896"},  {"SCP2", "7 / 1152"},
      {"UWGL", "3 / 315"}};
  for (const auto& s : subsets) {
    stats.PrintRow({s.name, std::to_string(s.channels),
                    std::to_string(s.length), std::to_string(s.classes),
                    std::to_string(s.train_size), std::to_string(s.test_size),
                    paper_profile.at(s.name)});
  }
  stats.PrintRule();

  std::printf("\n== Table XI analogue: classification accuracy ==\n\n");
  const std::vector<std::string> models = {"MSD-Mixer", "DTW-1NN", "Flat-MLP"};
  bench::TablePrinter table({"Subset", "MSD-Mixer", "DTW-1NN", "Flat-MLP"},
                            {7, 10, 10, 10});
  table.PrintHeader();

  std::vector<std::vector<double>> accuracy_rows;
  std::map<std::string, double> acc_sum;
  std::map<std::string, int> first_counts;
  for (const auto& subset : subsets) {
    const ClassificationData data =
        GenerateClassificationData(subset, /*seed=*/9);
    const auto results = RunAllModels(subset, data);
    std::vector<double> values;
    for (const auto& r : results) values.push_back(r.accuracy);
    accuracy_rows.push_back(values);
    const auto cells = bench::MarkBest(values, 3, /*lower_is_better=*/false);
    std::vector<std::string> row = {subset.name};
    row.insert(row.end(), cells.begin(), cells.end());
    table.PrintRow(row);
    std::fflush(stdout);
    double best = -1.0;
    std::string best_model;
    for (const auto& r : results) {
      acc_sum[r.model] += r.accuracy;
      if (r.accuracy > best) {
        best = r.accuracy;
        best_model = r.model;
      }
    }
    first_counts[best_model]++;
  }
  table.PrintRule();

  const std::vector<double> ranks = MeanRanks(accuracy_rows);
  std::vector<std::string> avg_row = {"Avg.Acc"};
  std::vector<std::string> rank_row = {"MeanRank"};
  for (size_t m = 0; m < models.size(); ++m) {
    avg_row.push_back(bench::Fmt(acc_sum[models[m]] / subsets.size(), 3));
    rank_row.push_back(bench::Fmt(ranks[m], 1));
  }
  table.PrintRow(avg_row);
  table.PrintRow(rank_row);
  table.PrintRule();

  std::printf("\nAccuracy 1st-place counts:\n");
  for (const auto& m : models) {
    std::printf("  %-10s %d\n", m.c_str(), first_counts[m]);
  }
  std::printf(
      "\nPaper shape check (Table XI): MSD-Mixer best mean rank (2.8) but\n"
      "task-specific TARNet has the higher average accuracy; classical\n"
      "baselines win subsets outright. Expected here: the families split\n"
      "the subsets — MSD-Mixer clearly ahead of the classical DTW-1NN on\n"
      "average, with the small task-specific flatten-MLP the strongest\n"
      "single competitor (the TARNet role).\n");
  return bench::ExportTelemetry(argc, argv) ? 0 : 1;
}
