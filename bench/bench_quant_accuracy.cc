// Accuracy cost of the int8 quantized serving path (docs/PERFORMANCE.md):
// the same trained checkpoint is frozen into a fp32 planned session and an
// int8-quantized one (InferenceSessionConfig::quantize), and both answer the
// held-out test windows of the paper's synthetic suites.
//
//   * Forecast (Table II/IV protocol): three long-term datasets — ETTm1
//     (dual-period + trend), Weather (smooth AR), Exchange (pure random
//     walk, the regime with no seasonal structure to hide behind) — scored
//     by test MSE in scaled units. Gate: int8 MSE within 2% relative of
//     fp32.
//   * Classification (Table XI protocol): two UEA-like subsets, scored by
//     test accuracy over the session's logits. Gate: int8 within 0.5
//     accuracy points of fp32.
//
// Also reports each quantized plan's adoption stats (int8 steps vs fp32
// fallbacks), so a silent calibration-gate regression — every step falling
// back, deltas trivially zero — is visible in the same table. Exits nonzero
// if any gate fails, any session refuses to build, or a quantized session
// adopts no int8 steps at all.
//
// Flags: --threads N (bench_util), MSD_BENCH_SCALE scales training epochs.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/window_dataset.h"
#include "datagen/classification_gen.h"
#include "datagen/long_term.h"
#include "datagen/series_builder.h"
#include "nn/serialize.h"
#include "serve/session.h"
#include "tasks/task_model.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

using bench::BenchTrainer;
using bench::Fmt;
using bench::MixerConfig;
using bench::TablePrinter;

constexpr double kForecastGatePct = 2.0;   // relative MSE growth
constexpr double kClassifyGatePts = 0.5;   // accuracy points lost

// Freezes `checkpoint` into a fp32 session and an int8 one over the same
// weights. Returns false (with a message) when either refuses to build or
// the quantized plans adopted no int8 steps.
bool MakeSessionPair(const MsdMixerConfig& mc, const std::string& checkpoint,
                     int64_t max_batch,
                     std::unique_ptr<serve::InferenceSession>* fp32,
                     std::unique_ptr<serve::InferenceSession>* int8) {
  serve::InferenceSessionConfig sc;
  sc.model = mc;
  sc.max_batch = max_batch;
  auto fp32_or = serve::InferenceSession::Create(sc, checkpoint);
  serve::InferenceSessionConfig qsc = sc;
  qsc.quantize = true;
  auto int8_or = serve::InferenceSession::Create(qsc, checkpoint);
  if (!fp32_or.ok() || !int8_or.ok()) {
    std::fprintf(stderr, "session create failed: %s\n",
                 (fp32_or.ok() ? int8_or.status() : fp32_or.status())
                     .ToString()
                     .c_str());
    return false;
  }
  *fp32 = std::move(fp32_or).value();
  *int8 = std::move(int8_or).value();
  const serve::CompiledPlan* plan = (*int8)->plan_for(max_batch);
  if (plan == nullptr || plan->stats().num_quantized == 0) {
    std::fprintf(stderr, "quantized session adopted no int8 steps\n");
    return false;
  }
  return true;
}

std::string AdoptionCell(const serve::InferenceSession& session,
                         int64_t batch) {
  const serve::CompiledPlan* plan = session.plan_for(batch);
  if (plan == nullptr) return "n/a";
  return std::to_string(plan->stats().num_quantized) + "/" +
         std::to_string(plan->stats().num_quantized +
                        plan->stats().num_quant_fallbacks);
}

// Mean squared error of a session's batched predictions over a forecast
// window dataset (scaled units; both sessions see identical batches).
double SessionMse(serve::InferenceSession* session, const Dataset& data,
                  int64_t batch_size) {
  Rng rng(1);
  DataLoader loader(&data, batch_size, /*shuffle=*/false, rng);
  double sse = 0.0;
  int64_t count = 0;
  for (int64_t b = 0; b < loader.NumBatches(); ++b) {
    Batch batch = loader.GetBatch(b);
    StatusOr<Tensor> pred = session->PredictBatch(batch.input);
    MSD_CHECK(pred.ok()) << pred.status().ToString();
    const int64_t n = pred.value().numel();
    sse += MseMetric(pred.value(), batch.target) * static_cast<double>(n);
    count += n;
  }
  return sse / static_cast<double>(count);
}

// Test accuracy of a session's logits over a classification sample set.
double SessionAccuracy(serve::InferenceSession* session,
                       const std::vector<Tensor>& xs,
                       const std::vector<int64_t>& ys, int64_t batch_size) {
  int64_t correct = 0;
  for (size_t start = 0; start < xs.size();
       start += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(xs.size(), start + static_cast<size_t>(batch_size));
    std::vector<Tensor> rows(xs.begin() + static_cast<int64_t>(start),
                             xs.begin() + static_cast<int64_t>(end));
    StatusOr<Tensor> logits = session->PredictBatch(Stack(rows));
    MSD_CHECK(logits.ok()) << logits.status().ToString();
    const int64_t classes = logits.value().dim(1);
    for (size_t i = start; i < end; ++i) {
      const float* row = logits.value().data() +
                         static_cast<int64_t>(i - start) * classes;
      int64_t best = 0;
      for (int64_t c = 1; c < classes; ++c) {
        if (row[c] > row[best]) best = c;
      }
      if (best == ys[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(xs.size());
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  using namespace msd;
  bench::InitThreads(argc, argv);
  const std::string ckpt = "bench_quant_accuracy.msdckpt";
  const int64_t batch = 16;
  bool ok = true;

  // ---- Forecast: Table II/IV protocol over three long-term suites ----------
  std::printf("Int8 vs fp32 — forecast test MSE (lookback 96, horizon 24, "
              "scaled units; gate: delta <= %.1f%%)\n",
              kForecastGatePct);
  TablePrinter forecast_table(
      {"dataset", "fp32 MSE", "int8 MSE", "delta", "int8 steps"},
      {10, 10, 10, 8, 10});
  forecast_table.PrintHeader();
  for (LongTermDataset ds : {LongTermDataset::kEttM1, LongTermDataset::kWeather,
                             LongTermDataset::kExchange}) {
    const Tensor series = GenerateSeries(LongTermConfig(ds, /*seed=*/1));
    SeriesSplits splits = SplitSeries(series, SplitSpec{});
    StandardScaler scaler;
    scaler.Fit(splits.train);
    const Tensor train = scaler.Transform(splits.train);
    const Tensor test = scaler.Transform(splits.test);
    const int64_t period = LongTermDominantPeriod(ds);

    Rng rng(100);
    MsdMixerConfig mc =
        MixerConfig(TaskType::kForecast, series.dim(0), 96, 24, period);
    MsdMixer mixer(mc, rng);
    ResidualLossOptions ro;
    ro.max_lag = 24;
    MsdMixerTaskModel model(&mixer, /*lambda=*/0.5f, ro);
    ForecastWindowDataset train_data(train, 96, 24, /*stride=*/4);
    Train(model, train_data, BenchTrainer(/*epochs=*/4, /*max_batches=*/30,
                                          4e-3f),
          ForecastMseTaskLoss);
    Status saved = SaveCheckpoint(mixer, ckpt);
    MSD_CHECK(saved.ok()) << saved.ToString();

    std::unique_ptr<serve::InferenceSession> fp32;
    std::unique_ptr<serve::InferenceSession> int8;
    if (!MakeSessionPair(mc, ckpt, batch, &fp32, &int8)) {
      ok = false;
      continue;
    }
    ForecastWindowDataset test_data(test, 96, 24, /*stride=*/8);
    const double fp32_mse = SessionMse(fp32.get(), test_data, batch);
    const double int8_mse = SessionMse(int8.get(), test_data, batch);
    const double delta_pct = (int8_mse - fp32_mse) / fp32_mse * 100.0;
    if (delta_pct > kForecastGatePct) ok = false;
    forecast_table.PrintRow({LongTermDatasetName(ds), Fmt(fp32_mse, 4),
                             Fmt(int8_mse, 4), Fmt(delta_pct, 2) + "%",
                             AdoptionCell(*int8, batch)});
  }
  forecast_table.PrintRule();

  // ---- Classification: Table XI protocol over two UEA-like subsets ---------
  std::printf("\nInt8 vs fp32 — classification test accuracy (gate: drop <= "
              "%.1f pts)\n",
              kClassifyGatePts);
  TablePrinter classify_table(
      {"subset", "fp32 acc", "int8 acc", "delta", "int8 steps"},
      {10, 10, 10, 8, 10});
  classify_table.PrintHeader();
  for (const ClassificationSubset& subset : DefaultClassificationSubsets()) {
    if (subset.name != "AWR" && subset.name != "CR") continue;
    const ClassificationData data =
        GenerateClassificationData(subset, /*seed=*/9);
    Rng rng(1);
    MsdMixerConfig mc =
        MixerConfig(TaskType::kClassification, subset.channels, subset.length,
                    1, subset.length / 4, subset.classes);
    mc.model_dim = 8;
    mc.drop_path = 0.1f;
    mc.head_dropout = 0.7f;
    MsdMixer mixer(mc, rng);
    ResidualLossOptions ro;
    ro.max_lag = 16;
    MsdMixerTaskModel model(&mixer, /*lambda=*/0.05f, ro);
    TrainerConfig trainer = BenchTrainer(/*epochs=*/12, /*max_batches=*/0,
                                         2e-3f);
    trainer.batch_size = 16;
    trainer.weight_decay = 1e-3f;
    VectorDataset train_data(
        MakeClassificationSamples(data.train_x, data.train_y));
    Train(model, train_data, trainer, ClassificationTaskLoss);
    Status saved = SaveCheckpoint(mixer, ckpt);
    MSD_CHECK(saved.ok()) << saved.ToString();

    std::unique_ptr<serve::InferenceSession> fp32;
    std::unique_ptr<serve::InferenceSession> int8;
    if (!MakeSessionPair(mc, ckpt, batch, &fp32, &int8)) {
      ok = false;
      continue;
    }
    const double fp32_acc =
        SessionAccuracy(fp32.get(), data.test_x, data.test_y, batch);
    const double int8_acc =
        SessionAccuracy(int8.get(), data.test_x, data.test_y, batch);
    const double delta_pts = (fp32_acc - int8_acc) * 100.0;
    if (delta_pts > kClassifyGatePts) ok = false;
    classify_table.PrintRow({subset.name, Fmt(fp32_acc, 3), Fmt(int8_acc, 3),
                             Fmt(delta_pts, 2), AdoptionCell(*int8, batch)});
  }
  classify_table.PrintRule();

  std::remove(ckpt.c_str());
  if (!ok) {
    std::fprintf(stderr, "bench_quant_accuracy: a gate FAILED (see above)\n");
    return 1;
  }
  std::printf("\nall accuracy gates passed\n");
  return 0;
}
