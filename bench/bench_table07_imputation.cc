// Reproduces paper Table VII (imputation): six datasets x four missing
// ratios {12.5%, 25%, 37.5%, 50%}, MSE/MAE at the masked positions.
//
// Models: MSD-Mixer in reconstruction mode with magnitude-only Residual
// Loss (the paper drops the ACF term for imputation, §IV-D), an MLP
// autoencoder, and training-free per-channel linear interpolation.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "baselines/mlp_autoencoder.h"
#include "bench_util.h"
#include "datagen/long_term.h"
#include "datagen/series_builder.h"

namespace msd {
namespace {

using bench::BenchTrainer;
using bench::MixerConfig;

// Per-channel linear interpolation between observed neighbors (edge values
// extended); the classical training-free imputer.
Tensor InterpolateMissing(const Tensor& masked, const Tensor& observed_mask) {
  Tensor out = masked.Clone();
  const int64_t channels = out.dim(0);
  const int64_t length = out.dim(1);
  for (int64_t c = 0; c < channels; ++c) {
    float* row = out.data() + c * length;
    const float* mask = observed_mask.data() + c * length;
    int64_t prev = -1;
    for (int64_t t = 0; t <= length; ++t) {
      const bool observed = t < length && mask[t] == 1.0f;
      if (!observed && t < length) continue;
      // Fill the gap (prev, t).
      const int64_t gap_begin = prev + 1;
      const int64_t gap_end = t < length ? t : length;
      if (gap_begin < gap_end) {
        const float left = prev >= 0 ? row[prev] : (t < length ? row[t] : 0.0f);
        const float right = t < length ? row[t] : left;
        const int64_t span = gap_end - gap_begin + 1;
        for (int64_t g = gap_begin; g < gap_end; ++g) {
          const float alpha =
              static_cast<float>(g - gap_begin + 1) / static_cast<float>(span);
          row[g] = left + alpha * (right - left);
        }
      }
      prev = t;
    }
  }
  return out;
}

RegressionScores EvaluateInterpolation(const ImputationWindowDataset& test) {
  double sse = 0.0;
  double sae = 0.0;
  int64_t count = 0;
  for (int64_t i = 0; i < test.Size(); ++i) {
    Sample s = test.Get(i);
    Tensor observed = test.MaskFor(i);
    Tensor pred = InterpolateMissing(s.input, observed);
    const float* p = pred.data();
    const float* t = s.target.data();
    const float* m = observed.data();
    for (int64_t j = 0; j < pred.numel(); ++j) {
      if (m[j] == 1.0f) continue;
      const double d = static_cast<double>(p[j]) - t[j];
      sse += d * d;
      sae += std::fabs(d);
      ++count;
    }
  }
  return {sse / count, sae / count};
}

struct RunResult {
  std::string model;
  RegressionScores scores;
};

std::vector<RunResult> RunAllModels(const Tensor& series, double ratio) {
  const int64_t channels = series.dim(0);
  ImputationExperimentConfig config;
  config.window = 96;
  config.missing_ratio = ratio;
  config.train_stride = series.dim(1) >= 4000 ? 4 : 2;
  config.eval_stride = 8;
  config.trainer = BenchTrainer(/*epochs=*/4, /*max_batches=*/22);

  std::vector<RunResult> results;
  {
    Rng rng(static_cast<uint64_t>(ratio * 1000) + 1);
    MsdMixerConfig mc = MixerConfig(TaskType::kReconstruction, channels, 96,
                                    /*horizon=*/1, /*period=*/24);
    MsdMixer mixer(mc, rng);
    ResidualLossOptions ro;
    ro.include_autocorrelation = false;  // paper §IV-D
    MsdMixerTaskModel model(&mixer, 0.5f, ro);
    results.push_back(
        {"MSD-Mixer", RunImputationExperiment(model, series, config)});
  }
  {
    Rng rng(static_cast<uint64_t>(ratio * 1000) + 2);
    MlpAutoencoder ae(channels, 96, rng, /*bottleneck=*/32);
    ModuleTaskModel model(&ae);
    results.push_back(
        {"MLP-AE", RunImputationExperiment(model, series, config)});
  }
  {
    // Training-free interpolation on the scaled test split.
    SeriesSplits splits = SplitSeries(series, config.split);
    StandardScaler scaler;
    scaler.Fit(splits.train);
    ImputationWindowDataset test(scaler.Transform(splits.test), 96, ratio,
                                 config.mask_seed ^ 0x1234567ULL,
                                 config.eval_stride);
    results.push_back({"Interp", EvaluateInterpolation(test)});
  }
  return results;
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  msd::bench::InitThreads(argc, argv);
  using namespace msd;
  std::printf(
      "== Table VII analogue: imputation (MSE / MAE at masked points) ==\n\n");
  const std::vector<LongTermDataset> datasets = {
      LongTermDataset::kEttM1, LongTermDataset::kEttM2,
      LongTermDataset::kEttH1, LongTermDataset::kEttH2,
      LongTermDataset::kEcl,   LongTermDataset::kWeather};
  const std::vector<double> ratios = {0.125, 0.25, 0.375, 0.5};
  const std::vector<std::string> models = {"MSD-Mixer", "MLP-AE", "Interp"};

  bench::TablePrinter table(
      {"Dataset", "Miss%", "MSD-Mixer", "MLP-AE", "Interp"},
      {8, 6, 15, 15, 15});
  table.PrintHeader();

  std::map<std::string, int> first_counts;
  int total = 0;
  for (LongTermDataset ds : datasets) {
    Tensor series = GenerateSeries(LongTermConfig(ds, /*seed=*/2));
    for (double ratio : ratios) {
      const auto results = RunAllModels(series, ratio);
      std::vector<double> mses;
      std::vector<double> maes;
      for (const auto& r : results) {
        mses.push_back(r.scores.mse);
        maes.push_back(r.scores.mae);
      }
      for (int metric = 0; metric < 2; ++metric) {
        const auto& vals = metric == 0 ? mses : maes;
        double best = 1e30;
        std::string best_model;
        for (size_t m = 0; m < results.size(); ++m) {
          if (vals[m] < best) {
            best = vals[m];
            best_model = results[m].model;
          }
        }
        first_counts[best_model]++;
        ++total;
      }
      const auto mse_cells = bench::MarkBest(mses);
      const auto mae_cells = bench::MarkBest(maes);
      std::vector<std::string> row = {LongTermDatasetName(ds),
                                      bench::Fmt(ratio * 100, 1)};
      for (size_t m = 0; m < results.size(); ++m) {
        row.push_back(mse_cells[m] + "/" + mae_cells[m]);
      }
      table.PrintRow(row);
      std::fflush(stdout);
    }
    table.PrintRule();
  }

  std::printf("\n1st-place counts over %d benchmarks (MSE+MAE cells):\n",
              total);
  for (const auto& m : models) {
    std::printf("  %-10s %d\n", m.c_str(), first_counts[m]);
  }
  std::printf(
      "\nPaper shape check (Table VII): MSD-Mixer led 45/48 benchmarks and\n"
      "stayed stable as the missing ratio grew, while baselines degraded\n"
      "quickly. Expected here: MSD-Mixer leads; the interpolation floor\n"
      "worsens sharply at high missing ratios.\n");
  return bench::ExportTelemetry(argc, argv) ? 0 : 1;
}
