// Spotlight comparison: every implemented forecaster on two representative
// long-term benchmarks (ETTh1-like and ECL-like, horizon 96). Complements
// bench_table04_longterm, which sweeps all datasets/horizons with the core
// roster; this binary adds the heavier reimplementations (TimesNet-lite and
// the Transformer/NST-like forecaster, plus N-HiTS) that would double the
// full sweep's runtime.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/dlinear.h"
#include "baselines/lightts.h"
#include "baselines/nbeats.h"
#include "baselines/nhits.h"
#include "baselines/patchtst.h"
#include "baselines/timesnet_lite.h"
#include "baselines/transformer_forecaster.h"
#include "bench_util.h"
#include "datagen/long_term.h"
#include "datagen/series_builder.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

using bench::BenchTrainer;
using bench::MixerConfig;

struct RunResult {
  std::string model;
  RegressionScores scores;
};

std::vector<RunResult> RunAll(const Tensor& series, int64_t period) {
  const int64_t channels = series.dim(0);
  constexpr int64_t kHorizon = 96;
  ForecastExperimentConfig config;
  config.lookback = 96;
  config.horizon = kHorizon;
  config.train_stride = 2;
  config.eval_stride = 8;
  config.trainer = BenchTrainer(/*epochs=*/4, /*max_batches=*/30, 4e-3f);

  std::vector<RunResult> results;
  {
    Rng rng(1);
    MsdMixerConfig mc =
        MixerConfig(TaskType::kForecast, channels, 96, kHorizon, period);
    mc.use_instance_norm = true;
    MsdMixer mixer(mc, rng);
    ResidualLossOptions ro;
    ro.max_lag = 24;
    MsdMixerTaskModel model(&mixer, 0.5f, ro);
    results.push_back(
        {"MSD-Mixer", RunForecastExperiment(model, series, config)});
  }
  {
    Rng rng(2);
    PatchTstConfig pc;
    pc.input_length = 96;
    pc.horizon = kHorizon;
    PatchTst patchtst(pc, rng);
    ModuleTaskModel model(&patchtst);
    results.push_back(
        {"PatchTST", RunForecastExperiment(model, series, config)});
  }
  {
    // TimesNet-lite detects its periods from the train span.
    Rng rng(3);
    SeriesSplits splits = SplitSeries(series, config.split);
    StandardScaler scaler;
    scaler.Fit(splits.train);
    Tensor reference =
        Slice(scaler.Transform(splits.train), 1, 0,
              std::min<int64_t>(splits.train.dim(1), 512));
    TimesNetLite timesnet(96, kHorizon, channels, reference, rng, 3);
    ModuleTaskModel model(&timesnet);
    results.push_back(
        {"TimesNet-lite", RunForecastExperiment(model, series, config)});
  }
  {
    Rng rng(4);
    TransformerForecasterConfig tc;
    tc.input_length = 96;
    tc.horizon = kHorizon;
    TransformerForecaster transformer(tc, channels, rng);
    ModuleTaskModel model(&transformer);
    results.push_back(
        {"NST-like", RunForecastExperiment(model, series, config)});
  }
  {
    Rng rng(5);
    NHits nhits(96, kHorizon, rng, {8, 4, 1});
    ModuleTaskModel model(&nhits);
    results.push_back({"N-HiTS", RunForecastExperiment(model, series, config)});
  }
  {
    Rng rng(6);
    NBeats nbeats(96, kHorizon, rng);
    ModuleTaskModel model(&nbeats);
    results.push_back({"N-BEATS", RunForecastExperiment(model, series, config)});
  }
  {
    Rng rng(7);
    DLinear dlinear(96, kHorizon, rng);
    ModuleTaskModel model(&dlinear);
    results.push_back({"DLinear", RunForecastExperiment(model, series, config)});
  }
  {
    Rng rng(8);
    LightTs lightts(96, kHorizon, rng);
    ModuleTaskModel model(&lightts);
    results.push_back({"LightTS", RunForecastExperiment(model, series, config)});
  }
  return results;
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  msd::bench::InitThreads(argc, argv);
  using namespace msd;
  std::printf(
      "== Spotlight: all eight implemented forecasters, horizon 96 ==\n"
      "(extends Table IV with the heavier baselines)\n\n");
  bench::TablePrinter table({"Model", "ETTh1 MSE/MAE", "ECL MSE/MAE"},
                            {14, 14, 14});
  std::vector<std::vector<RunResult>> per_dataset;
  for (LongTermDataset ds :
       {LongTermDataset::kEttH1, LongTermDataset::kEcl}) {
    Tensor series = GenerateSeries(LongTermConfig(ds, /*seed=*/1));
    per_dataset.push_back(RunAll(series, LongTermDominantPeriod(ds)));
  }
  table.PrintHeader();
  std::vector<double> etth1_mse;
  std::vector<double> ecl_mse;
  for (const auto& r : per_dataset[0]) etth1_mse.push_back(r.scores.mse);
  for (const auto& r : per_dataset[1]) ecl_mse.push_back(r.scores.mse);
  const auto mark0 = bench::MarkBest(etth1_mse);
  const auto mark1 = bench::MarkBest(ecl_mse);
  for (size_t m = 0; m < per_dataset[0].size(); ++m) {
    table.PrintRow({per_dataset[0][m].model,
                    mark0[m] + "/" + bench::Fmt(per_dataset[0][m].scores.mae),
                    mark1[m] + "/" + bench::Fmt(per_dataset[1][m].scores.mae)});
  }
  table.PrintRule();
  std::printf(
      "\nPaper shape check: MSD-Mixer first, PatchTST/TimesNet the closest\n"
      "pursuers (Table IV's strongest baselines), linear models behind on\n"
      "driver-coupled multivariate data.\n");
  return bench::ExportTelemetry(argc, argv) ? 0 : 1;
}
