// A/B ablations for the four scale-adaptations this reproduction applies on
// top of the paper's recipe (documented in DESIGN.md §2). Each row shows the
// adapted configuration against the paper-literal one on a representative
// benchmark, demonstrating why the adaptation was needed at this data/compute
// scale.
//
//   1. Long-term forecasting: reversible instance normalization on/off.
//   2. Classification: head dropout 0.7 vs none (paper-layout heads).
//   3. Anomaly detection: bottlenecked (p=50 -> d=4) vs full-capacity mixer.
//   4. Imputation: masked-position loss vs full-reconstruction loss.
#include <cstdio>

#include "bench_util.h"
#include "datagen/anomaly_gen.h"
#include "datagen/classification_gen.h"
#include "datagen/long_term.h"
#include "datagen/series_builder.h"

namespace msd {
namespace {

using bench::BenchTrainer;
using bench::Fmt;
using bench::MixerConfig;

double LongTermMse(bool instance_norm, const Tensor& series) {
  ForecastExperimentConfig config;
  config.lookback = 96;
  config.horizon = 96;
  config.train_stride = 2;
  config.eval_stride = 8;
  config.trainer = BenchTrainer(4, 30, 4e-3f);
  Rng rng(1);
  MsdMixerConfig mc =
      MixerConfig(TaskType::kForecast, series.dim(0), 96, 96, 24);
  mc.use_instance_norm = instance_norm;
  MsdMixer mixer(mc, rng);
  ResidualLossOptions ro;
  ro.max_lag = 24;
  MsdMixerTaskModel model(&mixer, 0.5f, ro);
  return RunForecastExperiment(model, series, config).mse;
}

double ClassificationAcc(float head_dropout, const ClassificationData& data,
                         const ClassificationSubset& subset) {
  ClassificationExperimentConfig config;
  config.trainer = BenchTrainer(20, 0, 2e-3f);
  config.trainer.batch_size = 16;
  config.trainer.weight_decay = 1e-3f;
  Rng rng(2);
  MsdMixerConfig mc =
      MixerConfig(TaskType::kClassification, subset.channels, subset.length,
                  1, subset.length / 4, subset.classes);
  mc.model_dim = 8;
  mc.head_dropout = head_dropout;
  MsdMixer mixer(mc, rng);
  ResidualLossOptions ro;
  ro.max_lag = 16;
  MsdMixerTaskModel model(&mixer, 0.05f, ro);
  return RunClassificationExperiment(model, data, config);
}

double AnomalyF1(bool bottleneck, const AnomalyData& data) {
  AnomalyExperimentConfig config;
  config.window = kAnomalyWindow;
  config.trainer = BenchTrainer(8, 20);
  Rng rng(3);
  MsdMixerConfig mc = MixerConfig(TaskType::kReconstruction,
                                  data.train.dim(0), kAnomalyWindow, 1, 25);
  if (bottleneck) {
    mc.patch_sizes = {50, 25, 10};
    mc.model_dim = 4;
  }
  MsdMixer mixer(mc, rng);
  ResidualLossOptions ro;
  ro.max_lag = 24;
  MsdMixerTaskModel model(&mixer, bottleneck ? 0.1f : 0.5f, ro);
  return RunAnomalyExperiment(model, data.train, data.test, data.labels,
                              config)
      .scores.f1;
}

double ImputationMse(bool masked_loss, const Tensor& series) {
  ImputationExperimentConfig config;
  config.window = 96;
  config.missing_ratio = 0.25;
  config.masked_loss = masked_loss;
  config.train_stride = 4;
  config.eval_stride = 8;
  config.trainer = BenchTrainer(4, 22);
  Rng rng(4);
  MsdMixerConfig mc =
      MixerConfig(TaskType::kReconstruction, series.dim(0), 96, 1, 24);
  MsdMixer mixer(mc, rng);
  ResidualLossOptions ro;
  ro.include_autocorrelation = false;
  MsdMixerTaskModel model(&mixer, 0.5f, ro);
  return RunImputationExperiment(model, series, config).mse;
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  msd::bench::InitThreads(argc, argv);
  using namespace msd;
  std::printf(
      "== Adaptation ablations: the scale-adaptations of DESIGN.md §2, "
      "A/B ==\n\n");
  bench::TablePrinter table(
      {"Adaptation", "Benchmark", "Adapted", "Paper-literal"},
      {26, 22, 12, 13});
  table.PrintHeader();

  {
    Tensor series = GenerateSeries(LongTermConfig(LongTermDataset::kEttH1, 1));
    const double with_norm = LongTermMse(true, series);
    const double without = LongTermMse(false, series);
    table.PrintRow({"instance norm (forecast)", "ETTh1/96 MSE",
                    Fmt(with_norm), Fmt(without)});
    std::fflush(stdout);
  }
  {
    ClassificationSubset subset{"AWR", 9, 144, 10, 200, 200, 2.2};
    ClassificationData data = GenerateClassificationData(subset, 9);
    const double with_dropout = ClassificationAcc(0.7f, data, subset);
    const double without = ClassificationAcc(0.0f, data, subset);
    table.PrintRow({"head dropout (classif.)", "AWR accuracy",
                    Fmt(with_dropout), Fmt(without)});
    std::fflush(stdout);
  }
  {
    AnomalyData data = GenerateAnomalyDataset(AnomalyDataset::kSmd, 3);
    const double bottleneck = AnomalyF1(true, data);
    const double full = AnomalyF1(false, data);
    table.PrintRow({"bottleneck (anomaly)", "SMD F1", Fmt(bottleneck),
                    Fmt(full)});
    std::fflush(stdout);
  }
  {
    Tensor series = GenerateSeries(LongTermConfig(LongTermDataset::kEttM1, 2));
    const double masked = ImputationMse(true, series);
    const double full = ImputationMse(false, series);
    table.PrintRow({"masked loss (imputation)", "ETTm1/25% MSE", Fmt(masked),
                    Fmt(full)});
  }
  table.PrintRule();
  std::printf(
      "\nEach adaptation should improve (or be required by) its task at this\n"
      "scale; see DESIGN.md §2 for the rationale behind each.\n");
  return bench::ExportTelemetry(argc, argv) ? 0 : 1;
}
