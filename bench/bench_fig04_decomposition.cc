// Reproduces paper Fig. 4 (decomposition case study): trains MSD-Mixer on an
// ETTh1-like forecasting task with and without the Residual Loss
// (MSD-Mixer vs MSD-Mixer-L), then decomposes a test window and reports,
// per layer, the component's scale and dominant period, plus the residual's
// magnitude and autocorrelation statistics. ASCII sparklines stand in for
// the paper's line plots.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "datagen/long_term.h"
#include "datagen/series_builder.h"
#include "metrics/metrics.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

using bench::BenchTrainer;
using bench::MixerConfig;

std::string Sparkline(const Tensor& series, int64_t channel, int64_t width) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  const int64_t length = series.dim(-1);
  const float* row = series.data() + channel * length;
  float lo = row[0];
  float hi = row[0];
  for (int64_t t = 0; t < length; ++t) {
    lo = std::min(lo, row[t]);
    hi = std::max(hi, row[t]);
  }
  const float span = std::max(hi - lo, 1e-6f);
  std::string out;
  for (int64_t i = 0; i < width; ++i) {
    const int64_t t = i * length / width;
    const int level =
        std::min(7, static_cast<int>((row[t] - lo) / span * 8.0f));
    out += kLevels[level];
  }
  return out;
}

float StdDev(const Tensor& t) {
  const float mean = MeanAll(t).item();
  return std::sqrt(MeanAll(Square(AddScalar(t, -mean))).item());
}

// Dominant ACF lag (the lag in [2, L/2] with the largest coefficient).
int64_t DominantLag(const Tensor& window, int64_t channel) {
  Tensor row = Slice(window, 0, channel, 1);
  Tensor acf = AutocorrelationMatrix(row);
  int64_t best_lag = 1;
  float best = -2.0f;
  for (int64_t lag = 2; lag < window.dim(1) / 2; ++lag) {
    const float a = acf.at({0, lag - 1});
    if (a > best) {
      best = a;
      best_lag = lag;
    }
  }
  return best_lag;
}

struct TrainedDecomposition {
  std::vector<Tensor> components;  // each [C, L]
  Tensor residual;                 // [C, L]
};

TrainedDecomposition TrainAndDecompose(float lambda, const Tensor& series) {
  ForecastExperimentConfig config;
  config.lookback = 96;
  config.horizon = 96;
  config.train_stride = 2;
  config.eval_stride = 8;
  config.trainer = BenchTrainer(5, 40);

  Rng rng(77);
  MsdMixerConfig mc =
      MixerConfig(TaskType::kForecast, series.dim(0), 96, 96, /*period=*/24);
  // The paper's case study uses patch sizes {24, 12, 6, 2, 1} on ETTh1.
  mc.patch_sizes = {24, 12, 6, 2, 1};
  MsdMixer mixer(mc, rng);
  ResidualLossOptions ro;
  ro.max_lag = 48;
  MsdMixerTaskModel model(&mixer, lambda, ro);
  RunForecastExperiment(model, series, config);

  // Decompose the first test window.
  SeriesSplits splits = SplitSeries(series, config.split);
  StandardScaler scaler;
  scaler.Fit(splits.train);
  Tensor window = Slice(scaler.Transform(splits.test), 1, 0, 96);
  NoGradGuard guard;
  mixer.SetTraining(false);
  MsdMixerOutput out = mixer.Run(Variable(window.Reshape({1, window.dim(0), 96})),
                                 /*collect_components=*/true);
  TrainedDecomposition result;
  for (const Variable& s : out.components) {
    result.components.push_back(
        s.value().Reshape({window.dim(0), 96}));
  }
  result.residual = out.residual.value().Reshape({window.dim(0), 96});
  return result;
}

void Report(const char* title, const TrainedDecomposition& dec,
            const Tensor& window) {
  const std::vector<int64_t> patch_sizes = {24, 12, 6, 2, 1};
  std::printf("%s\n", title);
  std::printf("  input   std %.3f  dominant ACF lag %2lld  |%s|\n",
              StdDev(window), static_cast<long long>(DominantLag(window, 0)),
              Sparkline(window, 0, 64).c_str());
  for (size_t i = 0; i < dec.components.size(); ++i) {
    std::printf("  S%zu(p=%2lld) std %.3f  dominant ACF lag %2lld  |%s|\n",
                i + 1, static_cast<long long>(patch_sizes[i]),
                StdDev(dec.components[i]),
                static_cast<long long>(DominantLag(dec.components[i], 0)),
                Sparkline(dec.components[i], 0, 64).c_str());
  }
  Tensor acf = AutocorrelationMatrix(dec.residual);
  const double band_fraction = WhiteNoiseBandFraction(acf, 96, 2.0);
  std::printf(
      "  residual std %.3f  |ACF| within +-2/sqrt(L) band: %.0f%%  |%s|\n\n",
      StdDev(dec.residual), 100.0 * band_fraction,
      Sparkline(dec.residual, 0, 64).c_str());
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  msd::bench::InitThreads(argc, argv);
  using namespace msd;
  std::printf(
      "== Fig. 4 analogue: decomposition case study (ETTh1-like, L=96, "
      "patch sizes {24,12,6,2,1}) ==\n\n");
  Tensor series = GenerateSeries(LongTermConfig(LongTermDataset::kEttH1, 4));

  TrainedDecomposition with_loss = TrainAndDecompose(0.5f, series);
  TrainedDecomposition without_loss = TrainAndDecompose(0.0f, series);

  SeriesSplits splits = SplitSeries(series, {0.7, 0.1});
  StandardScaler scaler;
  scaler.Fit(splits.train);
  Tensor window = Slice(scaler.Transform(splits.test), 1, 0, 96);

  Report("MSD-Mixer (with Residual Loss):", with_loss, window);
  Report("MSD-Mixer-L (without Residual Loss):", without_loss, window);

  const float with_std = StdDev(with_loss.residual);
  const float without_std = StdDev(without_loss.residual);
  std::printf(
      "Residual scale: with loss %.3f vs without %.3f (ratio %.2fx)\n",
      with_std, without_std, without_std / std::max(with_std, 1e-6f));
  std::printf(
      "\nPaper shape check (Fig. 4): without the Residual Loss most of the\n"
      "input's information stays in the residual (large, structured\n"
      "residual; components carry little); with it, components absorb the\n"
      "multi-scale patterns and the residual shrinks toward in-band white\n"
      "noise. Expected here: smaller residual std and higher in-band ACF\n"
      "fraction for the model trained with the Residual Loss.\n");
  return bench::ExportTelemetry(argc, argv) ? 0 : 1;
}
