// Reproduces paper Table XII (ablation study): MSD-Mixer vs its variants on
// one representative benchmark per task.
//
//   MSD-Mixer    full model
//   MSD-Mixer-I  inverted (ascending) patch-size order
//   MSD-Mixer-N  pooling + interpolation instead of patching
//   MSD-Mixer-U  uniform sqrt(L) patch sizes in every layer
//   MSD-Mixer-L  trained without the Residual Loss (lambda = 0)
//
// Representative benchmarks: ETTh1/H96 (long-term), M4 Quarterly
// (short-term), ETTm1 @ 25% (imputation), SMD (anomaly), CT (classification).
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "datagen/anomaly_gen.h"
#include "datagen/classification_gen.h"
#include "datagen/long_term.h"
#include "datagen/m4like.h"
#include "datagen/series_builder.h"

namespace msd {
namespace {

using bench::BenchTrainer;
using bench::MixerConfig;

enum class Variant { kFull, kInverted, kNoPatch, kUniform, kNoResidualLoss };

const std::vector<std::pair<Variant, std::string>> kVariants = {
    {Variant::kFull, "MSD-Mixer"},    {Variant::kInverted, "-I"},
    {Variant::kNoPatch, "-N"},        {Variant::kUniform, "-U"},
    {Variant::kNoResidualLoss, "-L"},
};

// Applies a variant to a base config; returns the residual-loss weight.
float ApplyVariant(Variant variant, MsdMixerConfig* config) {
  switch (variant) {
    case Variant::kFull:
      return 0.5f;
    case Variant::kInverted:
      std::sort(config->patch_sizes.begin(), config->patch_sizes.end());
      return 0.5f;
    case Variant::kNoPatch:
      config->patching_mode = PatchingMode::kPoolingInterpolation;
      return 0.5f;
    case Variant::kUniform:
      config->patch_sizes = MsdMixerConfig::UniformPatchSizes(
          config->input_length,
          static_cast<int64_t>(config->patch_sizes.size()));
      return 0.5f;
    case Variant::kNoResidualLoss:
      return 0.0f;
  }
  MSD_FATAL("unknown variant");
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  msd::bench::InitThreads(argc, argv);
  using namespace msd;
  std::printf(
      "== Table XII analogue: MSD-Mixer ablations "
      "(one representative benchmark per task) ==\n\n");

  bench::TablePrinter table({"Task", "Metric", "MSD-Mixer", "-I", "-N", "-U",
                             "-L"},
                            {22, 7, 9, 9, 9, 9, 9});
  table.PrintHeader();

  // ---- Long-term forecasting: ETTh1, horizon 96 -----------------------------
  {
    Tensor series = GenerateSeries(LongTermConfig(LongTermDataset::kEttH1, 1));
    ForecastExperimentConfig config;
    config.lookback = 96;
    config.horizon = 96;
    config.train_stride = 2;
    config.eval_stride = 8;
    config.trainer = BenchTrainer(4, 35, 4e-3f);
    std::vector<double> mses;
    std::vector<double> maes;
    for (const auto& [variant, name] : kVariants) {
      Rng rng(11);
      MsdMixerConfig mc = MixerConfig(TaskType::kForecast, series.dim(0), 96,
                                      96, /*period=*/24);
      mc.use_instance_norm = true;
      const float lambda = ApplyVariant(variant, &mc);
      MsdMixer mixer(mc, rng);
      ResidualLossOptions ro;
      ro.max_lag = 24;
      MsdMixerTaskModel model(&mixer, lambda, ro);
      RegressionScores s = RunForecastExperiment(model, series, config);
      mses.push_back(s.mse);
      maes.push_back(s.mae);
      std::fflush(stdout);
    }
    auto mse_row = bench::MarkBest(mses);
    auto mae_row = bench::MarkBest(maes);
    std::vector<std::string> row = {"Long-term (ETTh1/96)", "MSE"};
    row.insert(row.end(), mse_row.begin(), mse_row.end());
    table.PrintRow(row);
    row = {"", "MAE"};
    row.insert(row.end(), mae_row.begin(), mae_row.end());
    table.PrintRow(row);
    table.PrintRule();
    std::fflush(stdout);
  }

  // ---- Short-term forecasting: Quarterly ------------------------------------
  {
    M4SubsetSpec spec{"Quarterly", 8, 4, 48, 48};
    auto data = GenerateM4Like(spec, 5);
    ShortTermExperimentConfig config;
    config.lookback_multiple = 3;
    config.trainer = BenchTrainer(30, 0, 5e-3f);
    const int64_t lookback = ShortTermLookback(spec, config);
    std::vector<double> smapes;
    std::vector<double> owas;
    for (const auto& [variant, name] : kVariants) {
      Rng rng(12);
      MsdMixerConfig mc =
          MixerConfig(TaskType::kForecast, 1, lookback, spec.horizon, 4);
      const float lambda = ApplyVariant(variant, &mc);
      MsdMixer mixer(mc, rng);
      ResidualLossOptions ro;
      ro.max_lag = 8;
      MsdMixerTaskModel model(&mixer, lambda, ro);
      M4Scores s = RunShortTermExperiment(model, data, spec, config);
      smapes.push_back(s.smape);
      owas.push_back(s.owa);
    }
    auto smape_row = bench::MarkBest(smapes);
    auto owa_row = bench::MarkBest(owas);
    std::vector<std::string> row = {"Short-term (Quarterly)", "SMAPE"};
    row.insert(row.end(), smape_row.begin(), smape_row.end());
    table.PrintRow(row);
    row = {"", "OWA"};
    row.insert(row.end(), owa_row.begin(), owa_row.end());
    table.PrintRow(row);
    table.PrintRule();
    std::fflush(stdout);
  }

  // ---- Imputation: ETTm1 @ 25% ------------------------------------------------
  {
    Tensor series = GenerateSeries(LongTermConfig(LongTermDataset::kEttM1, 2));
    ImputationExperimentConfig config;
    config.window = 96;
    config.missing_ratio = 0.25;
    config.train_stride = 4;
    config.eval_stride = 8;
    config.trainer = BenchTrainer(5, 30);
    std::vector<double> mses;
    std::vector<double> maes;
    for (const auto& [variant, name] : kVariants) {
      Rng rng(13);
      MsdMixerConfig mc = MixerConfig(TaskType::kReconstruction,
                                      series.dim(0), 96, 1, 24);
      const float lambda = ApplyVariant(variant, &mc);
      MsdMixer mixer(mc, rng);
      ResidualLossOptions ro;
      ro.include_autocorrelation = false;
      MsdMixerTaskModel model(&mixer, lambda, ro);
      RegressionScores s = RunImputationExperiment(model, series, config);
      mses.push_back(s.mse);
      maes.push_back(s.mae);
    }
    auto mse_row = bench::MarkBest(mses);
    auto mae_row = bench::MarkBest(maes);
    std::vector<std::string> row = {"Imputation (ETTm1/25%)", "MSE"};
    row.insert(row.end(), mse_row.begin(), mse_row.end());
    table.PrintRow(row);
    row = {"", "MAE"};
    row.insert(row.end(), mae_row.begin(), mae_row.end());
    table.PrintRow(row);
    table.PrintRule();
    std::fflush(stdout);
  }

  // ---- Anomaly detection: SMD ---------------------------------------------------
  {
    AnomalyData data = GenerateAnomalyDataset(AnomalyDataset::kSmd, 3);
    AnomalyExperimentConfig config;
    config.window = kAnomalyWindow;
    config.trainer = BenchTrainer(6, 20);
    std::vector<double> f1s;
    for (const auto& [variant, name] : kVariants) {
      Rng rng(14);
      MsdMixerConfig mc = MixerConfig(TaskType::kReconstruction,
                                      data.train.dim(0), kAnomalyWindow, 1,
                                      25);
      mc.patch_sizes = {50, 25, 10};
      mc.model_dim = 4;
      const float lambda = ApplyVariant(variant, &mc) > 0.0f ? 0.1f : 0.0f;
      MsdMixer mixer(mc, rng);
      ResidualLossOptions ro;
      ro.max_lag = 24;
      MsdMixerTaskModel model(&mixer, lambda, ro);
      AnomalyEvalResult r = RunAnomalyExperiment(model, data.train, data.test,
                                                 data.labels, config);
      f1s.push_back(r.scores.f1);
    }
    auto f1_row = bench::MarkBest(f1s, 3, /*lower_is_better=*/false);
    std::vector<std::string> row = {"Anomaly (SMD)", "F1"};
    row.insert(row.end(), f1_row.begin(), f1_row.end());
    table.PrintRow(row);
    table.PrintRule();
    std::fflush(stdout);
  }

  // ---- Classification: CT ----------------------------------------------------------
  {
    ClassificationSubset subset{"CT", 3, 182, 10, 300, 300, 1.8};
    ClassificationData data = GenerateClassificationData(subset, 9);
    ClassificationExperimentConfig config;
    config.trainer = BenchTrainer(25, 0, 2e-3f);
    config.trainer.batch_size = 16;
    config.trainer.weight_decay = 1e-3f;
    std::vector<double> accs;
    for (const auto& [variant, name] : kVariants) {
      Rng rng(15);
      MsdMixerConfig mc = MixerConfig(TaskType::kClassification,
                                      subset.channels, subset.length, 1,
                                      subset.length / 4, subset.classes);
      mc.model_dim = 8;
      mc.head_dropout = 0.7f;
      const float lambda_base = ApplyVariant(variant, &mc);
      const float lambda = lambda_base > 0.0f ? 0.05f : 0.0f;
      MsdMixer mixer(mc, rng);
      ResidualLossOptions ro;
      ro.max_lag = 16;
      MsdMixerTaskModel model(&mixer, lambda, ro);
      accs.push_back(RunClassificationExperiment(model, data, config));
    }
    auto acc_row = bench::MarkBest(accs, 3, /*lower_is_better=*/false);
    std::vector<std::string> row = {"Classification (CT)", "ACC"};
    row.insert(row.end(), acc_row.begin(), acc_row.end());
    table.PrintRow(row);
    table.PrintRule();
  }

  std::printf(
      "\nPaper shape check (Table XII): -I is nearly identical to the full\n"
      "model (layer order does not matter); -N and -U degrade every task\n"
      "(-N most on classification, -U most on long-term MSE 0.345 -> 0.422);\n"
      "-L consistently hurts, most visibly anomaly F1 (0.930 -> 0.897) and\n"
      "classification accuracy (0.807 -> 0.768).\n");
  return bench::ExportTelemetry(argc, argv) ? 0 : 1;
}
