// google-benchmark microbenchmarks for the substrate kernels that dominate
// MSD-Mixer training: matmul, FFT, permute, patching, the residual-loss ACF,
// a full forward/backward step, and a whole trainer epoch.
//
// Besides the standard google-benchmark flags, accepts
//   --metrics-out <path>  combined metrics-registry + span-aggregate JSON
//   --trace-out <path>    chrome://tracing event file
//   --threads <n>         global pool size for the whole run (docs/RUNTIME.md)
// so kernel-level telemetry (tensor/matmul, tensor/fft, train/epoch spans)
// lands in BENCH_*.json trajectories.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "core/msd_mixer.h"
#include "core/patching.h"
#include "core/residual_loss.h"
#include "metrics/metrics.h"
#include "runtime/parallel.h"
#include "tasks/trainer.h"
#include "tensor/fft.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

void BM_MatMul2D(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandNormal({n, n}, 0, 1, rng);
  Tensor b = Tensor::RandNormal({n, n}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul2D)->Arg(32)->Arg(64)->Arg(128);

void BM_BatchedMatMul(benchmark::State& state) {
  Rng rng(1);
  // The mixer's typical inner shape: [B, C, L', p] x [p, h].
  Tensor a = Tensor::RandNormal({32, 7, 4, 24}, 0, 1, rng);
  Tensor b = Tensor::RandNormal({24, 32}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
}
BENCHMARK(BM_BatchedMatMul);

void BM_BiasAddSuffixBroadcast(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::RandNormal({32, 7, 4, 32}, 0, 1, rng);
  Tensor bias = Tensor::RandNormal({32}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Add(a, bias));
  }
}
BENCHMARK(BM_BiasAddSuffixBroadcast);

void BM_PermuteLastTwo(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::RandNormal({32, 7, 24, 32}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Transpose(a, -1, -2));
  }
}
BENCHMARK(BM_PermuteLastTwo);

void BM_PermuteGeneric(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::RandNormal({32, 7, 24, 32}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Permute(a, {0, 3, 2, 1}));
  }
}
BENCHMARK(BM_PermuteGeneric);

void BM_PatchUnpatch(benchmark::State& state) {
  Rng rng(1);
  Variable x(Tensor::RandNormal({32, 7, 96}, 0, 1, rng));
  for (auto _ : state) {
    Variable p = Patch(x, state.range(0));
    benchmark::DoNotOptimize(Unpatch(p, 96));
  }
}
BENCHMARK(BM_PatchUnpatch)->Arg(24)->Arg(5)->Arg(1);

void BM_Fft(benchmark::State& state) {
  Rng rng(1);
  Tensor series = Tensor::RandNormal({7, 256}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopPeriodsFft(series, 3));
  }
}
BENCHMARK(BM_Fft);

void BM_TrainerEpoch(benchmark::State& state) {
  Rng rng(1);
  MsdMixerConfig config;
  config.input_length = 48;
  config.channels = 3;
  config.patch_sizes = {12, 4, 1};
  config.model_dim = 8;
  config.hidden_dim = 16;
  config.task = TaskType::kForecast;
  config.horizon = 24;
  Tensor series = Tensor::RandNormal({3, 400}, 0, 1, rng);
  ForecastWindowDataset data(series, 48, 24, 4);
  TrainerConfig trainer;
  trainer.epochs = 1;
  trainer.batch_size = 16;
  trainer.max_batches_per_epoch = 4;
  trainer.telemetry = TelemetrySink::kRegistry;
  for (auto _ : state) {
    state.PauseTiming();
    Rng model_rng(7);
    MsdMixer mixer(config, model_rng);
    MsdMixerTaskModel model(&mixer, /*lambda=*/0.3f);
    state.ResumeTiming();
    TrainStats stats = Train(model, data, trainer, ForecastMseTaskLoss);
    benchmark::DoNotOptimize(stats.total_wall_seconds);
  }
}
BENCHMARK(BM_TrainerEpoch);

void BM_ResidualLossForwardBackward(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    Variable z(Tensor::RandNormal({16, 7, 96}, 0, 1, rng), true);
    ResidualLossOptions options;
    options.max_lag = state.range(0);
    ResidualLoss(z, options).Backward();
    benchmark::DoNotOptimize(z.grad());
  }
}
BENCHMARK(BM_ResidualLossForwardBackward)->Arg(24)->Arg(95);

void BM_AutocorrelationMatrix(benchmark::State& state) {
  Rng rng(1);
  Tensor series = Tensor::RandNormal({7, 96}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AutocorrelationMatrix(series));
  }
}
BENCHMARK(BM_AutocorrelationMatrix);

void BM_MixerTrainStep(benchmark::State& state) {
  Rng rng(1);
  MsdMixerConfig config;
  config.input_length = 96;
  config.channels = 7;
  config.patch_sizes = {24, 12, 6, 2, 1};
  config.model_dim = 16;
  config.hidden_dim = 32;
  config.drop_path = 0.0f;
  config.task = TaskType::kForecast;
  config.horizon = 96;
  MsdMixer mixer(config, rng);
  Tensor x = Tensor::RandNormal({32, 7, 96}, 0, 1, rng);
  Tensor y = Tensor::RandNormal({32, 7, 96}, 0, 1, rng);
  for (auto _ : state) {
    for (Variable& p : mixer.Parameters()) p.ZeroGrad();
    MsdMixerOutput out = mixer.Run(Variable(x));
    Variable loss = Add(MeanAll(Square(Sub(out.prediction, Variable(y)))),
                        MulScalar(ResidualLoss(out.residual,
                                               {2.0f, true, 24}),
                                  0.5f));
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_MixerTrainStep);

void BM_Rfft(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Tensor noise = Tensor::RandNormal({static_cast<int64_t>(n)}, 0, 1, rng);
  std::vector<double> x(n);
  for (size_t i = 0; i < n; ++i) x[i] = noise.data()[i];
  std::vector<std::complex<double>> out;
  for (auto _ : state) {
    Rfft(x.data(), n, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Rfft)->Arg(256)->Arg(4096);

// ---- Thread-scaling sweeps --------------------------------------------------
// The same kernel at pool sizes 1/2/4 (Arg is the thread count). check.sh's
// release leg records this family as BENCH_threads.json; outputs are
// bit-identical across the sweep, so only wall-clock should move.

void BM_MatMulThreads(benchmark::State& state) {
  runtime::ScopedThreads scoped(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::RandNormal({128, 128}, 0, 1, rng);
  Tensor b = Tensor::RandNormal({128, 128}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 128 * 128 * 128);
}
BENCHMARK(BM_MatMulThreads)->Arg(1)->Arg(2)->Arg(4);

// GEMM shape family at the layer shapes BM_MixerTrainStep actually runs
// (B=32, C=7, L=96, patch 24, d=16, h=32, horizon 96), with the fused
// bias/activation epilogues the model uses at each site.

// Patch embedding: [B, C, L', p] x [p, d] + bias (shared-B flatten path).
void BM_GemmPatchEmbedThreads(benchmark::State& state) {
  runtime::ScopedThreads scoped(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::RandNormal({32, 7, 4, 24}, 0, 1, rng);
  Tensor w = Tensor::RandNormal({24, 16}, 0, 1, rng);
  Tensor bias = Tensor::RandNormal({16}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MatMulEx(a, w, bias, gemm::Activation::kIdentity));
  }
  state.SetItemsProcessed(state.iterations() * 32 * 7 * 4 * 24 * 16);
}
BENCHMARK(BM_GemmPatchEmbedThreads)->Arg(1)->Arg(2)->Arg(4);

// Mixing MLP first layer: [B, C, L', d] x [d, h] + bias + gelu, fused.
void BM_GemmChannelMixThreads(benchmark::State& state) {
  runtime::ScopedThreads scoped(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::RandNormal({32, 7, 4, 16}, 0, 1, rng);
  Tensor w = Tensor::RandNormal({16, 32}, 0, 1, rng);
  Tensor bias = Tensor::RandNormal({32}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulEx(a, w, bias, gemm::Activation::kGelu));
  }
  state.SetItemsProcessed(state.iterations() * 32 * 7 * 4 * 16 * 32);
}
BENCHMARK(BM_GemmChannelMixThreads)->Arg(1)->Arg(2)->Arg(4);

// Forecast head projection: [B, C, L'*d] x [L'*d, H] + bias.
void BM_GemmHeadThreads(benchmark::State& state) {
  runtime::ScopedThreads scoped(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::RandNormal({32, 7, 64}, 0, 1, rng);
  Tensor w = Tensor::RandNormal({64, 96}, 0, 1, rng);
  Tensor bias = Tensor::RandNormal({96}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MatMulEx(a, w, bias, gemm::Activation::kIdentity));
  }
  state.SetItemsProcessed(state.iterations() * 32 * 7 * 64 * 96);
}
BENCHMARK(BM_GemmHeadThreads)->Arg(1)->Arg(2)->Arg(4);

// Channel-parallel real-input FFT (period detection path): per-channel rfft
// fans out across the pool, merge order is fixed, so outputs stay
// bit-identical while wall-clock scales.
void BM_RfftThreads(benchmark::State& state) {
  runtime::ScopedThreads scoped(state.range(0));
  Rng rng(1);
  Tensor series = Tensor::RandNormal({16, 512}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopPeriodsFft(series, 3));
  }
}
BENCHMARK(BM_RfftThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_ElementwiseThreads(benchmark::State& state) {
  runtime::ScopedThreads scoped(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::RandNormal({64, 7, 512}, 0, 1, rng);
  Tensor b = Tensor::RandNormal({64, 7, 512}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Gelu(Add(a, b)));
  }
  state.SetItemsProcessed(state.iterations() * a.numel());
}
BENCHMARK(BM_ElementwiseThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_MixerStepThreads(benchmark::State& state) {
  runtime::ScopedThreads scoped(state.range(0));
  Rng rng(1);
  MsdMixerConfig config;
  config.input_length = 96;
  config.channels = 7;
  config.patch_sizes = {24, 12, 6, 2, 1};
  config.model_dim = 16;
  config.hidden_dim = 32;
  config.task = TaskType::kForecast;
  config.horizon = 96;
  MsdMixer mixer(config, rng);
  Tensor x = Tensor::RandNormal({32, 7, 96}, 0, 1, rng);
  Tensor y = Tensor::RandNormal({32, 7, 96}, 0, 1, rng);
  for (auto _ : state) {
    for (Variable& p : mixer.Parameters()) p.ZeroGrad();
    MsdMixerOutput out = mixer.Run(Variable(x));
    Variable loss = Add(MeanAll(Square(Sub(out.prediction, Variable(y)))),
                        MulScalar(ResidualLoss(out.residual,
                                               {2.0f, true, 24}),
                                  0.5f));
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_MixerStepThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_MixerInference(benchmark::State& state) {
  Rng rng(1);
  MsdMixerConfig config;
  config.input_length = 96;
  config.channels = 7;
  config.patch_sizes = {24, 12, 6, 2, 1};
  config.model_dim = 16;
  config.hidden_dim = 32;
  config.task = TaskType::kForecast;
  config.horizon = 96;
  MsdMixer mixer(config, rng);
  mixer.SetTraining(false);
  Tensor x = Tensor::RandNormal({32, 7, 96}, 0, 1, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixer.Run(Variable(x)).prediction.value());
  }
}
BENCHMARK(BM_MixerInference);

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  // Peel off our flags before google-benchmark sees (and rejects) them;
  // remember the full original argv for the export at the end.
  msd::bench::InitThreads(argc, argv);
  const std::string metrics_out = msd::bench::MetricsOutPath(argc, argv);
  const std::string trace_out = msd::bench::TraceOutPath(argc, argv);
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-out" || arg == "--trace-out" || arg == "--threads") {
      ++i;  // skip the value
      continue;
    }
    if (arg.rfind("--metrics-out=", 0) == 0 ||
        arg.rfind("--trace-out=", 0) == 0 || arg.rfind("--threads=", 0) == 0) {
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             passthrough.data())) {
    return 1;
  }
  // Stamp the repo's own compile mode into the JSON context: recorded
  // baselines must come from Release builds, and tools/bench_compare
  // refuses files whose msd_build_type is not "release" (the library's
  // library_build_type reports how *benchmark* was packaged, not this tree).
  benchmark::AddCustomContext("msd_build_type", msd::bench::BuildTypeString());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bool ok = true;
  if (!metrics_out.empty()) ok = msd::bench::WriteTelemetryReport(metrics_out);
  if (!trace_out.empty()) {
    ok = msd::obs::Profiler::Global().WriteChromeTrace(trace_out) && ok;
  }
  return ok ? 0 : 1;
}
