// google-benchmark microbenchmarks for the substrate kernels that dominate
// MSD-Mixer training: matmul, permute, patching, the residual-loss ACF, and
// a full forward/backward step.
#include <benchmark/benchmark.h>

#include "core/msd_mixer.h"
#include "core/patching.h"
#include "core/residual_loss.h"
#include "metrics/metrics.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

void BM_MatMul2D(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandNormal({n, n}, 0, 1, rng);
  Tensor b = Tensor::RandNormal({n, n}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul2D)->Arg(32)->Arg(64)->Arg(128);

void BM_BatchedMatMul(benchmark::State& state) {
  Rng rng(1);
  // The mixer's typical inner shape: [B, C, L', p] x [p, h].
  Tensor a = Tensor::RandNormal({32, 7, 4, 24}, 0, 1, rng);
  Tensor b = Tensor::RandNormal({24, 32}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
}
BENCHMARK(BM_BatchedMatMul);

void BM_BiasAddSuffixBroadcast(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::RandNormal({32, 7, 4, 32}, 0, 1, rng);
  Tensor bias = Tensor::RandNormal({32}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Add(a, bias));
  }
}
BENCHMARK(BM_BiasAddSuffixBroadcast);

void BM_PermuteLastTwo(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::RandNormal({32, 7, 24, 32}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Transpose(a, -1, -2));
  }
}
BENCHMARK(BM_PermuteLastTwo);

void BM_PermuteGeneric(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::RandNormal({32, 7, 24, 32}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Permute(a, {0, 3, 2, 1}));
  }
}
BENCHMARK(BM_PermuteGeneric);

void BM_PatchUnpatch(benchmark::State& state) {
  Rng rng(1);
  Variable x(Tensor::RandNormal({32, 7, 96}, 0, 1, rng));
  for (auto _ : state) {
    Variable p = Patch(x, state.range(0));
    benchmark::DoNotOptimize(Unpatch(p, 96));
  }
}
BENCHMARK(BM_PatchUnpatch)->Arg(24)->Arg(5)->Arg(1);

void BM_ResidualLossForwardBackward(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    Variable z(Tensor::RandNormal({16, 7, 96}, 0, 1, rng), true);
    ResidualLossOptions options;
    options.max_lag = state.range(0);
    ResidualLoss(z, options).Backward();
    benchmark::DoNotOptimize(z.grad());
  }
}
BENCHMARK(BM_ResidualLossForwardBackward)->Arg(24)->Arg(95);

void BM_AutocorrelationMatrix(benchmark::State& state) {
  Rng rng(1);
  Tensor series = Tensor::RandNormal({7, 96}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AutocorrelationMatrix(series));
  }
}
BENCHMARK(BM_AutocorrelationMatrix);

void BM_MixerTrainStep(benchmark::State& state) {
  Rng rng(1);
  MsdMixerConfig config;
  config.input_length = 96;
  config.channels = 7;
  config.patch_sizes = {24, 12, 6, 2, 1};
  config.model_dim = 16;
  config.hidden_dim = 32;
  config.drop_path = 0.0f;
  config.task = TaskType::kForecast;
  config.horizon = 96;
  MsdMixer mixer(config, rng);
  Tensor x = Tensor::RandNormal({32, 7, 96}, 0, 1, rng);
  Tensor y = Tensor::RandNormal({32, 7, 96}, 0, 1, rng);
  for (auto _ : state) {
    for (Variable& p : mixer.Parameters()) p.ZeroGrad();
    MsdMixerOutput out = mixer.Run(Variable(x));
    Variable loss = Add(MeanAll(Square(Sub(out.prediction, Variable(y)))),
                        MulScalar(ResidualLoss(out.residual,
                                               {2.0f, true, 24}),
                                  0.5f));
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_MixerTrainStep);

void BM_MixerInference(benchmark::State& state) {
  Rng rng(1);
  MsdMixerConfig config;
  config.input_length = 96;
  config.channels = 7;
  config.patch_sizes = {24, 12, 6, 2, 1};
  config.model_dim = 16;
  config.hidden_dim = 32;
  config.task = TaskType::kForecast;
  config.horizon = 96;
  MsdMixer mixer(config, rng);
  mixer.SetTraining(false);
  Tensor x = Tensor::RandNormal({32, 7, 96}, 0, 1, rng);
  NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixer.Run(Variable(x)).prediction.value());
  }
}
BENCHMARK(BM_MixerInference);

}  // namespace
}  // namespace msd

BENCHMARK_MAIN();
