// google-benchmark microbenchmarks for the int8 quantized GEMM path
// (tensor/qgemm.h, docs/PERFORMANCE.md) against its fp32 prepacked
// counterpart, at the GEMM shapes the planned MSD-Mixer forward actually
// executes:
//
//   PatchEmbed   m=896,  k=24,  n=32  (Linear(patch -> model_dim), identity)
//   ChannelMix   m=3072, k=7,   n=64  (channel-MLP fc1, gelu)
//   Head         m=224,  k=128, n=96  (forecast head, identity)
//
// Every BM_QGemm* iteration includes the per-request activation quantization
// — the honest serving cost — while the weight quantization (freeze-time,
// amortized across all requests) is benchmarked separately. The benchmark
// Arg is the thread-pool size (1/2/4), applied per iteration family so the
// scaling behavior of both paths is visible in one run.
//
// Flags beyond google-benchmark's: --metrics-out / --trace-out / --threads
// as in bench_micro_kernels.
#include <benchmark/benchmark.h>

#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runtime/parallel.h"
#include "tensor/gemm.h"
#include "tensor/qgemm.h"

namespace msd {
namespace {

struct GemmShape {
  int64_t m, k, n;
  gemm::Activation act;
  bool bias;
};

constexpr GemmShape kPatchEmbed{896, 24, 32, gemm::Activation::kIdentity,
                                true};
constexpr GemmShape kChannelMix{3072, 7, 64, gemm::Activation::kGelu, true};
constexpr GemmShape kHead{224, 128, 96, gemm::Activation::kIdentity, true};

// Shared random operands per shape (seeded; identical for fp32 and int8
// variants of the same shape).
struct Operands {
  std::vector<float> a, b, bias;
  explicit Operands(const GemmShape& s) {
    std::mt19937 rng(42);
    std::normal_distribution<float> dist(0.0f, 1.0f);
    a.resize(static_cast<size_t>(s.m * s.k));
    b.resize(static_cast<size_t>(s.k * s.n));
    bias.resize(static_cast<size_t>(s.n));
    for (float& v : a) v = dist(rng);
    for (float& v : b) v = dist(rng);
    for (float& v : bias) v = dist(rng);
  }
};

void RunQuantized(benchmark::State& state, const GemmShape& s) {
  runtime::ScopedThreads threads(state.range(0));
  Operands ops(s);
  // Freeze-time: pack + quantize weights once, like the plan does.
  std::vector<int8_t> bq(
      static_cast<size_t>(qgemm::PackedQuantBInt8s(s.k, s.n)));
  std::vector<float> bs(static_cast<size_t>(qgemm::QuantBScaleFloats(s.n)));
  qgemm::QuantizeWeightsPerChannel(ops.b.data(), s.k, s.n, bq.data(),
                                   bs.data());
  std::vector<int16_t> aq(
      static_cast<size_t>(s.m * qgemm::QuantARowInt16s(s.k)));
  std::vector<float> as(static_cast<size_t>(s.m));
  std::vector<float> c(static_cast<size_t>(s.m * s.n));
  for (auto _ : state) {
    // Per-request: dynamic activation quant + int8 kernel with fused
    // dequant/bias/activation epilogue.
    qgemm::QuantizeActivationsPerRow(ops.a.data(), s.m, s.k, aq.data(),
                                     as.data());
    qgemm::QGemmPrepacked(aq.data(), as.data(), bq.data(), bs.data(),
                          c.data(), s.m, s.k, s.n,
                          s.bias ? ops.bias.data() : nullptr, s.act);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * s.m * s.k * s.n);
}

void RunFp32(benchmark::State& state, const GemmShape& s) {
  runtime::ScopedThreads threads(state.range(0));
  Operands ops(s);
  std::vector<float> packed(
      static_cast<size_t>(gemm::PackedBPanelFloats(s.k, s.n)));
  gemm::PackB(ops.b.data(), s.k, s.n, packed.data());
  std::vector<float> c(static_cast<size_t>(s.m * s.n));
  for (auto _ : state) {
    gemm::GemmPrepacked(ops.a.data(), packed.data(), c.data(), s.m, s.k, s.n,
                        s.bias ? ops.bias.data() : nullptr, s.act, nullptr);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * s.m * s.k * s.n);
}

void BM_QGemmPatchEmbed(benchmark::State& state) {
  RunQuantized(state, kPatchEmbed);
}
void BM_QGemmChannelMix(benchmark::State& state) {
  RunQuantized(state, kChannelMix);
}
void BM_QGemmHead(benchmark::State& state) { RunQuantized(state, kHead); }
void BM_GemmPatchEmbed(benchmark::State& state) {
  RunFp32(state, kPatchEmbed);
}
void BM_GemmChannelMix(benchmark::State& state) {
  RunFp32(state, kChannelMix);
}
void BM_GemmHead(benchmark::State& state) { RunFp32(state, kHead); }

BENCHMARK(BM_QGemmPatchEmbed)->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(BM_QGemmChannelMix)->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(BM_QGemmHead)->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(BM_GemmPatchEmbed)->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(BM_GemmChannelMix)->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(BM_GemmHead)->Arg(1)->Arg(2)->Arg(4);

// Component costs: the per-request activation quantizer alone and the
// freeze-time weight quantizer alone (amortized, but its cost bounds how
// long session Create spends per GEMM).
void BM_QuantizeActivationsInt8(benchmark::State& state) {
  runtime::ScopedThreads threads(state.range(0));
  const GemmShape& s = kHead;
  Operands ops(s);
  std::vector<int16_t> aq(
      static_cast<size_t>(s.m * qgemm::QuantARowInt16s(s.k)));
  std::vector<float> as(static_cast<size_t>(s.m));
  for (auto _ : state) {
    qgemm::QuantizeActivationsPerRow(ops.a.data(), s.m, s.k, aq.data(),
                                     as.data());
    benchmark::DoNotOptimize(aq.data());
  }
  state.SetItemsProcessed(state.iterations() * s.m * s.k);
}
BENCHMARK(BM_QuantizeActivationsInt8)->Arg(1)->Arg(4);

void BM_QuantizeWeightsInt8(benchmark::State& state) {
  runtime::ScopedThreads threads(1);
  const GemmShape& s = kHead;
  Operands ops(s);
  std::vector<int8_t> bq(
      static_cast<size_t>(qgemm::PackedQuantBInt8s(s.k, s.n)));
  std::vector<float> bs(static_cast<size_t>(qgemm::QuantBScaleFloats(s.n)));
  for (auto _ : state) {
    qgemm::QuantizeWeightsPerChannel(ops.b.data(), s.k, s.n, bq.data(),
                                     bs.data());
    benchmark::DoNotOptimize(bq.data());
  }
  state.SetItemsProcessed(state.iterations() * s.k * s.n);
}
BENCHMARK(BM_QuantizeWeightsInt8);

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  msd::bench::InitThreads(argc, argv);
  const std::string metrics_out = msd::bench::MetricsOutPath(argc, argv);
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-out" || arg == "--trace-out" || arg == "--threads") {
      ++i;
      continue;
    }
    if (arg.rfind("--metrics-out=", 0) == 0 ||
        arg.rfind("--trace-out=", 0) == 0 || arg.rfind("--threads=", 0) == 0) {
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             passthrough.data())) {
    return 1;
  }
  // Recorded baselines must come from Release builds; tools/bench_compare
  // refuses to compare runs whose context disagrees (the library's own
  // library_build_type reflects how *benchmark* was built, not this tree).
  benchmark::AddCustomContext("msd_build_type", msd::bench::BuildTypeString());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!msd::bench::ExportTelemetry(argc, argv)) return 1;
  return 0;
}
