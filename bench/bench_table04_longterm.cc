// Reproduces paper Table IV (long-term forecasting) and prints the dataset
// statistics of Table III.
//
// Protocol: lookback 96, four horizons per dataset, per-channel standardized
// MSE/MAE on the chronological test split. Horizons are {24, 48, 96, 192}
// (the paper's {96, 192, 336, 720} scaled to the synthetic series lengths);
// the comparison of interest — which model family wins where, and that the
// margin collapses on the random-walk Exchange data — is preserved.
// Baselines: DLinear, LightTS-like, N-BEATS-like, seasonal naive (see
// DESIGN.md for the substitution map; Transformer/CNN baselines are out of
// CPU scope and reported as n/a).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "baselines/dlinear.h"
#include "baselines/lightts.h"
#include "baselines/nbeats.h"
#include "baselines/patchtst.h"
#include "bench_util.h"
#include "datagen/long_term.h"
#include "datagen/series_builder.h"

namespace msd {
namespace {

using bench::BenchTrainer;
using bench::Fmt;
using bench::MarkBest;
using bench::MixerConfig;
using bench::TablePrinter;

struct RunResult {
  std::string model;
  RegressionScores scores;
  // From TrainStats::total_wall_seconds (0 for training-free baselines).
  double train_seconds = 0.0;
};

ForecastExperimentConfig MakeExperiment(int64_t horizon, int64_t length) {
  ForecastExperimentConfig config;
  config.lookback = 96;
  config.horizon = horizon;
  config.train_stride = length >= 4000 ? 4 : 2;
  config.eval_stride = 8;
  config.trainer = BenchTrainer(/*epochs=*/4, /*max_batches=*/30, 4e-3f);
  return config;
}

std::vector<RunResult> RunAllModels(const Tensor& series, int64_t period,
                                    int64_t horizon) {
  const int64_t channels = series.dim(0);
  const ForecastExperimentConfig config =
      MakeExperiment(horizon, series.dim(1));
  std::vector<RunResult> results;

  {
    Rng rng(100 + horizon);
    MsdMixerConfig mc =
        MixerConfig(TaskType::kForecast, channels, 96, horizon, period);
    mc.use_instance_norm = true;
    MsdMixer mixer(mc, rng);
    ResidualLossOptions ro;
    ro.max_lag = 24;
    MsdMixerTaskModel model(&mixer, /*lambda=*/0.5f, ro);
    TrainStats stats;
    RegressionScores scores =
        RunForecastExperiment(model, series, config, &stats);
    results.push_back({"MSD-Mixer", scores, stats.total_wall_seconds});
  }
  {
    Rng rng(150 + horizon);
    PatchTstConfig pc;
    pc.input_length = 96;
    pc.horizon = horizon;
    PatchTst patchtst(pc, rng);
    ModuleTaskModel model(&patchtst);
    TrainStats stats;
    RegressionScores scores =
        RunForecastExperiment(model, series, config, &stats);
    results.push_back({"PatchTST", scores, stats.total_wall_seconds});
  }
  {
    Rng rng(200 + horizon);
    DLinear dlinear(96, horizon, rng);
    ModuleTaskModel model(&dlinear);
    TrainStats stats;
    RegressionScores scores =
        RunForecastExperiment(model, series, config, &stats);
    results.push_back({"DLinear", scores, stats.total_wall_seconds});
  }
  {
    Rng rng(300 + horizon);
    LightTs lightts(96, horizon, rng);
    ModuleTaskModel model(&lightts);
    TrainStats stats;
    RegressionScores scores =
        RunForecastExperiment(model, series, config, &stats);
    results.push_back({"LightTS", scores, stats.total_wall_seconds});
  }
  {
    Rng rng(400 + horizon);
    NBeats nbeats(96, horizon, rng, /*num_blocks=*/3, /*hidden=*/64);
    ModuleTaskModel model(&nbeats);
    TrainStats stats;
    RegressionScores scores =
        RunForecastExperiment(model, series, config, &stats);
    results.push_back({"N-BEATS", scores, stats.total_wall_seconds});
  }
  {
    // Training-free seasonal naive at the dominant period.
    SeriesSplits splits = SplitSeries(series, config.split);
    StandardScaler scaler;
    scaler.Fit(splits.train);
    ForecastWindowDataset test(scaler.Transform(splits.test), 96, horizon,
                               config.eval_stride);
    results.push_back(
        {"S-Naive", bench::EvaluateNaiveOnDataset(test, period), 0.0});
  }
  return results;
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  msd::bench::InitThreads(argc, argv);
  using namespace msd;
  std::printf("== Table III analogue: long-term forecasting datasets ==\n");
  bench::TablePrinter stats({"Dataset", "Dim", "Timesteps", "Period",
                             "Paper dim/steps"},
                            {8, 4, 9, 6, 16});
  stats.PrintHeader();
  struct PaperStat {
    const char* dims;
  };
  const std::map<std::string, std::string> paper_stats = {
      {"ETTm1", "7 / 69680"},   {"ETTm2", "7 / 69680"},
      {"ETTh1", "7 / 17420"},   {"ETTh2", "7 / 17420"},
      {"ECL", "321 / 26304"},   {"Traffic", "862 / 17544"},
      {"Weather", "21 / 52696"}, {"Exchange", "8 / 7588"}};
  std::map<LongTermDataset, Tensor> all_series;
  for (LongTermDataset ds : AllLongTermDatasets()) {
    const SeriesConfig config = LongTermConfig(ds, /*seed=*/1);
    Tensor series = GenerateSeries(config);
    all_series.emplace(ds, series);
    const std::string name = LongTermDatasetName(ds);
    stats.PrintRow({name, std::to_string(series.dim(0)),
                    std::to_string(series.dim(1)),
                    std::to_string(LongTermDominantPeriod(ds)),
                    paper_stats.at(name)});
  }
  stats.PrintRule();

  std::printf(
      "\n== Table IV analogue: long-term forecasting (lookback 96) ==\n"
      "Metric: test MSE / MAE on standardized data; '*' marks the row "
      "winner.\n\n");

  const std::vector<int64_t> horizons = {24, 48, 96, 192};
  const std::vector<std::string> models = {"MSD-Mixer", "PatchTST", "DLinear",
                                           "LightTS", "N-BEATS", "S-Naive"};
  bench::TablePrinter table(
      {"Dataset", "H", "MSD-Mixer", "PatchTST", "DLinear", "LightTS",
       "N-BEATS", "S-Naive"},
      {8, 4, 14, 14, 14, 14, 14, 14});
  table.PrintHeader();

  std::map<std::string, int> first_counts;
  std::map<std::string, double> train_seconds;
  int total_benchmarks = 0;
  for (LongTermDataset ds : AllLongTermDatasets()) {
    const Tensor& series = all_series.at(ds);
    const int64_t period = LongTermDominantPeriod(ds);
    for (int64_t horizon : horizons) {
      const auto results = RunAllModels(series, period, horizon);
      for (const auto& r : results) train_seconds[r.model] += r.train_seconds;
      // Two benchmarks per row (MSE and MAE), as in the paper's counting.
      for (int metric = 0; metric < 2; ++metric) {
        double best = 1e30;
        std::string best_model;
        for (const auto& r : results) {
          const double v = metric == 0 ? r.scores.mse : r.scores.mae;
          if (v < best) {
            best = v;
            best_model = r.model;
          }
        }
        first_counts[best_model]++;
        ++total_benchmarks;
      }
      std::vector<double> mses;
      std::vector<double> maes;
      for (const auto& r : results) {
        mses.push_back(r.scores.mse);
        maes.push_back(r.scores.mae);
      }
      const auto mse_cells = bench::MarkBest(mses);
      const auto mae_cells = bench::MarkBest(maes);
      std::vector<std::string> row = {LongTermDatasetName(ds),
                                      std::to_string(horizon)};
      for (size_t m = 0; m < results.size(); ++m) {
        row.push_back(mse_cells[m] + "/" + mae_cells[m]);
      }
      table.PrintRow(row);
      std::fflush(stdout);
    }
    table.PrintRule();
  }

  std::printf(
      "\n1st-place counts over %d benchmarks (MSE+MAE cells), with total\n"
      "training wall time from trainer telemetry:\n",
      total_benchmarks);
  for (const auto& model : models) {
    std::printf("  %-10s %3d   train %ss\n", model.c_str(),
                first_counts[model], bench::Fmt(train_seconds[model], 1).c_str());
  }
  std::printf(
      "\nPaper shape check (Table IV): MSD-Mixer led 49/64 benchmarks with\n"
      "PatchTST second; linear baselines were competitive on Exchange\n"
      "(random walk), where no model beats naive by much. Expected here:\n"
      "MSD-Mixer leads overall; on Exchange the margin collapses.\n"
      "PatchTST here is a scaled-down reimplementation; the remaining\n"
      "baselines (TimesNet, Scaleformer, ETSformer, NST, FEDformer) are\n"
      "n/a in this CPU-only reproduction.\n");
  return bench::ExportTelemetry(argc, argv) ? 0 : 1;
}
