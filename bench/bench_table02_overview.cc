// Reproduces paper Table II (overall win counts across the five tasks) on a
// representative subset: one quick benchmark per task, counting in how many
// the MSD-Mixer places first against the reimplemented baselines. The
// full-scale counts come from running the per-table benches
// (bench_table04/06/07/09/11); this binary is the at-a-glance summary.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "baselines/dlinear.h"
#include "baselines/dtw.h"
#include "baselines/lightts.h"
#include "baselines/mlp_autoencoder.h"
#include "baselines/mlp_classifier.h"
#include "baselines/nbeats.h"
#include "bench_util.h"
#include "datagen/anomaly_gen.h"
#include "datagen/classification_gen.h"
#include "datagen/long_term.h"
#include "datagen/m4like.h"
#include "datagen/series_builder.h"
#include "metrics/metrics.h"

namespace msd {
namespace {

using bench::BenchTrainer;
using bench::MixerConfig;

struct TaskOutcome {
  std::string task;
  std::string winner;
  std::string detail;
  bool mixer_first;
};

TaskOutcome LongTermTask() {
  Tensor series = GenerateSeries(LongTermConfig(LongTermDataset::kEttH1, 1));
  ForecastExperimentConfig config;
  config.lookback = 96;
  config.horizon = 96;
  config.train_stride = 2;
  config.eval_stride = 8;
  config.trainer = BenchTrainer(4, 35, 4e-3f);

  std::map<std::string, double> mse;
  {
    Rng rng(1);
    MsdMixerConfig mc =
        MixerConfig(TaskType::kForecast, series.dim(0), 96, 96, 24);
    mc.use_instance_norm = true;
    MsdMixer mixer(mc, rng);
    ResidualLossOptions ro;
    ro.max_lag = 24;
    MsdMixerTaskModel model(&mixer, 0.5f, ro);
    mse["MSD-Mixer"] = RunForecastExperiment(model, series, config).mse;
  }
  {
    Rng rng(2);
    DLinear dlinear(96, 96, rng);
    ModuleTaskModel model(&dlinear);
    mse["DLinear"] = RunForecastExperiment(model, series, config).mse;
  }
  {
    Rng rng(3);
    NBeats nbeats(96, 96, rng);
    ModuleTaskModel model(&nbeats);
    mse["N-BEATS"] = RunForecastExperiment(model, series, config).mse;
  }
  std::string best;
  double best_value = 1e30;
  for (const auto& [name, value] : mse) {
    if (value < best_value) {
      best_value = value;
      best = name;
    }
  }
  char detail[128];
  std::snprintf(detail, sizeof(detail), "ETTh1/96 MSE: mixer %.3f dlinear %.3f",
                mse["MSD-Mixer"], mse["DLinear"]);
  return {"Long-term forecasting", best, detail, best == "MSD-Mixer"};
}

TaskOutcome ShortTermTask() {
  M4SubsetSpec spec{"Quarterly", 8, 4, 48, 32};
  auto data = GenerateM4Like(spec, 5);
  ShortTermExperimentConfig config;
  config.lookback_multiple = 3;
  config.trainer = BenchTrainer(30, 0, 5e-3f);
  const int64_t lookback = ShortTermLookback(spec, config);

  std::map<std::string, double> owa;
  {
    Rng rng(4);
    MsdMixerConfig mc = MixerConfig(TaskType::kForecast, 1, lookback, 8, 4);
    MsdMixer mixer(mc, rng);
    ResidualLossOptions ro;
    ro.max_lag = 8;
    MsdMixerTaskModel model(&mixer, 0.5f, ro);
    owa["MSD-Mixer"] = RunShortTermExperiment(model, data, spec, config).owa;
  }
  {
    Rng rng(5);
    NBeats nbeats(lookback, 8, rng);
    ModuleTaskModel model(&nbeats);
    owa["N-BEATS"] = RunShortTermExperiment(model, data, spec, config).owa;
  }
  owa["Naive2"] = 1.0;
  std::string best;
  double best_value = 1e30;
  for (const auto& [name, value] : owa) {
    if (value < best_value) {
      best_value = value;
      best = name;
    }
  }
  char detail[128];
  std::snprintf(detail, sizeof(detail), "Quarterly OWA: mixer %.3f nbeats %.3f",
                owa["MSD-Mixer"], owa["N-BEATS"]);
  return {"Short-term forecasting", best, detail, best == "MSD-Mixer"};
}

TaskOutcome ImputationTask() {
  Tensor series = GenerateSeries(LongTermConfig(LongTermDataset::kEttM1, 2));
  ImputationExperimentConfig config;
  config.window = 96;
  config.missing_ratio = 0.25;
  config.train_stride = 4;
  config.eval_stride = 8;
  config.trainer = BenchTrainer(5, 30);

  std::map<std::string, double> mse;
  {
    Rng rng(6);
    MsdMixerConfig mc =
        MixerConfig(TaskType::kReconstruction, series.dim(0), 96, 1, 24);
    MsdMixer mixer(mc, rng);
    ResidualLossOptions ro;
    ro.include_autocorrelation = false;
    MsdMixerTaskModel model(&mixer, 0.5f, ro);
    mse["MSD-Mixer"] = RunImputationExperiment(model, series, config).mse;
  }
  {
    Rng rng(7);
    MlpAutoencoder ae(series.dim(0), 96, rng, 32);
    ModuleTaskModel model(&ae);
    mse["MLP-AE"] = RunImputationExperiment(model, series, config).mse;
  }
  const std::string best =
      mse["MSD-Mixer"] <= mse["MLP-AE"] ? "MSD-Mixer" : "MLP-AE";
  char detail[128];
  std::snprintf(detail, sizeof(detail), "ETTm1/25%% MSE: mixer %.3f ae %.3f",
                mse["MSD-Mixer"], mse["MLP-AE"]);
  return {"Imputation", best, detail, best == "MSD-Mixer"};
}

TaskOutcome AnomalyTask() {
  AnomalyData data = GenerateAnomalyDataset(AnomalyDataset::kSmd, 3);
  AnomalyExperimentConfig config;
  config.window = kAnomalyWindow;
  config.trainer = BenchTrainer(6, 20);
  std::map<std::string, double> f1;
  {
    Rng rng(8);
    MsdMixerConfig mc = MixerConfig(TaskType::kReconstruction,
                                    data.train.dim(0), kAnomalyWindow, 1, 25);
    mc.patch_sizes = {50, 25, 10};
    mc.model_dim = 4;
    MsdMixer mixer(mc, rng);
    ResidualLossOptions ro;
    ro.max_lag = 24;
    MsdMixerTaskModel model(&mixer, 0.1f, ro);
    f1["MSD-Mixer"] =
        RunAnomalyExperiment(model, data.train, data.test, data.labels, config)
            .scores.f1;
  }
  {
    Rng rng(9);
    MlpAutoencoder ae(data.train.dim(0), kAnomalyWindow, rng, 24);
    ModuleTaskModel model(&ae);
    f1["MLP-AE"] =
        RunAnomalyExperiment(model, data.train, data.test, data.labels, config)
            .scores.f1;
  }
  const std::string best =
      f1["MSD-Mixer"] >= f1["MLP-AE"] ? "MSD-Mixer" : "MLP-AE";
  char detail[128];
  std::snprintf(detail, sizeof(detail), "SMD F1: mixer %.3f ae %.3f",
                f1["MSD-Mixer"], f1["MLP-AE"]);
  return {"Anomaly detection", best, detail, best == "MSD-Mixer"};
}

TaskOutcome ClassificationTask() {
  ClassificationSubset subset{"CT", 3, 182, 10, 300, 300, 1.8};
  ClassificationData data = GenerateClassificationData(subset, 9);
  ClassificationExperimentConfig config;
  config.trainer = BenchTrainer(25, 0, 2e-3f);
  config.trainer.batch_size = 16;
  config.trainer.weight_decay = 1e-3f;
  std::map<std::string, double> acc;
  {
    Rng rng(10);
    MsdMixerConfig mc =
        MixerConfig(TaskType::kClassification, subset.channels, subset.length,
                    1, subset.length / 4, subset.classes);
    mc.model_dim = 8;
    mc.head_dropout = 0.7f;
    MsdMixer mixer(mc, rng);
    ResidualLossOptions ro;
    ro.max_lag = 16;
    MsdMixerTaskModel model(&mixer, 0.05f, ro);
    acc["MSD-Mixer"] = RunClassificationExperiment(model, data, config);
  }
  {
    DtwKnnClassifier knn(0.1);
    knn.Fit(data.train_x, data.train_y);
    acc["DTW-1NN"] = Accuracy(knn.PredictBatch(data.test_x), data.test_y);
  }
  {
    Rng rng(11);
    MlpClassifier mlp(subset.channels, subset.length, subset.classes, rng);
    ModuleTaskModel model(&mlp);
    acc["Flat-MLP"] = RunClassificationExperiment(model, data, config);
  }
  std::string best;
  double best_value = -1.0;
  for (const auto& [name, value] : acc) {
    if (value > best_value) {
      best_value = value;
      best = name;
    }
  }
  char detail[128];
  std::snprintf(detail, sizeof(detail),
                "CT acc: mixer %.3f dtw %.3f mlp %.3f", acc["MSD-Mixer"],
                acc["DTW-1NN"], acc["Flat-MLP"]);
  return {"Classification", best, detail, best == "MSD-Mixer"};
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  msd::bench::InitThreads(argc, argv);
  using namespace msd;
  std::printf(
      "== Table II analogue: overall comparison (one representative\n"
      "   benchmark per task; the per-table benches give the full counts) "
      "==\n\n");
  bench::TablePrinter table({"Task", "Winner", "Detail"}, {24, 11, 44});
  table.PrintHeader();
  std::vector<TaskOutcome> outcomes;
  outcomes.push_back(LongTermTask());
  std::fflush(stdout);
  outcomes.push_back(ShortTermTask());
  outcomes.push_back(ImputationTask());
  outcomes.push_back(AnomalyTask());
  outcomes.push_back(ClassificationTask());
  int mixer_firsts = 0;
  for (const auto& o : outcomes) {
    table.PrintRow({o.task, o.winner, o.detail});
    if (o.mixer_first) ++mixer_firsts;
  }
  table.PrintRule();
  std::printf(
      "\nMSD-Mixer first on %d/5 representative tasks.\n"
      "Paper shape check (Table II): MSD-Mixer led 118 of 142 benchmarks\n"
      "across the five tasks, with every other method far behind.\n",
      mixer_firsts);
  return bench::ExportTelemetry(argc, argv) ? 0 : 1;
}
