// Reproduces paper Table IX (anomaly detection) and prints the dataset
// statistics of Table VIII.
//
// Protocol: train a reconstruction model on the anomaly-free training span,
// score each test time step by reconstruction error, threshold at the
// dataset's anomaly ratio, and report point-adjusted precision/recall/F1.
// Models: MSD-Mixer (reconstruction), MLP autoencoder, and a training-free
// moving-average reconstructor.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "baselines/dlinear.h"
#include "baselines/mlp_autoencoder.h"
#include "bench_util.h"
#include "datagen/anomaly_gen.h"

namespace msd {
namespace {

using bench::BenchTrainer;
using bench::MixerConfig;

// Training-free baseline: "reconstruct" each window by its centered moving
// average; the anomaly score is then the high-frequency energy.
class MovingAverageReconstructor : public Module {
 public:
  explicit MovingAverageReconstructor(int64_t kernel) : kernel_(kernel) {}
  Variable DoForward(const Variable& input) override {
    return MovingAverage(input, kernel_);
  }

 private:
  int64_t kernel_;
};

struct RunResult {
  std::string model;
  AnomalyEvalResult result;
};

std::vector<RunResult> RunAllModels(const AnomalyData& data) {
  const int64_t channels = data.train.dim(0);
  AnomalyExperimentConfig config;
  config.window = kAnomalyWindow;
  config.trainer = BenchTrainer(/*epochs=*/12, /*max_batches=*/20);

  std::vector<RunResult> results;
  {
    Rng rng(1);
    // Bottlenecked configuration: large patches compressed into a narrow
    // representation (p=50 -> d=4), so the model cannot reconstruct
    // arbitrary inputs and anomalies surface as reconstruction error.
    MsdMixerConfig mc = MixerConfig(TaskType::kReconstruction, channels,
                                    kAnomalyWindow, 1, /*period=*/25);
    mc.patch_sizes = {50, 25, 10};
    mc.model_dim = 4;
    MsdMixer mixer(mc, rng);
    ResidualLossOptions ro;
    ro.max_lag = 24;
    MsdMixerTaskModel model(&mixer, 0.1f, ro);
    results.push_back({"MSD-Mixer",
                       RunAnomalyExperiment(model, data.train, data.test,
                                            data.labels, config)});
  }
  {
    Rng rng(2);
    MlpAutoencoder ae(channels, kAnomalyWindow, rng, /*bottleneck=*/24);
    ModuleTaskModel model(&ae);
    results.push_back({"MLP-AE",
                       RunAnomalyExperiment(model, data.train, data.test,
                                            data.labels, config)});
  }
  {
    MovingAverageReconstructor ma(9);
    ModuleTaskModel model(&ma);
    AnomalyExperimentConfig free_config = config;
    free_config.trainer.epochs = 1;
    free_config.trainer.max_batches_per_epoch = 1;  // nothing to learn
    results.push_back({"MovAvg",
                       RunAnomalyExperiment(model, data.train, data.test,
                                            data.labels, free_config)});
  }
  return results;
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  msd::bench::InitThreads(argc, argv);
  using namespace msd;
  std::printf("== Table VIII analogue: anomaly detection datasets ==\n");
  bench::TablePrinter stats(
      {"Dataset", "Dim", "Window", "Train", "Test", "Anom%", "Paper dim"},
      {8, 4, 6, 6, 6, 6, 9});
  stats.PrintHeader();
  const std::map<std::string, std::string> paper_dims = {
      {"SMD", "38"}, {"MSL", "55"}, {"SMAP", "25"}, {"SWaT", "51"},
      {"PSM", "25"}};
  std::map<AnomalyDataset, AnomalyData> all_data;
  for (AnomalyDataset ds : AllAnomalyDatasets()) {
    AnomalyData data = GenerateAnomalyDataset(ds, /*seed=*/3);
    int64_t anomalous = 0;
    for (int v : data.labels) anomalous += v;
    const double rate =
        100.0 * static_cast<double>(anomalous) / data.labels.size();
    const std::string name = AnomalyDatasetName(ds);
    stats.PrintRow({name, std::to_string(data.train.dim(0)),
                    std::to_string(kAnomalyWindow),
                    std::to_string(data.train.dim(1)),
                    std::to_string(data.test.dim(1)), bench::Fmt(rate, 1),
                    paper_dims.at(name)});
    all_data.emplace(ds, std::move(data));
  }
  stats.PrintRule();

  std::printf(
      "\n== Table IX analogue: anomaly detection "
      "(point-adjusted P / R / F1) ==\n\n");
  const std::vector<std::string> models = {"MSD-Mixer", "MLP-AE", "MovAvg"};
  bench::TablePrinter table({"Dataset", "Metric", "MSD-Mixer", "MLP-AE",
                             "MovAvg"},
                            {8, 9, 10, 10, 10});
  table.PrintHeader();

  std::map<std::string, double> f1_acc;
  std::map<std::string, int> first_counts;
  for (AnomalyDataset ds : AllAnomalyDatasets()) {
    const auto results = RunAllModels(all_data.at(ds));
    auto row_for = [&](const char* metric,
                       auto getter) -> std::vector<std::string> {
      std::vector<double> values;
      for (const auto& r : results) values.push_back(getter(r.result.scores));
      std::vector<std::string> row = {
          std::string(metric) == "Precision" ? AnomalyDatasetName(ds) : "",
          metric};
      const auto cells =
          bench::MarkBest(values, 3, /*lower_is_better=*/false);
      row.insert(row.end(), cells.begin(), cells.end());
      return row;
    };
    table.PrintRow(row_for("Precision", [](const DetectionScores& s) {
      return s.precision;
    }));
    table.PrintRow(
        row_for("Recall", [](const DetectionScores& s) { return s.recall; }));
    table.PrintRow(
        row_for("F1", [](const DetectionScores& s) { return s.f1; }));
    table.PrintRule();
    std::fflush(stdout);
    double best = -1.0;
    std::string best_model;
    for (const auto& r : results) {
      f1_acc[r.model] += r.result.scores.f1;
      if (r.result.scores.f1 > best) {
        best = r.result.scores.f1;
        best_model = r.model;
      }
    }
    first_counts[best_model]++;
  }

  std::printf("\nAverage F1 across datasets:\n");
  for (const auto& m : models) {
    std::printf("  %-10s %.3f\n", m.c_str(), f1_acc[m] / 5.0);
  }
  std::printf("F1 1st-place counts:\n");
  for (const auto& m : models) {
    std::printf("  %-10s %d\n", m.c_str(), first_counts[m]);
  }
  std::printf(
      "\nPaper shape check (Table IX): MSD-Mixer best F1 on 4/5 datasets and\n"
      "the best average F1 (93.0 vs 86.3 for TimesNet). On this synthetic\n"
      "substrate the three reconstructors land within a few F1 points of\n"
      "each other (see EXPERIMENTS.md): point-adjusted scoring with\n"
      "threshold-at-ratio makes simple reconstructors strong, and the\n"
      "mixer needs the bottlenecked configuration to avoid reconstructing\n"
      "anomalies (DESIGN.md). The paper's margin does not reproduce here.\n");
  return bench::ExportTelemetry(argc, argv) ? 0 : 1;
}
