// Closed-loop load test for the serving subsystem (docs/SERVING.md).
//
// Builds a small random-init MSD-Mixer, snapshots it to a checkpoint,
// restores it into a frozen serve::InferenceSession, and hammers a
// ServerLoop from N client threads until --requests requests have
// completed. Reports throughput and p50/p95/p99 end-to-end latency twice —
// from the clients' own clocks AND from the server-side serve/e2e_us
// histogram (Histogram::ValueAtQuantile) — and cross-checks that the two
// agree within 10%, so the histogram the server exports is trustworthy as
// the gated source of truth. Exits nonzero on any failed request, any
// correctness mismatch, a server/client quantile disagreement, or a broken
// backpressure/cancellation contract.
//
//   bench_serving [--requests N] [--clients N] [--workers N]
//                 [--max-batch N] [--max-delay-us N] [--threads N]
//                 [--metrics-out FILE] [--trace-out FILE]
//                 [--telemetry-out FILE] [--telemetry-interval-ms N]
//                 [--trace-sample N] [--ring-trace-out FILE]
//                 [--quantile-tolerance PCT] [--quantile-slack-us US]
//                 [--quantize]
//                 [--churn] [--conns N] [--churn-requests N]
//
// --quantize appends a second load phase against an int8-quantized session
// (InferenceSessionConfig::quantize, docs/PERFORMANCE.md): same request
// count, same closed loop, latencies published as the
// serve/quant_latency_p{50,95,99}_us and serve/quant_throughput_rps gauges
// so one --metrics-out snapshot carries both legs side by side. The phase
// fails the run if any quantized response differs from the quantized
// session's own direct Predict (batch-composition invariance must survive
// quantization).
//
// --telemetry-out streams periodic JSONL registry snapshots from a live
// obs::TelemetryExporter while the load runs; --ring-trace-out dumps the
// sampled request ring (1-in---trace-sample) as chrome://tracing JSON.
// --quantile-tolerance loosens the server-vs-client agreement gate (percent,
// default 10): client tails absorb future-wakeup scheduling jitter the
// server-side histogram never sees, so short runs on loaded machines (the
// ctest smoke runs next to the whole suite) need more headroom than a
// dedicated multi-thousand-request recording. --quantile-slack-us (absolute
// microseconds, default 30) floors that tolerance: one millisecond-scale
// wake spike in a 200-request tail dwarfs any percentage of a ~1ms quant
// latency, so the smoke passes a spike-sized slack.
//
// --churn appends the multi-tenant churn phase (docs/SERVING.md): a
// two-model manifest (alpha/beta, different horizons) behind a ModelRegistry
// and an epoll SocketServer, hammered by --conns concurrent blocking AF_UNIX
// client connections (default 128) in closed loop until --churn-requests
// complete. Halfway through, one client fires "RELOAD alpha <v2 ckpt>" —
// a live hot-swap under full load. Every data reply is string-compared
// against precomputed oracles (the determinism contract makes correct
// replies byte-identical): beta replies must match beta's oracle, alpha
// replies must match either the v1 or the v2 oracle, and at least one of
// each must be observed. Any failed request, any reply matching neither
// version, a missing swap, or a RELOAD error fails the run. Latencies land
// in the serve/multi_latency_p{50,95,99}_us and serve/multi_throughput_rps
// gauges for the check.sh --serve-baseline gate. The phase runs LAST so the
// single-model quantile-agreement check above stays unpolluted.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "bench_util.h"
#include "datagen/series_builder.h"
#include "nn/serialize.h"
#include "obs/exporter.h"
#include "obs/ring.h"
#include "runtime/worker.h"
#include "serve/netio.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/trace.h"
#include "tasks/pipeline.h"
#include "tensor/tensor_ops.h"

namespace {

using namespace msd;

int64_t IntFlag(int argc, char** argv, const std::string& flag,
                int64_t fallback) {
  const std::string v = bench::FlagValue(argc, argv, flag);
  if (v.empty()) return fallback;
  const int64_t n = std::atoll(v.c_str());
  if (n <= 0) {
    std::fprintf(stderr, "invalid %s value '%s'\n", flag.c_str(), v.c_str());
    std::exit(2);
  }
  return n;
}

double Percentile(std::vector<double>* sorted_inout, double q) {
  std::vector<double>& v = *sorted_inout;
  if (v.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

// Verifies the bounded-queue contract on an idle (not Start()ed) batcher:
// admission up to capacity, kResourceExhausted past it, kCancelled for
// everything pending at Stop(). Returns false on any violation.
bool CheckBackpressure(serve::InferenceSession* session) {
  serve::MicroBatcherConfig config;
  config.queue_capacity = 8;
  serve::MicroBatcher batcher(session, config);
  const Tensor window = Tensor::Zeros({session->model_config().channels,
                                       session->model_config().input_length});
  std::vector<serve::ResultFuture> pending;
  for (int64_t i = 0; i < config.queue_capacity; ++i) {
    serve::ResultFuture f;
    if (!batcher.Submit(window, &f).ok()) {
      std::fprintf(stderr, "backpressure: admission %lld rejected early\n",
                   (long long)i);
      return false;
    }
    pending.push_back(std::move(f));
  }
  serve::ResultFuture overflow;
  Status rejected = batcher.Submit(window, &overflow);
  if (rejected.code() != StatusCode::kResourceExhausted) {
    std::fprintf(stderr, "backpressure: expected ResourceExhausted, got %s\n",
                 rejected.ToString().c_str());
    return false;
  }
  batcher.Stop();
  for (auto& f : pending) {
    if (f.get().status().code() != StatusCode::kCancelled) {
      std::fprintf(stderr, "backpressure: pending request not Cancelled\n");
      return false;
    }
  }
  return true;
}

// One closed-loop load phase: `clients` threads hammer `server` with their
// per-client windows until `requests` requests complete, verifying every
// response bit-for-bit against `expected` (the session's own direct
// Predict). Returns the merged, sorted latency sample plus failure counts.
struct LoadResult {
  std::vector<double> sorted_latencies_us;
  double wall_s = 0.0;
  int64_t failures = 0;
  int64_t mismatches = 0;
};

LoadResult RunClosedLoop(serve::ServerLoop* server,
                         const std::vector<Tensor>& windows,
                         const std::vector<Tensor>& expected,
                         int64_t requests, int64_t clients) {
  std::atomic<int64_t> issued{0};
  std::atomic<int64_t> failures{0};
  std::atomic<int64_t> mismatches{0};
  std::vector<std::vector<double>> latencies(static_cast<size_t>(clients));
  const auto start = std::chrono::steady_clock::now();
  {
    runtime::WorkerGroup group;
    group.Start(clients, [&](int64_t client) {
      auto& mine = latencies[static_cast<size_t>(client)];
      const Tensor& window = windows[static_cast<size_t>(client)];
      const Tensor& want = expected[static_cast<size_t>(client)];
      while (issued.fetch_add(1) < requests) {
        const auto t0 = std::chrono::steady_clock::now();
        StatusOr<Tensor> got = server->Handle(window);
        const auto t1 = std::chrono::steady_clock::now();
        if (!got.ok()) {
          // Closed-loop clients never overflow the queue; any error is a bug.
          failures.fetch_add(1);
          continue;
        }
        mine.push_back(static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count()));
        if (std::memcmp(got.value().data(), want.data(),
                        sizeof(float) * static_cast<size_t>(want.numel())) !=
            0) {
          mismatches.fetch_add(1);
        }
      }
    });
    group.Join();
  }
  LoadResult result;
  result.wall_s = std::chrono::duration_cast<std::chrono::duration<double>>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  for (auto& v : latencies) {
    result.sorted_latencies_us.insert(result.sorted_latencies_us.end(),
                                      v.begin(), v.end());
  }
  std::sort(result.sorted_latencies_us.begin(),
            result.sorted_latencies_us.end());
  result.failures = failures.load();
  result.mismatches = mismatches.load();
  return result;
}

bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

// --- multi-tenant churn phase (--churn) -----------------------------------

// Blocking AF_UNIX connect with a short retry loop: when --conns clients
// dial simultaneously the listener's backlog can momentarily fill, which
// surfaces as EAGAIN/ECONNREFUSED rather than queuing on some kernels.
int ConnectUnixRetry(const std::string& path) {
  for (int attempt = 0; attempt < 500; ++attempt) {
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    int rc;
    do {
      rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) return fd;
    close(fd);
    if (errno != EAGAIN && errno != ECONNREFUSED && errno != ENOENT) {
      return -1;
    }
    usleep(2000);
  }
  return -1;
}

// Sends one request line and reads exactly one '\n'-framed reply. The churn
// clients are strictly one-line-at-a-time, so request/reply pairing is
// unambiguous (see the ordering note in serve/netio.h).
std::string SocketRoundTrip(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t w =
        send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return "ERROR Internal: client write failed";
    sent += static_cast<size_t>(w);
  }
  std::string reply;
  char c;
  for (;;) {
    const ssize_t n = read(fd, &c, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return "ERROR Internal: client read failed";
    if (c == '\n') break;
    reply.push_back(c);
  }
  return reply;
}

Tensor ChurnSeries(uint64_t seed) {
  SeriesConfig config;
  config.name = "churn";
  config.length = 400;
  config.seed = seed;
  for (int c = 0; c < 2; ++c) {
    ChannelSpec channel;
    channel.level = 1.0 + c;
    channel.seasonals.push_back({24.0, 1.0, 0.4 * c, 2});
    channel.noise_sigma = 0.05;
    config.channels.push_back(channel);
  }
  return GenerateSeries(config);
}

// Trains the three churn checkpoints (alpha v1, alpha v2, beta), runs the
// socket churn load, verifies every reply, publishes the serve/multi_*
// gauges. Returns false on any contract violation.
bool RunChurnPhase(int64_t conns, int64_t requests, int64_t workers,
                   int64_t max_batch, int64_t max_delay_us) {
  // Replies race with client-side closes at shutdown; writes must error,
  // not kill the process (the SocketServer itself uses MSG_NOSIGNAL).
  std::signal(SIGPIPE, SIG_IGN);
  const Tensor series_a = ChurnSeries(21);
  const Tensor series_b = ChurnSeries(33);

  // Different horizons per tenant: a misrouted reply has the wrong shape
  // on top of the wrong bytes.
  ForecastPipelineConfig pa;
  pa.lookback = 32;
  pa.horizon = 8;
  pa.trainer.epochs = 2;
  pa.trainer.batch_size = 16;
  pa.trainer.max_batches_per_epoch = 8;
  pa.trainer.early_stop_patience = 0;
  ForecastPipelineConfig pb = pa;
  pb.horizon = 4;
  ForecastPipeline pipe_a(pa, /*seed=*/5);
  ForecastPipeline pipe_a2(pa, /*seed=*/13);  // the hot-swap replacement
  ForecastPipeline pipe_b(pb, /*seed=*/9);
  pipe_a.Fit(series_a);
  pipe_a2.Fit(series_a);
  pipe_b.Fit(series_b);

  char prefix[96];
  std::snprintf(prefix, sizeof(prefix), "bench_serving_mm_%d", (int)getpid());
  const std::string ckpt_a = std::string(prefix) + "_a.msdckpt";
  const std::string ckpt_a2 = std::string(prefix) + "_a2.msdckpt";
  const std::string ckpt_b = std::string(prefix) + "_b.msdckpt";
  const auto cleanup = [&]() {
    for (const std::string& p : {ckpt_a, ckpt_a2, ckpt_b}) {
      std::remove(p.c_str());
      std::remove((p + ".meta").c_str());
    }
  };
  if (!pipe_a.Save(ckpt_a).ok() || !pipe_a2.Save(ckpt_a2).ok() ||
      !pipe_b.Save(ckpt_b).ok()) {
    std::fprintf(stderr, "churn: checkpoint save failed\n");
    cleanup();
    return false;
  }

  const std::string manifest_text =
      "model name=alpha version=1 checkpoint=" + ckpt_a +
      " lookback=32 horizon=8 max_batch=" + std::to_string(max_batch) +
      " default=1\n"
      "model name=beta version=1 checkpoint=" + ckpt_b +
      " lookback=32 horizon=4 max_batch=" + std::to_string(max_batch) + "\n";
  auto manifest = serve::ParseManifest(manifest_text);
  if (!manifest.ok()) {
    std::fprintf(stderr, "churn: manifest rejected: %s\n",
                 manifest.status().ToString().c_str());
    cleanup();
    return false;
  }

  // Oracle sessions (max_batch 1: only Predict is needed, so only the
  // batch-1 plan is compiled). The oracle must see exactly the bytes the
  // server parses: request lines are %.6g-rounded, so expected replies are
  // computed from the round-tripped window text, making a correct reply
  // byte-identical and a version-crossed one a guaranteed mismatch.
  serve::ForecastSessionOptions oa;
  oa.lookback = 32;
  oa.horizon = 8;
  oa.max_batch = 1;
  serve::ForecastSessionOptions ob = oa;
  ob.horizon = 4;
  auto oracle_a1 = serve::CreateForecastSession(ckpt_a, oa);
  auto oracle_a2 = serve::CreateForecastSession(ckpt_a2, oa);
  auto oracle_b = serve::CreateForecastSession(ckpt_b, ob);
  if (!oracle_a1.ok() || !oracle_a2.ok() || !oracle_b.ok()) {
    std::fprintf(stderr, "churn: oracle session create failed\n");
    cleanup();
    return false;
  }
  auto expect = [](serve::InferenceSession* session, const std::string& line) {
    auto window = serve::ParseWindowLine(line, /*channels=*/0, /*length=*/0);
    if (!window.ok()) return "ERROR " + window.status().ToString();
    auto out = session->Predict(window.value());
    return out.ok() ? serve::FormatTensorLine(out.value())
                    : "ERROR " + out.status().ToString();
  };

  // K distinct request lines per tenant and their expected replies — for
  // alpha, under BOTH versions, since requests admitted just before the
  // swap legitimately finish on v1 while later ones answer from v2.
  constexpr int64_t kLines = 16;
  std::vector<std::string> lines_a, lines_b, want_a1, want_a2, want_b;
  for (int64_t i = 0; i < kLines; ++i) {
    const int64_t offset = 4 * i;
    lines_a.push_back(
        serve::FormatTensorLine(Slice(series_a, 1, offset, pa.lookback)));
    lines_b.push_back(
        serve::FormatTensorLine(Slice(series_b, 1, offset, pb.lookback)));
    want_a1.push_back(expect(oracle_a1.value().get(), lines_a.back()));
    want_a2.push_back(expect(oracle_a2.value().get(), lines_a.back()));
    want_b.push_back(expect(oracle_b.value().get(), lines_b.back()));
  }

  std::atomic<int64_t> issued{0};
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> failures{0};
  std::atomic<int64_t> unmatched{0};
  std::atomic<int64_t> v1_replies{0};
  std::atomic<int64_t> v2_replies{0};
  std::atomic<int64_t> connect_failures{0};
  std::atomic<int64_t> reload_failures{0};
  std::atomic<bool> reload_fired{false};
  std::mutex sample_mu;
  std::string first_bad;  // first unexpected reply, for the failure report
  std::vector<std::vector<double>> latencies(static_cast<size_t>(conns));
  double wall_s = 0.0;

  {
    // Destruction order (serve/netio.h): the SocketServer must outlive the
    // registry — draining batchers Post() completions through its wake fd.
    serve::SocketServerConfig scfg;
    scfg.path = std::string("/tmp/") + prefix + ".sock";
    scfg.max_conns = conns + 8;
    scfg.backlog = 256;
    serve::MicroBatcherConfig cbc;
    cbc.max_batch = max_batch;
    cbc.max_delay_us = max_delay_us;
    cbc.queue_capacity = std::max<int64_t>(256, 2 * conns);
    cbc.num_workers = workers;
    std::unique_ptr<serve::SocketServer> socket_server;
    runtime::WorkerGroup loop_thread;
    serve::ModelRegistry registry(cbc);
    Status loaded = registry.Load(manifest.value());
    if (!loaded.ok()) {
      std::fprintf(stderr, "churn: registry load failed: %s\n",
                   loaded.ToString().c_str());
      cleanup();
      return false;
    }
    serve::ModelService service(&registry);
    socket_server = std::make_unique<serve::SocketServer>(
        scfg, [&service](std::string req, std::function<void(std::string)> rp) {
          service.HandleLineAsync(std::move(req), std::move(rp));
        });
    Status listening = socket_server->Listen();
    if (!listening.ok()) {
      std::fprintf(stderr, "churn: socket listen failed: %s\n",
                   listening.ToString().c_str());
      cleanup();
      return false;
    }
    loop_thread.Start(1, [&socket_server](int64_t) { socket_server->Run(); });

    const auto start = std::chrono::steady_clock::now();
    {
      runtime::WorkerGroup clients_group;
      clients_group.Start(conns, [&](int64_t c) {
        const int fd = ConnectUnixRetry(scfg.path);
        if (fd < 0) {
          connect_failures.fetch_add(1);
          return;
        }
        auto& mine = latencies[static_cast<size_t>(c)];
        // Even connections drive alpha (the hot-swapped tenant), odd ones
        // beta — both models stay under load through the swap.
        const bool is_alpha = (c % 2 == 0);
        for (;;) {
          // The mid-run hot-swap: the first client to see the halfway mark
          // issues RELOAD in-band on its own connection, under full load.
          if (issued.load(std::memory_order_relaxed) >= requests / 2 &&
              !reload_fired.exchange(true)) {
            const std::string r =
                SocketRoundTrip(fd, "RELOAD alpha " + ckpt_a2);
            if (r != "OK alpha v2") {
              reload_failures.fetch_add(1);
              std::lock_guard<std::mutex> lock(sample_mu);
              if (first_bad.empty()) first_bad = "RELOAD: " + r;
            }
          }
          const int64_t i = issued.fetch_add(1);
          if (i >= requests) break;
          const size_t k = static_cast<size_t>((c + i) % kLines);
          const std::string& line = is_alpha ? lines_a[k] : lines_b[k];
          const std::string request =
              (is_alpha ? "MODEL alpha " : "MODEL beta ") + line;
          const auto t0 = std::chrono::steady_clock::now();
          const std::string reply = SocketRoundTrip(fd, request);
          const auto t1 = std::chrono::steady_clock::now();
          completed.fetch_add(1);
          mine.push_back(static_cast<double>(
              std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                  .count()));
          bool bad = false;
          if (reply.rfind("ERROR", 0) == 0) {
            failures.fetch_add(1);
            bad = true;
          } else if (is_alpha) {
            // The version-crossing check: every alpha reply must be byte-
            // identical to exactly the v1 or the v2 oracle for its line.
            if (reply == want_a1[k]) {
              v1_replies.fetch_add(1);
            } else if (reply == want_a2[k]) {
              v2_replies.fetch_add(1);
            } else {
              unmatched.fetch_add(1);
              bad = true;
            }
          } else if (reply != want_b[k]) {
            unmatched.fetch_add(1);
            bad = true;
          }
          if (bad) {
            std::lock_guard<std::mutex> lock(sample_mu);
            if (first_bad.empty()) first_bad = request + " -> " + reply;
          }
        }
        close(fd);
      });
      clients_group.Join();
    }
    wall_s = std::chrono::duration_cast<std::chrono::duration<double>>(
                 std::chrono::steady_clock::now() - start)
                 .count();
    socket_server->Shutdown();
    loop_thread.Join();
  }
  cleanup();

  std::vector<double> merged;
  for (auto& v : latencies) merged.insert(merged.end(), v.begin(), v.end());
  std::sort(merged.begin(), merged.end());
  const double p50 = Percentile(&merged, 0.50);
  const double p95 = Percentile(&merged, 0.95);
  const double p99 = Percentile(&merged, 0.99);
  const double throughput =
      wall_s > 0.0 ? static_cast<double>(merged.size()) / wall_s : 0.0;
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("serve/multi_latency_p50_us").Set(p50);
  registry.GetGauge("serve/multi_latency_p95_us").Set(p95);
  registry.GetGauge("serve/multi_latency_p99_us").Set(p99);
  registry.GetGauge("serve/multi_throughput_rps").Set(throughput);
  const int64_t swaps = registry.GetCounter("serve/registry_swaps").value();

  bench::TablePrinter table({"metric (churn)", "value"}, {24, 18});
  table.PrintHeader();
  table.PrintRow({"connections", std::to_string(conns)});
  table.PrintRow({"requests completed", std::to_string(merged.size())});
  table.PrintRow({"alpha v1 replies", std::to_string(v1_replies.load())});
  table.PrintRow({"alpha v2 replies", std::to_string(v2_replies.load())});
  table.PrintRow({"registry swaps", std::to_string(swaps)});
  table.PrintRow({"throughput (req/s)", bench::Fmt(throughput, 1)});
  table.PrintRow({"p50 latency (us)", bench::Fmt(p50, 0)});
  table.PrintRow({"p95 latency (us)", bench::Fmt(p95, 0)});
  table.PrintRow({"p99 latency (us)", bench::Fmt(p99, 0)});
  table.PrintRule();

  bool ok = true;
  if (connect_failures.load() != 0) {
    std::fprintf(stderr, "churn: %lld/%lld connections failed to connect\n",
                 (long long)connect_failures.load(), (long long)conns);
    ok = false;
  }
  if (completed.load() != requests) {
    std::fprintf(stderr, "churn: only %lld/%lld requests completed\n",
                 (long long)completed.load(), (long long)requests);
    ok = false;
  }
  if (failures.load() != 0) {
    std::fprintf(stderr, "churn: %lld requests failed\n",
                 (long long)failures.load());
    ok = false;
  }
  if (unmatched.load() != 0) {
    std::fprintf(stderr,
                 "churn: %lld replies matched neither the v1 nor the v2 "
                 "oracle (version crossing or corruption)\n",
                 (long long)unmatched.load());
    ok = false;
  }
  if (reload_failures.load() != 0 || !reload_fired.load()) {
    std::fprintf(stderr, "churn: mid-run RELOAD did not succeed\n");
    ok = false;
  }
  if (v1_replies.load() < 1 || v2_replies.load() < 1) {
    std::fprintf(stderr,
                 "churn: expected alpha replies from both versions, got "
                 "v1=%lld v2=%lld\n",
                 (long long)v1_replies.load(), (long long)v2_replies.load());
    ok = false;
  }
  if (!ok && !first_bad.empty()) {
    std::fprintf(stderr, "churn: first unexpected reply: %.200s\n",
                 first_bad.c_str());
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitThreads(argc, argv);
  const int64_t requests = IntFlag(argc, argv, "--requests", 2000);
  const int64_t clients = IntFlag(argc, argv, "--clients", 4);
  const int64_t workers = IntFlag(argc, argv, "--workers", 2);
  const int64_t max_batch = IntFlag(argc, argv, "--max-batch", 8);
  // 200us coalescing window: long enough for the 4 closed-loop clients to
  // batch, short enough that the batcher's wait does not dominate a ~1-2ms
  // forward — at 1000us the delay floor hid compute-level changes (the int8
  // path included) from the p50 the serving baseline gates on.
  const int64_t max_delay_us = IntFlag(argc, argv, "--max-delay-us", 200);
  const int64_t trace_sample = IntFlag(argc, argv, "--trace-sample", 16);

  obs::TraceRing::Global().SetSampleEvery(trace_sample);
  obs::TelemetryExporterOptions exporter_options;
  exporter_options.path = bench::FlagValue(argc, argv, "--telemetry-out");
  exporter_options.interval_ms =
      IntFlag(argc, argv, "--telemetry-interval-ms", 200);
  obs::TelemetryExporter exporter(exporter_options);
  if (!exporter.Start()) {
    std::fprintf(stderr, "cannot open telemetry output %s\n",
                 exporter_options.path.c_str());
    return 1;
  }

  // Small forecast model: big enough to exercise every layer, small enough
  // that the bench is queue-bound rather than GEMM-bound.
  MsdMixerConfig mc = bench::MixerConfig(TaskType::kForecast, /*channels=*/3,
                                         /*input_length=*/48, /*horizon=*/12,
                                         /*period=*/24);
  Rng rng(7);
  MsdMixer reference(mc, rng);
  const std::string ckpt = "bench_serving_ckpt.msdckpt";
  Status saved = SaveCheckpoint(reference, ckpt);
  if (!saved.ok()) {
    std::fprintf(stderr, "checkpoint save failed: %s\n",
                 saved.ToString().c_str());
    return 1;
  }

  const bool quantize = HasFlag(argc, argv, "--quantize");
  serve::InferenceSessionConfig sc;
  sc.model = mc;
  sc.max_batch = max_batch;
  auto session_or = serve::InferenceSession::Create(sc, ckpt);
  // The quantized phase restores the SAME checkpoint into an int8 session,
  // so both legs serve identical weights.
  std::unique_ptr<serve::InferenceSession> quant_session;
  if (quantize) {
    serve::InferenceSessionConfig qsc = sc;
    qsc.quantize = true;
    auto quant_or = serve::InferenceSession::Create(qsc, ckpt);
    if (!quant_or.ok()) {
      std::fprintf(stderr, "quantized session create failed: %s\n",
                   quant_or.status().ToString().c_str());
      std::remove(ckpt.c_str());
      return 1;
    }
    quant_session = std::move(quant_or).value();
  }
  std::remove(ckpt.c_str());
  if (!session_or.ok()) {
    std::fprintf(stderr, "session create failed: %s\n",
                 session_or.status().ToString().c_str());
    return 1;
  }
  serve::InferenceSession* session = session_or.value().get();

  serve::MicroBatcherConfig bc;
  bc.max_batch = max_batch;
  bc.max_delay_us = max_delay_us;
  bc.queue_capacity = std::max<int64_t>(64, 2 * clients);
  bc.num_workers = workers;
  serve::ServerLoop server(session, bc);
  server.Start();

  // Distinct per-client request windows, so the correctness check exercises
  // batches of mixed rows.
  std::vector<Tensor> windows;
  Rng data_rng(99);
  for (int64_t i = 0; i < clients; ++i) {
    windows.push_back(Tensor::RandNormal({mc.channels, mc.input_length}, 0.0f,
                                         1.0f, data_rng));
  }
  // Ground truth outside the serving path (single-request API).
  std::vector<Tensor> expected;
  for (const Tensor& w : windows) {
    auto direct = session->Predict(w);
    if (!direct.ok()) {
      std::fprintf(stderr, "direct predict failed: %s\n",
                   direct.status().ToString().c_str());
      return 1;
    }
    expected.push_back(direct.value());
  }

  LoadResult load = RunClosedLoop(&server, windows, expected, requests,
                                  clients);
  server.Stop();

  std::vector<double>& merged = load.sorted_latencies_us;
  const double p50 = Percentile(&merged, 0.50);
  const double p95 = Percentile(&merged, 0.95);
  const double p99 = Percentile(&merged, 0.99);
  const double throughput =
      load.wall_s > 0.0 ? static_cast<double>(merged.size()) / load.wall_s
                        : 0.0;

  // Exact client-side percentiles as gauges, so --metrics-out snapshots are
  // comparable across runs by tools/bench_compare.
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("serve/latency_p50_us").Set(p50);
  registry.GetGauge("serve/latency_p95_us").Set(p95);
  registry.GetGauge("serve/latency_p99_us").Set(p99);
  registry.GetGauge("serve/throughput_rps").Set(throughput);

  // Server-side quantiles from the serve/e2e_us histogram: the same request
  // population measured inside the batcher, read back via ValueAtQuantile.
  const obs::Histogram& e2e = serve::Instruments().e2e_us;
  const double server_p50 = e2e.ValueAtQuantile(0.50);
  const double server_p95 = e2e.ValueAtQuantile(0.95);
  const double server_p99 = e2e.ValueAtQuantile(0.99);

  bench::TablePrinter table({"metric", "value"}, {24, 18});
  table.PrintHeader();
  table.PrintRow({"requests completed", std::to_string(merged.size())});
  table.PrintRow({"clients x workers", std::to_string(clients) + " x " +
                                           std::to_string(workers)});
  table.PrintRow({"throughput (req/s)", bench::Fmt(throughput, 1)});
  table.PrintRow({"p50 latency (us)", bench::Fmt(p50, 0)});
  table.PrintRow({"p95 latency (us)", bench::Fmt(p95, 0)});
  table.PrintRow({"p99 latency (us)", bench::Fmt(p99, 0)});
  table.PrintRow({"server p50 (us)", bench::Fmt(server_p50, 0)});
  table.PrintRow({"server p95 (us)", bench::Fmt(server_p95, 0)});
  table.PrintRow({"server p99 (us)", bench::Fmt(server_p99, 0)});
  table.PrintRule();

  const bool backpressure_ok = CheckBackpressure(session);

  bool ok = true;
  if (static_cast<int64_t>(merged.size()) < requests) {
    std::fprintf(stderr, "only %zu/%lld requests completed\n", merged.size(),
                 (long long)requests);
    ok = false;
  }
  if (load.failures != 0) {
    std::fprintf(stderr, "%lld requests failed\n", (long long)load.failures);
    ok = false;
  }
  if (load.mismatches != 0) {
    std::fprintf(stderr, "%lld responses differed from direct Predict\n",
                 (long long)load.mismatches);
    ok = false;
  }
  if (!backpressure_ok) ok = false;

  // Server-side vs client-side agreement: both sides measured every
  // completed request, so the interpolated histogram quantiles must land
  // within --quantile-tolerance percent of the exact client numbers.
  // --quantile-slack-us is the absolute floor under the relative tolerance:
  // the client's number includes the scheduler delay resuming the waiting
  // thread after the future resolves, which the server-side histogram
  // (correctly) never sees — one multi-millisecond wake spike in a small
  // sample's tail breaks any relative bound when the latencies themselves
  // are ~1ms, so short smoke runs pass a slack sized to that spike while
  // the dedicated check.sh recording keeps the strict default.
  const int64_t tolerance_pct =
      IntFlag(argc, argv, "--quantile-tolerance", 10);
  const double slack_us = static_cast<double>(
      IntFlag(argc, argv, "--quantile-slack-us", 30));
  const struct {
    const char* name;
    double q;
    double client;
    double server;
  } quantiles[] = {{"p50", 0.50, p50, server_p50},
                   {"p95", 0.95, p95, server_p95},
                   {"p99", 0.99, p99, server_p99}};
  for (const auto& q : quantiles) {
    // A quantile whose tail holds fewer than ~5 samples is pinned to one or
    // two extreme order statistics, where the client's scheduler wake-up
    // jitter (invisible to the server-side histogram) dominates; comparing
    // there measures the OS, not the telemetry. p99 needs >= 500 requests.
    const double tail_samples =
        (1.0 - q.q) * static_cast<double>(merged.size());
    if (tail_samples < 5.0) {
      std::printf("skipping %s agreement check (%zu requests leave %.0f "
                  "tail samples; need >= 5)\n",
                  q.name, merged.size(), tail_samples);
      continue;
    }
    const double tolerance =
        std::max(static_cast<double>(tolerance_pct) / 100.0 * q.client,
                 slack_us);
    if (std::abs(q.server - q.client) > tolerance) {
      std::fprintf(stderr,
                   "server-side %s (%.0f us) disagrees with client-side "
                   "(%.0f us) by more than %lld%%\n",
                   q.name, q.server, q.client,
                   static_cast<long long>(tolerance_pct));
      ok = false;
    }
  }

  // ---- Quantized phase (--quantize) ----------------------------------------
  // Same closed loop against the int8 session; latencies land in the
  // serve/quant_* gauges so one snapshot carries both legs.
  if (quantize) {
    serve::ServerLoop quant_server(quant_session.get(), bc);
    quant_server.Start();
    std::vector<Tensor> quant_expected;
    for (const Tensor& w : windows) {
      auto direct = quant_session->Predict(w);
      if (!direct.ok()) {
        std::fprintf(stderr, "quantized direct predict failed: %s\n",
                     direct.status().ToString().c_str());
        return 1;
      }
      quant_expected.push_back(direct.value());
    }
    LoadResult quant_load = RunClosedLoop(&quant_server, windows,
                                          quant_expected, requests, clients);
    quant_server.Stop();
    std::vector<double>& qmerged = quant_load.sorted_latencies_us;
    const double qp50 = Percentile(&qmerged, 0.50);
    const double qp95 = Percentile(&qmerged, 0.95);
    const double qp99 = Percentile(&qmerged, 0.99);
    const double qthroughput =
        quant_load.wall_s > 0.0
            ? static_cast<double>(qmerged.size()) / quant_load.wall_s
            : 0.0;
    registry.GetGauge("serve/quant_latency_p50_us").Set(qp50);
    registry.GetGauge("serve/quant_latency_p95_us").Set(qp95);
    registry.GetGauge("serve/quant_latency_p99_us").Set(qp99);
    registry.GetGauge("serve/quant_throughput_rps").Set(qthroughput);

    bench::TablePrinter quant_table({"metric (int8)", "value"}, {24, 18});
    quant_table.PrintHeader();
    quant_table.PrintRow(
        {"requests completed", std::to_string(qmerged.size())});
    quant_table.PrintRow({"throughput (req/s)", bench::Fmt(qthroughput, 1)});
    quant_table.PrintRow({"p50 latency (us)", bench::Fmt(qp50, 0)});
    quant_table.PrintRow({"p95 latency (us)", bench::Fmt(qp95, 0)});
    quant_table.PrintRow({"p99 latency (us)", bench::Fmt(qp99, 0)});
    quant_table.PrintRow(
        {"p50 speedup vs fp32",
         qp50 > 0.0 ? bench::Fmt(p50 / qp50, 2) + "x" : "n/a"});
    quant_table.PrintRule();

    if (static_cast<int64_t>(qmerged.size()) < requests) {
      std::fprintf(stderr, "quantized: only %zu/%lld requests completed\n",
                   qmerged.size(), (long long)requests);
      ok = false;
    }
    if (quant_load.failures != 0) {
      std::fprintf(stderr, "quantized: %lld requests failed\n",
                   (long long)quant_load.failures);
      ok = false;
    }
    if (quant_load.mismatches != 0) {
      // Quantization must preserve batch-composition invariance: row b of a
      // quantized batch equals the quantized single-request Predict.
      std::fprintf(stderr,
                   "quantized: %lld responses differed from direct Predict\n",
                   (long long)quant_load.mismatches);
      ok = false;
    }
  }

  // ---- Multi-tenant churn phase (--churn) ----------------------------------
  // Runs last: its multi-model socket traffic would otherwise pollute the
  // serve/e2e_us population the agreement check above reads.
  if (HasFlag(argc, argv, "--churn")) {
    const int64_t conns = IntFlag(argc, argv, "--conns", 128);
    const int64_t churn_requests =
        IntFlag(argc, argv, "--churn-requests", 4000);
    if (!RunChurnPhase(conns, churn_requests, workers, max_batch,
                       max_delay_us)) {
      ok = false;
    }
  }

  // Final flush so the JSONL's last snapshot carries the end-state gauges
  // and the complete serve/e2e_us histogram.
  exporter.Stop();

  const std::string ring_trace = bench::FlagValue(argc, argv, "--ring-trace-out");
  if (!ring_trace.empty()) {
    const std::string json = obs::TraceRing::Global().ChromeTraceJson();
    std::FILE* f = std::fopen(ring_trace.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(json.data(), 1, json.size(), f) != json.size()) {
      std::fprintf(stderr, "cannot write %s\n", ring_trace.c_str());
      ok = false;
    }
    if (f != nullptr) std::fclose(f);
  }

  if (!bench::ExportTelemetry(argc, argv)) ok = false;
  return ok ? 0 : 1;
}
