// Reproduces paper Table VI (short-term forecasting on M4-like data) and
// prints the dataset statistics of Table V.
//
// Protocol: six frequency subsets, per-subset horizon and seasonal period m,
// SMAPE / MASE / OWA where OWA is normalized by the Naive2 reference
// computed on the same series (Eq. 8). The paper's weighted average row is
// reproduced by weighting each subset by its series count.
// Models: MSD-Mixer, N-BEATS-like, DLinear, LightTS-like, plus the Naive2
// reference itself (OWA = 1 by construction).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "baselines/dlinear.h"
#include "baselines/lightts.h"
#include "baselines/nbeats.h"
#include "baselines/nhits.h"
#include "bench_util.h"
#include "datagen/m4like.h"

namespace msd {
namespace {

using bench::BenchTrainer;
using bench::Fmt;
using bench::MixerConfig;

struct SubsetResult {
  std::string model;
  M4Scores scores;
};

std::vector<SubsetResult> RunSubset(const M4SubsetSpec& spec,
                                    const std::vector<UnivariateSeries>& data) {
  ShortTermExperimentConfig config;
  config.lookback_multiple = 3;
  config.trainer = BenchTrainer(/*epochs=*/40, /*max_batches=*/0, 5e-3f);
  const int64_t lookback = ShortTermLookback(spec, config);

  std::vector<SubsetResult> results;
  {
    Rng rng(10);
    // Period-derived patch ladder; the lookback is 2H so patch sizes span
    // the subset's seasonal structure.
    MsdMixerConfig mc = MixerConfig(TaskType::kForecast, 1, lookback,
                                    spec.horizon,
                                    spec.period > 1 ? spec.period : lookback / 4);
    MsdMixer mixer(mc, rng);
    ResidualLossOptions ro;
    ro.max_lag = std::min<int64_t>(lookback - 1, 16);
    MsdMixerTaskModel model(&mixer, 0.5f, ro);
    results.push_back(
        {"MSD-Mixer", RunShortTermExperiment(model, data, spec, config)});
  }
  {
    Rng rng(20);
    NBeats nbeats(lookback, spec.horizon, rng, 3, 64);
    ModuleTaskModel model(&nbeats);
    results.push_back(
        {"N-BEATS", RunShortTermExperiment(model, data, spec, config)});
  }
  {
    Rng rng(25);
    std::vector<int64_t> pools;
    for (int64_t k : {4, 2, 1}) {
      if (k <= lookback) pools.push_back(k);
    }
    NHits nhits(lookback, spec.horizon, rng, pools, 64);
    ModuleTaskModel model(&nhits);
    results.push_back(
        {"N-HiTS", RunShortTermExperiment(model, data, spec, config)});
  }
  {
    Rng rng(30);
    DLinear dlinear(lookback, spec.horizon, rng,
                    std::min<int64_t>(25, lookback));
    ModuleTaskModel model(&dlinear);
    results.push_back(
        {"DLinear", RunShortTermExperiment(model, data, spec, config)});
  }
  {
    Rng rng(40);
    LightTs lightts(lookback, spec.horizon, rng);
    ModuleTaskModel model(&lightts);
    results.push_back(
        {"LightTS", RunShortTermExperiment(model, data, spec, config)});
  }
  {
    // Naive2 reference scored through the same pipeline.
    std::vector<std::vector<float>> forecasts;
    std::vector<std::vector<float>> actuals;
    std::vector<std::vector<float>> histories;
    for (const UnivariateSeries& s : data) {
      forecasts.push_back(Naive2Forecast(s.history, spec.horizon, spec.period));
      actuals.push_back(s.future);
      histories.push_back(s.history);
    }
    results.push_back(
        {"Naive2", EvaluateM4(forecasts, actuals, histories, spec.period)});
  }
  return results;
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  msd::bench::InitThreads(argc, argv);
  using namespace msd;
  const auto subsets = DefaultM4Subsets();

  std::printf("== Table V analogue: M4-like short-term datasets ==\n");
  bench::TablePrinter stats(
      {"Subset", "Horizon", "Period m", "History", "Series", "Paper series"},
      {9, 7, 8, 7, 6, 12});
  stats.PrintHeader();
  const std::map<std::string, std::string> paper_counts = {
      {"Yearly", "23000"}, {"Quarterly", "24000"}, {"Monthly", "48000"},
      {"Weekly", "359"},   {"Daily", "4227"},      {"Hourly", "414"}};
  for (const auto& spec : subsets) {
    stats.PrintRow({spec.name, std::to_string(spec.horizon),
                    std::to_string(spec.period),
                    std::to_string(spec.history_length),
                    std::to_string(spec.num_series),
                    paper_counts.at(spec.name)});
  }
  stats.PrintRule();

  std::printf(
      "\n== Table VI analogue: short-term forecasting "
      "(SMAPE / MASE / OWA) ==\n\n");
  const std::vector<std::string> models = {"MSD-Mixer", "N-BEATS", "N-HiTS",
                                           "DLinear", "LightTS", "Naive2"};
  bench::TablePrinter table({"Subset", "Metric", "MSD-Mixer", "N-BEATS",
                             "N-HiTS", "DLinear", "LightTS", "Naive2"},
                            {9, 6, 10, 10, 10, 10, 10, 10});
  table.PrintHeader();

  // Weighted averages across subsets (weights = series counts), as in the
  // competition's overall score.
  std::map<std::string, double> smape_acc;
  std::map<std::string, double> mase_acc;
  std::map<std::string, double> owa_acc;
  int64_t total_series = 0;
  std::map<std::string, int> first_counts;
  int total_benchmarks = 0;

  for (const auto& spec : subsets) {
    const auto data = GenerateM4Like(spec, /*seed=*/5);
    const auto results = RunSubset(spec, data);
    for (int metric = 0; metric < 3; ++metric) {
      std::vector<double> values;
      for (const auto& r : results) {
        values.push_back(metric == 0 ? r.scores.smape
                                     : metric == 1 ? r.scores.mase
                                                   : r.scores.owa);
      }
      const char* metric_name = metric == 0 ? "SMAPE" : metric == 1 ? "MASE" : "OWA";
      const auto cells = bench::MarkBest(values, 3);
      std::vector<std::string> row = {metric == 0 ? spec.name : "", metric_name};
      row.insert(row.end(), cells.begin(), cells.end());
      table.PrintRow(row);
      double best = 1e30;
      std::string best_model;
      for (size_t m = 0; m < results.size(); ++m) {
        if (values[m] < best) {
          best = values[m];
          best_model = results[m].model;
        }
      }
      first_counts[best_model]++;
      ++total_benchmarks;
    }
    table.PrintRule();
    std::fflush(stdout);
    for (const auto& r : results) {
      smape_acc[r.model] += r.scores.smape * spec.num_series;
      mase_acc[r.model] += r.scores.mase * spec.num_series;
      owa_acc[r.model] += r.scores.owa * spec.num_series;
    }
    total_series += spec.num_series;
  }

  std::vector<double> avg_smape;
  std::vector<double> avg_mase;
  std::vector<double> avg_owa;
  for (const auto& m : models) {
    avg_smape.push_back(smape_acc[m] / total_series);
    avg_mase.push_back(mase_acc[m] / total_series);
    avg_owa.push_back(owa_acc[m] / total_series);
  }
  auto print_avg = [&](const char* name, const std::vector<double>& values) {
    std::vector<std::string> row = {"Wgt.Avg", name};
    const auto cells = bench::MarkBest(values, 3);
    row.insert(row.end(), cells.begin(), cells.end());
    table.PrintRow(row);
  };
  print_avg("SMAPE", avg_smape);
  print_avg("MASE", avg_mase);
  print_avg("OWA", avg_owa);
  table.PrintRule();

  std::printf("\n1st-place counts over %d benchmarks:\n", total_benchmarks);
  for (const auto& m : models) std::printf("  %-10s %d\n", m.c_str(), first_counts[m]);
  std::printf(
      "\nPaper shape check (Table VI): MSD-Mixer first on every benchmark\n"
      "(15/15), N-BEATS/N-HiTS the strongest baselines, with avg OWA 0.838\n"
      "(MSD-Mixer) vs 0.855 (N-BEATS). Expected here: MSD-Mixer and N-BEATS\n"
      "lead with OWA < 1 (better than Naive2) on seasonal subsets.\n");
  return bench::ExportTelemetry(argc, argv) ? 0 : 1;
}
