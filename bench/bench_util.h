// Shared helpers for the table/figure reproduction benches: scale control,
// model factories with paper-style hyperparameters, naive-forecast
// evaluation, and fixed-width table printing.
#ifndef MSDMIXER_BENCH_BENCH_UTIL_H_
#define MSDMIXER_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/naive.h"
#include "core/msd_mixer.h"
#include "metrics/metrics.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "runtime/parallel.h"
#include "tasks/experiments.h"

namespace msd {
namespace bench {

// ---- Telemetry export -------------------------------------------------------
// Every bench accepts
//   --metrics-out <path>   combined metrics + span-aggregate JSON snapshot
//   --trace-out <path>     chrome://tracing event file
// so BENCH_*.json perf trajectories come straight from the registry instead
// of ad-hoc timers.

// Value of `--flag <v>` or `--flag=<v>` in argv; empty string when absent.
inline std::string FlagValue(int argc, char** argv, const std::string& flag) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

// ---- Build-type stamping ----------------------------------------------------
// google-benchmark's own "library_build_type" context records how the
// *benchmark library* was built — the distro package reports "debug" even
// when this tree is compiled -O3 — so recorded baselines stamp the repo's
// own compile mode instead, straight from CMAKE_BUILD_TYPE (the root
// CMakeLists defines MSD_BUILD_TYPE_STRING; NDEBUG would be wrong here
// because the repo's Release flags deliberately omit it to keep MSD_CHECK
// active). Bench mains pass this to
// benchmark::AddCustomContext("msd_build_type", ...); tools/bench_compare
// refuses to compare google-benchmark files whose context does not say
// msd_build_type=release.
inline const char* BuildTypeString() {
#ifdef MSD_BUILD_TYPE_STRING
  return MSD_BUILD_TYPE_STRING;
#else
  return "unknown";
#endif
}

// ---- Thread-count control ---------------------------------------------------
// Every bench accepts --threads N, overriding the MSD_THREADS / hardware
// default for the whole run. Results are bit-identical for any value
// (docs/RUNTIME.md), so this only trades wall-clock for cores.

// Parsed value of --threads; 0 when absent (keep the ambient default).
// Exits with a usage error on a malformed or non-positive value.
inline int64_t ThreadsFlagValue(int argc, char** argv) {
  const std::string v = FlagValue(argc, argv, "--threads");
  if (v.empty()) return 0;
  char* end = nullptr;
  const long long n = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || n <= 0) {
    std::fprintf(stderr, "invalid --threads value '%s' (want a positive int)\n",
                 v.c_str());
    std::exit(2);
  }
  return static_cast<int64_t>(n);
}

// Applies --threads (when present) to the global pool. Call once at the top
// of a bench main(), before any tensor work.
inline void InitThreads(int argc, char** argv) {
  const int64_t n = ThreadsFlagValue(argc, argv);
  if (n > 0) runtime::SetNumThreads(n);
}

inline std::string MetricsOutPath(int argc, char** argv) {
  return FlagValue(argc, argv, "--metrics-out");
}

inline std::string TraceOutPath(int argc, char** argv) {
  return FlagValue(argc, argv, "--trace-out");
}

// Writes {"metrics": <registry snapshot>, "spans": <profiler aggregates>}
// to `path` and re-parses the file contents as a self-check. Returns false
// (with a message on stderr) on I/O or parse failure.
inline bool WriteTelemetryReport(const std::string& path) {
  const std::string json = "{\"metrics\":" +
                           obs::MetricsRegistry::Global().ToJson() +
                           ",\"spans\":" +
                           obs::Profiler::Global().AggregateReportJson() + "}";
  obs::JsonValue parsed;
  if (!obs::JsonParse(json, &parsed) || parsed.Find("metrics") == nullptr ||
      parsed.Find("spans") == nullptr) {
    std::fprintf(stderr, "telemetry report failed JSON self-check\n");
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  if (std::fclose(f) != 0 || written != json.size()) {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
    return false;
  }
  std::printf("telemetry written to %s (%zu bytes)\n", path.c_str(),
              json.size());
  return true;
}

// Handles both telemetry flags at the end of a bench main(); returns false
// if a requested export failed (benches exit nonzero on that).
inline bool ExportTelemetry(int argc, char** argv) {
  bool ok = true;
  const std::string metrics = MetricsOutPath(argc, argv);
  if (!metrics.empty()) ok = WriteTelemetryReport(metrics) && ok;
  const std::string trace = TraceOutPath(argc, argv);
  if (!trace.empty()) {
    if (obs::Profiler::Global().WriteChromeTrace(trace)) {
      std::printf("chrome trace written to %s\n", trace.c_str());
    } else {
      std::fprintf(stderr, "cannot write chrome trace %s\n", trace.c_str());
      ok = false;
    }
  }
  return ok;
}

// MSD_BENCH_SCALE scales training effort (epochs); 1.0 is the default
// CPU-budget configuration, larger values train longer.
inline double BenchScale() {
  const char* env = std::getenv("MSD_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

inline int64_t ScaledEpochs(int64_t base) {
  return std::max<int64_t>(1, static_cast<int64_t>(base * BenchScale()));
}

// Patch-size ladder derived from the dataset's dominant period, mirroring
// how the paper sets patch sizes from the sampling interval (§IV-A):
// {P, P/2, P/4, 2, 1} clipped to the lookback and deduplicated.
inline std::vector<int64_t> PatchLadder(int64_t period, int64_t lookback) {
  std::vector<int64_t> raw = {period, period / 2, period / 4, 2, 1};
  std::vector<int64_t> out;
  for (int64_t p : raw) {
    p = std::min(p, lookback);
    if (p >= 1 && (out.empty() || p < out.back())) out.push_back(p);
  }
  std::sort(out.rbegin(), out.rend());
  return out;
}

// Standard bench-sized MSD-Mixer configuration.
inline MsdMixerConfig MixerConfig(TaskType task, int64_t channels,
                                  int64_t input_length, int64_t horizon,
                                  int64_t period, int64_t num_classes = 2) {
  MsdMixerConfig config;
  config.input_length = input_length;
  config.channels = channels;
  config.patch_sizes = PatchLadder(period, input_length);
  config.model_dim = 16;
  config.hidden_dim = 32;
  config.drop_path = 0.0f;
  config.task = task;
  config.horizon = horizon;
  config.num_classes = num_classes;
  return config;
}

// Default trainer for bench runs; epochs scale with MSD_BENCH_SCALE.
inline TrainerConfig BenchTrainer(int64_t epochs, int64_t max_batches,
                                  float lr = 3e-3f) {
  TrainerConfig trainer;
  trainer.epochs = ScaledEpochs(epochs);
  trainer.batch_size = 32;
  trainer.lr = lr;
  trainer.max_batches_per_epoch = max_batches;
  trainer.grad_clip = 5.0f;
  return trainer;
}

// Evaluates the training-free (seasonal) naive forecaster over a window
// dataset; m <= 1 degenerates to last-value naive.
inline RegressionScores EvaluateNaiveOnDataset(const Dataset& test, int64_t m,
                                               int64_t batch_size = 64) {
  Rng rng(1);
  DataLoader loader(&test, batch_size, /*shuffle=*/false, rng);
  double sse = 0.0;
  double sae = 0.0;
  int64_t count = 0;
  for (int64_t b = 0; b < loader.NumBatches(); ++b) {
    Batch batch = loader.GetBatch(b);
    const int64_t horizon = batch.target.dim(2);
    Tensor pred = m > 1 ? SeasonalNaiveForecast(batch.input, horizon, m)
                        : NaiveForecast(batch.input, horizon);
    const int64_t n = pred.numel();
    sse += MseMetric(pred, batch.target) * static_cast<double>(n);
    sae += MaeMetric(pred, batch.target) * static_cast<double>(n);
    count += n;
  }
  return {sse / static_cast<double>(count), sae / static_cast<double>(count)};
}

// ---- Fixed-width table printing ---------------------------------------------

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::vector<int> widths)
      : headers_(std::move(headers)), widths_(std::move(widths)) {}

  void PrintHeader() const {
    PrintRule();
    for (size_t i = 0; i < headers_.size(); ++i) {
      std::printf("| %-*s ", widths_[i], headers_[i].c_str());
    }
    std::printf("|\n");
    PrintRule();
  }

  void PrintRow(const std::vector<std::string>& cells) const {
    for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      std::printf("| %-*s ", widths_[i], cells[i].c_str());
    }
    std::printf("|\n");
  }

  void PrintRule() const {
    for (int w : widths_) {
      std::printf("+");
      for (int i = 0; i < w + 2; ++i) std::printf("-");
    }
    std::printf("+\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

inline std::string Fmt(double v, int precision = 3) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

// Table cell for a model's training cost, taken from the trainer's own
// telemetry (TrainStats::total_wall_seconds) rather than a bench-local timer.
inline std::string TrainSecondsCell(const TrainStats& stats) {
  return Fmt(stats.total_wall_seconds, 1) + "s";
}

// Marks the minimum value in a row of scores with an asterisk.
inline std::vector<std::string> MarkBest(const std::vector<double>& values,
                                         int precision = 3,
                                         bool lower_is_better = true) {
  double best = values[0];
  for (double v : values) {
    best = lower_is_better ? std::min(best, v) : std::max(best, v);
  }
  std::vector<std::string> out;
  for (double v : values) {
    out.push_back(v == best ? Fmt(v, precision) + "*" : Fmt(v, precision));
  }
  return out;
}

}  // namespace bench
}  // namespace msd

#endif  // MSDMIXER_BENCH_BENCH_UTIL_H_
