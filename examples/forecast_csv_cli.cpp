// Command-line forecaster over CSV data: train an MSD-Mixer on a CSV time
// series and append a forecast, entirely from the shell.
//
//   forecast_csv_cli <input.csv> <output.csv> [lookback] [horizon] [epochs]
//
// The input CSV is one row per time step, one column per channel (optional
// header and timestamp column, as produced by the common benchmark dumps).
// The output CSV contains the forecast rows only.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/msd_mixer.h"
#include "data/csv.h"
#include "data/scaler.h"
#include "tasks/experiments.h"
#include "tensor/tensor_ops.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input.csv> <output.csv> [lookback=96] "
               "[horizon=24] [epochs=5]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msd;
  if (argc < 3) {
    Usage(argv[0]);
    return 1;
  }
  const std::string in_path = argv[1];
  const std::string out_path = argv[2];
  const int64_t lookback = argc > 3 ? std::atoll(argv[3]) : 96;
  const int64_t horizon = argc > 4 ? std::atoll(argv[4]) : 24;
  const int64_t epochs = argc > 5 ? std::atoll(argv[5]) : 5;
  if (lookback <= 0 || horizon <= 0 || epochs <= 0) {
    Usage(argv[0]);
    return 1;
  }

  auto loaded = ReadCsvSeries(in_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Tensor series = loaded.value().values;
  const int64_t channels = series.dim(0);
  const int64_t steps = series.dim(1);
  std::printf("loaded %s: %lld channels x %lld steps\n", in_path.c_str(),
              (long long)channels, (long long)steps);
  if (steps < 2 * (lookback + horizon)) {
    std::fprintf(stderr,
                 "error: need at least %lld steps for lookback %lld and "
                 "horizon %lld\n",
                 (long long)(2 * (lookback + horizon)), (long long)lookback,
                 (long long)horizon);
    return 1;
  }

  // Standardize on the full history (we forecast beyond the file's end).
  StandardScaler scaler;
  scaler.Fit(series);
  Tensor scaled = scaler.Transform(series);

  // Estimate the dominant period to choose the patch ladder.
  Tensor probe = Slice(scaled, 1, std::max<int64_t>(0, steps - 4 * lookback),
                       std::min<int64_t>(steps, 4 * lookback));
  const int64_t period =
      std::min<int64_t>(DominantPeriod(probe, 0), lookback);
  std::printf("dominant period estimate: %lld steps\n", (long long)period);

  Rng rng(1234);
  MsdMixerConfig mc;
  mc.input_length = lookback;
  mc.channels = channels;
  mc.patch_sizes.clear();
  for (int64_t p : {period, period / 2, period / 4, int64_t{2}, int64_t{1}}) {
    p = std::min(p, lookback);
    if (p >= 1 && (mc.patch_sizes.empty() || p < mc.patch_sizes.back())) {
      mc.patch_sizes.push_back(p);
    }
  }
  mc.model_dim = 16;
  mc.hidden_dim = 32;
  mc.task = TaskType::kForecast;
  mc.horizon = horizon;
  mc.use_instance_norm = true;
  MsdMixer mixer(mc, rng);
  ResidualLossOptions ro;
  ro.max_lag = std::min<int64_t>(24, lookback - 1);
  MsdMixerTaskModel model(&mixer, 0.5f, ro);

  ForecastWindowDataset train(scaled, lookback, horizon,
                              std::max<int64_t>(1, steps / 1000));
  TrainerConfig trainer;
  trainer.epochs = epochs;
  trainer.batch_size = 32;
  trainer.lr = 3e-3f;
  trainer.max_batches_per_epoch = 40;
  trainer.verbose = true;
  std::printf("training %lld-layer MSD-Mixer (%lld params)...\n",
              (long long)mc.patch_sizes.size(),
              (long long)mixer.NumParameters());
  Train(model, train, trainer, ForecastMseTaskLoss);

  // Forecast from the last lookback window.
  NoGradGuard guard;
  mixer.SetTraining(false);
  Tensor window = Slice(scaled, 1, steps - lookback, lookback);
  Tensor forecast =
      mixer.Run(Variable(window.Reshape({1, channels, lookback})))
          .prediction.value()
          .Reshape({channels, horizon});
  Tensor forecast_raw = scaler.InverseTransform(forecast);

  Status wrote =
      WriteCsvSeries(forecast_raw, loaded.value().channel_names, out_path);
  if (!wrote.ok()) {
    std::fprintf(stderr, "error: %s\n", wrote.ToString().c_str());
    return 1;
  }
  std::printf("wrote %lld forecast rows to %s\n", (long long)horizon,
              out_path.c_str());
  return 0;
}
