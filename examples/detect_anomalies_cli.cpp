// Command-line anomaly detector over CSV data: train an MSD-Mixer
// reconstruction model on a CSV of normal telemetry, score a second CSV,
// and print flagged intervals.
//
//   detect_anomalies_cli <normal.csv> <monitored.csv> [window=100]
//                        [anomaly_ratio=0.02] [epochs=8]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/msd_mixer.h"
#include "data/csv.h"
#include "tasks/experiments.h"
#include "tensor/tensor_ops.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <normal.csv> <monitored.csv> [window=100] "
               "[anomaly_ratio=0.02] [epochs=8]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msd;
  if (argc < 3) {
    Usage(argv[0]);
    return 1;
  }
  const int64_t window = argc > 3 ? std::atoll(argv[3]) : 100;
  const double ratio = argc > 4 ? std::atof(argv[4]) : 0.02;
  const int64_t epochs = argc > 5 ? std::atoll(argv[5]) : 8;
  if (window <= 0 || ratio <= 0.0 || ratio >= 1.0 || epochs <= 0) {
    Usage(argv[0]);
    return 1;
  }

  auto normal = ReadCsvSeries(argv[1]);
  auto monitored = ReadCsvSeries(argv[2]);
  if (!normal.ok() || !monitored.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 (!normal.ok() ? normal.status() : monitored.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  const Tensor& train = normal.value().values;
  const Tensor& test = monitored.value().values;
  if (train.dim(0) != test.dim(0)) {
    std::fprintf(stderr, "error: channel mismatch (%lld vs %lld)\n",
                 (long long)train.dim(0), (long long)test.dim(0));
    return 1;
  }
  std::printf("normal: %lld x %lld, monitored: %lld x %lld, window %lld\n",
              (long long)train.dim(0), (long long)train.dim(1),
              (long long)test.dim(0), (long long)test.dim(1),
              (long long)window);

  Rng rng(99);
  MsdMixerConfig mc;
  mc.input_length = window;
  mc.channels = train.dim(0);
  // Bottlenecked reconstruction configuration (see DESIGN.md).
  mc.patch_sizes.clear();
  for (int64_t p : {window / 2, window / 4, window / 10}) {
    if (p >= 1 && (mc.patch_sizes.empty() || p < mc.patch_sizes.back())) {
      mc.patch_sizes.push_back(p);
    }
  }
  mc.model_dim = 4;
  mc.hidden_dim = 32;
  mc.task = TaskType::kReconstruction;
  MsdMixer mixer(mc, rng);
  ResidualLossOptions ro;
  ro.max_lag = std::min<int64_t>(24, window - 1);
  MsdMixerTaskModel model(&mixer, 0.1f, ro);

  AnomalyExperimentConfig config;
  config.window = window;
  config.anomaly_ratio = ratio;
  config.trainer.epochs = epochs;
  config.trainer.batch_size = 16;
  config.trainer.lr = 3e-3f;
  config.trainer.max_batches_per_epoch = 25;

  // Labels are unknown at deployment; pass zeros and use the configured
  // ratio for the threshold.
  std::vector<int> no_labels(static_cast<size_t>(test.dim(1)), 0);
  std::printf("training reconstruction model (%lld params)...\n",
              (long long)mixer.NumParameters());
  AnomalyEvalResult result =
      RunAnomalyExperiment(model, train, test, no_labels, config);
  std::printf("threshold %.5f (top %.1f%% of scores)\n", result.threshold,
              100.0 * ratio);

  StandardScaler scaler;
  scaler.Fit(train);
  std::vector<float> scores =
      ReconstructionScores(model, scaler.Transform(test), window);
  size_t i = 0;
  int incidents = 0;
  while (i < scores.size()) {
    if (scores[i] > result.threshold) {
      size_t j = i;
      float peak = 0.0f;
      while (j < scores.size() && scores[j] > result.threshold) {
        peak = std::max(peak, scores[j]);
        ++j;
      }
      if (j - i >= 3) {
        std::printf("  anomaly [%6zu, %6zu)  %5zu steps  peak score %.4f\n",
                    i, j, j - i, peak);
        ++incidents;
      }
      i = j;
    } else {
      ++i;
    }
  }
  std::printf("%d sustained incident(s) flagged over %zu scored steps\n",
              incidents, scores.size());
  return 0;
}
