// Scenario: backfilling gaps in a sensor log stored as CSV. Demonstrates the
// full I/O path a downstream user would take: read a CSV with missing cells,
// train an MSD-Mixer imputer on the observed data, fill the gaps, and write
// the completed log back out. Also shows checkpoint save/load.
#include <cmath>
#include <cstdio>
#include <string>

#include "core/msd_mixer.h"
#include "data/csv.h"
#include "data/scaler.h"
#include "datagen/series_builder.h"
#include "nn/serialize.h"
#include "tasks/experiments.h"
#include "tensor/tensor_ops.h"

namespace {
constexpr int64_t kWindow = 96;
}

int main() {
  using namespace msd;
  std::printf("CSV sensor backfill demo\n");

  // --- 1. Fabricate a sensor log with gaps and write it as CSV (stands in
  //        for the user's real file).
  SeriesConfig gen;
  gen.length = 1500;
  gen.seed = 17;
  gen.channel_mix = 0.3;
  for (int c = 0; c < 4; ++c) {
    ChannelSpec spec;
    spec.seasonals = {{24.0, 1.0, 0.4 * c, 2}};
    spec.ar_coeff = 0.6;
    spec.noise_sigma = 0.2;
    gen.channels.push_back(spec);
  }
  Tensor truth = GenerateSeries(gen);
  Tensor logged = truth.Clone();
  Rng gap_rng(3);
  int64_t missing = 0;
  for (int64_t i = 0; i < logged.numel(); ++i) {
    if (gap_rng.Bernoulli(0.15)) {
      logged.data()[i] = std::numeric_limits<float>::quiet_NaN();
      ++missing;
    }
  }
  const std::string in_path = "/tmp/sensor_log.csv";
  const std::string out_path = "/tmp/sensor_log_filled.csv";
  Status wrote =
      WriteCsvSeries(logged, {"temp", "pressure", "flow", "vibration"}, in_path);
  MSD_CHECK(wrote.ok()) << wrote.ToString();
  std::printf("Wrote %s: 4 channels x 1500 steps, %lld missing cells\n",
              in_path.c_str(), (long long)missing);

  // --- 2. Read it back; missing cells arrive as NaN.
  auto loaded = ReadCsvSeries(in_path);
  MSD_CHECK(loaded.ok()) << loaded.status().ToString();
  Tensor series = loaded.value().values;

  // Replace NaNs with zeros (the imputation convention) and remember where
  // they were.
  Tensor observed = Tensor::Ones(series.shape());
  for (int64_t i = 0; i < series.numel(); ++i) {
    if (std::isnan(series.data()[i])) {
      series.data()[i] = 0.0f;
      observed.data()[i] = 0.0f;
    }
  }

  // --- 3. Train an imputer on randomly re-masked windows of the log.
  StandardScaler scaler;
  scaler.Fit(series);  // NaNs already zeroed; adequate for a demo
  Tensor scaled = scaler.Transform(series);

  Rng rng(5);
  MsdMixerConfig mc;
  mc.input_length = kWindow;
  mc.channels = 4;
  mc.patch_sizes = {24, 12, 6, 2, 1};
  mc.model_dim = 16;
  mc.hidden_dim = 32;
  mc.task = TaskType::kReconstruction;
  MsdMixer mixer(mc, rng);
  ResidualLossOptions ro;
  ro.include_autocorrelation = false;
  MsdMixerTaskModel model(&mixer, 0.5f, ro);

  ImputationWindowDataset train(scaled, kWindow, /*missing_ratio=*/0.15,
                                /*seed=*/21, /*stride=*/4);
  TrainerConfig trainer;
  trainer.epochs = 4;
  trainer.batch_size = 32;
  trainer.lr = 3e-3f;
  trainer.max_batches_per_epoch = 25;
  std::printf("Training imputer...\n");
  Train(model, train, trainer, ImputationTaskLoss);

  // --- 4. Checkpoint round trip (what a production pipeline would persist).
  const std::string ckpt = "/tmp/imputer.ckpt";
  MSD_CHECK(SaveCheckpoint(mixer, ckpt).ok());
  Rng rng2(999);
  MsdMixer restored(mc, rng2);
  MSD_CHECK(LoadCheckpoint(restored, ckpt).ok());
  std::printf("Checkpoint saved and restored (%s)\n", ckpt.c_str());

  // --- 5. Fill the gaps window by window with the restored model.
  NoGradGuard guard;
  restored.SetTraining(false);
  Tensor filled = series.Clone();
  const int64_t total = series.dim(1);
  double sse = 0.0;
  int64_t filled_count = 0;
  for (int64_t start = 0; start + kWindow <= total; start += kWindow) {
    Tensor window = Slice(scaled, 1, start, kWindow);
    Tensor recon = restored.Run(Variable(window.Reshape({1, 4, kWindow})))
                       .prediction.value()
                       .Reshape({4, kWindow});
    Tensor recon_raw = scaler.InverseTransform(recon);
    for (int64_t c = 0; c < 4; ++c) {
      for (int64_t t = 0; t < kWindow; ++t) {
        if (observed.at({c, start + t}) == 0.0f) {
          const float value = recon_raw.at({c, t});
          filled.set({c, start + t}, value);
          const double err = value - truth.at({c, start + t});
          sse += err * err;
          ++filled_count;
        }
      }
    }
  }
  std::printf("Backfilled %lld cells; RMSE vs ground truth: %.3f "
              "(series std: %.3f)\n",
              (long long)filled_count,
              std::sqrt(sse / std::max<int64_t>(1, filled_count)),
              std::sqrt(MeanAll(Square(Sub(truth, MeanAll(truth)))).item()));

  Status out = WriteCsvSeries(filled, loaded.value().channel_names, out_path);
  MSD_CHECK(out.ok()) << out.ToString();
  std::printf("Wrote completed log to %s\n", out_path.c_str());
  return 0;
}
