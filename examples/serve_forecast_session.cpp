// Train-once, serve-many: the serving half of the pipeline story.
//
// 1. Fit a ForecastPipeline on a synthetic series and Save() it.
// 2. Restore the checkpoint into a frozen serve::InferenceSession
//    (CreateForecastSession reads the .meta sidecar, so no hand-copied
//    scaler statistics or patch ladder).
// 3. Stand up a ServerLoop with the micro-batcher and answer a burst of
//    concurrent requests, then show that a batched answer matches the
//    pipeline's own Predict bit for bit.
//
// See docs/SERVING.md for the knobs this example leaves at defaults.
#include <cstdio>
#include <cstring>
#include <vector>

#include "datagen/series_builder.h"
#include "runtime/worker.h"
#include "serve/server.h"
#include "tasks/pipeline.h"
#include "tensor/tensor_ops.h"

using namespace msd;

int main() {
  // -- 1. Train and checkpoint a small forecaster. --------------------------
  SeriesConfig series_config;
  series_config.name = "serve-demo";
  series_config.length = 600;
  series_config.seed = 11;
  for (int c = 0; c < 3; ++c) {
    ChannelSpec channel;
    channel.level = 2.0 * c;
    channel.seasonals.push_back({24.0, 1.0 + 0.2 * c, 0.3 * c, 2});
    channel.noise_sigma = 0.05;
    series_config.channels.push_back(channel);
  }
  const Tensor series = GenerateSeries(series_config);

  ForecastPipelineConfig pc;
  pc.lookback = 48;
  pc.horizon = 12;
  pc.trainer.epochs = 3;
  pc.trainer.batch_size = 32;
  pc.trainer.max_batches_per_epoch = 12;
  pc.trainer.early_stop_patience = 0;
  ForecastPipeline pipeline(pc, /*seed=*/3);
  std::printf("training on [%lld x %lld] series...\n",
              (long long)series.dim(0), (long long)series.dim(1));
  pipeline.Fit(series);

  const std::string ckpt = "serve_demo.msdckpt";
  Status saved = pipeline.Save(ckpt);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  // Reload so the reference predictions use the checkpointed statistics —
  // the same bits the session restores (see docs/SERVING.md on identity).
  Status reloaded = pipeline.Load(ckpt);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", reloaded.ToString().c_str());
    return 1;
  }

  // -- 2. Freeze the checkpoint into an inference session. -------------------
  serve::ForecastSessionOptions options;
  options.lookback = pc.lookback;
  options.horizon = pc.horizon;
  auto session = serve::CreateForecastSession(ckpt, options);
  std::remove(ckpt.c_str());
  std::remove((ckpt + ".meta").c_str());
  if (!session.ok()) {
    std::fprintf(stderr, "session failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  // -- 3. Serve a concurrent burst through the micro-batcher. ----------------
  serve::MicroBatcherConfig bc;
  bc.max_batch = 8;
  bc.max_delay_us = 1000;
  bc.num_workers = 2;
  serve::ServerLoop server(session.value().get(), bc);
  server.Start();

  const int64_t kClients = 4;
  const int64_t kRequestsEach = 8;
  // Reference answers come from the (single-threaded) pipeline up front;
  // the client threads below only talk to the server.
  std::vector<Tensor> request_windows;
  std::vector<Tensor> expected;
  for (int64_t i = 0; i < kClients * kRequestsEach; ++i) {
    const Tensor window = Slice(series, 1, 16 * i, pc.lookback);
    request_windows.push_back(window);
    expected.push_back(pipeline.Predict(window));
  }
  std::vector<int64_t> mismatches(kClients, 0);
  {
    runtime::WorkerGroup clients;
    clients.Start(kClients, [&](int64_t client) {
      for (int64_t r = 0; r < kRequestsEach; ++r) {
        const int64_t i = client * kRequestsEach + r;
        auto reply = server.Handle(request_windows[i]);
        const Tensor& want = expected[i];
        if (!reply.ok() ||
            std::memcmp(reply.value().data(), want.data(),
                        sizeof(float) * (size_t)want.numel()) != 0) {
          ++mismatches[client];
        }
      }
    });
    clients.Join();
  }
  server.Stop();

  int64_t total_mismatches = 0;
  for (int64_t m : mismatches) total_mismatches += m;
  std::printf("served %lld concurrent requests, %lld mismatches vs "
              "ForecastPipeline::Predict\n",
              (long long)(kClients * kRequestsEach),
              (long long)total_mismatches);
  return total_mismatches == 0 ? 0 : 1;
}
