// Scenario: day-ahead load forecasting for an electricity grid (the ECL-like
// workload that motivates the paper's intro). Trains MSD-Mixer and two
// baselines on correlated feeder loads with daily/weekly cycles, then
// compares day-ahead (24-step) accuracy and prints a per-feeder report.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/dlinear.h"
#include "baselines/naive.h"
#include "core/msd_mixer.h"
#include "datagen/long_term.h"
#include "datagen/series_builder.h"
#include "metrics/metrics.h"
#include "tasks/experiments.h"
#include "tensor/tensor_ops.h"

namespace {

constexpr int64_t kLookback = 96;  // four days of hourly history
constexpr int64_t kHorizon = 24;   // day-ahead forecast

}  // namespace

int main() {
  using namespace msd;
  std::printf("Energy-grid day-ahead forecasting demo (ECL-like workload)\n");
  Tensor series = GenerateSeries(LongTermConfig(LongTermDataset::kEcl, 11));
  const int64_t feeders = series.dim(0);
  std::printf("Feeders: %lld, history: %lld hours\n\n", (long long)feeders,
              (long long)series.dim(1));

  ForecastExperimentConfig experiment;
  experiment.lookback = kLookback;
  experiment.horizon = kHorizon;
  experiment.train_stride = 2;
  experiment.eval_stride = 8;
  experiment.trainer.epochs = 4;
  experiment.trainer.batch_size = 32;
  experiment.trainer.lr = 3e-3f;
  experiment.trainer.max_batches_per_epoch = 40;

  // MSD-Mixer with a daily/sub-daily patch ladder.
  Rng rng(3);
  MsdMixerConfig mc;
  mc.input_length = kLookback;
  mc.channels = feeders;
  mc.patch_sizes = {24, 12, 6, 2, 1};
  mc.model_dim = 16;
  mc.hidden_dim = 32;
  mc.task = TaskType::kForecast;
  mc.horizon = kHorizon;
  MsdMixer mixer(mc, rng);
  ResidualLossOptions ro;
  ro.max_lag = 24;
  MsdMixerTaskModel mixer_model(&mixer, 0.5f, ro);
  std::printf("Training MSD-Mixer (%lld params)...\n",
              (long long)mixer.NumParameters());
  RegressionScores mixer_scores =
      RunForecastExperiment(mixer_model, series, experiment);

  Rng rng2(4);
  DLinear dlinear(kLookback, kHorizon, rng2);
  ModuleTaskModel dlinear_model(&dlinear);
  std::printf("Training DLinear...\n");
  RegressionScores dlinear_scores =
      RunForecastExperiment(dlinear_model, series, experiment);

  // Seasonal-naive reference: repeat yesterday.
  SeriesSplits splits = SplitSeries(series, experiment.split);
  StandardScaler scaler;
  scaler.Fit(splits.train);
  ForecastWindowDataset test(scaler.Transform(splits.test), kLookback,
                             kHorizon, experiment.eval_stride);
  double naive_sse = 0.0;
  int64_t naive_count = 0;
  for (int64_t i = 0; i < test.Size(); ++i) {
    Sample s = test.Get(i);
    Tensor pred = SeasonalNaiveForecast(
        s.input.Reshape({1, feeders, kLookback}), kHorizon, 24);
    naive_sse += MseMetric(pred.Reshape({feeders, kHorizon}), s.target) *
                 s.target.numel();
    naive_count += s.target.numel();
  }
  const double naive_mse = naive_sse / naive_count;

  std::printf("\nDay-ahead forecast error (standardized MSE):\n");
  std::printf("  MSD-Mixer       %.3f\n", mixer_scores.mse);
  std::printf("  DLinear         %.3f\n", dlinear_scores.mse);
  std::printf("  Repeat-last-day %.3f\n", naive_mse);
  std::printf("  MSD-Mixer improvement over repeat-last-day: %.1f%%\n\n",
              100.0 * (1.0 - mixer_scores.mse / naive_mse));

  // Per-feeder error of the mixer on the test windows.
  NoGradGuard guard;
  mixer.SetTraining(false);
  std::vector<double> per_feeder(feeders, 0.0);
  int64_t windows = 0;
  for (int64_t i = 0; i < test.Size(); ++i) {
    Sample s = test.Get(i);
    Tensor pred = mixer.Run(Variable(s.input.Reshape({1, feeders, kLookback})))
                      .prediction.value()
                      .Reshape({feeders, kHorizon});
    Tensor err = Mean(Square(Sub(pred, s.target)), {1}, false);
    for (int64_t f = 0; f < feeders; ++f) {
      per_feeder[(size_t)f] += err.at({f});
    }
    ++windows;
  }
  std::printf("Per-feeder MSD-Mixer MSE (worst feeders first):\n");
  std::vector<std::pair<double, int64_t>> ranked;
  for (int64_t f = 0; f < feeders; ++f) {
    ranked.push_back({per_feeder[(size_t)f] / windows, f});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (size_t i = 0; i < 5 && i < ranked.size(); ++i) {
    std::printf("  feeder %2lld: %.3f\n", (long long)ranked[i].second,
                ranked[i].first);
  }
  return 0;
}
