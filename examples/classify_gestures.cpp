// Scenario: gesture recognition from a 3-axis motion sensor (the UWGL-like
// workload of the paper's classification experiments). Trains an MSD-Mixer
// with a classification head and prints the test confusion matrix.
#include <cstdio>
#include <vector>

#include "core/msd_mixer.h"
#include "data/dataset.h"
#include "datagen/classification_gen.h"
#include "tasks/experiments.h"
#include "tensor/tensor_ops.h"

int main() {
  using namespace msd;
  std::printf("Gesture classification demo (UWGL-like workload)\n");
  ClassificationSubset subset{"UWGL-demo", 3, 160, 8, 160, 160, 0.8};
  ClassificationData data = GenerateClassificationData(subset, 31);
  std::printf("%lld-axis sensor, %lld steps per gesture, %lld classes, "
              "%zu train / %zu test samples\n\n",
              (long long)subset.channels, (long long)subset.length,
              (long long)subset.classes, data.train_x.size(),
              data.test_x.size());

  Rng rng(6);
  MsdMixerConfig mc;
  mc.input_length = subset.length;
  mc.channels = subset.channels;
  mc.patch_sizes = {40, 20, 8, 2, 1};
  mc.model_dim = 8;
  mc.hidden_dim = 32;
  mc.drop_path = 0.1f;
  mc.head_dropout = 0.7f;
  mc.task = TaskType::kClassification;
  mc.num_classes = subset.classes;
  MsdMixer mixer(mc, rng);
  ResidualLossOptions ro;
  ro.max_lag = 16;
  MsdMixerTaskModel model(&mixer, 0.05f, ro);

  ClassificationExperimentConfig config;
  config.trainer.epochs = 25;
  config.trainer.batch_size = 16;
  config.trainer.lr = 2e-3f;
  std::printf("Training (%lld params)...\n",
              (long long)mixer.NumParameters());
  const double accuracy = RunClassificationExperiment(model, data, config);
  std::printf("Test accuracy: %.1f%% (chance: %.1f%%)\n\n", 100.0 * accuracy,
              100.0 / subset.classes);

  // Confusion matrix.
  NoGradGuard guard;
  mixer.SetTraining(false);
  std::vector<std::vector<int>> confusion(
      (size_t)subset.classes, std::vector<int>((size_t)subset.classes, 0));
  for (size_t i = 0; i < data.test_x.size(); ++i) {
    Tensor logits =
        mixer
            .Run(Variable(data.test_x[i].Reshape(
                {1, subset.channels, subset.length})))
            .prediction.value();
    const int64_t pred = (int64_t)ArgMax(logits, 1).at({0});
    confusion[(size_t)data.test_y[i]][(size_t)pred]++;
  }
  std::printf("Confusion matrix (rows = truth, cols = predicted):\n     ");
  for (int64_t c = 0; c < subset.classes; ++c) std::printf("g%lld ", (long long)c);
  std::printf("\n");
  for (int64_t r = 0; r < subset.classes; ++r) {
    std::printf("  g%lld ", (long long)r);
    for (int64_t c = 0; c < subset.classes; ++c) {
      std::printf("%2d ", confusion[(size_t)r][(size_t)c]);
    }
    std::printf("\n");
  }
  return 0;
}
