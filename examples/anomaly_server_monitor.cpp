// Scenario: unsupervised anomaly detection on server-machine telemetry (the
// SMD-like workload of the paper's anomaly experiments). Trains MSD-Mixer as
// a reconstruction model on normal-only data, scores the monitored stream,
// and prints the detected incident windows against ground truth.
#include <cstdio>
#include <vector>

#include "core/msd_mixer.h"
#include "datagen/anomaly_gen.h"
#include "tasks/experiments.h"

int main() {
  using namespace msd;
  std::printf("Server-metric anomaly monitoring demo (SMD-like workload)\n");
  AnomalyData data = GenerateAnomalyDataset(AnomalyDataset::kSmd, 21);
  std::printf("Metrics: %lld channels; %lld normal steps for training, "
              "%lld monitored steps\n\n",
              (long long)data.train.dim(0), (long long)data.train.dim(1),
              (long long)data.test.dim(1));

  Rng rng(5);
  MsdMixerConfig mc;
  mc.input_length = kAnomalyWindow;
  mc.channels = data.train.dim(0);
  // Bottlenecked decomposition (p=50 -> d=4): the model can only
  // reconstruct patterns it has learned, so anomalies stand out.
  mc.patch_sizes = {50, 25, 10};
  mc.model_dim = 4;
  mc.hidden_dim = 32;
  mc.task = TaskType::kReconstruction;
  MsdMixer mixer(mc, rng);
  ResidualLossOptions ro;
  ro.max_lag = 24;
  MsdMixerTaskModel model(&mixer, 0.1f, ro);

  AnomalyExperimentConfig config;
  config.window = kAnomalyWindow;
  config.trainer.epochs = 4;
  config.trainer.batch_size = 16;
  config.trainer.lr = 3e-3f;
  config.trainer.max_batches_per_epoch = 25;
  std::printf("Training reconstruction model on normal data...\n");
  AnomalyEvalResult result = RunAnomalyExperiment(model, data.train, data.test,
                                                  data.labels, config);

  std::printf("Detection threshold: %.4f\n", result.threshold);
  std::printf("Point-adjusted precision %.3f  recall %.3f  F1 %.3f\n\n",
              result.scores.precision, result.scores.recall,
              result.scores.f1);

  // Re-score to list incidents: contiguous runs of above-threshold steps.
  StandardScaler scaler;
  scaler.Fit(data.train);
  std::vector<float> scores = ReconstructionScores(
      model, scaler.Transform(data.test), kAnomalyWindow);
  // Report sustained incidents (>= 5 consecutive above-threshold steps);
  // isolated single-step exceedances are left to the point-adjusted metric.
  constexpr size_t kMinIncident = 5;
  std::printf("Detected incidents (>=%zu steps, vs ground truth overlap):\n",
              kMinIncident);
  size_t i = 0;
  int shown = 0;
  while (i < scores.size() && shown < 12) {
    if (scores[i] > result.threshold) {
      size_t j = i;
      while (j < scores.size() && scores[j] > result.threshold) ++j;
      if (j - i >= kMinIncident) {
        int64_t truth = 0;
        for (size_t k = i; k < j; ++k) truth += data.labels[k];
        std::printf("  [%5zu, %5zu)  %4zu steps  %s\n", i, j, j - i,
                    truth > 0 ? "matches labeled anomaly" : "false alarm");
        ++shown;
      }
      i = j;
    } else {
      ++i;
    }
  }
  if (shown == 0) std::printf("  (none)\n");
  return 0;
}
