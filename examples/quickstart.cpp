// Quickstart: build an MSD-Mixer, train it to forecast a synthetic seasonal
// series, inspect the learned decomposition, and make a forecast.
//
//   $ ./build/examples/quickstart
//
// Walks through the full public API: data generation, windowing + scaling,
// model configuration, the training loop with the Residual Loss, evaluation,
// and the per-layer decomposition the model learns.
#include <cstdio>

#include "core/msd_mixer.h"
#include "core/residual_loss.h"
#include "datagen/series_builder.h"
#include "metrics/metrics.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "tasks/experiments.h"
#include "tensor/tensor_ops.h"

int main() {
  using namespace msd;

  // 1. Data: a 3-channel series with daily (24-step) and weekly (168-step)
  //    cycles, a mild trend, and autocorrelated noise.
  SeriesConfig data_config;
  data_config.name = "quickstart";
  data_config.length = 2000;
  data_config.seed = 42;
  data_config.channel_mix = 0.3;
  for (int c = 0; c < 3; ++c) {
    ChannelSpec channel;
    channel.seasonals = {{24.0, 1.0, 0.5 * c, 2}, {168.0, 0.6, 0.2, 1}};
    channel.trend_slope = 1e-4;
    channel.ar_coeff = 0.6;
    channel.noise_sigma = 0.2;
    data_config.channels.push_back(channel);
  }
  Tensor series = GenerateSeries(data_config);
  std::printf("Generated series: %lld channels x %lld steps\n",
              (long long)series.dim(0), (long long)series.dim(1));

  // 2. Model: 5 decomposition layers with patch sizes matched to the data's
  //    time scales — one day, half a day, a quarter day, 2 steps, 1 step.
  MsdMixerConfig model_config;
  model_config.input_length = 96;  // lookback window L
  model_config.channels = 3;
  model_config.patch_sizes = {24, 12, 6, 2, 1};
  model_config.model_dim = 16;
  model_config.hidden_dim = 32;
  model_config.task = TaskType::kForecast;
  model_config.horizon = 48;
  Rng rng(7);
  MsdMixer mixer(model_config, rng);
  std::printf("MSD-Mixer with %lld parameters, %zu layers\n",
              (long long)mixer.NumParameters(),
              model_config.patch_sizes.size());

  // 3. Train. MsdMixerTaskModel attaches lambda * ResidualLoss(Z_k) so the
  //    decomposition residual is pushed toward white noise (paper Eq. 7).
  MsdMixerTaskModel model(&mixer, /*lambda=*/0.5f);
  ForecastExperimentConfig experiment;
  experiment.lookback = 96;
  experiment.horizon = 48;
  experiment.train_stride = 2;
  experiment.eval_stride = 4;
  experiment.trainer.epochs = 5;
  experiment.trainer.batch_size = 32;
  experiment.trainer.lr = 3e-3f;
  experiment.trainer.max_batches_per_epoch = 30;
  experiment.trainer.verbose = true;
  experiment.trainer.telemetry = TelemetrySink::kRegistry;
  std::printf("Training...\n");
  TrainStats train_stats;
  RegressionScores scores =
      RunForecastExperiment(model, series, experiment, &train_stats);
  std::printf("Test MSE %.3f  MAE %.3f (standardized scale)\n", scores.mse,
              scores.mae);

  // Telemetry summary: what training cost, from the observability subsystem
  // (docs/OBSERVABILITY.md). Counters come from the process-wide registry;
  // per-label timings from the span profiler.
  auto& registry = obs::MetricsRegistry::Global();
  std::printf("\nTelemetry summary:\n");
  std::printf("  model: %lld params (%.1f KiB), ~%lld FLOPs/item forward\n",
              (long long)mixer.NumParameters(),
              (double)mixer.ParameterBytes() / 1024.0,
              (long long)mixer.ApproxForwardFlopsPerItem());
  std::printf("  training: %.2fs wall over %zu epochs, mean |grad| %.3f\n",
              train_stats.total_wall_seconds, train_stats.epoch_losses.size(),
              train_stats.mean_grad_norm());
  std::printf("  tensor: %lld allocs (%.1f MiB), %lld matmuls (%.2f GFLOP)\n",
              (long long)registry.GetCounter("tensor/allocs").value(),
              (double)registry.GetCounter("tensor/alloc_bytes").value() /
                  (1024.0 * 1024.0),
              (long long)registry.GetCounter("tensor/matmul_calls").value(),
              (double)registry.GetCounter("tensor/matmul_flops").value() /
                  1e9);
  std::printf("  autograd: %lld nodes built, %lld backward sweeps\n",
              (long long)registry.GetCounter("autograd/nodes_created").value(),
              (long long)registry.GetCounter("autograd/backward_calls")
                  .value());
  std::printf("  hottest spans (self time):\n");
  for (const auto& [label, s] : obs::Profiler::Global().Aggregates()) {
    std::printf("    %-22s count %6lld  self %8.1f ms  total %8.1f ms\n",
                label.c_str(), (long long)s.count,
                (double)s.self_ns / 1e6, (double)s.total_ns / 1e6);
  }

  // 4. Inspect the decomposition of one window: each layer's component plus
  //    the residual. The components sum back to the input exactly.
  SeriesSplits splits = SplitSeries(series, experiment.split);
  StandardScaler scaler;
  scaler.Fit(splits.train);
  Tensor window =
      Slice(scaler.Transform(splits.test), 1, 0, 96).Reshape({1, 3, 96});
  NoGradGuard guard;
  mixer.SetTraining(false);
  MsdMixerOutput out = mixer.Run(Variable(window), /*collect_components=*/true);
  std::printf("\nDecomposition of one test window:\n");
  for (size_t i = 0; i < out.components.size(); ++i) {
    const Tensor& s = out.components[i].value();
    const float power = MeanAll(Square(s)).item();
    std::printf("  component S%zu (patch %2lld): power %.3f\n", i + 1,
                (long long)model_config.patch_sizes[i], power);
  }
  const float residual_power = MeanAll(Square(out.residual.value())).item();
  Tensor acf = AutocorrelationMatrix(out.residual.value().Reshape({3, 96}));
  std::printf("  residual: power %.3f, ACF within white-noise band: %.0f%%\n",
              residual_power, 100.0 * WhiteNoiseBandFraction(acf, 96));

  // 5. Forecast the next 48 steps from that window.
  Tensor forecast = out.prediction.value();
  std::printf("\nForecast (channel 0, first 8 of %lld steps): ",
              (long long)forecast.dim(2));
  for (int64_t t = 0; t < 8; ++t) {
    std::printf("%.2f ", forecast.at({0, 0, t}));
  }
  std::printf("\nDone.\n");
  return 0;
}
