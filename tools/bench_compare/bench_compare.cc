// Compares two benchmark result files and fails on wall-clock regressions.
//
// Usage:
//   bench_compare <baseline.json> <current.json> [--threshold <pct>]
//
// Accepts either of the repo's two result formats, auto-detected per file:
//   * google-benchmark JSON (--benchmark_out): the "benchmarks" array; each
//     entry's key is its "name" and its metric is "cpu_time" (already
//     normalized per iteration, so adaptive iteration counts do not skew
//     the comparison).
//   * telemetry snapshots written by --metrics-out ({"metrics":…,"spans":…}):
//     each span label maps to total_ms / count, i.e. mean wall-clock per
//     call, again invariant to how many calls the run happened to make.
//     Snapshots from bench_serving additionally contribute their
//     serve/latency_p{50,95,99}_us gauges (the clients' own clocks), and —
//     the gated source of truth — p50/p95/p99 derived from every
//     metrics.histograms entry named serve/*_us via the same bucket
//     interpolation the server uses (obs::QuantileFromBuckets), keyed
//     "serve/e2e_us/p99" style.
//
// Only names present in BOTH files are compared; additions are listed as
// informational, while baseline keys MISSING from the candidate warn on
// stderr (a renamed benchmark or dropped metric is a coverage hole, not
// noise). A name whose current time exceeds baseline by
// more than --threshold percent (default 10) is a regression; any regression
// makes the exit status 1 so tools/check.sh can gate on it. Malformed input
// or usage errors exit 2.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace {

using msd::obs::JsonParse;
using msd::obs::JsonValue;

// Benchmark-name -> per-iteration (or per-call) time. Unit is whatever the
// file uses; both files of a pair must come from the same producer for the
// ratio to mean anything, which the >10%-shift check tolerates anyway since
// only ratios are compared.
using TimeMap = std::map<std::string, double>;

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

// google-benchmark format: {"context":…, "benchmarks":[{"name":…,
// "cpu_time":…, …}, …]}. Aggregate rows (mean/median/stddev from
// --benchmark_repetitions) are skipped so a repetitions run compares its
// raw entries consistently with a non-repetitions baseline.
bool ExtractGoogleBenchmark(const JsonValue& doc, TimeMap* out) {
  const JsonValue* benchmarks = doc.Find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) return false;
  for (const JsonValue& entry : benchmarks->array) {
    const JsonValue* name = entry.Find("name");
    const JsonValue* cpu = entry.Find("cpu_time");
    const JsonValue* run_type = entry.Find("run_type");
    if (name == nullptr || !name->is_string() || cpu == nullptr ||
        !cpu->is_number()) {
      continue;
    }
    if (run_type != nullptr && run_type->is_string() &&
        run_type->str == "aggregate") {
      continue;
    }
    (*out)[name->str] = cpu->number;
  }
  return true;
}

// Telemetry snapshot format: {"metrics":…, "spans":{"label":{"count":N,
// "total_ms":…, …}, …}}. The comparable number is mean ms per call.
bool ExtractTelemetrySpans(const JsonValue& doc, TimeMap* out) {
  const JsonValue* spans = doc.Find("spans");
  if (spans == nullptr || !spans->is_object()) return false;
  for (const auto& [label, span] : spans->object) {
    const JsonValue* count = span.Find("count");
    const JsonValue* total = span.Find("total_ms");
    if (count == nullptr || !count->is_number() || total == nullptr ||
        !total->is_number() || count->number <= 0.0) {
      continue;
    }
    (*out)[label] = total->number / count->number;
  }
  return true;
}

// Serving gauges (bench_serving --metrics-out) live under metrics.gauges:
// serve/latency_p50_us / p95 / p99 (the clients' own clocks) and
// serve/arena_bytes (total planner arena footprint across batch sizes,
// docs/COMPILER.md). All are lower-is-better values, so they join the
// comparison map alongside span times and gate the same way
// (tools/check.sh --serve-baseline catches both a latency regression and
// an unexplained memory-plan blowup).
void ExtractServeLatencyGauges(const JsonValue& doc, TimeMap* out) {
  const JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr) return;
  const JsonValue* gauges = metrics->Find("gauges");
  if (gauges == nullptr || !gauges->is_object()) return;
  for (const auto& [name, value] : gauges->object) {
    const bool tracked = name.rfind("serve/latency_", 0) == 0 ||
                         name == "serve/arena_bytes";
    if (tracked && value.is_number()) {
      (*out)[name] = value.number;
    }
  }
}

// Server-side latency quantiles from histogram snapshots: every
// metrics.histograms entry named serve/*_us ({"count":…,"sum":…,
// "buckets":[{"le":<bound|"inf">,"count":…},…]}) contributes
// "<name>/p50" / "/p95" / "/p99" entries computed with the same
// interpolation Histogram::ValueAtQuantile uses in the live server.
void ExtractServeHistogramQuantiles(const JsonValue& doc, TimeMap* out) {
  const JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr) return;
  const JsonValue* histograms = metrics->Find("histograms");
  if (histograms == nullptr || !histograms->is_object()) return;
  for (const auto& [name, hist] : histograms->object) {
    if (name.rfind("serve/", 0) != 0 ||
        name.rfind("_us") != name.size() - 3) {
      continue;
    }
    const JsonValue* buckets = hist.Find("buckets");
    if (buckets == nullptr || !buckets->is_array()) continue;
    std::vector<double> bounds;
    std::vector<int64_t> counts;
    int64_t total = 0;
    for (const JsonValue& bucket : buckets->array) {
      const JsonValue* le = bucket.Find("le");
      const JsonValue* count = bucket.Find("count");
      if (le == nullptr || count == nullptr || !count->is_number()) {
        bounds.clear();
        break;
      }
      // The overflow bucket's bound renders as the string "inf" and takes
      // no bounds entry (counts is one longer than bounds by contract).
      if (le->is_number()) bounds.push_back(le->number);
      counts.push_back(static_cast<int64_t>(count->number));
      total += static_cast<int64_t>(count->number);
    }
    if (bounds.empty() || counts.size() != bounds.size() + 1 || total == 0) {
      continue;
    }
    (*out)[name + "/p50"] = msd::obs::QuantileFromBuckets(bounds, counts, 0.50);
    (*out)[name + "/p95"] = msd::obs::QuantileFromBuckets(bounds, counts, 0.95);
    (*out)[name + "/p99"] = msd::obs::QuantileFromBuckets(bounds, counts, 0.99);
  }
}

bool LoadTimes(const std::string& path, TimeMap* out) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return false;
  }
  JsonValue doc;
  if (!JsonParse(text, &doc)) {
    std::fprintf(stderr, "bench_compare: %s is not valid JSON\n",
                 path.c_str());
    return false;
  }
  if (ExtractGoogleBenchmark(doc, out) || ExtractTelemetrySpans(doc, out)) {
    ExtractServeLatencyGauges(doc, out);
    ExtractServeHistogramQuantiles(doc, out);
    if (out->empty()) {
      std::fprintf(stderr, "bench_compare: %s contains no entries\n",
                   path.c_str());
      return false;
    }
    return true;
  }
  std::fprintf(stderr,
               "bench_compare: %s has neither a \"benchmarks\" array nor a "
               "\"spans\" object\n",
               path.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  double threshold_pct = 10.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_compare: --threshold needs a value\n");
        return 2;
      }
      char* end = nullptr;
      threshold_pct = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || threshold_pct < 0.0) {
        std::fprintf(stderr,
                     "bench_compare: bad --threshold '%s' (want pct >= 0)\n",
                     argv[i]);
        return 2;
      }
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <current.json> "
                 "[--threshold <pct>]\n");
    return 2;
  }

  TimeMap baseline;
  TimeMap current;
  if (!LoadTimes(positional[0], &baseline) ||
      !LoadTimes(positional[1], &current)) {
    return 2;
  }

  int64_t compared = 0;
  int64_t regressions = 0;
  int64_t improvements = 0;
  int64_t gone = 0;
  for (const auto& [name, base_time] : baseline) {
    const auto it = current.find(name);
    if (it == current.end()) {
      // A baseline key the candidate no longer reports is a coverage hole —
      // a renamed benchmark or a dropped metric silently escapes the gate —
      // so it warns on stderr instead of hiding in the stdout listing.
      std::fprintf(stderr,
                   "bench_compare: warning: baseline key '%s' missing from "
                   "candidate; not compared\n",
                   name.c_str());
      ++gone;
      continue;
    }
    ++compared;
    const double cur_time = it->second;
    const double delta_pct =
        base_time > 0.0 ? (cur_time - base_time) / base_time * 100.0 : 0.0;
    const char* tag = "  ok   ";
    if (delta_pct > threshold_pct) {
      tag = "REGRESS";
      ++regressions;
    } else if (delta_pct < -threshold_pct) {
      tag = "faster ";
      ++improvements;
    }
    std::printf("  [%s] %-48s %12.1f -> %12.1f  (%+6.1f%%)\n", tag,
                name.c_str(), base_time, cur_time, delta_pct);
  }
  for (const auto& [name, time] : current) {
    if (baseline.find(name) == baseline.end()) {
      std::printf("  [new  ] %s (only in current)\n", name.c_str());
      (void)time;
    }
  }

  std::printf(
      "bench_compare: %lld compared, %lld regressions, %lld improvements, "
      "%lld missing from candidate (threshold %.1f%%)\n",
      static_cast<long long>(compared), static_cast<long long>(regressions),
      static_cast<long long>(improvements), static_cast<long long>(gone),
      threshold_pct);
  if (compared == 0) {
    std::fprintf(stderr, "bench_compare: no common entries to compare\n");
    return 2;
  }
  return regressions > 0 ? 1 : 0;
}
