// Compares two benchmark result files and fails on wall-clock regressions.
//
// Usage:
//   bench_compare <baseline.json> <current.json> [--threshold <pct>]
//                 [--repetitions <n>] [--noise-floor-us <us>]
//                 [--span-filter <prefix>]
//
// Accepts either of the repo's two result formats, auto-detected per file:
//   * google-benchmark JSON (--benchmark_out): the "benchmarks" array; each
//     entry's key is its "name" and its metric is "cpu_time" (already
//     normalized per iteration, so adaptive iteration counts do not skew
//     the comparison). A file produced with --benchmark_repetitions holds
//     several raw entries per name; they collapse to their MEDIAN, so a
//     single outlier iteration cannot fake a regression (or hide one).
//     --repetitions <n> additionally asserts that every name in both files
//     carries exactly n raw samples — a guard for check.sh recordings that
//     are supposed to be repeated runs (exit 2 on mismatch).
//     google-benchmark files must also carry the custom context key
//     msd_build_type=release (stamped by the bench mains): the library's
//     own library_build_type describes how *libbenchmark* was built, not
//     this tree, so a Debug-built tree would otherwise record a baseline
//     that makes every Release run look implausibly fast. Files without
//     the release stamp are refused outright (exit 2).
//   * telemetry snapshots written by --metrics-out ({"metrics":…,"spans":…}):
//     each span label maps to total_ms / count, i.e. mean wall-clock per
//     call, again invariant to how many calls the run happened to make.
//     Snapshots from bench_serving additionally contribute their
//     serve/latency_p{50,95,99}_us gauges (the clients' own clocks), the
//     multi-tenant churn profile's serve/multi_latency_* twins, and —
//     the gated source of truth — p50/p95/p99 derived from every
//     metrics.histograms entry named serve/*_us via the same bucket
//     interpolation the server uses (obs::QuantileFromBuckets), keyed
//     "serve/e2e_us/p99" style.
//
// Only names present in BOTH files are compared; additions are listed as
// informational, while baseline keys MISSING from the candidate warn on
// stderr (a renamed benchmark or dropped metric is a coverage hole, not
// noise). A name whose current time exceeds baseline by
// more than --threshold percent (default 10) is a regression; any regression
// makes the exit status 1 so tools/check.sh can gate on it. For the
// microsecond-valued serving latency keys (gauges ending in _us and the
// "…_us/pNN" histogram quantiles), --noise-floor-us <us> (default 0 = off)
// additionally requires the absolute delta to exceed the floor before a
// relative overshoot counts: a p99 over a few thousand samples moves by
// whole milliseconds from scheduler jitter alone, so a purely relative gate
// on a ~2ms value is a coin flip, while the same floor is noise against the
// tens-of-millisecond churn quantiles where the relative gate keeps doing
// the work. --span-filter <prefix> keeps only telemetry spans whose label
// starts with the prefix (applied to both files): bench_serving's snapshot
// includes train/* and autograd/* spans from its model-training warmup, and
// a serving gate that fails on a slow warmup epoch is measuring the wrong
// thing. Malformed input or usage errors exit 2.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace {

using msd::obs::JsonParse;
using msd::obs::JsonValue;

// Benchmark-name -> per-iteration (or per-call) time. Unit is whatever the
// file uses; both files of a pair must come from the same producer for the
// ratio to mean anything, which the >10%-shift check tolerates anyway since
// only ratios are compared.
using TimeMap = std::map<std::string, double>;

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

// Recorded benchmark baselines are only meaningful from Release builds.
// Every bench main stamps benchmark::AddCustomContext("msd_build_type", …)
// with the tree's own compile mode (bench/bench_util.h); a file missing the
// stamp predates it, or came from a foreign producer — both refused.
bool GoogleBenchmarkContextIsRelease(const JsonValue& doc,
                                     const std::string& path) {
  const JsonValue* context = doc.Find("context");
  const JsonValue* build =
      context != nullptr ? context->Find("msd_build_type") : nullptr;
  if (build == nullptr || !build->is_string()) {
    std::fprintf(stderr,
                 "bench_compare: REFUSING %s: context carries no "
                 "msd_build_type stamp (re-record with a Release build of "
                 "this tree; the library_build_type key describes "
                 "libbenchmark, not this tree)\n",
                 path.c_str());
    return false;
  }
  if (build->str != "release") {
    std::fprintf(stderr,
                 "bench_compare: REFUSING %s: msd_build_type=%s — benchmark "
                 "numbers from a non-Release tree are not comparable\n",
                 path.c_str(), build->str.c_str());
    return false;
  }
  return true;
}

double Median(std::vector<double>* samples) {
  std::sort(samples->begin(), samples->end());
  const size_t n = samples->size();
  return n % 2 == 1 ? (*samples)[n / 2]
                    : 0.5 * ((*samples)[n / 2 - 1] + (*samples)[n / 2]);
}

// google-benchmark format: {"context":…, "benchmarks":[{"name":…,
// "cpu_time":…, …}, …]}. Aggregate rows (mean/median/stddev from
// --benchmark_repetitions) are skipped; instead the raw per-repetition
// entries of each name collapse to their median, so a repetitions run
// compares consistently with a single-run baseline while shrugging off
// one noisy repetition. expected_repetitions > 0 asserts the sample count
// per name; a mismatch is a recording bug, reported via *error.
bool ExtractGoogleBenchmark(const JsonValue& doc, int64_t expected_repetitions,
                            TimeMap* out, std::string* error) {
  const JsonValue* benchmarks = doc.Find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) return false;
  std::map<std::string, std::vector<double>> samples;
  for (const JsonValue& entry : benchmarks->array) {
    const JsonValue* name = entry.Find("name");
    const JsonValue* cpu = entry.Find("cpu_time");
    const JsonValue* run_type = entry.Find("run_type");
    if (name == nullptr || !name->is_string() || cpu == nullptr ||
        !cpu->is_number()) {
      continue;
    }
    if (run_type != nullptr && run_type->is_string() &&
        run_type->str == "aggregate") {
      continue;
    }
    // Repeated runs suffix raw entries "/repeats:N"; strip it so a
    // repetitions recording shares keys with a plain baseline.
    std::string key = name->str;
    const size_t repeats = key.find("/repeats:");
    if (repeats != std::string::npos) key.erase(repeats);
    samples[key].push_back(cpu->number);
  }
  for (auto& [name, values] : samples) {
    if (expected_repetitions > 0 &&
        static_cast<int64_t>(values.size()) != expected_repetitions) {
      *error = "'" + name + "' has " + std::to_string(values.size()) +
               " samples, expected " + std::to_string(expected_repetitions);
      return true;
    }
    (*out)[name] = Median(&values);
  }
  return true;
}

// Telemetry snapshot format: {"metrics":…, "spans":{"label":{"count":N,
// "total_ms":…, …}, …}}. The comparable number is mean ms per call. A
// non-empty span_filter keeps only labels with that prefix: bench_serving's
// snapshot carries train/* and autograd/* spans from its model-training
// warmup, and those setup timings have no business gating a serving run.
bool ExtractTelemetrySpans(const JsonValue& doc, const std::string& span_filter,
                           TimeMap* out) {
  const JsonValue* spans = doc.Find("spans");
  if (spans == nullptr || !spans->is_object()) return false;
  for (const auto& [label, span] : spans->object) {
    if (!span_filter.empty() && label.rfind(span_filter, 0) != 0) continue;
    const JsonValue* count = span.Find("count");
    const JsonValue* total = span.Find("total_ms");
    if (count == nullptr || !count->is_number() || total == nullptr ||
        !total->is_number() || count->number <= 0.0) {
      continue;
    }
    (*out)[label] = total->number / count->number;
  }
  return true;
}

// Serving gauges (bench_serving --metrics-out) live under metrics.gauges:
// serve/latency_p50_us / p95 / p99 (the clients' own clocks), the int8
// path's serve/quant_latency_* twins from the --quantize leg, the churn
// profile's serve/multi_latency_* twins (socket round trips through the
// epoll loop and a two-model registry, docs/SERVING.md), and
// serve/arena_bytes + serve/quant_arena_bytes (planner arena footprints,
// docs/COMPILER.md). All are lower-is-better values, so they join the
// comparison map alongside span times and gate the same way
// (tools/check.sh --serve-baseline catches a latency regression on any
// serving path and an unexplained memory-plan blowup).
void ExtractServeLatencyGauges(const JsonValue& doc, TimeMap* out) {
  const JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr) return;
  const JsonValue* gauges = metrics->Find("gauges");
  if (gauges == nullptr || !gauges->is_object()) return;
  for (const auto& [name, value] : gauges->object) {
    const bool tracked = name.rfind("serve/latency_", 0) == 0 ||
                         name.rfind("serve/quant_latency_", 0) == 0 ||
                         name.rfind("serve/multi_latency_", 0) == 0 ||
                         name == "serve/arena_bytes" ||
                         name == "serve/quant_arena_bytes";
    if (tracked && value.is_number()) {
      (*out)[name] = value.number;
    }
  }
}

// Server-side latency quantiles from histogram snapshots: every
// metrics.histograms entry named serve/*_us ({"count":…,"sum":…,
// "buckets":[{"le":<bound|"inf">,"count":…},…]}) contributes
// "<name>/p50" / "/p95" / "/p99" entries computed with the same
// interpolation Histogram::ValueAtQuantile uses in the live server.
void ExtractServeHistogramQuantiles(const JsonValue& doc, TimeMap* out) {
  const JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr) return;
  const JsonValue* histograms = metrics->Find("histograms");
  if (histograms == nullptr || !histograms->is_object()) return;
  for (const auto& [name, hist] : histograms->object) {
    if (name.rfind("serve/", 0) != 0 ||
        name.rfind("_us") != name.size() - 3) {
      continue;
    }
    const JsonValue* buckets = hist.Find("buckets");
    if (buckets == nullptr || !buckets->is_array()) continue;
    std::vector<double> bounds;
    std::vector<int64_t> counts;
    int64_t total = 0;
    for (const JsonValue& bucket : buckets->array) {
      const JsonValue* le = bucket.Find("le");
      const JsonValue* count = bucket.Find("count");
      if (le == nullptr || count == nullptr || !count->is_number()) {
        bounds.clear();
        break;
      }
      // The overflow bucket's bound renders as the string "inf" and takes
      // no bounds entry (counts is one longer than bounds by contract).
      if (le->is_number()) bounds.push_back(le->number);
      counts.push_back(static_cast<int64_t>(count->number));
      total += static_cast<int64_t>(count->number);
    }
    if (bounds.empty() || counts.size() != bounds.size() + 1 || total == 0) {
      continue;
    }
    (*out)[name + "/p50"] = msd::obs::QuantileFromBuckets(bounds, counts, 0.50);
    (*out)[name + "/p95"] = msd::obs::QuantileFromBuckets(bounds, counts, 0.95);
    (*out)[name + "/p99"] = msd::obs::QuantileFromBuckets(bounds, counts, 0.99);
  }
}

bool LoadTimes(const std::string& path, int64_t expected_repetitions,
               const std::string& span_filter, TimeMap* out) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return false;
  }
  JsonValue doc;
  if (!JsonParse(text, &doc)) {
    std::fprintf(stderr, "bench_compare: %s is not valid JSON\n",
                 path.c_str());
    return false;
  }
  std::string error;
  const bool is_gbench =
      ExtractGoogleBenchmark(doc, expected_repetitions, out, &error);
  if (is_gbench && !GoogleBenchmarkContextIsRelease(doc, path)) return false;
  if (is_gbench && !error.empty()) {
    std::fprintf(stderr, "bench_compare: %s: --repetitions check failed: %s\n",
                 path.c_str(), error.c_str());
    return false;
  }
  if (is_gbench || ExtractTelemetrySpans(doc, span_filter, out)) {
    ExtractServeLatencyGauges(doc, out);
    ExtractServeHistogramQuantiles(doc, out);
    if (out->empty()) {
      std::fprintf(stderr, "bench_compare: %s contains no entries\n",
                   path.c_str());
      return false;
    }
    return true;
  }
  std::fprintf(stderr,
               "bench_compare: %s has neither a \"benchmarks\" array nor a "
               "\"spans\" object\n",
               path.c_str());
  return false;
}

}  // namespace

// True for the microsecond-valued serving latency keys: the *_us gauges
// (serve/latency_p99_us, serve/multi_latency_p50_us, ...) and the
// histogram-derived quantiles keyed "serve/e2e_us/p99" style. These are the
// keys --noise-floor-us guards.
bool IsLatencyMicrosKey(const std::string& name) {
  if (name.size() > 3 && name.compare(name.size() - 3, 3, "_us") == 0) {
    return true;
  }
  return name.find("_us/p") != std::string::npos;
}

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  double threshold_pct = 10.0;
  double noise_floor_us = 0.0;
  std::string span_filter;
  int64_t repetitions = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_compare: --threshold needs a value\n");
        return 2;
      }
      char* end = nullptr;
      threshold_pct = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || threshold_pct < 0.0) {
        std::fprintf(stderr,
                     "bench_compare: bad --threshold '%s' (want pct >= 0)\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--noise-floor-us") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_compare: --noise-floor-us needs a value\n");
        return 2;
      }
      char* end = nullptr;
      noise_floor_us = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || noise_floor_us < 0.0) {
        std::fprintf(
            stderr, "bench_compare: bad --noise-floor-us '%s' (want us >= 0)\n",
            argv[i]);
        return 2;
      }
    } else if (arg == "--span-filter") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_compare: --span-filter needs a prefix\n");
        return 2;
      }
      span_filter = argv[++i];
      if (span_filter.empty()) {
        std::fprintf(stderr,
                     "bench_compare: --span-filter prefix must be non-empty\n");
        return 2;
      }
    } else if (arg == "--repetitions") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_compare: --repetitions needs a value\n");
        return 2;
      }
      char* end = nullptr;
      repetitions = std::strtoll(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || repetitions <= 0) {
        std::fprintf(stderr,
                     "bench_compare: bad --repetitions '%s' (want int > 0)\n",
                     argv[i]);
        return 2;
      }
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <current.json> "
                 "[--threshold <pct>] [--repetitions <n>] "
                 "[--noise-floor-us <us>] [--span-filter <prefix>]\n");
    return 2;
  }

  // --repetitions describes the CURRENT run (check.sh passes the count it
  // just recorded with); the baseline may be a single-run file.
  TimeMap baseline;
  TimeMap current;
  if (!LoadTimes(positional[0], /*expected_repetitions=*/0, span_filter,
                 &baseline) ||
      !LoadTimes(positional[1], repetitions, span_filter, &current)) {
    return 2;
  }

  int64_t compared = 0;
  int64_t regressions = 0;
  int64_t improvements = 0;
  int64_t gone = 0;
  for (const auto& [name, base_time] : baseline) {
    const auto it = current.find(name);
    if (it == current.end()) {
      // A baseline key the candidate no longer reports is a coverage hole —
      // a renamed benchmark or a dropped metric silently escapes the gate —
      // so it warns on stderr instead of hiding in the stdout listing.
      std::fprintf(stderr,
                   "bench_compare: warning: baseline key '%s' missing from "
                   "candidate; not compared\n",
                   name.c_str());
      ++gone;
      continue;
    }
    ++compared;
    const double cur_time = it->second;
    const double delta_pct =
        base_time > 0.0 ? (cur_time - base_time) / base_time * 100.0 : 0.0;
    // Microsecond-scale serving tails (client-exact p99 over a few thousand
    // samples, sub-millisecond assembly quantiles) swing well past any
    // relative threshold from OS scheduling jitter alone. For *_us keys a
    // regression must also clear --noise-floor-us in absolute delta: the
    // floor is negligible against the tens-of-millisecond churn quantiles
    // (the relative gate dominates there) and only mutes jitter-sized moves
    // on values the jitter itself can dwarf.
    const bool above_floor = !IsLatencyMicrosKey(name) ||
                             (cur_time - base_time) > noise_floor_us;
    const char* tag = "  ok   ";
    if (delta_pct > threshold_pct && above_floor) {
      tag = "REGRESS";
      ++regressions;
    } else if (delta_pct < -threshold_pct) {
      tag = "faster ";
      ++improvements;
    }
    std::printf("  [%s] %-48s %12.1f -> %12.1f  (%+6.1f%%)\n", tag,
                name.c_str(), base_time, cur_time, delta_pct);
  }
  for (const auto& [name, time] : current) {
    if (baseline.find(name) == baseline.end()) {
      std::printf("  [new  ] %s (only in current)\n", name.c_str());
      (void)time;
    }
  }

  std::printf(
      "bench_compare: %lld compared, %lld regressions, %lld improvements, "
      "%lld missing from candidate (threshold %.1f%%)\n",
      static_cast<long long>(compared), static_cast<long long>(regressions),
      static_cast<long long>(improvements), static_cast<long long>(gone),
      threshold_pct);
  if (compared == 0) {
    std::fprintf(stderr, "bench_compare: no common entries to compare\n");
    return 2;
  }
  return regressions > 0 ? 1 : 0;
}
