// Per-file symbol index of msd_analyze (docs/ANALYSIS.md).
//
// One scan of each file's `code` view recovers the structure the whole-repo
// passes need: the include list, every function definition (with its class
// scope and body extent), the calls each function makes, mutex acquisitions
// and the lock-under-lock pairs implied by guard scopes, candidate hot-path
// sites (heap allocation, blocking IO, lock acquisition), and every atomic
// operation with its memory_order annotations.
//
// The scanner is a brace/scope tracker over blanked text, not a compiler: it
// over-approximates (a call site links to every repo function with that
// name) and under-approximates only where C++ syntax hides behavior from a
// lexical pass (allocation behind typedefs, operator overloads). Both
// directions are deliberate — see the "limits" section of docs/ANALYSIS.md.
#ifndef MSDMIXER_TOOLS_ANALYZE_INDEX_H_
#define MSDMIXER_TOOLS_ANALYZE_INDEX_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "analyze/source.h"

namespace msd {
namespace analyze {

struct IncludeSite {
  std::string path;  // as written, e.g. "serve/session.h"
  int line = 0;
};

struct CallSite {
  std::string name;       // last component: "PredictBatch" for x->PredictBatch(
  std::string qualifier;  // "ThreadPool" for ThreadPool::Global(, else ""
  bool member = false;    // preceded by '.' or '->' (x.Add(, x->Run()
  int line = 0;
};

struct LockSite {
  std::string mutex_key;  // normalized, class-qualified: "MicroBatcher::mu_"
  std::string guard;      // lock_guard | unique_lock | scoped_lock
  int line = 0;
};

// One `held` mutex still in scope when `acquired` was taken.
struct LockPair {
  LockSite held;
  LockSite acquired;
};

// A site a hot-path-reachable function must not contain.
struct HotSite {
  enum class Kind { kAlloc, kIo, kLock };
  Kind kind = Kind::kAlloc;
  std::string token;  // "new", "make_shared", "std::vector<...>", "fopen", ...
  int line = 0;
};

struct FunctionInfo {
  std::string name;        // "WorkerLoop"
  std::string class_name;  // "MicroBatcher" when determinable, else ""
  int line = 0;            // line of the definition's opening brace statement
  bool hot_root = false;   // // msd-hot-path annotation
  bool hot_safe = false;   // // msd-hot-path-safe annotation
  std::vector<CallSite> calls;
  std::vector<LockSite> locks;
  std::vector<LockPair> lock_pairs;
  std::vector<HotSite> hot_sites;

  std::string QualifiedName() const {
    return class_name.empty() ? name : class_name + "::" + name;
  }
};

// One atomic member access: var.load(...), var->fetch_add(...), ...
struct AtomicOp {
  std::string var;      // normalized object expression: "buckets_", "seq"
  std::string method;   // load | store | fetch_add | ...
  bool has_order = false;
  // memory_order_* tokens present in the argument list (0, 1, or 2 for the
  // compare_exchange success/failure pair), stripped of the prefix:
  // "relaxed", "acquire", ...
  std::vector<std::string> orders;
  int line = 0;
};

struct FileIndex {
  SourceFile source;
  std::vector<IncludeSite> includes;
  std::vector<FunctionInfo> functions;
  std::vector<AtomicOp> atomic_ops;
};

// Runs the scan. `source` is consumed by copy into the result.
FileIndex IndexFile(const SourceFile& source);

// Normalizes an object expression for cross-TU identity: whitespace removed,
// leading this->/&/* stripped, -> folded to '.'.
std::string NormalizeObjectExpr(std::string expr);

}  // namespace analyze
}  // namespace msd

#endif  // MSDMIXER_TOOLS_ANALYZE_INDEX_H_
