// msd_analyze public API (docs/ANALYSIS.md).
//
// RunAnalyzer loads every .h/.cc under <root>/src, indexes each file
// (analyze/index.h), then runs the whole-repo passes over the merged index:
//
//   layering        the src/* include graph must respect the layer DAG
//                   declared in LayerRank() (DESIGN.md); include cycles are
//                   always fatal.
//   lock-order      the cross-TU lock-under-lock graph must be acyclic.
//   hot-path-*      no heap allocation / blocking IO / mutex acquisition
//                   reachable from a `// msd-hot-path` root, stopping at
//                   `// msd-hot-path-safe` audited chokepoints.
//   atomic-*        std::atomic operations spell their memory_order; a
//                   relaxed store never publishes data read with acquire.
//
// plus the per-file rules inherited from the PR 2/5/6 token lint (no-assert,
// no-cout, header-guard, include-path, no-raw-alloc, no-raw-thread,
// no-raw-buffer, no-blocking-io-in-serve-hot-path, metric-name-taxonomy),
// with their diagnostic text unchanged.
//
// Accepted findings are suppressed via a checked-in file of
// `rule:path:line  justification` entries; a suppression without a
// justification is a configuration error, and one that matches nothing is
// itself reported (stale-suppression) so the file cannot rot.
#ifndef MSDMIXER_TOOLS_ANALYZE_ANALYZER_H_
#define MSDMIXER_TOOLS_ANALYZE_ANALYZER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace msd {
namespace analyze {

struct Finding {
  Finding() = default;
  Finding(std::string rule_in, std::string file_in, int line_in,
          std::string message_in)
      : rule(std::move(rule_in)),
        file(std::move(file_in)),
        line(line_in),
        message(std::move(message_in)) {}

  std::string rule;
  std::string file;  // repo-relative
  int line = 0;
  std::string message;
  bool suppressed = false;
  std::string justification;  // from the matching suppression entry

  // The suppression-file key for this finding.
  std::string Key() const;
};

struct AnalyzerOptions {
  // Path to the suppression file. Empty disables suppressions. When
  // `suppressions_required` is false a missing file is treated as empty
  // (the built-in default path may not exist in fixture trees).
  std::string suppressions_path;
  bool suppressions_required = false;
  // Qualified function names ("CompiledPlan::Execute") that MUST be visited
  // by the hot-path BFS. A clean report only proves a function was scanned
  // if the BFS actually reached it; listing it here turns silent coverage
  // loss (a renamed method, a broken call edge, an over-eager
  // msd-hot-path-safe chokepoint) into a require-reachable finding.
  std::vector<std::string> require_reachable;
};

struct AnalyzerResult {
  std::vector<Finding> findings;  // sorted by file, line, rule
  int64_t files_checked = 0;
  int64_t suppressed = 0;
  int64_t unsuppressed = 0;
  // Non-empty on configuration errors (unreadable root, malformed
  // suppression entry); findings are not meaningful in that case.
  std::string error;
};

// Runs every pass over <root>/src. `root` is the repo root.
AnalyzerResult RunAnalyzer(const std::string& root,
                           const AnalyzerOptions& options);

// Human-readable report, one `file:line: rule: message` per finding plus a
// one-line summary — the format the old msd_lint used, kept grep-stable.
std::string RenderText(const AnalyzerResult& result);

// Machine-readable report: a single JSON object with `files`, `suppressed`,
// `unsuppressed`, and a `findings` array.
std::string RenderJson(const AnalyzerResult& result);

// Layer rank of a src/ subsystem in the allowed DAG, or -1 when the
// subsystem is not declared (itself a layering finding). Lower ranks are
// more fundamental; an include may only point at the same subsystem, at
// common/obs, or strictly downward.
int LayerRank(const std::string& subsystem);

}  // namespace analyze
}  // namespace msd

#endif  // MSDMIXER_TOOLS_ANALYZE_ANALYZER_H_
