#include "analyze/analyzer.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "analyze/index.h"
#include "analyze/source.h"

namespace msd {
namespace analyze {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Ported per-file rules (PR 2/5/6 token lint). Diagnostic text is unchanged;
// the suppression file and the fixture tests both depend on it.
// ---------------------------------------------------------------------------

// Library files allowed to write to std::cout (none today; CLI binaries live
// in examples/ and bench/, outside the analyzed tree).
const std::set<std::string>& CoutAllowlist() {
  static const std::set<std::string> allowlist = {};
  return allowlist;
}

// Files that implement Tensor's allocation path and so legitimately create
// float buffers directly (the no-raw-buffer rule exempts them).
const std::set<std::string>& BufferOwnerAllowlist() {
  static const std::set<std::string> allowlist = {
      "src/tensor/tensor.h",
      "src/tensor/tensor.cc",
      "src/tensor/pool.h",
      "src/tensor/pool.cc",
  };
  return allowlist;
}

bool HasCallToken(const std::string& line, const std::string& token) {
  return FindCall(line, token) != std::string::npos;
}

bool HasWordToken(const std::string& line, const std::string& token) {
  return FindWord(line, token) != std::string::npos;
}

// Finds `std::vector<float>` used as an owning buffer: the token NOT
// followed (after optional spaces) by '&'. A reference never allocates, so
// `const std::vector<float>&` parameters stay legal outside the allocator.
bool HasOwningFloatVector(const std::string& line) {
  const std::string token = "std::vector<float>";
  for (size_t pos = line.find(token); pos != std::string::npos;
       pos = line.find(token, pos + 1)) {
    if (pos > 0 && IsWordChar(line[pos - 1])) continue;
    size_t after = pos + token.size();
    while (after < line.size() && line[after] == ' ') ++after;
    if (after < line.size() && line[after] == '&') continue;
    return true;
  }
  return false;
}

// "serve/queue_us"-style taxonomy: at least two non-empty '/'-separated
// segments, each limited to [a-z0-9_]. (Hand-rolled — std::regex is avoided,
// see CheckHeaderGuard.)
bool IsTaxonomyName(const std::string& name) {
  int segments = 1;
  bool segment_empty = true;
  for (const char c : name) {
    if (c == '/') {
      if (segment_empty) return false;
      ++segments;
      segment_empty = true;
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_') {
      segment_empty = false;
    } else {
      return false;
    }
  }
  return segments >= 2 && !segment_empty;
}

// metric-name-taxonomy: scans the whole file (literals kept, comments
// blanked) so registry calls whose name literal sits on the next line are
// still caught. Calls whose first argument is not a string literal carry a
// dynamically-built name and are skipped.
void CheckMetricNames(const SourceFile& source, std::vector<Finding>* out) {
  const std::string& text = source.directives;
  const size_t size = text.size();
  for (const char* call : {"GetCounter", "GetGauge", "GetHistogram"}) {
    const std::string token = call;
    for (size_t pos = FindWord(text, token); pos != std::string::npos;
         pos = FindWord(text, token, pos + 1)) {
      size_t after = SkipSpace(text, pos + token.size());
      if (after >= size || text[after] != '(') continue;
      after = SkipSpace(text, after + 1);
      if (after >= size || text[after] != '"') continue;
      const size_t name_start = after + 1;
      const size_t name_end = text.find('"', name_start);
      if (name_end == std::string::npos) continue;
      const std::string name = text.substr(name_start, name_end - name_start);
      if (!IsTaxonomyName(name)) {
        out->push_back(
            {"metric-name-taxonomy", source.rel, LineAt(text, pos),
             "metric name \"" + name +
                 "\" must be two or more '/'-separated [a-z0-9_] segments "
                 "(docs/OBSERVABILITY.md taxonomy)"});
      }
    }
  }
}

void CheckHeaderGuard(const SourceFile& source, std::vector<Finding>* out) {
  const std::string& raw_text = source.raw;
  if (raw_text.find("#pragma once") != std::string::npos) return;
  // Hand-rolled #ifndef parse (std::regex is avoided: its libstdc++ headers
  // trip -Werror=maybe-uninitialized under the GCC 12 sanitizer builds).
  const size_t ifndef = raw_text.find("#ifndef");
  if (ifndef != std::string::npos) {
    size_t pos = ifndef + 7;
    while (pos < raw_text.size() &&
           (raw_text[pos] == ' ' || raw_text[pos] == '\t')) {
      ++pos;
    }
    const size_t name_start = pos;
    while (pos < raw_text.size() && IsWordChar(raw_text[pos])) ++pos;
    if (pos > name_start) {
      const std::string guard =
          "#define " + raw_text.substr(name_start, pos - name_start);
      if (raw_text.find(guard) != std::string::npos) return;
    }
  }
  out->push_back({"header-guard", source.rel, 1,
                  "header has neither #pragma once nor a matching "
                  "#ifndef/#define include guard"});
}

void RunFileRules(const FileIndex& index, std::vector<Finding>* out) {
  const SourceFile& source = index.source;
  const std::string& rel = source.rel;

  if (source.is_header) CheckHeaderGuard(source, out);
  CheckMetricNames(source, out);

  const bool alloc_sensitive = rel.rfind("src/tensor/", 0) == 0 ||
                               rel.rfind("src/autograd/", 0) == 0;
  const bool cout_allowed = CoutAllowlist().count(rel) > 0;
  const bool thread_owner = rel.rfind("src/runtime/", 0) == 0;
  const bool buffer_sensitive = rel.rfind("src/tensor/", 0) == 0 &&
                                BufferOwnerAllowlist().count(rel) == 0;
  const bool serve_hot_path = rel.rfind("src/serve/", 0) == 0;

  std::istringstream lines(source.code);
  std::istringstream directive_lines(source.directives);
  std::string line;
  std::string directive_line;
  int line_number = 0;
  while (std::getline(lines, line) &&
         std::getline(directive_lines, directive_line)) {
    ++line_number;
    if (HasCallToken(line, "assert")) {
      out->push_back({"no-assert", rel, line_number,
                      "use MSD_CHECK (common/check.h) instead of "
                      "assert: it survives NDEBUG and prints operands"});
    }
    if (!cout_allowed && line.find("std::cout") != std::string::npos) {
      out->push_back({"no-cout", rel, line_number,
                      "library code must not write to std::cout; use "
                      "stderr or the obs subsystem"});
    }
    if (directive_line.find("#include \"src/") != std::string::npos) {
      out->push_back({"include-path", rel, line_number,
                      "includes are rooted at src/: drop the src/ "
                      "prefix"});
    }
    if (directive_line.find("#include \"../") != std::string::npos) {
      out->push_back({"include-path", rel, line_number,
                      "no parent-relative includes; spell the path "
                      "from src/"});
    }
    if (!thread_owner) {
      for (const char* token : {"std::thread", "std::jthread", "std::async"}) {
        // IsWholeWordAt also rejects "std::thread::id" etc. only on the word
        // boundary side; the "::" suffix is fine — any spawn or member use of
        // these types belongs behind the runtime pool.
        if (HasWordToken(line, token)) {
          out->push_back(
              {"no-raw-thread", rel, line_number,
               std::string(token) +
                   " outside src/runtime/: parallelism must go through "
                   "runtime::ParallelFor so MSD_THREADS determinism holds"});
        }
      }
    }
    if (serve_hot_path) {
      // Blocking C stdio calls (snprintf/vsnprintf format into memory and
      // are deliberately absent; whole-word matching keeps them legal).
      for (const char* fn :
           {"fopen", "freopen", "fclose", "fread", "fwrite", "fprintf",
            "printf", "fscanf", "scanf", "fgets", "fputs", "puts", "fflush",
            "getchar", "putchar", "getline", "system"}) {
        if (HasCallToken(line, fn)) {
          out->push_back(
              {"no-blocking-io-in-serve-hot-path", rel, line_number,
               std::string(fn) +
                   " in src/serve stalls every request in the batch; move "
                   "transport/logging IO to the serving front-ends"});
        }
      }
      for (const char* token :
           {"std::ifstream", "std::ofstream", "std::fstream", "std::cin",
            "std::cerr", "std::clog", "std::FILE"}) {
        if (HasWordToken(line, token)) {
          out->push_back(
              {"no-blocking-io-in-serve-hot-path", rel, line_number,
               std::string(token) +
                   " in src/serve stalls every request in the batch; move "
                   "transport/logging IO to the serving front-ends"});
        }
      }
    }
    if (buffer_sensitive && HasOwningFloatVector(line)) {
      out->push_back(
          {"no-raw-buffer", rel, line_number,
           "float buffers in src/tensor come from pool::AllocateShared "
           "(tensor/pool.h) or Tensor itself, not std::vector<float>"});
    }
    if (alloc_sensitive) {
      if (HasWordToken(line, "new") && !HasWordToken(line, "delete")) {
        out->push_back({"no-raw-alloc", rel, line_number,
                        "no raw new in tensor/autograd; use "
                        "make_shared/make_unique ownership"});
      }
      for (const char* fn : {"malloc", "calloc", "realloc", "free"}) {
        if (HasCallToken(line, fn)) {
          out->push_back({"no-raw-alloc", rel, line_number,
                          std::string("no ") + fn +
                              " in tensor/autograd; use RAII "
                              "containers"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 1: include-layering. The graph edge source is every resolved
// `#include "sub/file.h"`; direction legality comes from LayerRank, and any
// file-level include cycle is fatal regardless of layers.
// ---------------------------------------------------------------------------

void RunLayeringPass(const std::vector<FileIndex>& files,
                     std::vector<Finding>* out) {
  std::map<std::string, const FileIndex*> by_rel;
  for (const FileIndex& f : files) by_rel[f.source.rel] = &f;

  for (const FileIndex& f : files) {
    const std::string& sub = f.source.subsystem;
    if (sub.empty()) continue;
    const int rank = LayerRank(sub);
    if (rank < 0) {
      out->push_back(
          {"layering", f.source.rel, 1,
           "subsystem '" + sub +
               "' is not declared in the layer DAG; add it to LayerRank "
               "(tools/analyze/analyzer.cc) and the DESIGN.md diagram"});
      continue;
    }
    for (const IncludeSite& inc : f.includes) {
      const auto it = by_rel.find("src/" + inc.path);
      if (it == by_rel.end()) continue;  // system / non-repo include
      const std::string& target = it->second->source.subsystem;
      if (target.empty() || target == sub) continue;
      if (target == "common" || target == "obs") continue;
      const int target_rank = LayerRank(target);
      if (target_rank >= 0 && target_rank < rank) continue;
      out->push_back(
          {"layering", f.source.rel, inc.line,
           "include of \"" + inc.path + "\" breaks the layer DAG: " + sub +
               " (rank " + std::to_string(rank) +
               ") may only depend on layers below it, but " + target +
               " has rank " + std::to_string(target_rank) +
               " (see DESIGN.md)"});
    }
  }

  // File-granularity include cycles — always fatal, independent of layers
  // (the obs exception above never excuses a cycle).
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;
  std::function<void(const std::string&)> visit = [&](const std::string& rel) {
    color[rel] = 1;
    stack.push_back(rel);
    const FileIndex* f = by_rel.at(rel);
    for (const IncludeSite& inc : f->includes) {
      const std::string target = "src/" + inc.path;
      const auto it = by_rel.find(target);
      if (it == by_rel.end()) continue;
      const int c = color[target];
      if (c == 1) {
        // Back edge: the cycle is the stack suffix starting at `target`.
        const auto begin =
            std::find(stack.begin(), stack.end(), target);
        std::vector<std::string> cycle(begin, stack.end());
        std::vector<std::string> signature = cycle;
        std::sort(signature.begin(), signature.end());
        std::string sig_key;
        for (const std::string& s : signature) sig_key += s + "|";
        if (reported.insert(sig_key).second) {
          std::string chain;
          for (const std::string& s : cycle) chain += s + " -> ";
          chain += target;
          out->push_back({"include-cycle", rel, inc.line,
                          "include cycle (always fatal): " + chain});
        }
      } else if (c == 0) {
        visit(target);
      }
    }
    stack.pop_back();
    color[rel] = 2;
  };
  for (const FileIndex& f : files) {
    if (color[f.source.rel] == 0) visit(f.source.rel);
  }
}

// ---------------------------------------------------------------------------
// Pass 2: lock-order. Merge every intra-function lock-under-lock pair into
// one graph keyed by normalized mutex identity; any cycle is a potential
// deadlock (two threads can interleave the two orders).
// ---------------------------------------------------------------------------

void RunLockOrderPass(const std::vector<FileIndex>& files,
                      std::vector<Finding>* out) {
  struct Edge {
    std::string to;
    std::string file;
    int line = 0;
    std::string function;
  };
  std::map<std::string, std::vector<Edge>> graph;
  for (const FileIndex& f : files) {
    for (const FunctionInfo& fn : f.functions) {
      for (const LockPair& pair : fn.lock_pairs) {
        graph[pair.held.mutex_key].push_back({pair.acquired.mutex_key,
                                              f.source.rel,
                                              pair.acquired.line,
                                              fn.QualifiedName()});
      }
    }
  }

  // For every edge a->b, a path b ~> a closes a cycle; report at the edge's
  // acquisition site with the full chain.
  std::set<std::string> reported;
  for (const auto& [from, edges] : graph) {
    for (const Edge& edge : edges) {
      // BFS from edge.to back to `from`.
      std::map<std::string, std::string> parent;
      std::vector<std::string> queue = {edge.to};
      parent[edge.to] = "";
      bool found = edge.to == from;
      for (size_t qi = 0; qi < queue.size() && !found; ++qi) {
        const auto it = graph.find(queue[qi]);
        if (it == graph.end()) continue;
        for (const Edge& next : it->second) {
          if (parent.count(next.to) > 0) continue;
          parent[next.to] = queue[qi];
          if (next.to == from) {
            found = true;
            break;
          }
          queue.push_back(next.to);
        }
      }
      if (!found) continue;
      std::vector<std::string> chain;
      for (std::string node = from; !node.empty(); node = parent[node]) {
        chain.push_back(node);
        if (node == edge.to) break;
      }
      std::reverse(chain.begin(), chain.end());
      std::string text = from;
      for (const std::string& node : chain) text += " -> " + node;
      const std::string key = edge.file + ":" + std::to_string(edge.line);
      if (!reported.insert(key).second) continue;
      out->push_back(
          {"lock-order", edge.file, edge.line,
           "taking " + edge.to + " while holding " + from + " (in " +
               edge.function + ") completes a lock-order cycle: " + text +
               "; potential deadlock"});
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 3: hot-path reachability. BFS over the name-based call graph from
// `// msd-hot-path` roots; `// msd-hot-path-safe` functions are audited
// chokepoints — neither scanned nor expanded.
// ---------------------------------------------------------------------------

void RunHotPathPass(const std::vector<FileIndex>& files,
                    const std::vector<std::string>& require_reachable,
                    std::vector<Finding>* out) {
  struct Node {
    const FileIndex* file;
    const FunctionInfo* fn;
  };
  std::map<std::string, std::vector<Node>> by_name;
  std::vector<Node> roots;
  for (const FileIndex& f : files) {
    for (const FunctionInfo& fn : f.functions) {
      by_name[fn.name].push_back({&f, &fn});
      if (fn.hot_root && !fn.hot_safe) roots.push_back({&f, &fn});
    }
  }

  std::map<const FunctionInfo*, const FunctionInfo*> parent;
  std::vector<Node> queue;
  for (const Node& root : roots) {
    if (parent.count(root.fn) > 0) continue;
    parent[root.fn] = nullptr;
    queue.push_back(root);
  }
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    const Node node = queue[qi];
    for (const CallSite& call : node.fn->calls) {
      const auto it = by_name.find(call.name);
      if (it == by_name.end()) continue;
      // Receiver-aware narrowing of the name-based over-approximation:
      // `X::F(` resolves inside class X (falling back to free functions for
      // namespace qualifiers like pool::), and `obj.F(` / `obj->F(` never
      // resolves to a free function. Unqualified calls stay conservative —
      // they match every candidate (implicit-this methods included).
      std::vector<const Node*> candidates;
      if (!call.qualifier.empty()) {
        for (const Node& callee : it->second) {
          if (callee.fn->class_name == call.qualifier) {
            candidates.push_back(&callee);
          }
        }
        if (candidates.empty()) {
          for (const Node& callee : it->second) {
            if (callee.fn->class_name.empty()) candidates.push_back(&callee);
          }
        }
      } else {
        for (const Node& callee : it->second) {
          if (call.member && callee.fn->class_name.empty()) continue;
          candidates.push_back(&callee);
        }
      }
      for (const Node* callee : candidates) {
        if (callee->fn == node.fn || callee->fn->hot_safe) continue;
        if (parent.count(callee->fn) > 0) continue;
        parent[callee->fn] = node.fn;
        queue.push_back(*callee);
      }
    }
  }

  // Coverage assertions: each required name must be in the visited set —
  // scanned by this pass, hot-site checks applied. A name that exists in
  // the index but was never reached means the BFS lost the call edge (or a
  // chokepoint annotation swallowed it); a name that does not exist at all
  // usually means the function was renamed without updating the check.
  for (const std::string& want : require_reachable) {
    bool reached = false;
    for (const Node& node : queue) {
      if (node.fn->QualifiedName() == want) {
        reached = true;
        break;
      }
    }
    if (reached) continue;
    const FileIndex* where_file = nullptr;
    const FunctionInfo* where_fn = nullptr;
    for (const FileIndex& f : files) {
      for (const FunctionInfo& fn : f.functions) {
        if (fn.QualifiedName() == want) {
          where_file = &f;
          where_fn = &fn;
        }
      }
    }
    if (where_fn != nullptr) {
      out->push_back(
          {"require-reachable", where_file->source.rel, where_fn->line,
           "'" + want +
               "' exists but was not visited by the hot-path BFS; its "
               "call edge from a hot-path root was lost or a "
               "msd-hot-path-safe chokepoint now hides it"});
    } else {
      out->push_back(
          {"require-reachable", "src", 0,
           "no function named '" + want +
               "' exists; the --require-reachable check is stale"});
    }
  }

  for (const Node& node : queue) {
    if (node.fn->hot_sites.empty()) continue;
    std::string chain = node.fn->QualifiedName();
    for (const FunctionInfo* p = parent[node.fn]; p != nullptr;
         p = parent[p]) {
      chain = p->QualifiedName() + " -> " + chain;
    }
    for (const HotSite& site : node.fn->hot_sites) {
      switch (site.kind) {
        case HotSite::Kind::kAlloc:
          out->push_back(
              {"hot-path-alloc", node.file->source.rel, site.line,
               "heap allocation (" + site.token +
                   ") reachable from a hot-path root via " + chain +
                   "; use tensor/pool.h buffers or hoist it out of the "
                   "per-request cycle"});
          break;
        case HotSite::Kind::kIo:
          out->push_back(
              {"hot-path-io", node.file->source.rel, site.line,
               "blocking IO (" + site.token +
                   ") reachable from a hot-path root via " + chain +
                   "; move transport/logging IO off the hot path"});
          break;
        case HotSite::Kind::kLock:
          out->push_back(
              {"hot-path-lock", node.file->source.rel, site.line,
               "mutex acquisition (" + site.token +
                   ") reachable from a hot-path root via " + chain +
                   "; a hot-path lock serializes every request in the "
                   "batch"});
          break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 4: atomics audit.
// ---------------------------------------------------------------------------

void RunAtomicsPass(const std::vector<FileIndex>& files,
                    std::vector<Finding>* out) {
  for (const FileIndex& f : files) {
    for (const AtomicOp& op : f.atomic_ops) {
      if (!op.has_order) {
        out->push_back(
            {"atomic-unannotated", f.source.rel, op.line,
             op.var + "." + op.method +
                 "() takes the default memory_order_seq_cst; spell the "
                 "order explicitly (relaxed for counters, release/acquire "
                 "for publication, seq_cst only when two orders must "
                 "agree)"});
      }
    }
    // Relaxed store publishing data that readers consume with acquire: the
    // acquire load only synchronizes with a RELEASE store of the same
    // variable, so the pairing is broken on the publishing side.
    std::map<std::string, std::vector<const AtomicOp*>> by_var;
    for (const AtomicOp& op : f.atomic_ops) by_var[op.var].push_back(&op);
    for (const auto& [var, ops] : by_var) {
      bool has_acquire_load = false;
      for (const AtomicOp* op : ops) {
        if (op->method != "load") continue;
        for (const std::string& order : op->orders) {
          if (order == "acquire" || order == "acq_rel") {
            has_acquire_load = true;
          }
        }
      }
      if (!has_acquire_load) continue;
      for (const AtomicOp* op : ops) {
        if (op->method != "store") continue;
        bool relaxed = false;
        for (const std::string& order : op->orders) {
          if (order == "relaxed") relaxed = true;
        }
        if (!relaxed) continue;
        out->push_back(
            {"atomic-relaxed-publish", f.source.rel, op->line,
             "relaxed store of " + var +
                 " publishes a value that is read with memory_order_acquire "
                 "in this file; the publishing store needs "
                 "memory_order_release"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

struct Suppression {
  std::string key;  // rule:path:line
  std::string justification;
  int file_line = 0;
  bool used = false;
};

bool LoadSuppressions(const std::string& path, bool required,
                      std::vector<Suppression>* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (!required) return true;
    *error = "cannot read suppression file: " + path;
    return false;
  }
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    const size_t key_end = line.find_first_of(" \t", first);
    const std::string key = line.substr(
        first, key_end == std::string::npos ? std::string::npos
                                            : key_end - first);
    // rule:path:line — the line number is the text after the LAST colon.
    const size_t last_colon = key.rfind(':');
    const size_t first_colon = key.find(':');
    bool valid = last_colon != std::string::npos && first_colon != last_colon &&
                 last_colon + 1 < key.size();
    for (size_t i = last_colon + 1; valid && i < key.size(); ++i) {
      valid = std::isdigit(static_cast<unsigned char>(key[i])) != 0;
    }
    if (!valid) {
      *error = path + ":" + std::to_string(line_number) +
               ": malformed suppression '" + key +
               "' (expected rule:path:line)";
      return false;
    }
    std::string justification;
    if (key_end != std::string::npos) {
      const size_t j = line.find_first_not_of(" \t", key_end);
      if (j != std::string::npos) justification = line.substr(j);
    }
    if (justification.empty()) {
      *error = path + ":" + std::to_string(line_number) + ": suppression '" +
               key + "' is missing a justification";
      return false;
    }
    out->push_back({key, justification, line_number, false});
  }
  return true;
}

}  // namespace

std::string Finding::Key() const {
  return rule + ":" + file + ":" + std::to_string(line);
}

int LayerRank(const std::string& subsystem) {
  static const std::map<std::string, int>& ranks = *new std::map<std::string, int>{
      {"common", 0},   {"runtime", 1}, {"obs", 2},      {"tensor", 3},
      {"data", 4},     {"datagen", 4}, {"autograd", 5}, {"metrics", 6},
      {"nn", 6},       {"optim", 7},   {"core", 7},     {"baselines", 8},
      {"tasks", 8},    {"serve", 9},
  };
  const auto it = ranks.find(subsystem);
  return it == ranks.end() ? -1 : it->second;
}

AnalyzerResult RunAnalyzer(const std::string& root,
                           const AnalyzerOptions& options) {
  AnalyzerResult result;
  const fs::path src = fs::path(root) / "src";
  if (!fs::is_directory(src)) {
    result.error = src.string() + " is not a directory";
    return result;
  }

  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext != ".h" && ext != ".cc") continue;
    paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());

  std::vector<FileIndex> files;
  files.reserve(paths.size());
  for (const fs::path& path : paths) {
    SourceFile source;
    if (!LoadSourceFile(path.string(),
                        fs::relative(path, root).generic_string(), &source)) {
      result.error = "cannot read " + path.string();
      return result;
    }
    files.push_back(IndexFile(source));
    ++result.files_checked;
  }

  for (const FileIndex& f : files) RunFileRules(f, &result.findings);
  RunLayeringPass(files, &result.findings);
  RunLockOrderPass(files, &result.findings);
  RunHotPathPass(files, options.require_reachable, &result.findings);
  RunAtomicsPass(files, &result.findings);

  std::vector<Suppression> suppressions;
  if (!options.suppressions_path.empty()) {
    if (!LoadSuppressions(options.suppressions_path,
                          options.suppressions_required, &suppressions,
                          &result.error)) {
      return result;
    }
  }
  std::map<std::string, Suppression*> by_key;
  for (Suppression& s : suppressions) by_key[s.key] = &s;
  for (Finding& finding : result.findings) {
    const auto it = by_key.find(finding.Key());
    if (it == by_key.end()) continue;
    finding.suppressed = true;
    finding.justification = it->second->justification;
    it->second->used = true;
  }
  for (const Suppression& s : suppressions) {
    if (s.used) continue;
    // Report against the suppression file itself so the finding's location
    // points at the entry to delete.
    fs::path sup(options.suppressions_path);
    std::error_code ec;
    fs::path rel = fs::relative(sup, root, ec);
    const std::string sup_rel =
        (ec || rel.empty()) ? sup.generic_string() : rel.generic_string();
    result.findings.push_back(
        {"stale-suppression", sup_rel, s.file_line,
         "suppression " + s.key +
             " matched no finding; delete it or fix the rule/path/line"});
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  result.findings.erase(
      std::unique(result.findings.begin(), result.findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return a.file == b.file && a.line == b.line &&
                           a.rule == b.rule && a.message == b.message;
                  }),
      result.findings.end());
  for (const Finding& finding : result.findings) {
    if (finding.suppressed) {
      ++result.suppressed;
    } else {
      ++result.unsuppressed;
    }
  }
  return result;
}

std::string RenderText(const AnalyzerResult& result) {
  std::string out;
  for (const Finding& finding : result.findings) {
    if (finding.suppressed) continue;
    out += finding.file + ":" + std::to_string(finding.line) + ": " +
           finding.rule + ": " + finding.message + "\n";
  }
  out += "msd_analyze: " + std::to_string(result.files_checked) + " files, " +
         std::to_string(result.unsuppressed) + " finding(s), " +
         std::to_string(result.suppressed) + " suppressed\n";
  return out;
}

namespace {
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}
}  // namespace

std::string RenderJson(const AnalyzerResult& result) {
  std::string out = "{\n";
  out += "  \"files\": " + std::to_string(result.files_checked) + ",\n";
  out += "  \"unsuppressed\": " + std::to_string(result.unsuppressed) + ",\n";
  out += "  \"suppressed\": " + std::to_string(result.suppressed) + ",\n";
  out += "  \"findings\": [";
  bool first = true;
  for (const Finding& finding : result.findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"rule\": \"" + JsonEscape(finding.rule) + "\", \"file\": \"" +
           JsonEscape(finding.file) +
           "\", \"line\": " + std::to_string(finding.line) +
           ", \"suppressed\": " + (finding.suppressed ? "true" : "false") +
           ", \"message\": \"" + JsonEscape(finding.message) + "\"";
    if (!finding.justification.empty()) {
      out += ", \"justification\": \"" + JsonEscape(finding.justification) +
             "\"";
    }
    out += "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace analyze
}  // namespace msd
