// msd_analyze CLI: cross-file static analysis over <repo-root>/src, run as
// the `analyze_check` ctest (docs/ANALYSIS.md).
//
// Usage: msd_analyze [--json] [--suppressions FILE] <repo-root>
//
//   --json                 print the machine-readable report on stdout
//                          (the human report always goes to stderr)
//   --suppressions FILE    override the suppression file; the default is
//                          <repo-root>/tools/analyze/suppressions.txt, which
//                          may be absent (treated as empty)
//
// Exit status: 0 clean, 1 unsuppressed findings, 2 configuration error.
#include <cstdio>
#include <cstring>
#include <string>

#include "analyze/analyzer.h"

int main(int argc, char** argv) {
  bool json = false;
  std::string suppressions;
  bool suppressions_explicit = false;
  std::string root;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--suppressions") == 0 && i + 1 < argc) {
      suppressions = argv[++i];
      suppressions_explicit = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: msd_analyze [--json] [--suppressions FILE] "
                   "<repo-root>\n");
      return 2;
    } else if (root.empty()) {
      root = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: msd_analyze [--json] [--suppressions FILE] "
                   "<repo-root>\n");
      return 2;
    }
  }
  if (root.empty()) {
    std::fprintf(stderr,
                 "usage: msd_analyze [--json] [--suppressions FILE] "
                 "<repo-root>\n");
    return 2;
  }

  msd::analyze::AnalyzerOptions options;
  options.suppressions_path =
      suppressions_explicit ? suppressions
                            : root + "/tools/analyze/suppressions.txt";
  options.suppressions_required = suppressions_explicit;

  const msd::analyze::AnalyzerResult result =
      msd::analyze::RunAnalyzer(root, options);
  if (!result.error.empty()) {
    std::fprintf(stderr, "msd_analyze: %s\n", result.error.c_str());
    return 2;
  }
  std::fputs(msd::analyze::RenderText(result).c_str(), stderr);
  if (json) {
    std::fputs(msd::analyze::RenderJson(result).c_str(), stdout);
  }
  return result.unsuppressed == 0 ? 0 : 1;
}
