// msd_analyze CLI: cross-file static analysis over <repo-root>/src, run as
// the `analyze_check` ctest (docs/ANALYSIS.md).
//
// Usage: msd_analyze [--json] [--suppressions FILE]
//                    [--require-reachable NAME]... <repo-root>
//
//   --json                    print the machine-readable report on stdout
//                             (the human report always goes to stderr)
//   --suppressions FILE       override the suppression file; the default is
//                             <repo-root>/tools/analyze/suppressions.txt,
//                             which may be absent (treated as empty)
//   --require-reachable NAME  fail unless the hot-path BFS visits the
//                             function with qualified name NAME (e.g.
//                             "CompiledPlan::Execute"); repeatable. Guards
//                             against silent coverage loss: a clean report
//                             only vouches for code the BFS actually
//                             scanned.
//
// Exit status: 0 clean, 1 unsuppressed findings, 2 configuration error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analyze/analyzer.h"

namespace {

int UsageError() {
  std::fprintf(stderr,
               "usage: msd_analyze [--json] [--suppressions FILE] "
               "[--require-reachable NAME]... <repo-root>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string suppressions;
  bool suppressions_explicit = false;
  std::string root;
  std::vector<std::string> require_reachable;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--suppressions") == 0 && i + 1 < argc) {
      suppressions = argv[++i];
      suppressions_explicit = true;
    } else if (std::strcmp(argv[i], "--require-reachable") == 0 &&
               i + 1 < argc) {
      require_reachable.push_back(argv[++i]);
    } else if (argv[i][0] == '-') {
      return UsageError();
    } else if (root.empty()) {
      root = argv[i];
    } else {
      return UsageError();
    }
  }
  if (root.empty()) return UsageError();

  msd::analyze::AnalyzerOptions options;
  options.suppressions_path =
      suppressions_explicit ? suppressions
                            : root + "/tools/analyze/suppressions.txt";
  options.suppressions_required = suppressions_explicit;
  options.require_reachable = require_reachable;

  const msd::analyze::AnalyzerResult result =
      msd::analyze::RunAnalyzer(root, options);
  if (!result.error.empty()) {
    std::fprintf(stderr, "msd_analyze: %s\n", result.error.c_str());
    return 2;
  }
  std::fputs(msd::analyze::RenderText(result).c_str(), stderr);
  if (json) {
    std::fputs(msd::analyze::RenderJson(result).c_str(), stdout);
  }
  return result.unsuppressed == 0 ? 0 : 1;
}
