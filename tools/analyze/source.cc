#include "analyze/source.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace msd {
namespace analyze {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string StripComments(const std::string& text, bool strip_literals) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string out = text;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char terminator = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          if (strip_literals) out[i] = ' ';
          if (next != '\n') {
            if (strip_literals && i + 1 < text.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == terminator) {
          state = State::kCode;
        } else if (c != '\n' && strip_literals) {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

bool LoadSourceFile(const std::string& path, const std::string& rel,
                    SourceFile* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  out->rel = rel;
  out->raw = buffer.str();
  out->code = StripComments(out->raw, /*strip_literals=*/true);
  out->directives = StripComments(out->raw, /*strip_literals=*/false);
  out->is_header = rel.size() > 2 && rel.compare(rel.size() - 2, 2, ".h") == 0;
  out->subsystem.clear();
  if (rel.rfind("src/", 0) == 0) {
    const size_t slash = rel.find('/', 4);
    if (slash != std::string::npos) out->subsystem = rel.substr(4, slash - 4);
  }
  return true;
}

bool IsWholeWordAt(const std::string& text, size_t pos, size_t len) {
  if (pos > 0 && IsWordChar(text[pos - 1])) return false;
  const size_t end = pos + len;
  if (end < text.size() && IsWordChar(text[end])) return false;
  return true;
}

size_t FindWord(const std::string& text, const std::string& token,
                size_t from) {
  for (size_t pos = text.find(token, from); pos != std::string::npos;
       pos = text.find(token, pos + 1)) {
    if (IsWholeWordAt(text, pos, token.size())) return pos;
  }
  return std::string::npos;
}

size_t FindCall(const std::string& text, const std::string& token,
                size_t from) {
  for (size_t pos = FindWord(text, token, from); pos != std::string::npos;
       pos = FindWord(text, token, pos + 1)) {
    size_t after = pos + token.size();
    while (after < text.size() &&
           (text[after] == ' ' || text[after] == '\t')) {
      ++after;
    }
    if (after < text.size() && text[after] == '(') return pos;
  }
  return std::string::npos;
}

int LineAt(const std::string& text, size_t pos) {
  pos = std::min(pos, text.size());
  return 1 + static_cast<int>(std::count(
                 text.begin(), text.begin() + static_cast<ptrdiff_t>(pos),
                 '\n'));
}

size_t SkipSpace(const std::string& text, size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

size_t MatchParen(const std::string& text, size_t pos) {
  if (pos >= text.size()) return std::string::npos;
  const char open = text[pos];
  char close = '\0';
  switch (open) {
    case '(': close = ')'; break;
    case '[': close = ']'; break;
    case '{': close = '}'; break;
    case '<': close = '>'; break;
    default: return std::string::npos;
  }
  int depth = 0;
  for (size_t i = pos; i < text.size(); ++i) {
    if (text[i] == open) {
      ++depth;
    } else if (text[i] == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

}  // namespace analyze
}  // namespace msd
