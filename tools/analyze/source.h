// Shared lexical layer of msd_analyze (docs/ANALYSIS.md).
//
// Every pass consumes a SourceFile: the raw bytes of one translation unit
// plus two derived views produced by a single comment/string-aware scan that
// preserves line structure, so every position in a view maps to the exact
// line of the original file:
//
//   code        comments AND string/char literal bodies blanked to spaces —
//               the view token rules match against (an identifier inside a
//               diagnostic string must never trip a rule);
//   directives  comments blanked, literals kept — the view include-path and
//               metric-name rules match against (the path IS the literal).
//
// Raw string literals are not handled (the tree does not use them); the
// scanner treats them as ordinary strings.
#ifndef MSDMIXER_TOOLS_ANALYZE_SOURCE_H_
#define MSDMIXER_TOOLS_ANALYZE_SOURCE_H_

#include <string>

namespace msd {
namespace analyze {

struct SourceFile {
  std::string rel;         // path relative to the analyzed root, '/'-separated
  std::string subsystem;   // "serve" for "src/serve/...", "" outside src/
  bool is_header = false;  // .h
  std::string raw;
  std::string code;        // literals blanked
  std::string directives;  // literals kept
};

// Loads `path` from disk and derives both views. Returns false when the file
// cannot be read.
bool LoadSourceFile(const std::string& path, const std::string& rel,
                    SourceFile* out);

// The scan behind both views; exposed for tests. Blanks comment bodies —
// and, when `strip_literals` is set, string/char literal contents — with
// spaces, preserving line breaks so reported line numbers stay exact.
std::string StripComments(const std::string& text, bool strip_literals);

bool IsWordChar(char c);

// True when the `len` chars at `pos` sit on word boundaries in `text`.
bool IsWholeWordAt(const std::string& text, size_t pos, size_t len);

// Position of the next whole-word occurrence of `token` at or after `from`,
// or npos.
size_t FindWord(const std::string& text, const std::string& token,
                size_t from = 0);

// Like FindWord, but the word must be followed (after optional whitespace)
// by '('.
size_t FindCall(const std::string& text, const std::string& token,
                size_t from = 0);

// 1-based line number of byte offset `pos` in `text`.
int LineAt(const std::string& text, size_t pos);

// Skips whitespace (including newlines) starting at `pos`.
size_t SkipSpace(const std::string& text, size_t pos);

// With text[pos] == '(' (or '[', '{', '<'), returns the offset one past the
// matching closer, treating nothing else specially; npos when unbalanced.
size_t MatchParen(const std::string& text, size_t pos);

}  // namespace analyze
}  // namespace msd

#endif  // MSDMIXER_TOOLS_ANALYZE_SOURCE_H_
