#include "analyze/index.h"

#include <algorithm>
#include <cctype>

namespace msd {
namespace analyze {
namespace {

// Scope kinds the brace tracker distinguishes. kOther covers every brace
// construct that is neither a definition nor a body we care about
// (brace initializers, init-lists inside call arguments, lambdas at
// class/namespace scope).
enum class ScopeKind { kNamespace, kClass, kFunction, kBlock, kOther };

struct Scope {
  ScopeKind kind = ScopeKind::kOther;
  std::string name;        // class name for kClass
  size_t function_index =  // into FileIndex::functions for kFunction
      static_cast<size_t>(-1);
};

const std::set<std::string>& StatementKeywords() {
  static const std::set<std::string> keywords = {
      "if",     "for",    "while",  "switch",   "catch",  "return",
      "sizeof", "alignof", "decltype", "new",   "delete", "do",
      "else",   "try",    "static_assert", "alignas", "typeid",
  };
  return keywords;
}

const std::set<std::string>& CallKeywords() {
  // Words followed by '(' that are never repo function calls.
  static const std::set<std::string> keywords = {
      "if",       "for",      "while",    "switch",      "catch",
      "return",   "sizeof",   "alignof",  "decltype",    "static_assert",
      "alignas",  "typeid",   "new",      "delete",      "static_cast",
      "dynamic_cast",         "const_cast",              "reinterpret_cast",
      "int",      "int64_t",  "uint64_t", "int32_t",     "size_t",
      "float",    "double",   "bool",     "char",        "void",
      "lock_guard", "unique_lock", "scoped_lock", "defined", "noexcept",
  };
  return keywords;
}

bool IsPreprocessorLineStart(const std::string& text, size_t pos) {
  // `pos` must be at a non-space char; true when it starts a directive.
  if (text[pos] != '#') return false;
  size_t i = pos;
  while (i > 0 && (text[i - 1] == ' ' || text[i - 1] == '\t')) --i;
  return i == 0 || text[i - 1] == '\n';
}

// Consumes a preprocessor directive starting at `pos` ('#'), honoring
// backslash continuations; returns the offset just past its final newline.
size_t SkipDirective(const std::string& text, size_t pos) {
  while (pos < text.size()) {
    if (text[pos] == '\\' && pos + 1 < text.size() &&
        text[pos + 1] == '\n') {
      pos += 2;
      continue;
    }
    if (text[pos] == '\n') return pos + 1;
    ++pos;
  }
  return pos;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return s.substr(b, e - b);
}

std::vector<std::string> Tokens(const std::string& s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    if (IsWordChar(s[i])) {
      size_t j = i;
      while (j < s.size() && IsWordChar(s[j])) ++j;
      out.push_back(s.substr(i, j - i));
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

// Finds the first '(' in `stmt` outside template angle brackets; npos if
// none. '<' tracking skips <<, >>, <=, >=, and ->.
size_t FirstTopLevelParen(const std::string& stmt, size_t* eq_before_paren) {
  int angle = 0;
  *eq_before_paren = std::string::npos;
  for (size_t i = 0; i < stmt.size(); ++i) {
    const char c = stmt[i];
    const char next = i + 1 < stmt.size() ? stmt[i + 1] : '\0';
    const char prev = i > 0 ? stmt[i - 1] : '\0';
    if ((c == '<' && next == '<') || (c == '>' && next == '>') ||
        (c == '<' && next == '=') || (c == '>' && next == '=')) {
      ++i;
      continue;
    }
    if (c == '>' && prev == '-') continue;  // ->
    if (c == '<') {
      ++angle;
    } else if (c == '>') {
      if (angle > 0) --angle;
    } else if (angle == 0) {
      if (c == '=' && next != '=' && prev != '=' && prev != '!' &&
          prev != '<' && prev != '>') {
        if (*eq_before_paren == std::string::npos) *eq_before_paren = i;
      } else if (c == '(') {
        return i;
      }
    }
  }
  return std::string::npos;
}

// Walks back from `pos` (exclusive) over an identifier possibly qualified
// with :: and ~; returns it ("MicroBatcher::WorkerLoop", "~Foo", "Gemm").
std::string IdentifierEndingAt(const std::string& s, size_t pos) {
  size_t e = pos;
  while (e > 0 &&
         std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  size_t b = e;
  while (b > 0) {
    const char c = s[b - 1];
    if (IsWordChar(c) || c == '~') {
      --b;
    } else if (c == ':' && b > 1 && s[b - 2] == ':') {
      b -= 2;
    } else {
      break;
    }
  }
  return s.substr(b, e - b);
}

// True when `stmt` (text before a '{') is a function definition header.
// Fills name/class_name on success.
bool ParseFunctionHeader(const std::string& stmt_in, std::string* name,
                         std::string* class_name) {
  const std::string stmt = Trim(stmt_in);
  if (stmt.empty()) return false;
  // Everything after the LAST ')' must be cv/ref/exception/trailing-return
  // qualifiers; an initializer (`= {`) or a plain declaration never ends
  // that way.
  const size_t last_paren = stmt.rfind(')');
  if (last_paren == std::string::npos) return false;
  const std::string tail = stmt.substr(last_paren + 1);
  if (tail.find("->") == std::string::npos) {
    for (const std::string& tok : Tokens(tail)) {
      if (tok != "const" && tok != "noexcept" && tok != "override" &&
          tok != "final" && tok != "mutable" && tok != "volatile" &&
          tok != "try" && tok != "requires") {
        return false;
      }
    }
  }
  size_t eq = std::string::npos;
  const size_t paren = FirstTopLevelParen(stmt, &eq);
  if (paren == std::string::npos) return false;
  if (eq != std::string::npos && eq < paren) return false;  // initializer
  std::string qualified = IdentifierEndingAt(stmt, paren);
  if (qualified.empty()) return false;
  // Split off the class qualifier ("A::B::F" -> class B, name F).
  std::string fn = qualified;
  std::string cls;
  const size_t sep = qualified.rfind("::");
  if (sep != std::string::npos) {
    fn = qualified.substr(sep + 2);
    const std::string head = qualified.substr(0, sep);
    const size_t sep2 = head.rfind("::");
    cls = sep2 == std::string::npos ? head : head.substr(sep2 + 2);
  }
  if (fn.empty() || StatementKeywords().count(fn) > 0) return false;
  if (std::isdigit(static_cast<unsigned char>(fn[0])) != 0) return false;
  *name = fn;
  *class_name = cls;
  return true;
}

// Class-definition header: [template<...>] [typedef] class/struct/union/enum
// [class] Name [final] [: bases]. Returns the name ("" for anonymous).
bool ParseClassHeader(const std::string& stmt_in, std::string* name) {
  const std::string stmt = Trim(stmt_in);
  std::vector<std::string> tokens = Tokens(stmt);
  // A '(' before the keyword means function-returning-struct etc.; the repo
  // style never does that, and requiring the keyword among the first few
  // tokens avoids matching `void F(struct x)`.
  size_t limit = std::min<size_t>(tokens.size(), 8);
  for (size_t i = 0; i < limit; ++i) {
    const std::string& tok = tokens[i];
    if (tok == "class" || tok == "struct" || tok == "union" ||
        tok == "enum") {
      size_t j = i + 1;
      if (j < tokens.size() && (tokens[j] == "class" || tokens[j] == "struct"))
        ++j;
      name->clear();
      if (j < tokens.size() && tokens[j] != "final") *name = tokens[j];
      return true;
    }
    if (tok == "template" || tok == "typedef" || tok == "typename" ||
        tok == "public" || tok == "private" || tok == "protected") {
      continue;
    }
    // Any other leading token (a type, an identifier) means this statement
    // is not a type definition unless the keyword comes later among
    // template parameters — stop scanning.
    break;
  }
  return false;
}

bool ContainsWord(const std::string& text, const char* token) {
  return FindWord(text, token) != std::string::npos;
}

// Annotation lookup: scans the raw text of the `window` lines ending at the
// statement's first line for the hot-path markers.
void FindAnnotations(const std::string& raw, size_t stmt_begin,
                     size_t brace_pos, bool* hot_root, bool* hot_safe) {
  // Back up 8 lines before the statement begins (annotation comments may
  // run several lines; the marker conventionally sits on the first one).
  size_t begin = stmt_begin;
  for (int lines = 0; lines < 9 && begin > 0; ++lines) {
    size_t nl = raw.rfind('\n', begin - 1);
    if (nl == std::string::npos) {
      begin = 0;
      break;
    }
    begin = nl;
  }
  const std::string window = raw.substr(begin, brace_pos - begin);
  if (window.find("msd-hot-path-safe") != std::string::npos) {
    *hot_safe = true;
  } else if (window.find("msd-hot-path") != std::string::npos) {
    *hot_root = true;
  }
}

const char* const kIoCallTokens[] = {
    "fopen",  "freopen", "fclose", "fread",   "fwrite",  "fprintf",
    "printf", "fscanf",  "scanf",  "fgets",   "fputs",   "puts",
    "fflush", "getchar", "putchar", "getline", "system",
};
const char* const kIoWordTokens[] = {
    "std::ifstream", "std::ofstream", "std::fstream", "std::cin",
    "std::cerr",     "std::clog",     "std::FILE",
};

// Splits a balanced argument list on top-level commas.
std::vector<std::string> SplitArgs(const std::string& args) {
  std::vector<std::string> out;
  int depth = 0;
  std::string current;
  for (char c : args) {
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!Trim(current).empty() || !out.empty()) out.push_back(current);
  return out;
}

struct GuardSite {
  size_t pos = 0;       // offset of the guard token
  std::string guard;    // lock_guard | unique_lock | scoped_lock
  std::vector<std::string> mutexes;  // normalized argument expressions
};

// Collects guard declarations inside [begin, end).
std::vector<GuardSite> FindGuards(const std::string& code, size_t begin,
                                  size_t end) {
  std::vector<GuardSite> out;
  for (const char* guard : {"lock_guard", "unique_lock", "scoped_lock"}) {
    for (size_t pos = FindWord(code, guard, begin);
         pos != std::string::npos && pos < end;
         pos = FindWord(code, guard, pos + 1)) {
      size_t after = pos + std::string(guard).size();
      after = SkipSpace(code, after);
      if (after < end && code[after] == '<') {
        const size_t close = MatchParen(code, after);
        if (close == std::string::npos || close > end) continue;
        after = SkipSpace(code, close);
      }
      // Guard variable name (may be absent in expression form; then the
      // next token is already '(').
      while (after < end && IsWordChar(code[after])) ++after;
      after = SkipSpace(code, after);
      if (after >= end || code[after] != '(') continue;
      const size_t close = MatchParen(code, after);
      if (close == std::string::npos || close > end) continue;
      GuardSite site;
      site.pos = pos;
      site.guard = guard;
      for (const std::string& arg :
           SplitArgs(code.substr(after + 1, close - after - 2))) {
        const std::string trimmed = Trim(arg);
        if (trimmed.empty() || trimmed.find("defer_lock") != std::string::npos ||
            trimmed.find("try_to_lock") != std::string::npos ||
            trimmed.find("adopt_lock") != std::string::npos) {
          continue;
        }
        site.mutexes.push_back(NormalizeObjectExpr(trimmed));
      }
      if (!site.mutexes.empty()) out.push_back(site);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const GuardSite& a, const GuardSite& b) { return a.pos < b.pos; });
  return out;
}

// Scans one function body: calls, lock pairs, hot sites.
void ScanFunctionBody(const SourceFile& source, size_t begin, size_t end,
                      FunctionInfo* fn) {
  const std::string& code = source.code;

  // ---- Lock tracking: replay guard scopes against brace depth.
  const std::vector<GuardSite> guards = FindGuards(code, begin, end);
  struct Held {
    LockSite site;
    int depth;
  };
  std::vector<Held> held;
  size_t next_guard = 0;
  int depth = 0;
  // Mutex identity for the cross-TU merge: a member mutex unifies on its
  // class ("MicroBatcher::mu_" from any TU), a file/namespace-scope mutex
  // on its file basename — shared across the file's free functions.
  const std::string qualifier =
      fn->class_name.empty()
          ? source.rel.substr(source.rel.rfind('/') + 1)
          : fn->class_name;
  for (size_t i = begin; i < end; ++i) {
    if (IsPreprocessorLineStart(code, i)) {
      i = SkipDirective(code, i) - 1;
      continue;
    }
    while (next_guard < guards.size() && guards[next_guard].pos == i) {
      const GuardSite& g = guards[next_guard];
      for (const std::string& mu : g.mutexes) {
        LockSite site{qualifier + "::" + mu, g.guard, LineAt(code, g.pos)};
        for (const Held& h : held) {
          // scoped_lock acquires its own arguments atomically
          // (std::lock deadlock avoidance), but an edge from every lock
          // already held to each of them is still real.
          fn->lock_pairs.push_back({h.site, site});
        }
        fn->locks.push_back(site);
        fn->hot_sites.push_back(
            {HotSite::Kind::kLock, g.guard + "(" + mu + ")", site.line});
        held.push_back({site, depth});
      }
      ++next_guard;
    }
    if (code[i] == '{') {
      ++depth;
    } else if (code[i] == '}') {
      --depth;
      while (!held.empty() && held.back().depth > depth) held.pop_back();
      // scoped_lock locks declared directly at the closing depth die too.
      while (!held.empty() && held.back().depth == depth &&
             depth >= 0 && !held.empty() && held.back().depth > depth) {
        held.pop_back();
      }
      while (!held.empty() && held.back().depth > depth) held.pop_back();
    }
  }

  // ---- Calls and allocation/IO tokens.
  for (size_t i = begin; i < end; ++i) {
    if (IsPreprocessorLineStart(code, i)) {
      i = SkipDirective(code, i) - 1;
      continue;
    }
    if (!IsWordChar(code[i]) || (i > 0 && IsWordChar(code[i - 1]))) continue;
    size_t j = i;
    while (j < end && IsWordChar(code[j])) ++j;
    const std::string word = code.substr(i, j - i);
    const int line = LineAt(code, i);

    if (word == "new" && IsWholeWordAt(code, i, 3)) {
      fn->hot_sites.push_back({HotSite::Kind::kAlloc, "new", line});
    } else if (word == "make_shared" || word == "make_unique" ||
               word == "malloc" || word == "calloc" || word == "realloc") {
      const size_t after = SkipSpace(code, j);
      const bool is_call =
          after < end && (code[after] == '(' || code[after] == '<');
      if (is_call) {
        fn->hot_sites.push_back({HotSite::Kind::kAlloc, word, line});
      }
    } else if (word == "vector" && i >= 5 &&
               code.compare(i - 5, 5, "std::") == 0 && j < end &&
               code[j] == '<') {
      // An owning std::vector<...> construction: skip references (they do
      // not allocate) and nested-name uses (std::vector<T>::iterator).
      const size_t close = MatchParen(code, j);
      if (close != std::string::npos && close <= end) {
        const size_t after = SkipSpace(code, close);
        const bool reference = after < end && code[after] == '&';
        const bool scoped = after + 1 < end && code[after] == ':' &&
                            code[after + 1] == ':';
        if (!reference && !scoped) {
          fn->hot_sites.push_back(
              {HotSite::Kind::kAlloc,
               "std::vector" + code.substr(j, close - j), line});
        }
      }
    }

    for (const char* io : kIoCallTokens) {
      if (word == io) {
        const size_t after = SkipSpace(code, j);
        if (after < end && code[after] == '(') {
          fn->hot_sites.push_back({HotSite::Kind::kIo, word, line});
        }
      }
    }

    // Call site: identifier directly followed by '(' (no newline-spanning
    // lookahead needed for repo style). The receiver shape disambiguates
    // resolution: `X::F(` names the class explicitly, and `obj.F(` /
    // `obj->F(` can never be a repo free function.
    if (CallKeywords().count(word) == 0) {
      size_t after = j;
      while (after < end && (code[after] == ' ' || code[after] == '\t')) {
        ++after;
      }
      if (after < end && code[after] == '(') {
        CallSite call;
        call.name = word;
        call.line = line;
        if (i >= 1 && code[i - 1] == '.') {
          call.member = true;
        } else if (i >= 2 && code[i - 1] == '>' && code[i - 2] == '-') {
          call.member = true;
        } else if (i >= 2 && code[i - 1] == ':' && code[i - 2] == ':') {
          size_t qe = i - 2;
          size_t qb = qe;
          while (qb > 0 && IsWordChar(code[qb - 1])) --qb;
          call.qualifier = code.substr(qb, qe - qb);
          // A non-identifier before "::" (e.g. `>` in vector<T>::...) is a
          // template qualifier; treat it like a member call.
          if (call.qualifier.empty()) call.member = true;
        }
        fn->calls.push_back(call);
      }
    }
    i = j - 1;
  }

  // IO word tokens (types, streams) — substring tokens with '::'.
  for (const char* io : kIoWordTokens) {
    const std::string token(io);
    for (size_t pos = code.find(token, begin);
         pos != std::string::npos && pos < end;
         pos = code.find(token, pos + token.size())) {
      if (!IsWholeWordAt(code, pos, token.size())) continue;
      fn->hot_sites.push_back(
          {HotSite::Kind::kIo, token, LineAt(code, pos)});
    }
  }
}

void ScanAtomics(const SourceFile& source, FileIndex* index) {
  const std::string& code = source.code;
  static const char* const kMethods[] = {
      "load",        "store",
      "fetch_add",   "fetch_sub",
      "fetch_and",   "fetch_or",
      "fetch_xor",   "exchange",
      "compare_exchange_weak", "compare_exchange_strong",
  };
  for (const char* method : kMethods) {
    const std::string token(method);
    for (size_t pos = FindWord(code, token, 0); pos != std::string::npos;
         pos = FindWord(code, token, pos + 1)) {
      // Must be a member access: preceded by '.' or '->'.
      if (pos == 0) continue;
      const char prev = code[pos - 1];
      const bool member = prev == '.' || (prev == '>' && pos >= 2 &&
                                          code[pos - 2] == '-');
      if (!member) continue;
      const size_t open = SkipSpace(code, pos + token.size());
      if (open >= code.size() || code[open] != '(') continue;
      const size_t close = MatchParen(code, open);
      if (close == std::string::npos) continue;
      const std::string args = code.substr(open + 1, close - open - 2);

      // `load`/`exchange` also exist on non-atomics (weak_ptr::lock is
      // excluded by name; std::exchange by the member requirement). A
      // guard against shared_ptr<T>::load-style false positives: the
      // object expression must not be a template qualifier.
      size_t obj_end = prev == '.' ? pos - 1 : pos - 2;
      // Walk back the object expression: identifiers, ., ->, (), [].
      size_t b = obj_end;
      while (b > 0) {
        const char c = code[b - 1];
        if (IsWordChar(c)) {
          --b;
        } else if (c == ']' || c == ')') {
          // Skip the balanced group.
          int depth = 0;
          size_t k = b;
          while (k > 0) {
            const char d = code[k - 1];
            if (d == ']' || d == ')') ++depth;
            if (d == '[' || d == '(') {
              if (--depth == 0) break;
            }
            --k;
          }
          if (k == 0) break;
          b = k - 1;
        } else if (c == '.') {
          --b;
        } else if (c == '>' && b > 1 && code[b - 2] == '-') {
          b -= 2;
        } else {
          break;
        }
      }
      std::string object = Trim(code.substr(b, obj_end - b));
      if (object.empty()) continue;
      // Strip trailing index/call groups from the identity: buckets_[i]
      // and buckets_ are the same atomic array.
      const size_t bracket = object.find_first_of("[(");
      if (bracket != std::string::npos) object = object.substr(0, bracket);
      object = NormalizeObjectExpr(object);
      if (object.empty() || object == "std" || object == "this") continue;

      AtomicOp op;
      op.var = object;
      op.method = method;
      op.line = LineAt(code, pos);
      op.has_order = args.find("memory_order") != std::string::npos;
      for (size_t mo = args.find("memory_order_"); mo != std::string::npos;
           mo = args.find("memory_order_", mo + 1)) {
        size_t e = mo + std::string("memory_order_").size();
        size_t f = e;
        while (f < args.size() && IsWordChar(args[f])) ++f;
        op.orders.push_back(args.substr(e, f - e));
      }
      index->atomic_ops.push_back(op);
    }
  }
  std::sort(index->atomic_ops.begin(), index->atomic_ops.end(),
            [](const AtomicOp& a, const AtomicOp& b) { return a.line < b.line; });
}

}  // namespace

std::string NormalizeObjectExpr(std::string expr) {
  std::string out;
  out.reserve(expr.size());
  for (char c : expr) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) out.push_back(c);
  }
  if (out.rfind("this->", 0) == 0) out = out.substr(6);
  while (!out.empty() && (out[0] == '&' || out[0] == '*')) out = out.substr(1);
  // Fold -> into . so agg->mu and agg.mu share an identity.
  std::string folded;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i] == '-' && i + 1 < out.size() && out[i + 1] == '>') {
      folded.push_back('.');
      ++i;
    } else {
      folded.push_back(out[i]);
    }
  }
  return folded;
}

FileIndex IndexFile(const SourceFile& source) {
  FileIndex index;
  index.source = source;
  const std::string& code = source.code;
  const std::string& directives = source.directives;

  // Includes come from the directives view (the path is a literal).
  const std::string marker = "#include \"";
  for (size_t pos = directives.find(marker); pos != std::string::npos;
       pos = directives.find(marker, pos + 1)) {
    const size_t start = pos + marker.size();
    const size_t end = directives.find('"', start);
    if (end == std::string::npos) continue;
    index.includes.push_back(
        {directives.substr(start, end - start), LineAt(directives, pos)});
  }

  // Scope scan: find namespaces, classes, and function bodies.
  std::vector<Scope> scopes;
  struct PendingFunction {
    size_t index;
    size_t body_begin;
  };
  std::vector<PendingFunction> open_functions;
  size_t stmt_start = 0;
  for (size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (IsPreprocessorLineStart(code, i)) {
      i = SkipDirective(code, i) - 1;
      stmt_start = i + 1;
      continue;
    }
    if (c == ';') {
      stmt_start = i + 1;
      continue;
    }
    if (c == '}') {
      if (!scopes.empty()) {
        if (scopes.back().kind == ScopeKind::kFunction) {
          const PendingFunction pending = open_functions.back();
          open_functions.pop_back();
          FunctionInfo& fn = index.functions[pending.index];
          ScanFunctionBody(source, pending.body_begin, i, &fn);
        }
        scopes.pop_back();
      }
      stmt_start = i + 1;
      continue;
    }
    if (c != '{') continue;

    const std::string stmt = code.substr(stmt_start, i - stmt_start);
    Scope scope;
    const bool in_function =
        !scopes.empty() && (scopes.back().kind == ScopeKind::kFunction ||
                            scopes.back().kind == ScopeKind::kBlock);
    std::string name;
    std::string cls;
    if (in_function) {
      scope.kind = ScopeKind::kBlock;
    } else if (ContainsWord(stmt, "namespace") &&
               Tokens(Trim(stmt)).size() <= 3) {
      scope.kind = ScopeKind::kNamespace;
    } else if (ParseClassHeader(stmt, &name)) {
      scope.kind = ScopeKind::kClass;
      scope.name = name;
    } else if (ParseFunctionHeader(stmt, &name, &cls)) {
      scope.kind = ScopeKind::kFunction;
      FunctionInfo fn;
      fn.name = name;
      fn.class_name = cls;
      if (fn.class_name.empty()) {
        // Inline member definition: the enclosing class provides the scope.
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
          if (it->kind == ScopeKind::kClass) {
            fn.class_name = it->name;
            break;
          }
        }
      }
      const size_t first_char = SkipSpace(code, stmt_start);
      fn.line = LineAt(code, std::min(first_char, i));
      FindAnnotations(source.raw, std::min(first_char, i), i, &fn.hot_root,
                      &fn.hot_safe);
      scope.function_index = index.functions.size();
      index.functions.push_back(fn);
      open_functions.push_back({scope.function_index, i + 1});
    } else {
      scope.kind = ScopeKind::kOther;
    }
    scopes.push_back(scope);
    stmt_start = i + 1;
  }

  ScanAtomics(source, &index);
  return index;
}

}  // namespace analyze
}  // namespace msd
